// SNMPv3 message model and wire codec (RFC 3412 message format with the
// User-based Security Model parameters of RFC 3414 §2.4), plus the subset
// of SNMPv2c (RFC 1901) needed for the lab-validation experiment.
//
// The measurement path is the unauthenticated one — the discovery
// (synchronization) GET with an empty engine ID and the REPORT answering
// it with msgAuthoritativeEngineID / Boots / Time in the clear. The codec
// also carries authenticated (usm.hpp HMAC) and encrypted (RFC 3826
// AES-CFB, `encrypted_scoped_pdu`) messages for the lab/attack studies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "asn1/ber.hpp"
#include "snmp/engine_id.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snmpv3fp::snmp {

using asn1::Oid;
using util::Bytes;
using util::ByteView;
using util::Result;

// ---------------------------------------------------------------------------
// PDUs
// ---------------------------------------------------------------------------

enum class PduType : std::uint8_t {
  kGetRequest = 0,
  kGetNextRequest = 1,
  kResponse = 2,
  kSetRequest = 3,
  kGetBulkRequest = 5,
  kInformRequest = 6,
  kTrap = 7,
  kReport = 8,
};

std::string_view to_string(PduType type);

// Variable binding value: the subset of SMI types our agents emit.
struct VarValue {
  // monostate = NULL (unSpecified); int64 = INTEGER; uint64 pairs with
  // `app_tag` for Counter32 / TimeTicks; Bytes = OCTET STRING; Oid = OID.
  std::variant<std::monostate, std::int64_t, std::uint64_t, Bytes, Oid> data;
  std::uint8_t app_tag = asn1::kTagCounter32;  // tag for the uint64 case

  static VarValue null() { return {}; }
  static VarValue integer(std::int64_t v) { return {.data = v}; }
  static VarValue counter32(std::uint32_t v) {
    return {.data = std::uint64_t{v}, .app_tag = asn1::kTagCounter32};
  }
  static VarValue timeticks(std::uint32_t v) {
    return {.data = std::uint64_t{v}, .app_tag = asn1::kTagTimeTicks};
  }
  static VarValue octets(Bytes v) { return {.data = std::move(v)}; }
  static VarValue string(std::string_view v) {
    return {.data = Bytes(v.begin(), v.end())};
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data); }
  std::optional<std::string> as_string() const;
};

struct VarBind {
  Oid oid;
  VarValue value;
};

struct Pdu {
  PduType type = PduType::kGetRequest;
  std::int32_t request_id = 0;
  std::int32_t error_status = 0;  // or non-repeaters for GetBulk
  std::int32_t error_index = 0;   // or max-repetitions for GetBulk
  std::vector<VarBind> bindings;
};

// ---------------------------------------------------------------------------
// SNMPv3
// ---------------------------------------------------------------------------

// msgFlags bits (RFC 3412 §6.4).
inline constexpr std::uint8_t kFlagAuth = 0x01;
inline constexpr std::uint8_t kFlagPriv = 0x02;
inline constexpr std::uint8_t kFlagReportable = 0x04;

inline constexpr std::int32_t kSecurityModelUsm = 3;

struct V3HeaderData {
  std::int32_t msg_id = 0;
  std::int32_t msg_max_size = 65507;
  std::uint8_t msg_flags = kFlagReportable;
  std::int32_t security_model = kSecurityModelUsm;
};

// RFC 3414 §2.4 UsmSecurityParameters (itself BER inside an OCTET STRING).
struct UsmSecurityParameters {
  EngineId authoritative_engine_id;  // empty in a discovery request
  std::uint32_t engine_boots = 0;
  std::uint32_t engine_time = 0;
  std::string user_name;
  Bytes authentication_parameters;
  Bytes privacy_parameters;
};

struct ScopedPdu {
  Bytes context_engine_id;
  std::string context_name;
  Pdu pdu;
};

struct V3Message {
  V3HeaderData header;
  UsmSecurityParameters usm;
  ScopedPdu scoped_pdu;  // meaningful when the priv bit is clear
  // When msgFlags carries kFlagPriv, msgData is this AES-CFB ciphertext of
  // the BER-encoded scoped PDU (RFC 3826) instead of `scoped_pdu`.
  std::optional<Bytes> encrypted_scoped_pdu;

  Bytes encode() const;
  static Result<V3Message> decode(ByteView wire);
};

// usmStats OIDs (RFC 3414 §5) reported by REPORT PDUs.
extern const Oid kOidUsmStatsUnknownEngineIds;   // 1.3.6.1.6.3.15.1.1.4.0
extern const Oid kOidUsmStatsUnknownUserNames;   // 1.3.6.1.6.3.15.1.1.3.0
extern const Oid kOidSysDescr;                   // 1.3.6.1.2.1.1.1.0
extern const Oid kOidSysUpTime;                  // 1.3.6.1.2.1.1.3.0

// The probe of the paper's Figure 2: msgVersion 3, empty engine ID, zero
// boots/time, empty user name, reportable flag, empty-varbind GET.
// With msg_id/request_id in [128, 32767] the encoding is exactly 60 bytes,
// i.e. the paper's 88-byte IPv4 / 108-byte IPv6 on-the-wire sizes once the
// 28/48-byte IP+UDP headers are added.
V3Message make_discovery_request(std::int32_t msg_id, std::int32_t request_id);

// The agent's answer (paper Figure 3): a REPORT carrying the authoritative
// engine ID, boots and time, with a usmStats varbind.
V3Message make_discovery_report(const V3Message& request,
                                const EngineId& engine_id,
                                std::uint32_t engine_boots,
                                std::uint32_t engine_time,
                                std::uint32_t report_counter,
                                const Oid& report_oid = kOidUsmStatsUnknownEngineIds);

// ---------------------------------------------------------------------------
// SNMPv2c (community-based) — used by the lab-validation experiment only.
// ---------------------------------------------------------------------------

struct V2cMessage {
  std::string community;
  Pdu pdu;

  Bytes encode() const;
  static Result<V2cMessage> decode(ByteView wire);
};

// Peeks the msgVersion integer of any SNMP message (0=v1, 1=v2c, 3=v3).
Result<std::int64_t> peek_version(ByteView wire);

}  // namespace snmpv3fp::snmp
