#include "snmp/usm.hpp"

#include "util/aes.hpp"
#include "util/digest.hpp"

namespace snmpv3fp::snmp {

namespace {

constexpr std::size_t kMegabyte = 1048576;

Bytes hmac_for(AuthProtocol protocol, ByteView key, ByteView message) {
  return protocol == AuthProtocol::kHmacMd5_96 ? util::hmac_md5(key, message)
                                               : util::hmac_sha1(key, message);
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace

std::string_view to_string(AuthProtocol protocol) {
  return protocol == AuthProtocol::kHmacMd5_96 ? "HMAC-MD5-96"
                                               : "HMAC-SHA1-96";
}

Bytes password_to_key(AuthProtocol protocol, std::string_view password) {
  // Feed the password cyclically until one mebibyte has been digested
  // (RFC 3414 A.2.1/A.2.2) — the deliberate "key stretching" step.
  const auto* pw = reinterpret_cast<const std::uint8_t*>(password.data());
  const ByteView pw_view(pw, password.size());
  const auto stretch = [&](auto hasher) {
    std::size_t fed = 0;
    while (fed + password.size() <= kMegabyte) {
      hasher.update(pw_view);
      fed += password.size();
    }
    if (fed < kMegabyte) hasher.update(pw_view.first(kMegabyte - fed));
    const auto digest = hasher.finish();
    return Bytes(digest.begin(), digest.end());
  };
  if (password.empty()) return {};
  return protocol == AuthProtocol::kHmacMd5_96 ? stretch(util::Md5())
                                               : stretch(util::Sha1());
}

Bytes localize_key(AuthProtocol protocol, ByteView user_key,
                   const EngineId& engine_id) {
  const auto localize = [&](auto hasher) {
    hasher.update(user_key);
    hasher.update(engine_id.raw());
    hasher.update(user_key);
    const auto digest = hasher.finish();
    return Bytes(digest.begin(), digest.end());
  };
  return protocol == AuthProtocol::kHmacMd5_96 ? localize(util::Md5())
                                               : localize(util::Sha1());
}

Bytes derive_localized_key(AuthProtocol protocol, std::string_view password,
                           const EngineId& engine_id) {
  return localize_key(protocol, password_to_key(protocol, password),
                      engine_id);
}

Bytes compute_auth_params(AuthProtocol protocol, ByteView localized_key,
                          const V3Message& message) {
  // Serialize with msgAuthenticationParameters = 12 zero bytes, HMAC the
  // whole message, truncate to 96 bits (RFC 3414 §6.3.1).
  V3Message zeroed = message;
  zeroed.usm.authentication_parameters.assign(kAuthParamsLength, 0);
  auto mac = hmac_for(protocol, localized_key, zeroed.encode());
  mac.resize(kAuthParamsLength);
  return mac;
}

V3Message authenticate(AuthProtocol protocol, ByteView localized_key,
                       V3Message message) {
  message.header.msg_flags |= kFlagAuth;
  message.usm.authentication_parameters.assign(kAuthParamsLength, 0);
  message.usm.authentication_parameters =
      compute_auth_params(protocol, localized_key, message);
  return message;
}

bool verify_authentication(AuthProtocol protocol, ByteView localized_key,
                           const V3Message& message) {
  if (message.usm.authentication_parameters.size() != kAuthParamsLength)
    return false;
  const auto expected = compute_auth_params(protocol, localized_key, message);
  return constant_time_equal(expected, message.usm.authentication_parameters);
}

Bytes derive_privacy_key(AuthProtocol protocol, std::string_view password,
                         const EngineId& engine_id) {
  auto key = derive_localized_key(protocol, password, engine_id);
  key.resize(16);  // AES-128 key size; truncates SHA-1's 20 bytes
  return key;
}

namespace {

// RFC 3826 §3.1.2.1: IV = engineBoots(4) || engineTime(4) || salt(8).
Bytes make_iv(const V3Message& message, ByteView salt) {
  Bytes iv;
  util::append_be(iv, message.usm.engine_boots, 4);
  util::append_be(iv, message.usm.engine_time, 4);
  iv.insert(iv.end(), salt.begin(), salt.end());
  return iv;
}

Bytes encode_scoped_pdu_plaintext(const ScopedPdu& scoped) {
  asn1::SequenceBuilder seq;
  seq.add(asn1::encode_octet_string(scoped.context_engine_id));
  seq.add(asn1::encode_octet_string(ByteView(
      reinterpret_cast<const std::uint8_t*>(scoped.context_name.data()),
      scoped.context_name.size())));
  // Re-encode the whole message once to reuse the PDU encoder: cheaper to
  // just encode the PDU via a temporary message? The PDU encoder is file-
  // local to message.cpp, so round-trip through a plaintext message.
  V3Message shim;
  shim.scoped_pdu = scoped;
  const auto wire = shim.encode();
  // Extract the scoped-PDU SEQUENCE (last element of the message).
  asn1::Reader outer{ByteView(wire)};
  auto msg = outer.enter();
  (void)msg.value().read_integer();          // version
  (void)msg.value().read_tlv();              // header
  (void)msg.value().read_octet_string();     // usm
  auto scoped_tlv = msg.value().read_tlv();  // the scoped PDU SEQUENCE
  Bytes out;
  asn1::write_tlv(out, scoped_tlv.value().tag, scoped_tlv.value().content);
  return out;
}

}  // namespace

V3Message encrypt_scoped_pdu(ByteView privacy_key, std::uint64_t salt,
                             V3Message message) {
  Bytes salt_bytes;
  util::append_be(salt_bytes, salt, 8);
  message.usm.privacy_parameters = salt_bytes;
  message.header.msg_flags |= kFlagPriv;
  const util::Aes128 cipher(privacy_key);
  message.encrypted_scoped_pdu = cipher.cfb_encrypt(
      make_iv(message, salt_bytes),
      encode_scoped_pdu_plaintext(message.scoped_pdu));
  message.scoped_pdu = {};  // plaintext no longer travels
  return message;
}

Result<V3Message> decrypt_scoped_pdu(ByteView privacy_key,
                                     const V3Message& message) {
  if (!(message.header.msg_flags & kFlagPriv) ||
      !message.encrypted_scoped_pdu.has_value())
    return Result<V3Message>::failure("message is not encrypted");
  if (message.usm.privacy_parameters.size() != 8)
    return Result<V3Message>::failure("privacy parameters must be 8 bytes");
  const util::Aes128 cipher(privacy_key);
  const Bytes plaintext =
      cipher.cfb_decrypt(make_iv(message, message.usm.privacy_parameters),
                         *message.encrypted_scoped_pdu);

  // Re-assemble a plaintext message and decode it, which validates the
  // recovered scoped PDU (a wrong key yields BER garbage here).
  V3Message shim = message;
  shim.header.msg_flags &= static_cast<std::uint8_t>(~kFlagPriv);
  shim.encrypted_scoped_pdu.reset();
  asn1::SequenceBuilder wire;
  wire.add(asn1::encode_integer(3));
  asn1::SequenceBuilder header;
  header.add(asn1::encode_integer(shim.header.msg_id));
  header.add(asn1::encode_integer(shim.header.msg_max_size));
  const std::uint8_t flags = shim.header.msg_flags;
  header.add(asn1::encode_octet_string(ByteView(&flags, 1)));
  header.add(asn1::encode_integer(shim.header.security_model));
  wire.add(header.finish());
  // Serialize USM params through a plain encode of the shim (cheap trick:
  // encode shim fully, then replace its scoped PDU with the plaintext).
  const auto shim_wire = shim.encode();
  asn1::Reader outer{ByteView(shim_wire)};
  auto msg = outer.enter();
  (void)msg.value().read_integer();
  (void)msg.value().read_tlv();
  auto usm_tlv = msg.value().read_octet_string();
  wire.add(asn1::encode_octet_string(usm_tlv.value()));
  wire.add(plaintext);
  auto decoded = V3Message::decode(wire.finish());
  if (!decoded)
    return Result<V3Message>::failure("decryption failed: " + decoded.error());
  return decoded;
}

std::optional<std::string> brute_force_password(
    AuthProtocol protocol, const V3Message& captured,
    std::span<const std::string> dictionary) {
  const EngineId& engine_id = captured.usm.authoritative_engine_id;
  if (engine_id.empty()) return std::nullopt;  // nothing to localize against
  for (const auto& candidate : dictionary) {
    const auto key = derive_localized_key(protocol, candidate, engine_id);
    if (verify_authentication(protocol, key, captured)) return candidate;
  }
  return std::nullopt;
}

}  // namespace snmpv3fp::snmp
