// SNMP engine IDs (RFC 3411 §5, SnmpEngineID TEXTUAL-CONVENTION).
//
// The engine ID is the identifier this whole system is built on. An
// RFC 3411-conforming engine ID sets the top bit of the first byte; the
// first four bytes (top bit masked) carry the vendor's IANA enterprise
// number, byte 5 selects the format of the remainder:
//
//   1 = IPv4 address (4 bytes)      4 = administratively assigned text
//   2 = IPv6 address (16 bytes)     5 = administratively assigned octets
//   3 = MAC address (6 bytes)       >= 128 = enterprise-specific scheme
//
// Devices in the wild also emit *non-conforming* IDs (top bit clear, raw
// bytes — paper §4.2) and Net-SNMP's enterprise-specific scheme under
// PEN 8072. EngineId parses, classifies and builds all of these.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip.hpp"
#include "net/mac.hpp"
#include "util/bytes.hpp"

namespace snmpv3fp::snmp {

using util::Bytes;
using util::ByteView;

enum class EngineIdFormat : std::uint8_t {
  kEmpty,               // zero-length (discovery request, broken agents)
  kIpv4,                // RFC 3411 format 1
  kIpv6,                // RFC 3411 format 2
  kMac,                 // RFC 3411 format 3
  kText,                // RFC 3411 format 4
  kOctets,              // RFC 3411 format 5
  kNetSnmp,             // enterprise-specific scheme under PEN 8072
  kEnterpriseSpecific,  // other enterprise-specific schemes (format >= 128)
  kNonConforming,       // top bit clear: raw bytes, no format information
};

std::string_view to_string(EngineIdFormat format);

class EngineId {
 public:
  EngineId() = default;  // empty
  explicit EngineId(Bytes raw) : raw_(std::move(raw)) {}

  // ---- builders (all produce RFC 3411-conforming IDs unless noted) ----
  static EngineId make_mac(std::uint32_t enterprise, const net::MacAddress& mac);
  static EngineId make_ipv4(std::uint32_t enterprise, net::Ipv4 address);
  static EngineId make_ipv6(std::uint32_t enterprise, const net::Ipv6& address);
  static EngineId make_text(std::uint32_t enterprise, std::string_view text);
  static EngineId make_octets(std::uint32_t enterprise, ByteView octets);
  // Net-SNMP default scheme: PEN 8072, format 0x80, random 8-byte payload.
  static EngineId make_netsnmp(std::uint64_t random_payload);
  // Raw bytes with the conformance bit clear (vendor bug / legacy style).
  static EngineId make_nonconforming(ByteView raw);

  const Bytes& raw() const { return raw_; }
  bool empty() const { return raw_.empty(); }
  std::size_t size() const { return raw_.size(); }
  std::string to_hex() const { return util::to_hex(raw_); }

  bool is_conforming() const { return !raw_.empty() && (raw_[0] & 0x80) != 0; }

  EngineIdFormat format() const;

  // Enterprise number for conforming IDs.
  std::optional<std::uint32_t> enterprise() const;

  // Format-specific payload (bytes after the 5-byte RFC 3411 prefix);
  // nullopt for empty/non-conforming IDs.
  std::optional<ByteView> payload() const;

  // Typed payload accessors; nullopt when the format does not match.
  std::optional<net::MacAddress> mac() const;
  std::optional<net::Ipv4> ipv4() const;
  std::optional<net::Ipv6> ipv6() const;
  std::optional<std::string> text() const;

  auto operator<=>(const EngineId&) const = default;

 private:
  static Bytes prefix(std::uint32_t enterprise, std::uint8_t format_byte);
  Bytes raw_;
};

}  // namespace snmpv3fp::snmp

template <>
struct std::hash<snmpv3fp::snmp::EngineId> {
  std::size_t operator()(const snmpv3fp::snmp::EngineId& id) const noexcept;
};
