// RFC 3414 User-based Security Model: password-to-key, key localization,
// and HMAC-MD5-96 / HMAC-SHA1-96 message authentication.
//
// This is the mechanism that makes the engine ID leak consequential: the
// per-agent key is derived from (password, engine ID) only, so anyone who
// captures ONE authenticated message AND knows the engine ID — which the
// agent hands out unauthenticated (the paper's whole point) — can brute
// force the password offline (paper §8, citing Thomas 2021).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "snmp/message.hpp"

namespace snmpv3fp::snmp {

enum class AuthProtocol : std::uint8_t { kHmacMd5_96, kHmacSha1_96 };

std::string_view to_string(AuthProtocol protocol);

// msgAuthenticationParameters length for both protocols (the "-96" part).
inline constexpr std::size_t kAuthParamsLength = 12;

// RFC 3414 A.2: digest over the password repeated to 1,048,576 bytes.
Bytes password_to_key(AuthProtocol protocol, std::string_view password);

// RFC 3414 §2.6: localized key = H(Ku || snmpEngineID || Ku).
Bytes localize_key(AuthProtocol protocol, ByteView user_key,
                   const EngineId& engine_id);

// Convenience: password -> localized key in one step.
Bytes derive_localized_key(AuthProtocol protocol, std::string_view password,
                           const EngineId& engine_id);

// Computes the 12-byte MAC over the message serialized with zeroed
// msgAuthenticationParameters (RFC 3414 §6.3.1).
Bytes compute_auth_params(AuthProtocol protocol, ByteView localized_key,
                          const V3Message& message);

// Returns a copy of `message` with msgFlags' auth bit set and the MAC
// filled in.
V3Message authenticate(AuthProtocol protocol, ByteView localized_key,
                       V3Message message);

// Recomputes and compares the MAC (constant-time comparison).
bool verify_authentication(AuthProtocol protocol, ByteView localized_key,
                           const V3Message& message);

// ---------------------------------------------------------------------------
// Privacy (RFC 3826 usmAesCfb128Protocol)
// ---------------------------------------------------------------------------

// Localized 16-byte privacy key: same derivation as the auth key (for
// SHA-1, the 20-byte localized key truncated to 16).
Bytes derive_privacy_key(AuthProtocol protocol, std::string_view password,
                         const EngineId& engine_id);

// Encrypts `message.scoped_pdu` under AES-128-CFB: sets the priv flag,
// fills msgPrivacyParameters with the 8-byte salt, and stores the
// ciphertext. IV = engineBoots || engineTime || salt (RFC 3826 §3.1.2.1).
V3Message encrypt_scoped_pdu(ByteView privacy_key, std::uint64_t salt,
                             V3Message message);

// Reverses encrypt_scoped_pdu: decrypts and parses the scoped PDU; fails
// on a wrong key (the plaintext no longer parses as BER).
Result<V3Message> decrypt_scoped_pdu(ByteView privacy_key,
                                     const V3Message& message);

// Offline dictionary attack against one captured authenticated message:
// the engine ID inside the message plus a candidate password fully
// determine the expected MAC. Returns the recovered password, if any.
std::optional<std::string> brute_force_password(
    AuthProtocol protocol, const V3Message& captured,
    std::span<const std::string> dictionary);

}  // namespace snmpv3fp::snmp
