#include "snmp/engine_id.hpp"

#include "net/registry.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::snmp {

std::string_view to_string(EngineIdFormat format) {
  switch (format) {
    case EngineIdFormat::kEmpty: return "Empty";
    case EngineIdFormat::kIpv4: return "IPv4";
    case EngineIdFormat::kIpv6: return "IPv6";
    case EngineIdFormat::kMac: return "MAC";
    case EngineIdFormat::kText: return "Text";
    case EngineIdFormat::kOctets: return "Octets";
    case EngineIdFormat::kNetSnmp: return "Net-SNMP";
    case EngineIdFormat::kEnterpriseSpecific: return "Enterprise-specific";
    case EngineIdFormat::kNonConforming: return "Non-conforming";
  }
  return "?";
}

Bytes EngineId::prefix(std::uint32_t enterprise, std::uint8_t format_byte) {
  Bytes out;
  util::append_be(out, (enterprise & 0x7fffffffu) | 0x80000000u, 4);
  out.push_back(format_byte);
  return out;
}

EngineId EngineId::make_mac(std::uint32_t enterprise, const net::MacAddress& mac) {
  Bytes raw = prefix(enterprise, 3);
  const auto mac_bytes = mac.to_bytes();
  raw.insert(raw.end(), mac_bytes.begin(), mac_bytes.end());
  return EngineId(std::move(raw));
}

EngineId EngineId::make_ipv4(std::uint32_t enterprise, net::Ipv4 address) {
  Bytes raw = prefix(enterprise, 1);
  const auto addr_bytes = address.to_bytes();
  raw.insert(raw.end(), addr_bytes.begin(), addr_bytes.end());
  return EngineId(std::move(raw));
}

EngineId EngineId::make_ipv6(std::uint32_t enterprise, const net::Ipv6& address) {
  Bytes raw = prefix(enterprise, 2);
  const auto addr_bytes = address.to_bytes();
  raw.insert(raw.end(), addr_bytes.begin(), addr_bytes.end());
  return EngineId(std::move(raw));
}

EngineId EngineId::make_text(std::uint32_t enterprise, std::string_view text) {
  Bytes raw = prefix(enterprise, 4);
  raw.insert(raw.end(), text.begin(), text.end());
  return EngineId(std::move(raw));
}

EngineId EngineId::make_octets(std::uint32_t enterprise, ByteView octets) {
  Bytes raw = prefix(enterprise, 5);
  raw.insert(raw.end(), octets.begin(), octets.end());
  return EngineId(std::move(raw));
}

EngineId EngineId::make_netsnmp(std::uint64_t random_payload) {
  // Net-SNMP default: PEN 8072, enterprise-specific format 0x80 followed by
  // a method byte and random data (here: 8 random bytes).
  Bytes raw = prefix(net::kPenNetSnmp, 0x80);
  util::append_be(raw, random_payload, 8);
  return EngineId(std::move(raw));
}

EngineId EngineId::make_nonconforming(ByteView raw) {
  Bytes bytes(raw.begin(), raw.end());
  if (!bytes.empty()) bytes[0] &= 0x7f;  // ensure the conformance bit is clear
  return EngineId(std::move(bytes));
}

EngineIdFormat EngineId::format() const {
  if (raw_.empty()) return EngineIdFormat::kEmpty;
  if (!is_conforming()) return EngineIdFormat::kNonConforming;
  if (raw_.size() < 5) return EngineIdFormat::kNonConforming;
  const std::uint8_t fmt = raw_[4];
  const std::size_t payload_len = raw_.size() - 5;
  switch (fmt) {
    case 1:
      return payload_len == 4 ? EngineIdFormat::kIpv4
                              : EngineIdFormat::kOctets;
    case 2:
      return payload_len == 16 ? EngineIdFormat::kIpv6
                               : EngineIdFormat::kOctets;
    case 3:
      return payload_len == 6 ? EngineIdFormat::kMac : EngineIdFormat::kOctets;
    case 4:
      return EngineIdFormat::kText;
    case 5:
      return EngineIdFormat::kOctets;
    default:
      if (fmt >= 128) {
        return enterprise() == net::kPenNetSnmp
                   ? EngineIdFormat::kNetSnmp
                   : EngineIdFormat::kEnterpriseSpecific;
      }
      return EngineIdFormat::kOctets;  // reserved format values
  }
}

std::optional<std::uint32_t> EngineId::enterprise() const {
  if (!is_conforming() || raw_.size() < 5) return std::nullopt;
  return static_cast<std::uint32_t>(util::read_be(ByteView(raw_).first(4))) &
         0x7fffffffu;
}

std::optional<ByteView> EngineId::payload() const {
  if (!is_conforming() || raw_.size() < 5) return std::nullopt;
  return ByteView(raw_).subspan(5);
}

std::optional<net::MacAddress> EngineId::mac() const {
  if (format() != EngineIdFormat::kMac) return std::nullopt;
  auto mac = net::MacAddress::from_bytes(*payload());
  if (!mac) return std::nullopt;
  return mac.value();
}

std::optional<net::Ipv4> EngineId::ipv4() const {
  if (format() != EngineIdFormat::kIpv4) return std::nullopt;
  auto addr = net::Ipv4::from_bytes(*payload());
  if (!addr) return std::nullopt;
  return addr.value();
}

std::optional<net::Ipv6> EngineId::ipv6() const {
  if (format() != EngineIdFormat::kIpv6) return std::nullopt;
  auto addr = net::Ipv6::from_bytes(*payload());
  if (!addr) return std::nullopt;
  return addr.value();
}

std::optional<std::string> EngineId::text() const {
  if (format() != EngineIdFormat::kText) return std::nullopt;
  const auto view = *payload();
  return std::string(view.begin(), view.end());
}

}  // namespace snmpv3fp::snmp

std::size_t std::hash<snmpv3fp::snmp::EngineId>::operator()(
    const snmpv3fp::snmp::EngineId& id) const noexcept {
  const auto& raw = id.raw();
  return snmpv3fp::util::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()));
}
