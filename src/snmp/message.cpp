#include "snmp/message.hpp"

namespace snmpv3fp::snmp {

namespace {
using asn1::Reader;
using asn1::SequenceBuilder;

constexpr std::int64_t kVersionV2c = 1;
constexpr std::int64_t kVersionV3 = 3;

std::uint8_t pdu_tag(PduType type) {
  return asn1::context_tag(static_cast<std::uint8_t>(type));
}

Result<PduType> pdu_type_from_tag(std::uint8_t tag) {
  if ((tag & 0xe0) != 0xa0)
    return Result<PduType>::failure("not a context PDU tag");
  const std::uint8_t n = tag & 0x1f;
  switch (n) {
    case 0: return PduType::kGetRequest;
    case 1: return PduType::kGetNextRequest;
    case 2: return PduType::kResponse;
    case 3: return PduType::kSetRequest;
    case 5: return PduType::kGetBulkRequest;
    case 6: return PduType::kInformRequest;
    case 7: return PduType::kTrap;
    case 8: return PduType::kReport;
    default:
      return Result<PduType>::failure("unknown PDU tag " + std::to_string(n));
  }
}

Bytes encode_var_value(const VarValue& value) {
  if (std::holds_alternative<std::monostate>(value.data))
    return asn1::encode_null();
  if (const auto* i = std::get_if<std::int64_t>(&value.data))
    return asn1::encode_integer(*i);
  if (const auto* u = std::get_if<std::uint64_t>(&value.data))
    return asn1::encode_unsigned(*u, value.app_tag);
  if (const auto* b = std::get_if<Bytes>(&value.data))
    return asn1::encode_octet_string(*b);
  return asn1::encode_oid(std::get<Oid>(value.data));
}

Result<VarValue> decode_var_value(const asn1::Tlv& tlv) {
  VarValue value;
  switch (tlv.tag) {
    case asn1::kTagNull:
      return value;
    case asn1::kTagInteger: {
      auto i = asn1::decode_integer_content(tlv.content);
      if (!i) return Result<VarValue>::failure(i.error());
      value.data = i.value();
      return value;
    }
    case asn1::kTagCounter32:
    case asn1::kTagTimeTicks: {
      if (tlv.content.empty() || tlv.content.size() > 5)
        return Result<VarValue>::failure("bad unsigned width");
      std::uint64_t v = 0;
      for (std::uint8_t b : tlv.content) v = (v << 8) | b;
      value.data = v;
      value.app_tag = tlv.tag;
      return value;
    }
    case asn1::kTagOctetString:
      value.data = Bytes(tlv.content.begin(), tlv.content.end());
      return value;
    case asn1::kTagOid: {
      auto oid = asn1::decode_oid_content(tlv.content);
      if (!oid) return Result<VarValue>::failure(oid.error());
      value.data = oid.value();
      return value;
    }
    default:
      return Result<VarValue>::failure("unsupported varbind value tag");
  }
}

Bytes encode_pdu(const Pdu& pdu) {
  SequenceBuilder bindings;
  for (const auto& vb : pdu.bindings) {
    SequenceBuilder one;
    one.add(asn1::encode_oid(vb.oid));
    one.add(encode_var_value(vb.value));
    bindings.add(one.finish());
  }
  SequenceBuilder body;
  body.add(asn1::encode_integer(pdu.request_id));
  body.add(asn1::encode_integer(pdu.error_status));
  body.add(asn1::encode_integer(pdu.error_index));
  body.add(bindings.finish());
  return body.finish(pdu_tag(pdu.type));
}

Result<Pdu> decode_pdu(Reader& reader) {
  auto tlv = reader.read_tlv();
  if (!tlv) return Result<Pdu>::failure(tlv.error());
  auto type = pdu_type_from_tag(tlv.value().tag);
  if (!type) return Result<Pdu>::failure(type.error());

  Pdu pdu;
  pdu.type = type.value();
  Reader body(tlv.value().content);
  auto request_id = body.read_integer();
  if (!request_id) return Result<Pdu>::failure("request-id: " + request_id.error());
  auto error_status = body.read_integer();
  if (!error_status)
    return Result<Pdu>::failure("error-status: " + error_status.error());
  auto error_index = body.read_integer();
  if (!error_index)
    return Result<Pdu>::failure("error-index: " + error_index.error());
  pdu.request_id = static_cast<std::int32_t>(request_id.value());
  pdu.error_status = static_cast<std::int32_t>(error_status.value());
  pdu.error_index = static_cast<std::int32_t>(error_index.value());

  auto bindings = body.enter();
  if (!bindings) return Result<Pdu>::failure("varbinds: " + bindings.error());
  while (!bindings.value().at_end()) {
    auto one = bindings.value().enter();
    if (!one) return Result<Pdu>::failure("varbind: " + one.error());
    auto oid = one.value().read_oid();
    if (!oid) return Result<Pdu>::failure("varbind oid: " + oid.error());
    auto value_tlv = one.value().read_tlv();
    if (!value_tlv)
      return Result<Pdu>::failure("varbind value: " + value_tlv.error());
    auto value = decode_var_value(value_tlv.value());
    if (!value) return Result<Pdu>::failure(value.error());
    pdu.bindings.push_back({std::move(oid).value(), std::move(value).value()});
  }
  return pdu;
}

Bytes encode_usm(const UsmSecurityParameters& usm) {
  SequenceBuilder seq;
  seq.add(asn1::encode_octet_string(usm.authoritative_engine_id.raw()));
  seq.add(asn1::encode_integer(usm.engine_boots));
  seq.add(asn1::encode_integer(usm.engine_time));
  seq.add(asn1::encode_octet_string(
      ByteView(reinterpret_cast<const std::uint8_t*>(usm.user_name.data()),
               usm.user_name.size())));
  seq.add(asn1::encode_octet_string(usm.authentication_parameters));
  seq.add(asn1::encode_octet_string(usm.privacy_parameters));
  return seq.finish();
}

Result<UsmSecurityParameters> decode_usm(ByteView wire) {
  Reader outer(wire);
  auto seq = outer.enter();
  if (!seq) return Result<UsmSecurityParameters>::failure(seq.error());
  Reader& r = seq.value();
  UsmSecurityParameters usm;
  auto engine_id = r.read_octet_string();
  if (!engine_id)
    return Result<UsmSecurityParameters>::failure("engineID: " + engine_id.error());
  usm.authoritative_engine_id =
      EngineId(Bytes(engine_id.value().begin(), engine_id.value().end()));
  auto boots = r.read_integer();
  if (!boots)
    return Result<UsmSecurityParameters>::failure("boots: " + boots.error());
  auto time = r.read_integer();
  if (!time)
    return Result<UsmSecurityParameters>::failure("time: " + time.error());
  if (boots.value() < 0 || time.value() < 0)
    return Result<UsmSecurityParameters>::failure("negative boots/time");
  usm.engine_boots = static_cast<std::uint32_t>(boots.value());
  usm.engine_time = static_cast<std::uint32_t>(time.value());
  auto user = r.read_octet_string();
  if (!user)
    return Result<UsmSecurityParameters>::failure("user: " + user.error());
  usm.user_name.assign(user.value().begin(), user.value().end());
  auto auth = r.read_octet_string();
  if (!auth)
    return Result<UsmSecurityParameters>::failure("auth: " + auth.error());
  usm.authentication_parameters.assign(auth.value().begin(), auth.value().end());
  auto priv = r.read_octet_string();
  if (!priv)
    return Result<UsmSecurityParameters>::failure("priv: " + priv.error());
  usm.privacy_parameters.assign(priv.value().begin(), priv.value().end());
  return usm;
}

}  // namespace

std::string_view to_string(PduType type) {
  switch (type) {
    case PduType::kGetRequest: return "get-request";
    case PduType::kGetNextRequest: return "get-next-request";
    case PduType::kResponse: return "response";
    case PduType::kSetRequest: return "set-request";
    case PduType::kGetBulkRequest: return "get-bulk-request";
    case PduType::kInformRequest: return "inform-request";
    case PduType::kTrap: return "trap";
    case PduType::kReport: return "report";
  }
  return "?";
}

std::optional<std::string> VarValue::as_string() const {
  const auto* bytes = std::get_if<Bytes>(&data);
  if (!bytes) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

const Oid kOidUsmStatsUnknownEngineIds = {1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0};
const Oid kOidUsmStatsUnknownUserNames = {1, 3, 6, 1, 6, 3, 15, 1, 1, 3, 0};
const Oid kOidSysDescr = {1, 3, 6, 1, 2, 1, 1, 1, 0};
const Oid kOidSysUpTime = {1, 3, 6, 1, 2, 1, 1, 3, 0};

Bytes V3Message::encode() const {
  SequenceBuilder header_seq;
  header_seq.add(asn1::encode_integer(header.msg_id));
  header_seq.add(asn1::encode_integer(header.msg_max_size));
  const std::uint8_t flags = header.msg_flags;
  header_seq.add(asn1::encode_octet_string(ByteView(&flags, 1)));
  header_seq.add(asn1::encode_integer(header.security_model));

  SequenceBuilder message;
  message.add(asn1::encode_integer(kVersionV3));
  message.add(header_seq.finish());
  message.add(asn1::encode_octet_string(encode_usm(usm)));
  if ((header.msg_flags & kFlagPriv) && encrypted_scoped_pdu.has_value()) {
    // Encrypted msgData: an OCTET STRING of ciphertext (RFC 3412 §6.7).
    message.add(asn1::encode_octet_string(*encrypted_scoped_pdu));
  } else {
    SequenceBuilder scoped_seq;
    scoped_seq.add(asn1::encode_octet_string(scoped_pdu.context_engine_id));
    scoped_seq.add(asn1::encode_octet_string(ByteView(
        reinterpret_cast<const std::uint8_t*>(scoped_pdu.context_name.data()),
        scoped_pdu.context_name.size())));
    scoped_seq.add(encode_pdu(scoped_pdu.pdu));
    message.add(scoped_seq.finish());
  }
  return message.finish();
}

Result<V3Message> V3Message::decode(ByteView wire) {
  Reader outer(wire);
  auto msg = outer.enter();
  if (!msg) return Result<V3Message>::failure("message: " + msg.error());
  Reader& r = msg.value();

  auto version = r.read_integer();
  if (!version) return Result<V3Message>::failure("version: " + version.error());
  if (version.value() != kVersionV3)
    return Result<V3Message>::failure("not an SNMPv3 message");

  V3Message out;
  auto header = r.enter();
  if (!header) return Result<V3Message>::failure("header: " + header.error());
  {
    Reader& h = header.value();
    auto msg_id = h.read_integer();
    if (!msg_id) return Result<V3Message>::failure("msgID: " + msg_id.error());
    auto max_size = h.read_integer();
    if (!max_size)
      return Result<V3Message>::failure("maxSize: " + max_size.error());
    auto flags = h.read_octet_string();
    if (!flags) return Result<V3Message>::failure("flags: " + flags.error());
    if (flags.value().size() != 1)
      return Result<V3Message>::failure("msgFlags must be one byte");
    auto model = h.read_integer();
    if (!model) return Result<V3Message>::failure("model: " + model.error());
    out.header.msg_id = static_cast<std::int32_t>(msg_id.value());
    out.header.msg_max_size = static_cast<std::int32_t>(max_size.value());
    out.header.msg_flags = flags.value()[0];
    out.header.security_model = static_cast<std::int32_t>(model.value());
  }

  auto usm_wire = r.read_octet_string();
  if (!usm_wire)
    return Result<V3Message>::failure("security params: " + usm_wire.error());
  auto usm = decode_usm(usm_wire.value());
  if (!usm) return Result<V3Message>::failure("USM: " + usm.error());
  out.usm = std::move(usm).value();

  if (out.header.msg_flags & kFlagPriv) {
    // Encrypted msgData: keep the ciphertext; snmp::decrypt_scoped_pdu
    // (usm.hpp) recovers the plaintext scoped PDU.
    auto ciphertext = r.read_octet_string();
    if (!ciphertext)
      return Result<V3Message>::failure("encrypted msgData: " +
                                        ciphertext.error());
    out.encrypted_scoped_pdu =
        Bytes(ciphertext.value().begin(), ciphertext.value().end());
    return out;
  }

  auto scoped = r.enter();
  if (!scoped) return Result<V3Message>::failure("scopedPDU: " + scoped.error());
  {
    Reader& s = scoped.value();
    auto ctx_engine = s.read_octet_string();
    if (!ctx_engine)
      return Result<V3Message>::failure("ctxEngine: " + ctx_engine.error());
    out.scoped_pdu.context_engine_id.assign(ctx_engine.value().begin(),
                                            ctx_engine.value().end());
    auto ctx_name = s.read_octet_string();
    if (!ctx_name)
      return Result<V3Message>::failure("ctxName: " + ctx_name.error());
    out.scoped_pdu.context_name.assign(ctx_name.value().begin(),
                                       ctx_name.value().end());
    auto pdu = decode_pdu(s);
    if (!pdu) return Result<V3Message>::failure("PDU: " + pdu.error());
    out.scoped_pdu.pdu = std::move(pdu).value();
  }
  return out;
}

V3Message make_discovery_request(std::int32_t msg_id, std::int32_t request_id) {
  V3Message msg;
  msg.header.msg_id = msg_id;
  msg.header.msg_max_size = 65507;
  msg.header.msg_flags = kFlagReportable;  // noAuthNoPriv, reportable
  msg.header.security_model = kSecurityModelUsm;
  // usm: everything empty/zero (Figure 2).
  msg.scoped_pdu.pdu.type = PduType::kGetRequest;
  msg.scoped_pdu.pdu.request_id = request_id;
  return msg;
}

V3Message make_discovery_report(const V3Message& request,
                                const EngineId& engine_id,
                                std::uint32_t engine_boots,
                                std::uint32_t engine_time,
                                std::uint32_t report_counter,
                                const Oid& report_oid) {
  V3Message msg;
  msg.header.msg_id = request.header.msg_id;
  msg.header.msg_max_size = 65507;
  msg.header.msg_flags = 0;  // response: not reportable, noAuthNoPriv
  msg.header.security_model = kSecurityModelUsm;
  msg.usm.authoritative_engine_id = engine_id;
  msg.usm.engine_boots = engine_boots;
  msg.usm.engine_time = engine_time;
  msg.scoped_pdu.context_engine_id = engine_id.raw();
  msg.scoped_pdu.pdu.type = PduType::kReport;
  msg.scoped_pdu.pdu.request_id = request.scoped_pdu.pdu.request_id;
  msg.scoped_pdu.pdu.bindings.push_back(
      {report_oid, VarValue::counter32(report_counter)});
  return msg;
}

Bytes V2cMessage::encode() const {
  SequenceBuilder message;
  message.add(asn1::encode_integer(kVersionV2c));
  message.add(asn1::encode_octet_string(ByteView(
      reinterpret_cast<const std::uint8_t*>(community.data()), community.size())));
  message.add(encode_pdu(pdu));
  return message.finish();
}

Result<V2cMessage> V2cMessage::decode(ByteView wire) {
  Reader outer(wire);
  auto msg = outer.enter();
  if (!msg) return Result<V2cMessage>::failure("message: " + msg.error());
  Reader& r = msg.value();
  auto version = r.read_integer();
  if (!version) return Result<V2cMessage>::failure("version: " + version.error());
  if (version.value() != kVersionV2c)
    return Result<V2cMessage>::failure("not an SNMPv2c message");
  V2cMessage out;
  auto community = r.read_octet_string();
  if (!community)
    return Result<V2cMessage>::failure("community: " + community.error());
  out.community.assign(community.value().begin(), community.value().end());
  auto pdu = decode_pdu(r);
  if (!pdu) return Result<V2cMessage>::failure("PDU: " + pdu.error());
  out.pdu = std::move(pdu).value();
  return out;
}

Result<std::int64_t> peek_version(ByteView wire) {
  Reader outer(wire);
  auto msg = outer.enter();
  if (!msg) return Result<std::int64_t>::failure(msg.error());
  return msg.value().read_integer();
}

}  // namespace snmpv3fp::snmp
