// Aliased IPv6 prefix detection (Gasser et al. [21], the hitlist-service
// preprocessing the paper relies on in §4.1.1: "we target ~364M addresses
// in non-aliased IPv6 prefixes").
//
// A /64 is *aliased* when one machine answers on every interface
// identifier — probing random IIDs inside the prefix is then meaningless
// (every probe "discovers" the same box). Detection: send discovery
// probes to a handful of pseudorandom IIDs that nobody would assign; if
// (nearly) all respond, the prefix is aliased and must be excluded from
// hitlist-style target sets.
#pragma once

#include <set>
#include <vector>

#include "net/transport.hpp"

namespace snmpv3fp::scan {

struct AliasedPrefixOptions {
  std::size_t probes_per_prefix = 4;
  // Minimum responding random IIDs to call the prefix aliased.
  std::size_t min_responses = 3;
  std::uint64_t seed = 424242;
  util::VTime response_timeout = 3 * util::kSecond;
};

// The /64 network part of an address (upper 8 bytes, big-endian).
std::uint64_t prefix64_of(const net::Ipv6& address);

struct AliasedPrefixResult {
  std::set<std::uint64_t> aliased_prefixes;  // keys per prefix64_of
  std::size_t prefixes_tested = 0;
  std::size_t probes_sent = 0;
};

// Tests the /64 of every candidate address (deduplicated) by probing
// random interface identifiers inside it.
AliasedPrefixResult detect_aliased_prefixes(
    net::Transport& transport, const net::Endpoint& source,
    const std::vector<net::IpAddress>& candidates,
    const AliasedPrefixOptions& options = {});

// Removes every candidate living in an aliased /64.
std::vector<net::IpAddress> filter_aliased(
    const std::vector<net::IpAddress>& candidates,
    const AliasedPrefixResult& detection);

}  // namespace snmpv3fp::scan
