// Two-scan campaign orchestration (paper §4.1.1).
//
// The methodology runs two Internet-wide scans days apart and keeps only
// targets that answer both consistently. This orchestrator drives both
// scans over one simulated world, applying CPE address churn in between —
// the effect the consistency filters exist to remove.
#pragma once

#include <optional>

#include "scan/prober.hpp"
#include "sim/fabric.hpp"
#include "topo/world.hpp"

namespace snmpv3fp::scan {

struct CampaignOptions {
  net::Family family = net::Family::kIpv4;
  // Explicit target list (e.g. the IPv6 hitlist). When absent, all
  // addresses of `family` assigned in either epoch are probed both times.
  std::optional<std::vector<net::IpAddress>> targets;
  util::VTime first_scan_start = 0;
  util::VTime scan_gap = 6 * util::kDay;  // paper: Apr 16-20 vs Apr 22-27
  double rate_pps = 5000.0;
  std::uint64_t seed = 99;
  sim::FabricConfig fabric;
};

struct CampaignPair {
  ScanResult scan1;
  ScanResult scan2;
  sim::FabricStats fabric_stats;
};

// Runs scan1, rebinds churning (CPE) addresses, runs scan2. Mutates the
// world's address assignments (the second epoch persists afterwards).
CampaignPair run_two_scan_campaign(topo::World& world,
                                   const CampaignOptions& options);

}  // namespace snmpv3fp::scan
