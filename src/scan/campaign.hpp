// Two-scan campaign orchestration (paper §4.1.1).
//
// The methodology runs two Internet-wide scans days apart and keeps only
// targets that answer both consistently. This orchestrator drives both
// scans over one simulated world, applying CPE address churn in between —
// the effect the consistency filters exist to remove.
#pragma once

#include <optional>

#include "obs/obs.hpp"
#include "scan/prober.hpp"
#include "sim/fabric.hpp"
#include "topo/world.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp::scan {

// Default shard count of a campaign. The shard structure (not the thread
// count) decides which per-shard fabric simulates which target, so it is
// part of the experiment configuration: changing `shards` changes RNG
// streams like changing `seed` would, while changing `parallel.threads`
// never changes any output bit.
inline constexpr std::size_t kDefaultScanShards = 8;

struct CampaignOptions {
  net::Family family = net::Family::kIpv4;
  // Explicit target list (e.g. the IPv6 hitlist). When absent, all
  // addresses of `family` assigned in either epoch are probed both times.
  std::optional<std::vector<net::IpAddress>> targets;
  util::VTime first_scan_start = 0;
  util::VTime scan_gap = 6 * util::kDay;  // paper: Apr 16-20 vs Apr 22-27
  double rate_pps = 5000.0;
  std::uint64_t seed = 99;
  sim::FabricConfig fabric;
  // Scan-layer sharding: each scan's target list is cut into `shards`
  // contiguous slices of the (globally shuffled) probe order, each driven
  // by its own Prober + Fabric, then merged in probe order.
  std::size_t shards = kDefaultScanShards;
  util::ParallelOptions parallel;
  // Execution-only observability (spans, counters, per-shard progress):
  // never changes a single output bit.
  obs::ObsOptions obs;
};

struct CampaignPair {
  ScanResult scan1;
  ScanResult scan2;
  sim::FabricStats fabric_stats;
};

// Runs scan1, rebinds churning (CPE) addresses, runs scan2. Mutates the
// world's address assignments (the second epoch persists afterwards).
CampaignPair run_two_scan_campaign(topo::World& world,
                                   const CampaignOptions& options);

}  // namespace snmpv3fp::scan
