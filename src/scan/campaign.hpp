// Two-scan campaign orchestration (paper §4.1.1).
//
// The methodology runs two Internet-wide scans days apart and keeps only
// targets that answer both consistently. This orchestrator drives both
// scans over one simulated world, applying CPE address churn in between —
// the effect the consistency filters exist to remove.
#pragma once

#include <optional>
#include <string>

#include "net/batched_udp.hpp"
#include "obs/obs.hpp"
#include "scan/checkpoint.hpp"
#include "scan/pacer.hpp"
#include "scan/prober.hpp"
#include "scan/targets.hpp"
#include "sim/fabric.hpp"
#include "topo/world.hpp"
#include "topo/world_model.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp::scan {

// Default shard count of a campaign. The shard structure (not the thread
// count) decides which per-shard fabric simulates which target, so it is
// part of the experiment configuration: changing `shards` changes RNG
// streams like changing `seed` would, while changing `parallel.threads`
// never changes any output bit.
inline constexpr std::size_t kDefaultScanShards = 8;

struct CampaignOptions {
  net::Family family = net::Family::kIpv4;
  // Explicit target list (e.g. the IPv6 hitlist). When absent, all
  // addresses of `family` assigned in either epoch are probed both times.
  std::optional<std::vector<net::IpAddress>> targets;
  // Streaming target sweep (scan/targets.hpp): probe every address of the
  // given IPv4 prefix ranges in a seeded Feistel permutation, generating
  // each target on demand instead of materializing a list. Memory stays
  // O(shards) regardless of range size — this is how census-scale
  // campaigns over a procedural world run in flat RSS. Takes precedence
  // over `targets`; IPv4 only. The permutation differs from the
  // list-mode Fisher-Yates shuffle, so spec-mode and list-mode campaigns
  // over the same address set probe in different orders (the responder
  // set is the same at zero loss).
  std::optional<TargetSpec> target_spec;
  util::VTime first_scan_start = 0;
  util::VTime scan_gap = 6 * util::kDay;  // paper: Apr 16-20 vs Apr 22-27
  double rate_pps = 5000.0;
  std::uint64_t seed = 99;
  sim::FabricConfig fabric;
  // Scan-layer sharding: each scan's target list is cut into `shards`
  // contiguous slices of the (globally shuffled) probe order, each driven
  // by its own Prober + Fabric, then merged in probe order.
  std::size_t shards = kDefaultScanShards;
  util::ParallelOptions parallel;
  // Execution-only observability (spans, counters, per-shard progress):
  // never changes a single output bit.
  obs::ObsOptions obs;
  // Adaptive rate control (scan/pacer.hpp). Off by default; when on, the
  // backoff decisions are part of the experiment configuration (they move
  // probe send times), deterministically derived from the seed.
  PacerConfig pacer;
  // Checkpoint/resume (scan/checkpoint.hpp). With `checkpoint_path` set,
  // the campaign persists per-shard progress there — between the two scans
  // always, and additionally every `checkpoint_every_n_targets` probes per
  // shard — and, on the next run with the same options and a pre-churn
  // world, resumes from the file instead of restarting. Resume output is
  // bit-identical to an uninterrupted run at any thread count. The file is
  // removed when the campaign completes. A file whose config digest does
  // not match is ignored with a warning.
  std::string checkpoint_path;
  std::size_t checkpoint_every_n_targets = 0;
  // Memory-bounded record store (store/record_store.hpp). With `store.dir`
  // set, per-shard records append to spill-to-disk stores (resident RAM
  // bounded by `store.max_resident_bytes`), the merged ScanResults come
  // back store-backed (records vector empty, use the accessors), and
  // checkpoints persist only per-shard deltas since the last boundary
  // instead of embedding every record. Results are bit-identical to the
  // in-RAM path. Default (empty dir) keeps the historical all-in-RAM
  // behavior.
  store::StoreOptions store;
  // Wire fast path (src/wire): template-stamped probes and the single-pass
  // REPORT scanner, with full-codec fallback. Execution-only knob — the
  // campaign output is bit-identical on or off; excluded from the
  // checkpoint config digest for the same reason thread count is.
  bool wire_fast_path = true;
  // Real-socket transport (net/batched_udp.hpp): when set, each shard
  // probes through its own BatchedUdpEngine opened from this config
  // instead of a sim::Fabric — batched kernel I/O end to end, usually
  // pointed at a sim::LoopbackReflector via EngineConfig::sim_peer. With
  // EngineClock::kVirtual the campaign schedule (and output) matches the
  // fabric's; with kWall the shards pace in real time: rate_pps splits
  // across shards, send offsets collapse to zero and the prober switches
  // to TokenBucketPacer. Fabric-side knobs (loss, jitter, policing) do
  // not apply — the far side of the wire decides those.
  std::optional<net::EngineConfig> net_engine;
  // AF_PACKET ring receive (net/packet_ring.hpp): with `net_engine` set
  // and this true, the campaign opens one TPACKET_V3 ring per shard in a
  // PACKET_FANOUT_HASH group and swaps each engine's receive half from
  // recvmmsg to its ring view; sends keep flowing through the UDP
  // sockets. Needs CAP_NET_RAW — when ring setup fails the campaign logs
  // a warning and falls back to recvmmsg (which itself falls back to
  // recvfrom), never errors. Execution-only knob: receive timing rides in
  // the SimFrame header and records sort by send time, so output is
  // bit-identical ring on or off — excluded from the checkpoint config
  // digest like wire_fast_path.
  bool ring_receive = false;
  // Post-send drain window handed to every shard prober. The 5 s default
  // matches ProbeConfig's and the historical schedule bit for bit; wall
  // campaigns shorten it so the tail wait is real seconds, not virtual.
  util::VTime response_timeout = 5 * util::kSecond;
  // Failure-injection hook for tests/benches: simulate a kill by stopping
  // each shard once it has crossed N checkpoint boundaries (counted across
  // both scans). 0 = never. The campaign then returns with `interrupted`
  // set and the checkpoint written.
  std::size_t abort_after_checkpoints = 0;
};

struct CampaignPair {
  ScanResult scan1;
  ScanResult scan2;
  sim::FabricStats fabric_stats;
  // Lazy-device cache behavior summed over every shard fabric (all zeros
  // for materialized worlds, whose views derive nothing). Execution-only
  // telemetry: hit rates vary with thread interleaving-independent shard
  // structure only, but play no part in any scan output.
  topo::WorldCacheStats responder_cache;
  // True when a simulated kill stopped the campaign; scan results are
  // partial and the checkpoint file holds the resumable state.
  bool interrupted = false;
  // Net-engine campaigns only: kernel I/O counters summed over every
  // shard engine (all zeros in fabric mode), and the open() failure that
  // aborted the campaign before any probe left (empty on success). A
  // nonempty net_error means both scans are empty — sockets may simply be
  // unavailable in the sandbox; callers treat it as a skip, not a crash.
  net::NetIoStats net_io;
  std::string net_error;
};

// Runs scan1, applies address churn through the model, runs scan2. The
// model's second epoch persists afterwards. When resuming past scan 1
// (checkpoint at the scan boundary or inside scan 2), the model must be
// in the same pre-churn epoch the original run started from; churn is
// re-applied deterministically.
CampaignPair run_two_scan_campaign(topo::WorldModel& model,
                                   const CampaignOptions& options);

// Materialized-world convenience wrapper: adapts `world` behind a
// MaterializedWorldModel and runs the model campaign. Mutates the world's
// address assignments (the second epoch persists afterwards). Output is
// bit-identical to what this overload produced before the model layer
// existed.
CampaignPair run_two_scan_campaign(topo::World& world,
                                   const CampaignOptions& options);

}  // namespace snmpv3fp::scan
