#include "scan/aliased_prefix.hpp"

#include <map>

#include "snmp/message.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::scan {

std::uint64_t prefix64_of(const net::Ipv6& address) {
  return util::read_be(util::ByteView(address.bytes()).first(8));
}

namespace {

net::Ipv6 random_iid_in(std::uint64_t prefix64, util::Rng& rng) {
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(prefix64 >> (8 * (7 - i)));
  // Pseudorandom interface identifier; astronomically unlikely to hit a
  // genuinely assigned address.
  for (int i = 8; i < 16; ++i)
    bytes[i] = static_cast<std::uint8_t>(rng.next());
  return net::Ipv6(bytes);
}

}  // namespace

AliasedPrefixResult detect_aliased_prefixes(
    net::Transport& transport, const net::Endpoint& source,
    const std::vector<net::IpAddress>& candidates,
    const AliasedPrefixOptions& options) {
  util::Rng rng(options.seed);
  AliasedPrefixResult result;

  // Candidate /64s, deduplicated.
  std::set<std::uint64_t> prefixes;
  for (const auto& candidate : candidates)
    if (candidate.is_v6()) prefixes.insert(prefix64_of(candidate.v6()));
  result.prefixes_tested = prefixes.size();

  // Fire all probes, remembering which prefix each random target tests.
  std::map<net::IpAddress, std::uint64_t> probe_prefix;
  std::int32_t id = 12000;
  for (const std::uint64_t prefix : prefixes) {
    for (std::size_t i = 0; i < options.probes_per_prefix; ++i) {
      const net::Ipv6 target = random_iid_in(prefix, rng);
      const std::int32_t msg_id = (++id % 30000) + 200;
      const std::int32_t request_id = (++id % 30000) + 200;
      const auto request = snmp::make_discovery_request(msg_id, request_id);
      net::Datagram probe;
      probe.source = source;
      probe.destination = {net::IpAddress(target), net::kSnmpPort};
      probe.payload = request.encode();
      probe.time = transport.now();
      transport.send(std::move(probe));
      probe_prefix[net::IpAddress(target)] = prefix;
      ++result.probes_sent;
    }
  }

  // Collect responses and count per prefix.
  transport.run_until(transport.now() + options.response_timeout);
  std::map<std::uint64_t, std::size_t> responses;
  while (auto datagram = transport.receive()) {
    const auto it = probe_prefix.find(datagram->source.address);
    if (it == probe_prefix.end()) continue;
    if (!snmp::V3Message::decode(datagram->payload).ok()) continue;
    ++responses[it->second];
    probe_prefix.erase(it);  // count each random target once
  }
  for (const auto& [prefix, count] : responses)
    if (count >= options.min_responses) result.aliased_prefixes.insert(prefix);
  return result;
}

std::vector<net::IpAddress> filter_aliased(
    const std::vector<net::IpAddress>& candidates,
    const AliasedPrefixResult& detection) {
  std::vector<net::IpAddress> out;
  out.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    if (candidate.is_v6() &&
        detection.aliased_prefixes.count(prefix64_of(candidate.v6())) > 0)
      continue;
    out.push_back(candidate);
  }
  return out;
}

}  // namespace snmpv3fp::scan
