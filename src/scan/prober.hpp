// The SNMPv3 discovery prober (the paper's ZMap role, §3.2).
//
// Sends one well-formed unauthenticated discovery packet per target at a
// paced rate in randomized order, captures REPORT responses, and matches
// them to targets by source address. Works against any net::Transport —
// the simulated fabric or (for small target lists) a real UDP socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "scan/record.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::scan {

struct ProbeConfig {
  std::string label = "scan";
  double rate_pps = 5000.0;  // paper: 5 kpps IPv4, 20 kpps IPv6
  util::VTime response_timeout = 5 * util::kSecond;  // drain after last send
  std::uint64_t seed = 1;
  bool randomize_order = true;
  // Virtual-time offset of the first probe after `start_time`. A sharded
  // campaign gives shard k an offset of (k's first global target index) x
  // the inter-probe gap, so the union of shard schedules reproduces one
  // sequential scan's global pacing exactly.
  util::VTime send_offset = 0;
};

class Prober {
 public:
  Prober(net::Transport& transport, net::Endpoint source)
      : transport_(transport), source_(std::move(source)) {}

  // Runs one campaign over `targets` starting at `start_time` (transport
  // time is advanced to it first). One probe per target, no retries.
  ScanResult run(const std::vector<net::IpAddress>& targets,
                 const ProbeConfig& config, util::VTime start_time);

 private:
  void drain(ScanResult& result,
             std::unordered_map<net::IpAddress, std::size_t>& by_source,
             const std::unordered_map<net::IpAddress, util::VTime>& sent_at);

  net::Transport& transport_;
  net::Endpoint source_;
};

}  // namespace snmpv3fp::scan
