// The SNMPv3 discovery prober (the paper's ZMap role, §3.2).
//
// Sends one well-formed unauthenticated discovery packet per target at a
// paced rate in randomized order, captures REPORT responses, and matches
// them to targets by source address. Works against any net::Transport —
// the simulated fabric or (for small target lists) a real UDP socket.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "scan/checkpoint.hpp"
#include "scan/pacer.hpp"
#include "scan/record.hpp"
#include "scan/targets.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::scan {

struct ProbeConfig {
  std::string label = "scan";
  double rate_pps = 5000.0;  // paper: 5 kpps IPv4, 20 kpps IPv6
  util::VTime response_timeout = 5 * util::kSecond;  // drain after last send
  std::uint64_t seed = 1;
  bool randomize_order = true;
  // Virtual-time offset of the first probe after `start_time`. A sharded
  // campaign gives shard k an offset of (k's first global target index) x
  // the inter-probe gap, so the union of shard schedules reproduces one
  // sequential scan's global pacing exactly.
  util::VTime send_offset = 0;
  // Adaptive rate control (off by default: fixed-gap pacing, bit-identical
  // to the historical schedule).
  PacerConfig pacer;
  // Wall-clock mode: schedule with TokenBucketPacer (burst-granularity
  // releases sized for the batched kernel transport) instead of the
  // fixed-gap virtual schedule. Only meaningful on transports whose now()
  // is a real clock; virtual campaigns leave it off.
  bool wall_pacing = false;
  // Checkpoint hook: after every `checkpoint_every_n_targets` probes the
  // prober snapshots its state (cursor, RNG, pacer, partial records,
  // outstanding send times — the transport/fabric part is the caller's to
  // add) and invokes `on_checkpoint`. Returning false aborts the run (a
  // simulated kill); the partial return value is then superseded by the
  // captured state.
  std::size_t checkpoint_every_n_targets = 0;
  std::function<bool(ShardScanState&)> on_checkpoint;
  // Resume from a prior shard snapshot. The caller must have restored the
  // transport (sim::Fabric::restore) to the snapshot's fabric state; the
  // prober restores everything else and continues bit-identically.
  const ShardScanState* resume = nullptr;
  // Memory-bounded collection: when set, records append to this store
  // instead of growing ScanResult::records (which stays empty; the caller
  // attaches the store to the result). On resume the sink must already
  // hold the snapshot's records (store::RecordStore::restore).
  store::RecordStore* sink = nullptr;
  // Wire fast path (src/wire): probes are stamped from a precomputed
  // template into a reusable buffer and responses go through the
  // single-pass REPORT scanner, falling back to the full codec on any
  // structural surprise. Execution-only knob: the scan output is
  // bit-identical on or off (tests/test_wire.cpp enforces it at 1/2/8
  // threads).
  bool wire_fast_path = true;
  // Decode/encode path counters (default handles are no-ops): how many
  // responses the fast scanner handled vs deferred to the full decoder,
  // and how many probes were template-stamped vs fully encoded. A nonzero
  // fallback count on a clean corpus means the fast parser's accept set
  // regressed (scripts/check.sh gates on it via bench_wire).
  obs::Counter wire_fast_parses;
  obs::Counter wire_parse_fallbacks;
  obs::Counter wire_stamped_probes;
  obs::Counter wire_full_encodes;
  // Live telemetry bundle (obs/obs.hpp): timeline ticks, flight-recorder
  // events, status-slot updates and the probe-RTT histogram, all recorded
  // from the probe loop. Default-constructed members are permanent no-ops
  // (a couple of null checks per probe); everything behind them is
  // execution-only by the obs contract.
  obs::ShardTelemetry telemetry;
  // Outstanding-probe horizon: when nonzero, send times older than this are
  // forgotten (no response can still be matched to them). Bounds the
  // sent_at working set to rate x horizon entries — constant over the sweep
  // size — which streaming (generator-fed) census campaigns need; 0 keeps
  // the historical retain-everything behavior bit-identically. Responses
  // arriving later than the horizon after their probe lose only their RTT
  // annotation (send_time stays 0), so size it past the transport's
  // worst-case round trip.
  util::VTime sent_horizon = 0;
};

class Prober {
 public:
  Prober(net::Transport& transport, net::Endpoint source)
      : transport_(transport), source_(std::move(source)) {}

  // Runs one campaign over `targets` starting at `start_time` (transport
  // time is advanced to it first). One probe per target, no retries. The
  // span is only copied when `randomize_order` needs a mutable shuffle —
  // sharded campaigns pass pre-shuffled views straight into the slices.
  ScanResult run(std::span<const net::IpAddress> targets,
                 const ProbeConfig& config, util::VTime start_time);

  // Runs over any TargetSequence (e.g. a GeneratorSlice of a permuted
  // prefix sweep). No shuffle is applied — generated sequences are already
  // permuted positionally — so `randomize_order` is ignored.
  ScanResult run(const TargetSequence& targets, const ProbeConfig& config,
                 util::VTime start_time);

 private:
  // A responsive source we already hold a record for: its position (in
  // ScanResult::records or the sink store) and, for sink mode, a copy of
  // its primary engine ID (sealed store records are not random-access, so
  // the duplicate-engine comparison needs the copy).
  struct SourceEntry {
    std::size_t index = 0;
    snmp::EngineId engine;
  };

  // Response-path decode state for one run: the fast-path switch plus the
  // path counters (copied out of ProbeConfig so drain can bump them).
  struct WireState {
    bool enabled = true;
    obs::Counter fast_parses;
    obs::Counter fallbacks;
  };

  // Drains matured responses into `result` (or `sink`); returns the number
  // of NEW records (first responses), the signal the adaptive pacer
  // watches.
  std::size_t drain(
      ScanResult& result, store::RecordStore* sink,
      std::unordered_map<net::IpAddress, SourceEntry>& by_source,
      const std::unordered_map<net::IpAddress, util::VTime>& sent_at,
      WireState& wire, obs::ShardTelemetry& telemetry);

  // Shared probe loop. `rng` belongs to the caller because the span
  // overload's shuffle must consume draws from the same stream that later
  // produces the message ids (bit-compatibility with historical runs).
  ScanResult run_impl(const TargetSequence& order, const ProbeConfig& config,
                      util::VTime start_time, util::Rng& rng);

  net::Transport& transport_;
  net::Endpoint source_;
};

}  // namespace snmpv3fp::scan
