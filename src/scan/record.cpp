#include "scan/record.hpp"

#include <algorithm>

#include "store/record_store.hpp"

namespace snmpv3fp::scan {

std::size_t ScanResult::responsive() const {
  return store != nullptr ? store->size() : records.size();
}

util::Status ScanResult::for_each_record(
    const std::function<void(const ScanRecord&)>& fn) const {
  if (store != nullptr)
    return store->for_each(
        [&fn](const ScanRecord& record, std::size_t) { fn(record); });
  for (const auto& record : records) fn(record);
  return {};
}

std::vector<ScanRecord> ScanResult::materialize_records() const {
  if (store != nullptr) return store->materialize();
  return records;
}

const std::unordered_map<net::IpAddress, std::size_t>&
ScanResult::by_target() const {
  if (by_target_cache_ == nullptr ||
      by_target_cache_->records_size != records.size()) {
    auto cache = std::make_shared<TargetIndex>();
    cache->records_size = records.size();
    cache->map.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
      cache->map.emplace(records[i].target, i);
    by_target_cache_ = std::move(cache);
  }
  return by_target_cache_->map;
}

std::size_t ScanResult::unique_engine_ids() const {
  if (store != nullptr) {
    // Streaming variant: copies the (non-empty) IDs, not the records.
    std::vector<snmp::EngineId> ids;
    ids.reserve(store->size());
    (void)store->for_each([&ids](const ScanRecord& r, std::size_t) {
      if (!r.engine_id.empty()) ids.push_back(r.engine_id);
    });
    std::sort(ids.begin(), ids.end());
    const auto end = std::unique(ids.begin(), ids.end());
    return static_cast<std::size_t>(end - ids.begin());
  }
  std::vector<const snmp::EngineId*> ids;
  ids.reserve(records.size());
  for (const auto& r : records)
    if (!r.engine_id.empty()) ids.push_back(&r.engine_id);
  std::sort(ids.begin(), ids.end(),
            [](const auto* a, const auto* b) { return a->raw() < b->raw(); });
  const auto end = std::unique(ids.begin(), ids.end(),
                               [](const auto* a, const auto* b) {
                                 return a->raw() == b->raw();
                               });
  return static_cast<std::size_t>(end - ids.begin());
}

}  // namespace snmpv3fp::scan
