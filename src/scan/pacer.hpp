// Adaptive probe pacing (MIDAR-style staged rate control).
//
// The prober's fixed 1/rate gap assumes a fabric that never pushes back.
// Real control planes police SNMP traffic: when a scan overruns a device's
// budget, responses collapse and the naive scanner burns its probe budget
// on silence. The pacer watches the per-window response rate and backs the
// shard's rate off (multiplicative, with deterministic jitter so shards
// desynchronize) when the rate collapses relative to the learned baseline,
// then recovers multiplicatively toward the configured target once
// responses return.
//
// Determinism contract: with `adaptive` off (the default) the pacer is a
// pure fixed-gap scheduler — it consumes NO rng draws and reproduces the
// historical schedule bit-for-bit. With `adaptive` on, every decision is a
// function of virtual-time observations and the shard's own Rng, so a
// backed-off campaign is exactly as reproducible as a fixed-rate one.
// PacerState round-trips through the campaign checkpoint.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::scan {

struct PacerConfig {
  bool adaptive = false;
  double min_rate_pps = 100.0;      // backoff floor
  double backoff_factor = 0.5;      // rate multiplier per backoff event
  double recover_factor = 1.25;     // rate multiplier per healthy window
  std::size_t window_probes = 64;   // probes per evaluation window
  // A window whose response rate falls below this fraction of the learned
  // baseline triggers a backoff.
  double collapse_threshold = 0.5;
  // Extra virtual-time delay added per backoff, jittered uniformly in
  // [0, max_backoff_jitter] by the shard Rng.
  util::VTime max_backoff_jitter = 50 * util::kMillisecond;
  // Explicit rate-limit signals (net::Transport::rate_limit_signals
  // deltas, fed by the prober per drain). A window that saw at least
  // `rate_limit_signal_threshold` signals backs off immediately — even
  // before a response-rate baseline is learned — which converges much
  // faster than rate inference alone. Only consulted when `adaptive` is
  // set; with no signals the schedule is unchanged.
  bool use_rate_limit_signals = true;
  std::size_t rate_limit_signal_threshold = 1;
  // TokenBucketPacer only: probes released back-to-back before the bucket
  // empties and the sender must wait. Burst-granularity pacing is what
  // lets the batched kernel transport fill whole sendmmsg batches instead
  // of flushing one datagram per sub-millisecond sleep; the long-run rate
  // is unchanged.
  std::size_t burst_probes = 64;
};

// Serializable pacer state (doubles travel as IEEE bit patterns in the
// checkpoint codec so resume is exact).
struct PacerState {
  double rate_pps = 0.0;                 // current send rate
  double baseline_response_rate = -1.0;  // EWMA; < 0 = not yet learned
  std::size_t window_sent = 0;
  std::size_t window_responses = 0;
  std::size_t backoffs = 0;              // total backoff events
  util::VTime backoff_wait = 0;          // total jitter delay inserted
  std::size_t window_rate_limit_signals = 0;
  std::size_t rate_limit_signals = 0;    // total signals observed
};

class AdaptivePacer {
 public:
  // `rng` must outlive the pacer; it is only drawn from when `adaptive`
  // is set and a backoff fires.
  AdaptivePacer(double target_rate_pps, const PacerConfig& config,
                util::Rng& rng);

  // Returns the send time of the probe after one sent at `previous`.
  util::VTime schedule_after(util::VTime previous);

  // Window accounting, fed by the prober per probe / per drained response.
  void on_probe_sent();
  void on_responses(std::size_t count);
  // Explicit rate-limit signals observed since the last drain (the
  // transport counter delta). Pure accounting in fixed mode.
  void on_rate_limit_signals(std::size_t count);

  const PacerState& state() const { return state_; }
  void restore(const PacerState& state);

 private:
  util::VTime gap() const;
  // Closes a full window: returns the jitter delay to apply (0 unless a
  // backoff fired).
  util::VTime evaluate_window();

  double target_rate_pps_;
  PacerConfig config_;
  util::Rng& rng_;
  PacerState state_;
};

// Wall-clock pacing for the real-socket transport. A fixed 1/rate gap
// forces one sub-millisecond sleep per probe, which flushes the kernel
// batch at size one and defeats sendmmsg entirely; the token bucket
// instead releases probes back-to-back while tokens last (at most
// `PacerConfig::burst_probes`), then waits once per burst, preserving the
// long-run rate at batch-friendly granularity.
//
// Rate control mirrors AdaptivePacer's window state machine — baseline
// learning, collapse detection, explicit rate-limit signals
// (net::BatchedUdpEngine reports kernel backpressure and ICMP refusals
// through Transport::rate_limit_signals), multiplicative backoff/recovery
// — but adds no rng jitter: wall schedules are not reproducible anyway,
// and shards desynchronize naturally. State round-trips through the same
// PacerState as AdaptivePacer, so campaign checkpoints carry either.
//
// The clock is whatever the caller passes as `now` — the prober feeds
// transport time, tests feed a fake clock — so every decision is unit-
// testable without sleeping (tests/test_net_engine.cpp).
class TokenBucketPacer {
 public:
  TokenBucketPacer(double target_rate_pps, const PacerConfig& config);

  // Earliest time the next probe may leave: `now` while the bucket holds
  // a token, else when the refill earns one. Monotonic in `now`.
  util::VTime next_send_time(util::VTime now);

  // Window accounting, fed exactly like AdaptivePacer's.
  void on_probe_sent(util::VTime now);
  void on_responses(std::size_t count);
  void on_rate_limit_signals(std::size_t count);

  const PacerState& state() const { return state_; }
  void restore(const PacerState& state);

 private:
  void refill(util::VTime now);
  void evaluate_window();

  double target_rate_pps_;
  PacerConfig config_;
  PacerState state_;
  double tokens_ = 0.0;
  util::VTime last_refill_ = 0;
  bool primed_ = false;
};

}  // namespace snmpv3fp::scan
