// Scan campaign results.
//
// A ScanRecord is one responsive target of one campaign: the raw SNMPv3
// engine fields plus timing. The derived last-reboot time (receive time
// minus engine time, paper §2.3) is computed here once and reused by the
// filters and the alias resolver.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "snmp/engine_id.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::scan {

struct ScanRecord {
  net::IpAddress target;
  snmp::EngineId engine_id;          // may be empty (missing)
  std::uint32_t engine_boots = 0;
  std::uint32_t engine_time = 0;     // seconds since engine boot
  util::VTime send_time = 0;
  util::VTime receive_time = 0;      // first response
  std::size_t response_count = 0;    // >1 = duplicated/amplified
  std::size_t response_bytes = 0;    // size of the first response payload
  // Engines other than `engine_id` seen at this address within THIS scan
  // (load balancers / anycast VIPs rotate backends per request).
  std::vector<snmp::EngineId> extra_engines;

  // Derived: when the SNMP engine last rebooted, on the prober's clock.
  util::VTime last_reboot() const {
    return receive_time -
           static_cast<util::VTime>(engine_time) * util::kSecond;
  }
};

struct ScanResult {
  std::string label;
  util::VTime start_time = 0;
  util::VTime end_time = 0;
  std::size_t targets_probed = 0;
  std::size_t probe_bytes = 0;  // payload size of one probe
  // Robustness accounting: datagrams that reached the prober but failed
  // SNMPv3 decode (corrupted/hostile bytes), and adaptive-pacer backoff
  // events (scan/pacer.hpp). Both zero on a clean fixed-rate scan.
  std::size_t undecodable_responses = 0;
  std::size_t pacer_backoffs = 0;
  std::vector<ScanRecord> records;  // responsive targets only

  std::size_t responsive() const { return records.size(); }

  // Index from target address to record position, for joining two scans.
  std::unordered_map<net::IpAddress, std::size_t> index() const {
    std::unordered_map<net::IpAddress, std::size_t> map;
    map.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
      map.emplace(records[i].target, i);
    return map;
  }

  std::size_t unique_engine_ids() const;
};

}  // namespace snmpv3fp::scan
