// Scan campaign results.
//
// A ScanRecord is one responsive target of one campaign: the raw SNMPv3
// engine fields plus timing. The derived last-reboot time (receive time
// minus engine time, paper §2.3) is computed here once and reused by the
// filters and the alias resolver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "snmp/engine_id.hpp"
#include "util/result.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::store {
class RecordStore;
}

namespace snmpv3fp::scan {

struct ScanRecord {
  net::IpAddress target;
  snmp::EngineId engine_id;          // may be empty (missing)
  std::uint32_t engine_boots = 0;
  std::uint32_t engine_time = 0;     // seconds since engine boot
  util::VTime send_time = 0;
  util::VTime receive_time = 0;      // first response
  std::size_t response_count = 0;    // >1 = duplicated/amplified
  std::size_t response_bytes = 0;    // size of the first response payload
  // Engines other than `engine_id` seen at this address within THIS scan
  // (load balancers / anycast VIPs rotate backends per request).
  std::vector<snmp::EngineId> extra_engines;

  // Derived: when the SNMP engine last rebooted, on the prober's clock.
  util::VTime last_reboot() const {
    return receive_time -
           static_cast<util::VTime>(engine_time) * util::kSecond;
  }
};

struct ScanResult {
  std::string label;
  util::VTime start_time = 0;
  util::VTime end_time = 0;
  std::size_t targets_probed = 0;
  std::size_t probe_bytes = 0;  // payload size of one probe
  // Robustness accounting: datagrams that reached the prober but failed
  // SNMPv3 decode (corrupted/hostile bytes), and adaptive-pacer backoff
  // events (scan/pacer.hpp). Both zero on a clean fixed-rate scan.
  std::size_t undecodable_responses = 0;
  std::size_t pacer_backoffs = 0;
  // Responsive targets only. A store-backed result (store non-null, the
  // memory-bounded campaign path) keeps the records in `store` and leaves
  // this vector empty; the accessors below serve both representations.
  std::vector<ScanRecord> records;
  std::shared_ptr<store::RecordStore> store;

  bool store_backed() const { return store != nullptr; }
  std::size_t responsive() const;

  // Applies `fn` to every record in order; fails closed when a store
  // block is damaged (always ok for in-RAM results).
  util::Status for_each_record(
      const std::function<void(const ScanRecord&)>& fn) const;

  // Copies all records into a vector (tests and small-scale callers; a
  // store-backed census-scale result defeats the purpose here).
  std::vector<ScanRecord> materialize_records() const;

  // Index from target address to position in `records`, for joining two
  // scans. Memoized: built once per scan pass and reused until the record
  // count changes (the filter pipeline used to rebuild it on every call).
  // Not thread-safe — build it on the owning thread before sharing, and
  // never call it on a store-backed result (the streaming merge join
  // replaces it there).
  const std::unordered_map<net::IpAddress, std::size_t>& by_target() const;

  std::size_t unique_engine_ids() const;

 private:
  struct TargetIndex {
    std::size_t records_size = 0;
    std::unordered_map<net::IpAddress, std::size_t> map;
  };
  mutable std::shared_ptr<const TargetIndex> by_target_cache_;
};

}  // namespace snmpv3fp::scan
