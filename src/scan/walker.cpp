#include "scan/walker.hpp"

#include <algorithm>

namespace snmpv3fp::scan {

bool oid_in_subtree(const asn1::Oid& root, const asn1::Oid& oid) {
  return oid.size() >= root.size() &&
         std::equal(root.begin(), root.end(), oid.begin());
}

std::vector<snmp::VarBind> snmp_walk(net::Transport& transport,
                                     const net::Endpoint& source,
                                     const net::Endpoint& agent,
                                     const WalkOptions& options) {
  std::vector<snmp::VarBind> out;
  asn1::Oid cursor = options.root;
  std::int32_t request_id = 7000;

  while (out.size() < options.max_entries) {
    snmp::V2cMessage request;
    request.community = options.community;
    request.pdu.type = snmp::PduType::kGetNextRequest;
    request.pdu.request_id = ++request_id;
    request.pdu.bindings = {{cursor, snmp::VarValue::null()}};

    net::Datagram probe;
    probe.source = source;
    probe.destination = agent;
    probe.payload = request.encode();
    probe.time = transport.now();
    transport.send(std::move(probe));

    const util::VTime deadline = transport.now() + options.per_request_timeout;
    std::optional<net::Datagram> reply;
    while (!reply.has_value() && transport.now() < deadline) {
      transport.run_until(
          std::min<util::VTime>(deadline,
                                transport.now() + 50 * util::kMillisecond));
      while (auto datagram = transport.receive()) {
        if (datagram->source == agent) {
          reply = std::move(datagram);
          break;
        }
      }
    }
    if (!reply.has_value()) break;  // agent vanished / timeout

    const auto response = snmp::V2cMessage::decode(reply->payload);
    if (!response.ok() || response.value().pdu.bindings.empty()) break;
    const auto& binding = response.value().pdu.bindings.front();
    if (binding.value.is_null()) break;  // endOfMibView simplification
    if (!oid_in_subtree(options.root, binding.oid)) break;  // left the subtree
    if (binding.oid == cursor) break;  // agent not advancing: bail out
    out.push_back(binding);
    cursor = binding.oid;
  }
  return out;
}

}  // namespace snmpv3fp::scan
