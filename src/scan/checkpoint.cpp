#include "scan/checkpoint.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"
#include "obs/log.hpp"

namespace snmpv3fp::scan {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

// 64-bit words (RNG state, IEEE bit patterns) travel as hex strings: JSON
// numbers round-trip only 53 bits through the parser's double.
std::string u64_hex(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

std::uint64_t parse_u64_hex(const JsonValue* value) {
  if (value == nullptr || value->kind() != JsonValue::Kind::kString) return 0;
  return std::strtoull(value->as_string().c_str(), nullptr, 16);
}

std::uint64_t get_u64(const JsonValue& parent, std::string_view name) {
  const auto* value = parent.find(name);
  if (value == nullptr) return 0;
  return static_cast<std::uint64_t>(value->as_number());
}

std::int64_t get_i64(const JsonValue& parent, std::string_view name) {
  const auto* value = parent.find(name);
  if (value == nullptr) return 0;
  return static_cast<std::int64_t>(value->as_number());
}

std::string get_string(const JsonValue& parent, std::string_view name) {
  const auto* value = parent.find(name);
  if (value == nullptr) return {};
  return value->as_string();
}

// ---- RngState ----

void write_rng(JsonWriter& json, const util::RngState& state) {
  json.begin_object();
  json.key("words").begin_array();
  for (const auto word : state.words) json.value(u64_hex(word));
  json.end_array();
  json.kv("have_spare", state.have_spare_normal);
  json.kv("spare_bits", u64_hex(state.spare_normal_bits));
  json.end_object();
}

util::RngState read_rng(const JsonValue& value) {
  util::RngState state;
  if (const auto* words = value.find("words");
      words != nullptr && words->is_array())
    for (std::size_t i = 0; i < words->items().size() && i < 4; ++i)
      state.words[i] = parse_u64_hex(&words->items()[i]);
  if (const auto* spare = value.find("have_spare"))
    state.have_spare_normal = spare->as_bool();
  state.spare_normal_bits = parse_u64_hex(value.find("spare_bits"));
  return state;
}

// ---- PacerState ----

void write_pacer(JsonWriter& json, const PacerState& state) {
  json.begin_object();
  json.kv("rate_bits", u64_hex(std::bit_cast<std::uint64_t>(state.rate_pps)));
  json.kv("baseline_bits",
          u64_hex(std::bit_cast<std::uint64_t>(state.baseline_response_rate)));
  json.kv("window_sent", static_cast<std::uint64_t>(state.window_sent));
  json.kv("window_responses",
          static_cast<std::uint64_t>(state.window_responses));
  json.kv("backoffs", static_cast<std::uint64_t>(state.backoffs));
  json.kv("backoff_wait", static_cast<std::int64_t>(state.backoff_wait));
  json.kv("window_signals",
          static_cast<std::uint64_t>(state.window_rate_limit_signals));
  json.kv("signals", static_cast<std::uint64_t>(state.rate_limit_signals));
  json.end_object();
}

PacerState read_pacer(const JsonValue& value) {
  PacerState state;
  state.rate_pps = std::bit_cast<double>(parse_u64_hex(value.find("rate_bits")));
  state.baseline_response_rate =
      std::bit_cast<double>(parse_u64_hex(value.find("baseline_bits")));
  state.window_sent = get_u64(value, "window_sent");
  state.window_responses = get_u64(value, "window_responses");
  state.backoffs = get_u64(value, "backoffs");
  state.backoff_wait = get_i64(value, "backoff_wait");
  state.window_rate_limit_signals = get_u64(value, "window_signals");
  state.rate_limit_signals = get_u64(value, "signals");
  return state;
}

// ---- ScanResult ----

void write_scan_result(JsonWriter& json, const ScanResult& result) {
  json.begin_object();
  json.kv("label", result.label);
  json.kv("start_time", static_cast<std::int64_t>(result.start_time));
  json.kv("end_time", static_cast<std::int64_t>(result.end_time));
  json.kv("targets_probed", static_cast<std::uint64_t>(result.targets_probed));
  json.kv("probe_bytes", static_cast<std::uint64_t>(result.probe_bytes));
  json.kv("undecodable_responses",
          static_cast<std::uint64_t>(result.undecodable_responses));
  json.kv("pacer_backoffs",
          static_cast<std::uint64_t>(result.pacer_backoffs));
  json.key("records").begin_array();
  for (const auto& record : result.records) {
    json.begin_object();
    json.kv("target", record.target.to_string());
    json.kv("engine_id", record.engine_id.to_hex());
    json.kv("boots", std::uint64_t{record.engine_boots});
    json.kv("engine_time", std::uint64_t{record.engine_time});
    json.kv("send_time", static_cast<std::int64_t>(record.send_time));
    json.kv("receive_time", static_cast<std::int64_t>(record.receive_time));
    json.kv("response_count",
            static_cast<std::uint64_t>(record.response_count));
    json.kv("response_bytes",
            static_cast<std::uint64_t>(record.response_bytes));
    if (!record.extra_engines.empty()) {
      json.key("extra_engines").begin_array();
      for (const auto& engine : record.extra_engines)
        json.value(engine.to_hex());
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

snmp::EngineId engine_from_hex(const std::string& hex) {
  auto bytes = util::from_hex(hex);
  if (!bytes) return {};
  return snmp::EngineId(std::move(bytes.value()));
}

ScanResult read_scan_result(const JsonValue& value) {
  ScanResult result;
  result.label = get_string(value, "label");
  result.start_time = get_i64(value, "start_time");
  result.end_time = get_i64(value, "end_time");
  result.targets_probed = get_u64(value, "targets_probed");
  result.probe_bytes = get_u64(value, "probe_bytes");
  result.undecodable_responses = get_u64(value, "undecodable_responses");
  result.pacer_backoffs = get_u64(value, "pacer_backoffs");
  if (const auto* records = value.find("records");
      records != nullptr && records->is_array()) {
    result.records.reserve(records->items().size());
    for (const auto& item : records->items()) {
      ScanRecord record;
      if (const auto address = net::IpAddress::parse(get_string(item, "target")))
        record.target = address.value();
      record.engine_id = engine_from_hex(get_string(item, "engine_id"));
      record.engine_boots = static_cast<std::uint32_t>(get_u64(item, "boots"));
      record.engine_time =
          static_cast<std::uint32_t>(get_u64(item, "engine_time"));
      record.send_time = get_i64(item, "send_time");
      record.receive_time = get_i64(item, "receive_time");
      record.response_count = get_u64(item, "response_count");
      record.response_bytes = get_u64(item, "response_bytes");
      if (const auto* extras = item.find("extra_engines");
          extras != nullptr && extras->is_array())
        for (const auto& extra : extras->items())
          record.extra_engines.push_back(engine_from_hex(extra.as_string()));
      result.records.push_back(std::move(record));
    }
  }
  return result;
}

// ---- FabricState ----

void write_datagram(JsonWriter& json, const net::Datagram& datagram) {
  json.begin_object();
  json.kv("src", datagram.source.address.to_string());
  json.kv("sport", std::uint64_t{datagram.source.port});
  json.kv("dst", datagram.destination.address.to_string());
  json.kv("dport", std::uint64_t{datagram.destination.port});
  json.kv("time", static_cast<std::int64_t>(datagram.time));
  json.kv("payload", util::to_hex(datagram.payload));
  json.end_object();
}

net::Datagram read_datagram(const JsonValue& value) {
  net::Datagram datagram;
  if (const auto address = net::IpAddress::parse(get_string(value, "src")))
    datagram.source.address = address.value();
  datagram.source.port = static_cast<std::uint16_t>(get_u64(value, "sport"));
  if (const auto address = net::IpAddress::parse(get_string(value, "dst")))
    datagram.destination.address = address.value();
  datagram.destination.port =
      static_cast<std::uint16_t>(get_u64(value, "dport"));
  datagram.time = get_i64(value, "time");
  if (auto payload = util::from_hex(get_string(value, "payload")))
    datagram.payload = std::move(payload.value());
  return datagram;
}

void write_fabric_state(JsonWriter& json, const sim::FabricState& state) {
  json.begin_object();
  json.kv("clock", static_cast<std::int64_t>(state.clock));
  json.key("rng");
  write_rng(json, state.rng);
  json.key("stats").begin_object();
  json.kv("sent", static_cast<std::uint64_t>(state.stats.datagrams_sent));
  json.kv("delivered",
          static_cast<std::uint64_t>(state.stats.datagrams_delivered));
  json.kv("generated",
          static_cast<std::uint64_t>(state.stats.responses_generated));
  json.kv("received",
          static_cast<std::uint64_t>(state.stats.responses_received));
  json.kv("probes_lost", static_cast<std::uint64_t>(state.stats.probes_lost));
  json.kv("probes_dead", static_cast<std::uint64_t>(state.stats.probes_dead));
  json.kv("probes_filtered",
          static_cast<std::uint64_t>(state.stats.probes_filtered));
  json.kv("probes_rate_limited",
          static_cast<std::uint64_t>(state.stats.probes_rate_limited));
  json.kv("responses_lost",
          static_cast<std::uint64_t>(state.stats.responses_lost));
  json.kv("responses_duplicated",
          static_cast<std::uint64_t>(state.stats.responses_duplicated));
  json.kv("probes_corrupted",
          static_cast<std::uint64_t>(state.stats.probes_corrupted));
  json.kv("responses_corrupted",
          static_cast<std::uint64_t>(state.stats.responses_corrupted));
  json.end_object();
  json.key("in_flight").begin_array();
  for (const auto& datagram : state.in_flight) write_datagram(json, datagram);
  json.end_array();
  json.key("inbox").begin_array();
  for (const auto& datagram : state.inbox) write_datagram(json, datagram);
  json.end_array();
  json.key("rate_windows").begin_array();
  for (const auto& window : state.rate_windows) {
    json.begin_object();
    json.kv("device", std::uint64_t{window.device});
    json.kv("window_start", static_cast<std::int64_t>(window.window_start));
    json.kv("count", static_cast<std::uint64_t>(window.count));
    json.end_object();
  }
  json.end_array();
  // Lazy-world responder cache, MRU first (empty for materialized worlds;
  // older checkpoints without the key restore to a cold cache).
  json.key("responder_cache").begin_array();
  for (const auto& address : state.responder_cache)
    json.value(address.to_string());
  json.end_array();
  json.end_object();
}

sim::FabricState read_fabric_state(const JsonValue& value) {
  sim::FabricState state;
  state.clock = get_i64(value, "clock");
  if (const auto* rng = value.find("rng")) state.rng = read_rng(*rng);
  if (const auto* stats = value.find("stats")) {
    state.stats.datagrams_sent = get_u64(*stats, "sent");
    state.stats.datagrams_delivered = get_u64(*stats, "delivered");
    state.stats.responses_generated = get_u64(*stats, "generated");
    state.stats.responses_received = get_u64(*stats, "received");
    state.stats.probes_lost = get_u64(*stats, "probes_lost");
    state.stats.probes_dead = get_u64(*stats, "probes_dead");
    state.stats.probes_filtered = get_u64(*stats, "probes_filtered");
    state.stats.probes_rate_limited = get_u64(*stats, "probes_rate_limited");
    state.stats.responses_lost = get_u64(*stats, "responses_lost");
    state.stats.responses_duplicated = get_u64(*stats, "responses_duplicated");
    state.stats.probes_corrupted = get_u64(*stats, "probes_corrupted");
    state.stats.responses_corrupted = get_u64(*stats, "responses_corrupted");
  }
  if (const auto* in_flight = value.find("in_flight");
      in_flight != nullptr && in_flight->is_array())
    for (const auto& item : in_flight->items())
      state.in_flight.push_back(read_datagram(item));
  if (const auto* inbox = value.find("inbox");
      inbox != nullptr && inbox->is_array())
    for (const auto& item : inbox->items())
      state.inbox.push_back(read_datagram(item));
  if (const auto* windows = value.find("rate_windows");
      windows != nullptr && windows->is_array())
    for (const auto& item : windows->items())
      state.rate_windows.push_back(
          {static_cast<std::uint32_t>(get_u64(item, "device")),
           get_i64(item, "window_start"), get_u64(item, "count")});
  if (const auto* cache = value.find("responder_cache");
      cache != nullptr && cache->is_array())
    for (const auto& item : cache->items())
      if (const auto address = net::IpAddress::parse(item.as_string()))
        state.responder_cache.push_back(address.value());
  return state;
}

// ---- ShardScanState ----

void write_shard_state(JsonWriter& json, const ShardScanState& state) {
  json.begin_object();
  json.kv("shard", static_cast<std::uint64_t>(state.shard));
  json.kv("cursor", static_cast<std::uint64_t>(state.cursor));
  json.kv("complete", state.complete);
  json.kv("next_send", static_cast<std::int64_t>(state.next_send));
  json.key("rng");
  write_rng(json, state.rng);
  json.key("pacer");
  write_pacer(json, state.pacer);
  json.key("partial");
  write_scan_result(json, state.partial);
  json.key("sent_at").begin_array();
  for (const auto& [address, time] : state.sent_at) {
    json.begin_object();
    json.kv("target", address.to_string());
    json.kv("time", static_cast<std::int64_t>(time));
    json.end_object();
  }
  json.end_array();
  json.key("fabric");
  write_fabric_state(json, state.fabric);
  if (state.store_manifest.has_value()) {
    std::string manifest;
    store::write_manifest_json(manifest, *state.store_manifest);
    json.key("store").raw(manifest);
  }
  json.end_object();
}

ShardScanState read_shard_state(const JsonValue& value) {
  ShardScanState state;
  state.shard = get_u64(value, "shard");
  state.cursor = get_u64(value, "cursor");
  if (const auto* complete = value.find("complete"))
    state.complete = complete->as_bool();
  state.next_send = get_i64(value, "next_send");
  if (const auto* rng = value.find("rng")) state.rng = read_rng(*rng);
  if (const auto* pacer = value.find("pacer"))
    state.pacer = read_pacer(*pacer);
  if (const auto* partial = value.find("partial"))
    state.partial = read_scan_result(*partial);
  if (const auto* sent = value.find("sent_at");
      sent != nullptr && sent->is_array())
    for (const auto& item : sent->items()) {
      const auto address = net::IpAddress::parse(get_string(item, "target"));
      if (address) state.sent_at.emplace_back(address.value(),
                                              get_i64(item, "time"));
    }
  if (const auto* fabric = value.find("fabric"))
    state.fabric = read_fabric_state(*fabric);
  if (const auto* manifest = value.find("store"))
    state.store_manifest = store::read_manifest_json(*manifest);
  return state;
}

}  // namespace

std::string CampaignCheckpoint::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.kv("schema", kSchema);
  json.kv("config_digest", u64_hex(config_digest));
  json.kv("scan_index", static_cast<std::uint64_t>(scan_index));
  if (scan1.has_value()) {
    json.key("scan1");
    write_scan_result(json, *scan1);
  }
  if (scan1_manifest.has_value()) {
    std::string manifest;
    store::write_manifest_json(manifest, *scan1_manifest);
    json.key("scan1_store").raw(manifest);
  }
  json.key("shard_states").begin_array();
  for (const auto& state : shard_states) write_shard_state(json, state);
  json.end_array();
  json.key("scan_boundary_fabrics").begin_array();
  for (const auto& state : scan_boundary_fabrics)
    write_fabric_state(json, state);
  json.end_array();
  json.end_object();
  return json.str();
}

std::optional<CampaignCheckpoint> CampaignCheckpoint::from_json(
    std::string_view text) {
  const auto root = JsonValue::parse(text);
  if (!root.has_value() || !root->is_object()) return std::nullopt;
  if (get_u64(*root, "schema") != kSchema) return std::nullopt;
  CampaignCheckpoint checkpoint;
  checkpoint.config_digest = parse_u64_hex(root->find("config_digest"));
  checkpoint.scan_index = get_u64(*root, "scan_index");
  if (const auto* scan1 = root->find("scan1"))
    checkpoint.scan1 = read_scan_result(*scan1);
  if (const auto* manifest = root->find("scan1_store"))
    checkpoint.scan1_manifest = store::read_manifest_json(*manifest);
  if (const auto* shards = root->find("shard_states");
      shards != nullptr && shards->is_array())
    for (const auto& item : shards->items())
      checkpoint.shard_states.push_back(read_shard_state(item));
  if (const auto* fabrics = root->find("scan_boundary_fabrics");
      fabrics != nullptr && fabrics->is_array())
    for (const auto& item : fabrics->items())
      checkpoint.scan_boundary_fabrics.push_back(read_fabric_state(item));
  return checkpoint;
}

bool save_checkpoint(const CampaignCheckpoint& checkpoint,
                     const std::string& path) {
  const std::string rendered = checkpoint.to_json();
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    obs::log_warn("checkpoint open failed", {{"path", tmp}});
    return false;
  }
  const bool wrote =
      std::fwrite(rendered.data(), 1, rendered.size(), file) ==
      rendered.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    obs::log_warn("checkpoint write failed", {{"path", path}});
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string text;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
    text.append(buffer, got);
  std::fclose(file);
  auto checkpoint = CampaignCheckpoint::from_json(text);
  if (!checkpoint.has_value())
    obs::log_warn("checkpoint unparseable, ignoring", {{"path", path}});
  return checkpoint;
}

void remove_checkpoint(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace snmpv3fp::scan
