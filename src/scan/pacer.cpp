#include "scan/pacer.hpp"

#include <algorithm>

namespace snmpv3fp::scan {

AdaptivePacer::AdaptivePacer(double target_rate_pps, const PacerConfig& config,
                             util::Rng& rng)
    : target_rate_pps_(std::max(target_rate_pps, 1.0)),
      config_(config),
      rng_(rng) {
  state_.rate_pps = target_rate_pps_;
}

util::VTime AdaptivePacer::gap() const {
  // Same arithmetic as the historical fixed-gap prober, so the default
  // (never-backed-off) schedule is bit-identical to the pre-pacer code.
  return static_cast<util::VTime>(static_cast<double>(util::kSecond) /
                                  std::max(state_.rate_pps, 1.0));
}

util::VTime AdaptivePacer::schedule_after(util::VTime previous) {
  util::VTime jitter = 0;
  if (config_.adaptive && state_.window_sent >= config_.window_probes)
    jitter = evaluate_window();
  return previous + gap() + jitter;
}

void AdaptivePacer::on_probe_sent() { ++state_.window_sent; }

void AdaptivePacer::on_responses(std::size_t count) {
  state_.window_responses += count;
}

void AdaptivePacer::on_rate_limit_signals(std::size_t count) {
  state_.window_rate_limit_signals += count;
  state_.rate_limit_signals += count;
}

util::VTime AdaptivePacer::evaluate_window() {
  const double window_rate =
      static_cast<double>(state_.window_responses) /
      static_cast<double>(std::max<std::size_t>(state_.window_sent, 1));
  state_.window_sent = 0;
  state_.window_responses = 0;
  const bool signaled =
      config_.use_rate_limit_signals &&
      state_.window_rate_limit_signals >= config_.rate_limit_signal_threshold;
  state_.window_rate_limit_signals = 0;

  util::VTime jitter = 0;
  if (state_.baseline_response_rate < 0.0) {
    // First full window: learn the baseline. An explicit rate-limit signal
    // overrides the no-decision-yet rule — the device told us outright, no
    // baseline inference needed.
    state_.baseline_response_rate = window_rate;
    if (!signaled) return 0;
  }

  const bool collapsed =
      signaled ||
      (state_.baseline_response_rate > 0.0 &&
       window_rate < config_.collapse_threshold * state_.baseline_response_rate);
  if (collapsed) {
    state_.rate_pps = std::max(state_.rate_pps * config_.backoff_factor,
                               config_.min_rate_pps);
    ++state_.backoffs;
    if (config_.max_backoff_jitter > 0) {
      jitter = static_cast<util::VTime>(rng_.next_below(
          static_cast<std::uint64_t>(config_.max_backoff_jitter) + 1));
      state_.backoff_wait += jitter;
    }
  } else if (state_.rate_pps < target_rate_pps_) {
    // Healthy window while backed off: multiplicative recovery toward the
    // configured target.
    state_.rate_pps =
        std::min(state_.rate_pps * config_.recover_factor, target_rate_pps_);
  }

  // EWMA keeps the baseline tracking slow drift (diurnal responsiveness)
  // without chasing a single bad window.
  state_.baseline_response_rate =
      0.9 * state_.baseline_response_rate + 0.1 * window_rate;
  return jitter;
}

void AdaptivePacer::restore(const PacerState& state) { state_ = state; }

}  // namespace snmpv3fp::scan
