#include "scan/pacer.hpp"

#include <algorithm>

namespace snmpv3fp::scan {

AdaptivePacer::AdaptivePacer(double target_rate_pps, const PacerConfig& config,
                             util::Rng& rng)
    : target_rate_pps_(std::max(target_rate_pps, 1.0)),
      config_(config),
      rng_(rng) {
  state_.rate_pps = target_rate_pps_;
}

util::VTime AdaptivePacer::gap() const {
  // Same arithmetic as the historical fixed-gap prober, so the default
  // (never-backed-off) schedule is bit-identical to the pre-pacer code.
  return static_cast<util::VTime>(static_cast<double>(util::kSecond) /
                                  std::max(state_.rate_pps, 1.0));
}

util::VTime AdaptivePacer::schedule_after(util::VTime previous) {
  util::VTime jitter = 0;
  if (config_.adaptive && state_.window_sent >= config_.window_probes)
    jitter = evaluate_window();
  return previous + gap() + jitter;
}

void AdaptivePacer::on_probe_sent() { ++state_.window_sent; }

void AdaptivePacer::on_responses(std::size_t count) {
  state_.window_responses += count;
}

void AdaptivePacer::on_rate_limit_signals(std::size_t count) {
  state_.window_rate_limit_signals += count;
  state_.rate_limit_signals += count;
}

util::VTime AdaptivePacer::evaluate_window() {
  const double window_rate =
      static_cast<double>(state_.window_responses) /
      static_cast<double>(std::max<std::size_t>(state_.window_sent, 1));
  state_.window_sent = 0;
  state_.window_responses = 0;
  const bool signaled =
      config_.use_rate_limit_signals &&
      state_.window_rate_limit_signals >= config_.rate_limit_signal_threshold;
  state_.window_rate_limit_signals = 0;

  util::VTime jitter = 0;
  if (state_.baseline_response_rate < 0.0) {
    // First full window: learn the baseline. An explicit rate-limit signal
    // overrides the no-decision-yet rule — the device told us outright, no
    // baseline inference needed.
    state_.baseline_response_rate = window_rate;
    if (!signaled) return 0;
  }

  const bool collapsed =
      signaled ||
      (state_.baseline_response_rate > 0.0 &&
       window_rate < config_.collapse_threshold * state_.baseline_response_rate);
  if (collapsed) {
    state_.rate_pps = std::max(state_.rate_pps * config_.backoff_factor,
                               config_.min_rate_pps);
    ++state_.backoffs;
    if (config_.max_backoff_jitter > 0) {
      jitter = static_cast<util::VTime>(rng_.next_below(
          static_cast<std::uint64_t>(config_.max_backoff_jitter) + 1));
      state_.backoff_wait += jitter;
    }
  } else if (state_.rate_pps < target_rate_pps_) {
    // Healthy window while backed off: multiplicative recovery toward the
    // configured target.
    state_.rate_pps =
        std::min(state_.rate_pps * config_.recover_factor, target_rate_pps_);
  }

  // EWMA keeps the baseline tracking slow drift (diurnal responsiveness)
  // without chasing a single bad window.
  state_.baseline_response_rate =
      0.9 * state_.baseline_response_rate + 0.1 * window_rate;
  return jitter;
}

void AdaptivePacer::restore(const PacerState& state) { state_ = state; }

TokenBucketPacer::TokenBucketPacer(double target_rate_pps,
                                   const PacerConfig& config)
    : target_rate_pps_(std::max(target_rate_pps, 1.0)), config_(config) {
  state_.rate_pps = target_rate_pps_;
  if (config_.burst_probes == 0) config_.burst_probes = 1;
}

void TokenBucketPacer::refill(util::VTime now) {
  if (!primed_) {
    // First observation: start with a full bucket so the opening burst
    // fills a kernel batch immediately.
    primed_ = true;
    last_refill_ = now;
    tokens_ = static_cast<double>(config_.burst_probes);
    return;
  }
  if (now <= last_refill_) return;
  const double earned = static_cast<double>(now - last_refill_) *
                        std::max(state_.rate_pps, 1.0) /
                        static_cast<double>(util::kSecond);
  tokens_ = std::min(tokens_ + earned,
                     static_cast<double>(config_.burst_probes));
  last_refill_ = now;
}

util::VTime TokenBucketPacer::next_send_time(util::VTime now) {
  refill(now);
  if (tokens_ >= 1.0) return now;
  const double deficit_s = (1.0 - tokens_) / std::max(state_.rate_pps, 1.0);
  return now + static_cast<util::VTime>(
                   deficit_s * static_cast<double>(util::kSecond)) +
         1;  // +1us: never round below the earning instant
}

void TokenBucketPacer::on_probe_sent(util::VTime now) {
  refill(now);
  tokens_ -= 1.0;
  if (tokens_ < -1.0) tokens_ = -1.0;  // a caller ahead of schedule only
                                       // borrows one probe, never a burst
  ++state_.window_sent;
  if (config_.adaptive && state_.window_sent >= config_.window_probes)
    evaluate_window();
}

void TokenBucketPacer::on_responses(std::size_t count) {
  state_.window_responses += count;
}

void TokenBucketPacer::on_rate_limit_signals(std::size_t count) {
  state_.window_rate_limit_signals += count;
  state_.rate_limit_signals += count;
}

void TokenBucketPacer::evaluate_window() {
  // Same decisions as AdaptivePacer::evaluate_window, minus the jitter
  // draw (real clocks provide their own) — rate changes take effect on
  // the next refill.
  const double window_rate =
      static_cast<double>(state_.window_responses) /
      static_cast<double>(std::max<std::size_t>(state_.window_sent, 1));
  state_.window_sent = 0;
  state_.window_responses = 0;
  const bool signaled =
      config_.use_rate_limit_signals &&
      state_.window_rate_limit_signals >= config_.rate_limit_signal_threshold;
  state_.window_rate_limit_signals = 0;

  if (state_.baseline_response_rate < 0.0) {
    state_.baseline_response_rate = window_rate;
    if (!signaled) return;
  }

  const bool collapsed =
      signaled ||
      (state_.baseline_response_rate > 0.0 &&
       window_rate <
           config_.collapse_threshold * state_.baseline_response_rate);
  if (collapsed) {
    state_.rate_pps = std::max(state_.rate_pps * config_.backoff_factor,
                               config_.min_rate_pps);
    ++state_.backoffs;
  } else if (state_.rate_pps < target_rate_pps_) {
    state_.rate_pps =
        std::min(state_.rate_pps * config_.recover_factor, target_rate_pps_);
  }
  state_.baseline_response_rate =
      0.9 * state_.baseline_response_rate + 0.1 * window_rate;
}

void TokenBucketPacer::restore(const PacerState& state) {
  state_ = state;
  primed_ = false;  // the bucket re-primes from the first post-resume call
}

}  // namespace snmpv3fp::scan
