// Streaming scan targets: ZMap-style permuted prefix sweeps.
//
// A census-scale campaign cannot materialize its target list — 100M+
// IpAddress entries would dwarf the responder state the procedural world
// was built to avoid. A TargetSpec instead describes the sweep as prefix
// ranges, and TargetGenerator visits every address exactly once in a
// pseudo-random order computed positionally: position i -> address is a
// pure O(1) function (a keyed Feistel permutation with cycle-walking, the
// classic ZMap construction), so any shard's slice — and any checkpoint
// cursor inside it — is reproducible from (spec, seed) alone. Memory is
// O(ranges), independent of how many addresses the sweep covers.
//
// TargetSequence is the read-only indexable view the Prober consumes; it
// abstracts over materialized lists (SpanTargets) and generated sweeps
// (GeneratorSlice) so both campaign modes share one probe loop.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/ip.hpp"

namespace snmpv3fp::scan {

// A sweep over one or more disjoint v4 prefixes (the procedural world's
// scenario regions, or any ad-hoc range set).
struct TargetSpec {
  std::vector<net::Prefix4> ranges;
  // Feistel rounds for the probe-order permutation. 4 is ZMap's choice;
  // more rounds buy nothing for scan order.
  std::uint32_t feistel_rounds = 4;

  // Total addresses covered (sum of range sizes).
  std::uint64_t total() const;
};

// Enumerates a TargetSpec in a keyed pseudo-random order. Stateless after
// construction: at(i) is const, thread-safe, and O(rounds).
class TargetGenerator {
 public:
  TargetGenerator(const TargetSpec& spec, std::uint64_t seed);

  std::uint64_t size() const { return total_; }

  // The i-th target of the permuted sweep, i in [0, size()).
  net::IpAddress at(std::uint64_t index) const;

 private:
  // One balanced-Feistel pass over the 2*half_bits_ domain.
  std::uint64_t permute(std::uint64_t value) const;

  std::vector<net::Prefix4> ranges_;
  std::vector<std::uint64_t> cumulative_;  // exclusive prefix sums of sizes
  std::uint64_t total_ = 0;
  std::uint32_t half_bits_ = 1;            // domain = 2^(2*half_bits_) >= total
  std::vector<std::uint64_t> round_keys_;
};

// Read-only indexable target source — what Prober::run iterates.
class TargetSequence {
 public:
  virtual ~TargetSequence() = default;
  virtual std::uint64_t size() const = 0;
  virtual net::IpAddress at(std::uint64_t index) const = 0;
};

// A materialized list (the classic campaign path).
class SpanTargets final : public TargetSequence {
 public:
  explicit SpanTargets(std::span<const net::IpAddress> targets)
      : targets_(targets) {}
  std::uint64_t size() const override { return targets_.size(); }
  net::IpAddress at(std::uint64_t index) const override {
    return targets_[index];
  }

 private:
  std::span<const net::IpAddress> targets_;
};

// One shard's contiguous window [begin, end) of a generated sweep.
class GeneratorSlice final : public TargetSequence {
 public:
  GeneratorSlice(const TargetGenerator& generator, std::uint64_t begin,
                 std::uint64_t end)
      : generator_(generator), begin_(begin), end_(end) {}
  std::uint64_t size() const override { return end_ - begin_; }
  net::IpAddress at(std::uint64_t index) const override {
    return generator_.at(begin_ + index);
  }

 private:
  const TargetGenerator& generator_;
  std::uint64_t begin_;
  std::uint64_t end_;
};

}  // namespace snmpv3fp::scan
