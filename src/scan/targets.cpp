#include "scan/targets.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace snmpv3fp::scan {

std::uint64_t TargetSpec::total() const {
  std::uint64_t total = 0;
  for (const auto& range : ranges) total += range.size();
  return total;
}

TargetGenerator::TargetGenerator(const TargetSpec& spec, std::uint64_t seed)
    : ranges_(spec.ranges) {
  if (ranges_.empty())
    throw std::invalid_argument("TargetGenerator: spec has no ranges");
  const std::uint32_t rounds = std::max<std::uint32_t>(spec.feistel_rounds, 2);
  cumulative_.reserve(ranges_.size());
  for (const auto& range : ranges_) {
    cumulative_.push_back(total_);
    total_ += range.size();
  }
  // Smallest even-bit-width power-of-two domain covering the sweep. The
  // balanced Feistel network permutes 2*half_bits_ bits; cycle-walking in
  // at() skips the < 3x overshoot positions outside [0, total_).
  const auto domain_bits = static_cast<std::uint32_t>(
      std::bit_width(std::max<std::uint64_t>(total_ - 1, 1)));
  half_bits_ = std::max<std::uint32_t>((domain_bits + 1) / 2, 1);
  util::Rng rng(seed);
  round_keys_.reserve(rounds);
  for (std::uint32_t i = 0; i < rounds; ++i) round_keys_.push_back(rng.next());
}

std::uint64_t TargetGenerator::permute(std::uint64_t value) const {
  const std::uint64_t mask = (std::uint64_t{1} << half_bits_) - 1;
  std::uint64_t left = value >> half_bits_;
  std::uint64_t right = value & mask;
  for (const std::uint64_t key : round_keys_) {
    // splitmix64-style round function: cheap, full-avalanche within the
    // half-domain, and stable across platforms.
    std::uint64_t f = right + key + 0x9e3779b97f4a7c15ull;
    f = (f ^ (f >> 30)) * 0xbf58476d1ce4e5b9ull;
    f = (f ^ (f >> 27)) * 0x94d049bb133111ebull;
    f ^= f >> 31;
    const std::uint64_t next_right = left ^ (f & mask);
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

net::IpAddress TargetGenerator::at(std::uint64_t index) const {
  // Cycle-walk: a Feistel permutation of the padded power-of-two domain
  // restricted to [0, total_) is still a permutation, and every walk
  // terminates in < 4 expected steps (domain < 4 * total_).
  std::uint64_t position = index;
  do {
    position = permute(position);
  } while (position >= total_);
  const auto range =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), position) - 1;
  const auto range_index =
      static_cast<std::size_t>(range - cumulative_.begin());
  return ranges_[range_index].at(position - *range);
}

}  // namespace snmpv3fp::scan
