#include "scan/prober.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "obs/log.hpp"
#include "snmp/message.hpp"
#include "store/record_store.hpp"
#include "wire/probe_template.hpp"
#include "wire/report_codec.hpp"

namespace snmpv3fp::scan {

namespace {
// msg_id/request_id in [128, 32767] encode as exactly two content bytes,
// which keeps the discovery probe at the paper's 60-byte payload
// (88 bytes on the IPv4 wire, 108 on IPv6).
std::int32_t two_byte_id(util::Rng& rng) {
  return static_cast<std::int32_t>(128 + rng.next_below(32767 - 128));
}
}  // namespace

std::size_t Prober::drain(
    ScanResult& result, store::RecordStore* sink,
    std::unordered_map<net::IpAddress, SourceEntry>& by_source,
    const std::unordered_map<net::IpAddress, util::VTime>& sent_at,
    WireState& wire, obs::ShardTelemetry& telemetry) {
  std::size_t new_records = 0;
  while (auto datagram = transport_.receive_view()) {
    // Fast path first: the single-pass scanner extracts engineID (as a
    // view), boots and time without allocating. Anything it rejects goes
    // through the full decoder — it accepts a strict subset with equal
    // fields (src/wire/report_codec.hpp), so the combined path's output is
    // bit-identical to the full codec alone. The fallback counter only
    // counts responses the full decoder then accepted; garbage both paths
    // reject is undecodable noise, not a fast-path miss.
    wire::V3Fields fast;
    const bool fast_ok =
        wire.enabled && wire::parse_v3_fast(datagram->payload, fast);
    std::optional<snmp::V3Message> full;
    if (fast_ok) {
      wire.fast_parses.add();
    } else {
      auto message = snmp::V3Message::decode(datagram->payload);
      if (!message) {  // non-SNMPv3 noise or corrupted-in-flight bytes
        ++result.undecodable_responses;
        telemetry.flight.record(obs::FlightEventKind::kUndecodable,
                                datagram->time,
                                static_cast<std::int64_t>(
                                    result.undecodable_responses));
        continue;
      }
      if (wire.enabled) {
        wire.fallbacks.add();
        telemetry.flight.record(obs::FlightEventKind::kWireFallback,
                                datagram->time, 1);
      }
      full = std::move(message).value();
    }
    const util::ByteView engine_view =
        fast_ok ? fast.engine_id
                : util::ByteView(full->usm.authoritative_engine_id.raw());
    // Materializes an owning EngineId; called at most once per datagram
    // (it moves out of the full-decode message).
    const auto materialize_engine = [&]() {
      return fast_ok ? snmp::EngineId(util::Bytes(fast.engine_id.begin(),
                                                  fast.engine_id.end()))
                     : std::move(full->usm.authoritative_engine_id);
    };

    const auto& source = datagram->source.address;
    const auto it = by_source.find(source);
    if (it == by_source.end()) {
      // First response from this address.
      ScanRecord record;
      record.target = source;
      record.engine_id = materialize_engine();
      record.engine_boots = fast_ok ? fast.engine_boots : full->usm.engine_boots;
      record.engine_time = fast_ok ? fast.engine_time : full->usm.engine_time;
      if (const auto sent = sent_at.find(source); sent != sent_at.end()) {
        record.send_time = sent->second;
        // Virtual-clock RTT: deterministic, so the histogram (and its
        // percentiles) are identical at any thread count.
        telemetry.rtt_ms.observe(
            static_cast<double>(datagram->time - sent->second) / 1000.0);
      }
      record.receive_time = datagram->time;
      record.response_count = 1;
      record.response_bytes = datagram->payload.size();
      if (sink != nullptr) {
        const std::size_t index = sink->append(record);
        by_source.emplace(source,
                          SourceEntry{index, std::move(record.engine_id)});
      } else {
        by_source.emplace(source, SourceEntry{result.records.size(), {}});
        result.records.push_back(std::move(record));
      }
      ++new_records;
    } else if (sink != nullptr) {
      // Same accounting as the vector path below, routed through the
      // store's patch overlay (the record may sit in a sealed block).
      if (util::equal(engine_view, it->second.engine.raw())) {
        sink->note_duplicate(it->second.index, nullptr);
      } else {
        const snmp::EngineId engine = materialize_engine();
        sink->note_duplicate(it->second.index, &engine);
      }
    } else {
      auto& record = result.records[it->second.index];
      ++record.response_count;
      if (!util::equal(engine_view, record.engine_id.raw())) {
        const snmp::EngineId engine = materialize_engine();
        // extra_engines stays sorted so membership is a binary search
        // instead of a linear scan (amplifiers answer thousands of times).
        const auto pos = std::lower_bound(record.extra_engines.begin(),
                                          record.extra_engines.end(), engine);
        if (pos == record.extra_engines.end() || *pos != engine)
          record.extra_engines.insert(pos, engine);
      }
    }
  }
  return new_records;
}

ScanResult Prober::run(std::span<const net::IpAddress> targets,
                       const ProbeConfig& config, util::VTime start_time) {
  util::Rng rng(config.seed);
  std::span<const net::IpAddress> order = targets;
  std::vector<net::IpAddress> shuffled;
  if (config.randomize_order) {
    shuffled.assign(targets.begin(), targets.end());
    rng.shuffle(shuffled);
    order = shuffled;
  }
  return run_impl(SpanTargets(order), config, start_time, rng);
}

ScanResult Prober::run(const TargetSequence& targets,
                       const ProbeConfig& config, util::VTime start_time) {
  util::Rng rng(config.seed);
  return run_impl(targets, config, start_time, rng);
}

ScanResult Prober::run_impl(const TargetSequence& order,
                            const ProbeConfig& config, util::VTime start_time,
                            util::Rng& rng) {
  AdaptivePacer pacer(config.rate_pps, config.pacer, rng);
  // Wall-clock campaigns swap the virtual fixed-gap scheduler for the
  // token bucket; every pacer touchpoint below routes through `bucket`
  // when it is engaged, so the two schedulers share the loop verbatim.
  std::optional<TokenBucketPacer> bucket;
  if (config.wall_pacing) bucket.emplace(config.rate_pps, config.pacer);
  const auto pacer_state = [&]() -> const PacerState& {
    return bucket.has_value() ? bucket->state() : pacer.state();
  };
  // Wire fast path: one template per run (three full encodes to build),
  // stamped into one reusable buffer for every probe thereafter.
  const wire::ProbeTemplate probe_template;
  util::Bytes probe_scratch;
  WireState wire{config.wire_fast_path, config.wire_fast_parses,
                 config.wire_parse_fallbacks};
  obs::Counter stamped_probes = config.wire_stamped_probes;
  obs::Counter full_encodes = config.wire_full_encodes;
  // Local copy: the timeline recorder carries per-run cursor state (next
  // virtual boundary, wall-check countdown) the shared config must not.
  obs::ShardTelemetry telemetry = config.telemetry;
  std::size_t backoffs_reported = 0;
  ScanResult result;
  store::RecordStore* const sink = config.sink;
  std::unordered_map<net::IpAddress, SourceEntry> by_source;
  std::unordered_map<net::IpAddress, util::VTime> sent_at;
  // Outstanding sends in order, for sent_horizon pruning (empty when off).
  std::deque<std::pair<util::VTime, net::IpAddress>> send_log;
  // Generated sweeps can cover billions of positions; pre-sizing must
  // follow the expected working set, not the sweep length.
  const auto reserve_n =
      static_cast<std::size_t>(std::min<std::uint64_t>(order.size(), 65536));
  std::size_t start_index = 0;
  util::VTime next_send = 0;
  // Rate-limit signal feed: track the transport counter so each drain
  // hands the pacer only the delta. The baseline is taken after the
  // fabric restore on resume, so a resumed window sees the same deltas an
  // uninterrupted run would.
  std::uint64_t rate_limit_seen = transport_.rate_limit_signals();

  if (config.resume != nullptr) {
    // Continue a checkpointed run: the caller already restored the
    // transport (and, in sink mode, the record store); everything
    // prober-side comes from the snapshot.
    result = config.resume->partial;
    start_index = config.resume->cursor;
    next_send = config.resume->next_send;
    rng.restore_state(config.resume->rng);
    if (bucket.has_value())
      bucket->restore(config.resume->pacer);
    else
      pacer.restore(config.resume->pacer);
    if (sink != nullptr) {
      std::size_t index = 0;
      auto cursor = sink->cursor();
      ScanRecord record;
      while (cursor.next(record))
        by_source.emplace(record.target,
                          SourceEntry{index++, std::move(record.engine_id)});
    } else {
      by_source.reserve(result.records.size());
      for (std::size_t i = 0; i < result.records.size(); ++i)
        by_source.emplace(result.records[i].target,
                          SourceEntry{i, {}});
    }
    sent_at.reserve(reserve_n);
    for (const auto& [address, time] : config.resume->sent_at)
      sent_at.emplace(address, time);
    if (config.sent_horizon > 0) {
      // Rebuild the pruning log in the snapshot's (time, address) order so
      // a resumed run forgets entries on exactly the same probes an
      // uninterrupted run would (the snapshot is already sorted that way).
      for (const auto& [address, time] : config.resume->sent_at)
        send_log.emplace_back(time, address);
    }
  } else {
    result.label = config.label;
    result.targets_probed = order.size();
    transport_.run_until(start_time);
    result.start_time = transport_.now();
    next_send = transport_.now() + config.send_offset;
    by_source.reserve(reserve_n / 4);
    sent_at.reserve(reserve_n);
  }
  if (sink == nullptr) result.records.reserve(reserve_n);

  for (std::size_t i = start_index; i < order.size(); ++i) {
    const net::IpAddress target = order.at(i);
    transport_.run_until(next_send);
    // Draw order matters for bit-compatibility with historical runs:
    // request_id consumed the first draw when both ids were drawn inside
    // the make_discovery_request call (right-to-left argument evaluation).
    const std::int32_t request_id = two_byte_id(rng);
    const std::int32_t msg_id = two_byte_id(rng);
    const util::VTime send_time = transport_.now();
    sent_at.emplace(target, send_time);
    if (config.sent_horizon > 0) {
      send_log.emplace_back(send_time, target);
      const util::VTime cutoff = send_time - config.sent_horizon;
      while (!send_log.empty() && send_log.front().first < cutoff) {
        sent_at.erase(send_log.front().second);
        send_log.pop_front();
      }
    }
    // Zero-copy frame path first: a batching transport hands out a
    // preallocated kernel-bound frame and the template stamps straight
    // into it — no scratch buffer, no copy between here and sendmmsg. The
    // sim fabric returns an empty span and falls through unchanged.
    if (const auto frame = config.wire_fast_path
                               ? transport_.acquire_send_frame(
                                     probe_template.size())
                               : std::span<std::uint8_t>{};
        frame.size() >= probe_template.size() &&
        probe_template.stamp_into(msg_id, request_id,
                                  frame.first(probe_template.size()))) {
      result.probe_bytes = probe_template.size();
      transport_.commit_send_frame(source_, {target, net::kSnmpPort},
                                   probe_template.size(), send_time);
      stamped_probes.add();
    } else if (config.wire_fast_path &&
               probe_template.stamp(msg_id, request_id, probe_scratch)) {
      result.probe_bytes = probe_scratch.size();
      transport_.send_view(source_, {target, net::kSnmpPort}, probe_scratch,
                           send_time);
      stamped_probes.add();
    } else {
      const auto request = snmp::make_discovery_request(msg_id, request_id);
      net::Datagram probe;
      probe.source = source_;
      probe.destination = {target, net::kSnmpPort};
      probe.payload = request.encode();
      probe.time = send_time;
      result.probe_bytes = probe.payload.size();
      transport_.send(std::move(probe));
      full_encodes.add();
    }
    if (bucket.has_value()) {
      bucket->on_probe_sent(send_time);
      next_send = bucket->next_send_time(transport_.now());
    } else {
      pacer.on_probe_sent();
      next_send = pacer.schedule_after(next_send);
    }
    const std::size_t drained =
        drain(result, sink, by_source, sent_at, wire, telemetry);
    const auto rate_limit_now = transport_.rate_limit_signals();
    const auto rate_limit_delta =
        static_cast<std::size_t>(rate_limit_now - rate_limit_seen);
    rate_limit_seen = rate_limit_now;
    if (bucket.has_value()) {
      bucket->on_responses(drained);
      bucket->on_rate_limit_signals(rate_limit_delta);
    } else {
      pacer.on_responses(drained);
      pacer.on_rate_limit_signals(rate_limit_delta);
    }

    if (telemetry.flight.enabled() &&
        pacer_state().backoffs != backoffs_reported) {
      backoffs_reported = pacer_state().backoffs;
      telemetry.flight.record(
          obs::FlightEventKind::kPacerBackoff, transport_.now(),
          static_cast<std::int64_t>(pacer_state().rate_pps));
    }
    if (telemetry.timeline.enabled()) {
      obs::TimelinePoint point;
      point.targets_sent = i + 1;
      point.responses = sink != nullptr ? sink->size() : result.records.size();
      point.undecodable = result.undecodable_responses;
      point.backoffs = pacer_state().backoffs;
      point.pacer_rate_pps = pacer_state().rate_pps;
      point.store_resident_bytes =
          sink != nullptr ? static_cast<std::int64_t>(sink->resident_bytes())
                          : -1;
      telemetry.timeline.tick(transport_.now(), point);
    }
    if (telemetry.status.enabled() &&
        (i + 1) % telemetry.status.every_n_targets() == 0) {
      obs::ShardStatusRow row;
      row.targets_sent = i + 1;
      row.responses = sink != nullptr ? sink->size() : result.records.size();
      row.undecodable = result.undecodable_responses;
      row.backoffs = pacer_state().backoffs;
      row.pacer_rate_pps = pacer_state().rate_pps;
      row.store_resident_bytes =
          sink != nullptr ? static_cast<std::int64_t>(sink->resident_bytes())
                          : -1;
      if (const auto* net = transport_.net_stats())
        row.ring_frames = net->ring_frames;
      row.virtual_now = transport_.now();
      telemetry.status.update(row);
    }

    // Checkpoint boundaries sit at absolute multiples of the interval, so
    // a resumed run hits the same remaining boundaries as an uninterrupted
    // one would.
    if (config.checkpoint_every_n_targets != 0 && config.on_checkpoint &&
        (i + 1) % config.checkpoint_every_n_targets == 0) {
      result.pacer_backoffs = pacer_state().backoffs;
      ShardScanState state;
      state.cursor = i + 1;
      state.next_send = next_send;
      state.rng = rng.save_state();
      state.pacer = pacer_state();
      state.partial = result;  // sink mode: scalars only, records ride below
      if (sink != nullptr) state.store_manifest = sink->manifest();
      state.sent_at.assign(sent_at.begin(), sent_at.end());
      std::sort(state.sent_at.begin(), state.sent_at.end());
      telemetry.flight.record(obs::FlightEventKind::kCheckpoint,
                              transport_.now(),
                              static_cast<std::int64_t>(i + 1));
      if (!config.on_checkpoint(state))
        return result;  // simulated kill; the snapshot supersedes this
    }
  }
  transport_.run_until(next_send + config.response_timeout);
  drain(result, sink, by_source, sent_at, wire, telemetry);
  {
    const auto tail = static_cast<std::size_t>(
        transport_.rate_limit_signals() - rate_limit_seen);
    if (bucket.has_value())
      bucket->on_rate_limit_signals(tail);
    else
      pacer.on_rate_limit_signals(tail);
  }
  if (sink != nullptr) sink->seal();
  result.end_time = transport_.now();
  result.pacer_backoffs = pacer_state().backoffs;
  if (telemetry.status.enabled()) {
    obs::ShardStatusRow row;
    row.targets_sent = order.size();
    row.responses = sink != nullptr ? sink->size() : result.records.size();
    row.undecodable = result.undecodable_responses;
    row.backoffs = pacer_state().backoffs;
    row.pacer_rate_pps = pacer_state().rate_pps;
    row.store_resident_bytes =
        sink != nullptr ? static_cast<std::int64_t>(sink->resident_bytes())
                        : -1;
    if (const auto* net = transport_.net_stats())
      row.ring_frames = net->ring_frames;
    row.virtual_now = transport_.now();
    row.complete = true;
    telemetry.status.update(row);
  }
  if (obs::Logger::global().enabled(obs::LogLevel::kDebug)) {
    obs::log_debug("probe run finished",
                   {{"label", config.label},
                    {"targets", result.targets_probed},
                    {"responsive",
                     sink != nullptr ? sink->size() : result.records.size()},
                    {"virtual_s", util::to_seconds(result.end_time -
                                                   result.start_time)}});
  }
  return result;
}

}  // namespace snmpv3fp::scan
