#include "scan/prober.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "snmp/message.hpp"
#include "store/record_store.hpp"

namespace snmpv3fp::scan {

namespace {
// msg_id/request_id in [128, 32767] encode as exactly two content bytes,
// which keeps the discovery probe at the paper's 60-byte payload
// (88 bytes on the IPv4 wire, 108 on IPv6).
std::int32_t two_byte_id(util::Rng& rng) {
  return static_cast<std::int32_t>(128 + rng.next_below(32767 - 128));
}
}  // namespace

std::size_t Prober::drain(
    ScanResult& result, store::RecordStore* sink,
    std::unordered_map<net::IpAddress, SourceEntry>& by_source,
    const std::unordered_map<net::IpAddress, util::VTime>& sent_at) {
  std::size_t new_records = 0;
  while (auto datagram = transport_.receive()) {
    auto message = snmp::V3Message::decode(datagram->payload);
    if (!message) {  // non-SNMPv3 noise or corrupted-in-flight bytes
      ++result.undecodable_responses;
      continue;
    }
    const auto& source = datagram->source.address;
    const auto it = by_source.find(source);
    if (it == by_source.end()) {
      // First response from this address.
      ScanRecord record;
      record.target = source;
      record.engine_id = message.value().usm.authoritative_engine_id;
      record.engine_boots = message.value().usm.engine_boots;
      record.engine_time = message.value().usm.engine_time;
      if (const auto sent = sent_at.find(source); sent != sent_at.end())
        record.send_time = sent->second;
      record.receive_time = datagram->time;
      record.response_count = 1;
      record.response_bytes = datagram->payload.size();
      if (sink != nullptr) {
        const std::size_t index = sink->append(record);
        by_source.emplace(source,
                          SourceEntry{index, std::move(record.engine_id)});
      } else {
        by_source.emplace(source, SourceEntry{result.records.size(), {}});
        result.records.push_back(std::move(record));
      }
      ++new_records;
    } else {
      const auto& engine = message.value().usm.authoritative_engine_id;
      if (sink != nullptr) {
        // Same accounting as the vector path below, routed through the
        // store's patch overlay (the record may sit in a sealed block).
        sink->note_duplicate(it->second.index,
                             engine != it->second.engine ? &engine : nullptr);
      } else {
        auto& record = result.records[it->second.index];
        ++record.response_count;
        if (engine != record.engine_id) {
          // extra_engines stays sorted so membership is a binary search
          // instead of a linear scan (amplifiers answer thousands of times).
          const auto pos = std::lower_bound(record.extra_engines.begin(),
                                            record.extra_engines.end(), engine);
          if (pos == record.extra_engines.end() || *pos != engine)
            record.extra_engines.insert(pos, engine);
        }
      }
    }
  }
  return new_records;
}

ScanResult Prober::run(const std::vector<net::IpAddress>& targets,
                       const ProbeConfig& config, util::VTime start_time) {
  util::Rng rng(config.seed);
  std::vector<net::IpAddress> order = targets;
  if (config.randomize_order) rng.shuffle(order);

  AdaptivePacer pacer(config.rate_pps, config.pacer, rng);
  ScanResult result;
  store::RecordStore* const sink = config.sink;
  std::unordered_map<net::IpAddress, SourceEntry> by_source;
  std::unordered_map<net::IpAddress, util::VTime> sent_at;
  std::size_t start_index = 0;
  util::VTime next_send = 0;
  // Rate-limit signal feed: track the transport counter so each drain
  // hands the pacer only the delta. The baseline is taken after the
  // fabric restore on resume, so a resumed window sees the same deltas an
  // uninterrupted run would.
  std::uint64_t rate_limit_seen = transport_.rate_limit_signals();

  if (config.resume != nullptr) {
    // Continue a checkpointed run: the caller already restored the
    // transport (and, in sink mode, the record store); everything
    // prober-side comes from the snapshot.
    result = config.resume->partial;
    start_index = config.resume->cursor;
    next_send = config.resume->next_send;
    rng.restore_state(config.resume->rng);
    pacer.restore(config.resume->pacer);
    if (sink != nullptr) {
      std::size_t index = 0;
      auto cursor = sink->cursor();
      ScanRecord record;
      while (cursor.next(record))
        by_source.emplace(record.target,
                          SourceEntry{index++, std::move(record.engine_id)});
    } else {
      by_source.reserve(result.records.size());
      for (std::size_t i = 0; i < result.records.size(); ++i)
        by_source.emplace(result.records[i].target,
                          SourceEntry{i, {}});
    }
    sent_at.reserve(order.size());
    for (const auto& [address, time] : config.resume->sent_at)
      sent_at.emplace(address, time);
  } else {
    result.label = config.label;
    result.targets_probed = order.size();
    transport_.run_until(start_time);
    result.start_time = transport_.now();
    next_send = transport_.now() + config.send_offset;
    by_source.reserve(order.size() / 4);
    sent_at.reserve(order.size());
  }
  if (sink == nullptr) result.records.reserve(order.size());

  for (std::size_t i = start_index; i < order.size(); ++i) {
    const auto& target = order[i];
    transport_.run_until(next_send);
    const auto request =
        snmp::make_discovery_request(two_byte_id(rng), two_byte_id(rng));
    net::Datagram probe;
    probe.source = source_;
    probe.destination = {target, net::kSnmpPort};
    probe.payload = request.encode();
    probe.time = transport_.now();
    sent_at.emplace(target, probe.time);
    result.probe_bytes = probe.payload.size();
    transport_.send(std::move(probe));
    pacer.on_probe_sent();
    next_send = pacer.schedule_after(next_send);
    pacer.on_responses(drain(result, sink, by_source, sent_at));
    const auto rate_limit_now = transport_.rate_limit_signals();
    pacer.on_rate_limit_signals(
        static_cast<std::size_t>(rate_limit_now - rate_limit_seen));
    rate_limit_seen = rate_limit_now;

    // Checkpoint boundaries sit at absolute multiples of the interval, so
    // a resumed run hits the same remaining boundaries as an uninterrupted
    // one would.
    if (config.checkpoint_every_n_targets != 0 && config.on_checkpoint &&
        (i + 1) % config.checkpoint_every_n_targets == 0) {
      result.pacer_backoffs = pacer.state().backoffs;
      ShardScanState state;
      state.cursor = i + 1;
      state.next_send = next_send;
      state.rng = rng.save_state();
      state.pacer = pacer.state();
      state.partial = result;  // sink mode: scalars only, records ride below
      if (sink != nullptr) state.store_manifest = sink->manifest();
      state.sent_at.assign(sent_at.begin(), sent_at.end());
      std::sort(state.sent_at.begin(), state.sent_at.end());
      if (!config.on_checkpoint(state))
        return result;  // simulated kill; the snapshot supersedes this
    }
  }
  transport_.run_until(next_send + config.response_timeout);
  drain(result, sink, by_source, sent_at);
  pacer.on_rate_limit_signals(static_cast<std::size_t>(
      transport_.rate_limit_signals() - rate_limit_seen));
  if (sink != nullptr) sink->seal();
  result.end_time = transport_.now();
  result.pacer_backoffs = pacer.state().backoffs;
  if (obs::Logger::global().enabled(obs::LogLevel::kDebug)) {
    obs::log_debug("probe run finished",
                   {{"label", config.label},
                    {"targets", result.targets_probed},
                    {"responsive",
                     sink != nullptr ? sink->size() : result.records.size()},
                    {"virtual_s", util::to_seconds(result.end_time -
                                                   result.start_time)}});
  }
  return result;
}

}  // namespace snmpv3fp::scan
