#include "scan/prober.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "snmp/message.hpp"

namespace snmpv3fp::scan {

namespace {
// msg_id/request_id in [128, 32767] encode as exactly two content bytes,
// which keeps the discovery probe at the paper's 60-byte payload
// (88 bytes on the IPv4 wire, 108 on IPv6).
std::int32_t two_byte_id(util::Rng& rng) {
  return static_cast<std::int32_t>(128 + rng.next_below(32767 - 128));
}
}  // namespace

std::size_t ScanResult::unique_engine_ids() const {
  std::vector<const snmp::EngineId*> ids;
  ids.reserve(records.size());
  for (const auto& r : records)
    if (!r.engine_id.empty()) ids.push_back(&r.engine_id);
  std::sort(ids.begin(), ids.end(),
            [](const auto* a, const auto* b) { return a->raw() < b->raw(); });
  const auto end = std::unique(ids.begin(), ids.end(),
                               [](const auto* a, const auto* b) {
                                 return a->raw() == b->raw();
                               });
  return static_cast<std::size_t>(end - ids.begin());
}

void Prober::drain(ScanResult& result,
                   std::unordered_map<net::IpAddress, std::size_t>& by_source,
                   const std::unordered_map<net::IpAddress, util::VTime>&
                       sent_at) {
  while (auto datagram = transport_.receive()) {
    auto message = snmp::V3Message::decode(datagram->payload);
    if (!message) continue;  // non-SNMPv3 noise
    const auto& source = datagram->source.address;
    const auto it = by_source.find(source);
    if (it == by_source.end()) {
      // First response from this address.
      ScanRecord record;
      record.target = source;
      record.engine_id = message.value().usm.authoritative_engine_id;
      record.engine_boots = message.value().usm.engine_boots;
      record.engine_time = message.value().usm.engine_time;
      if (const auto sent = sent_at.find(source); sent != sent_at.end())
        record.send_time = sent->second;
      record.receive_time = datagram->time;
      record.response_count = 1;
      record.response_bytes = datagram->payload.size();
      by_source.emplace(source, result.records.size());
      result.records.push_back(std::move(record));
    } else {
      auto& record = result.records[it->second];
      ++record.response_count;
      const auto& engine = message.value().usm.authoritative_engine_id;
      if (engine != record.engine_id) {
        // extra_engines stays sorted so membership is a binary search
        // instead of a linear scan (amplifiers answer thousands of times).
        const auto pos = std::lower_bound(record.extra_engines.begin(),
                                          record.extra_engines.end(), engine);
        if (pos == record.extra_engines.end() || *pos != engine)
          record.extra_engines.insert(pos, engine);
      }
    }
  }
}

ScanResult Prober::run(const std::vector<net::IpAddress>& targets,
                       const ProbeConfig& config, util::VTime start_time) {
  util::Rng rng(config.seed);
  std::vector<net::IpAddress> order = targets;
  if (config.randomize_order) rng.shuffle(order);

  ScanResult result;
  result.label = config.label;
  result.targets_probed = order.size();
  transport_.run_until(start_time);
  result.start_time = transport_.now();

  std::unordered_map<net::IpAddress, std::size_t> by_source;
  by_source.reserve(order.size() / 4);
  std::unordered_map<net::IpAddress, util::VTime> sent_at;
  sent_at.reserve(order.size());
  result.records.reserve(order.size());

  const auto gap =
      static_cast<util::VTime>(static_cast<double>(util::kSecond) /
                               std::max(config.rate_pps, 1.0));
  util::VTime next_send = transport_.now() + config.send_offset;
  for (const auto& target : order) {
    transport_.run_until(next_send);
    const auto request =
        snmp::make_discovery_request(two_byte_id(rng), two_byte_id(rng));
    net::Datagram probe;
    probe.source = source_;
    probe.destination = {target, net::kSnmpPort};
    probe.payload = request.encode();
    probe.time = transport_.now();
    sent_at.emplace(target, probe.time);
    result.probe_bytes = probe.payload.size();
    transport_.send(std::move(probe));
    next_send += gap;
    drain(result, by_source, sent_at);
  }
  transport_.run_until(next_send + config.response_timeout);
  drain(result, by_source, sent_at);
  result.end_time = transport_.now();
  if (obs::Logger::global().enabled(obs::LogLevel::kDebug)) {
    obs::log_debug("probe run finished",
                   {{"label", config.label},
                    {"targets", result.targets_probed},
                    {"responsive", result.records.size()},
                    {"virtual_s", util::to_seconds(result.end_time -
                                                   result.start_time)}});
  }
  return result;
}

}  // namespace snmpv3fp::scan
