// Campaign checkpoint/resume (MIDAR-style staged, resumable probing).
//
// An Internet-wide two-scan campaign runs for days; a killed process must
// not restart from zero. The campaign serializes per-shard progress — the
// cursor into the (globally shuffled) probe order, the prober's RNG
// stream, the partial ScanRecord store, the pacer state and the complete
// per-shard fabric state (virtual clock, in-flight datagrams, stats) — to
// a JSON file via obs::json. Resuming from any checkpoint reproduces the
// uninterrupted campaign bit-for-bit at any thread count, because every
// shard's state is self-contained and thread scheduling never touches it
// (tests/test_checkpoint.cpp enforces this at 1/2/8 threads).
//
// Exactness notes: every 64-bit RNG word and IEEE double travels as a hex
// bit pattern (JSON numbers round-trip only 53 bits); addresses travel as
// strings; payloads as hex.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scan/pacer.hpp"
#include "scan/record.hpp"
#include "sim/fabric.hpp"
#include "store/record_store.hpp"

namespace snmpv3fp::scan {

// One shard's mid-scan snapshot. `cursor` counts probes already sent from
// the shard's slice of the global probe order; everything else is the
// state needed to continue the shard as if it had never stopped.
struct ShardScanState {
  std::size_t shard = 0;
  std::size_t cursor = 0;
  bool complete = false;       // shard finished its slice (incl. drain)
  util::VTime next_send = 0;   // absolute virtual send time of probe `cursor`
  util::RngState rng;          // prober msg-id stream
  PacerState pacer;
  ScanResult partial;          // records so far (final result when complete)
  // Probes sent but not yet answered need their send times to stamp late
  // responses; sorted by address for a stable serialization.
  std::vector<std::pair<net::IpAddress, util::VTime>> sent_at;
  sim::FabricState fabric;
  // Store-backed campaigns: `partial.records` stays empty and the records
  // live in the shard's on-disk store; this manifest re-adopts them on
  // resume. Persisting it costs O(records since the last boundary) — the
  // open tail and patches — because the sealed blocks are already in the
  // store's own append-only files.
  std::optional<store::StoreManifest> store_manifest;
};

// Whole-campaign checkpoint: which scan is in progress, the completed
// first scan (once it exists), per-shard states of the in-progress scan,
// and the per-shard fabric states at the scan-1/scan-2 boundary (shards
// that never wrote a mid-scan-2 state still need their fabric continuity).
struct CampaignCheckpoint {
  static constexpr std::uint64_t kSchema = 1;

  // Guards against resuming with a different experiment configuration
  // (seed, shard count, family, rate, target list).
  std::uint64_t config_digest = 0;
  std::size_t scan_index = 1;  // 1 or 2: the scan in progress
  std::optional<ScanResult> scan1;  // merged result, present once complete
  // Store-backed campaigns: manifest of scan 1's merged store (the
  // ScanResult above then carries no records).
  std::optional<store::StoreManifest> scan1_manifest;
  std::vector<ShardScanState> shard_states;
  std::vector<sim::FabricState> scan_boundary_fabrics;

  std::string to_json() const;
  static std::optional<CampaignCheckpoint> from_json(std::string_view text);
};

// Atomic persistence: write to `<path>.tmp`, then rename over `path`.
// Returns false (after logging) on I/O failure — a scan must not die
// because its checkpoint disk filled up.
bool save_checkpoint(const CampaignCheckpoint& checkpoint,
                     const std::string& path);

// Loads and parses `path`; nullopt when absent or unparseable.
std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path);

// Removes a checkpoint file (used after a campaign completes).
void remove_checkpoint(const std::string& path);

}  // namespace snmpv3fp::scan
