// SNMPv2c MIB walker: repeated GetNext over a transport, the classic
// `snmpwalk` loop. Used by the lab-validation flow and the MIB tests;
// works over the simulated fabric or a real UDP socket transport.
#pragma once

#include <string>
#include <vector>

#include "net/transport.hpp"
#include "snmp/message.hpp"

namespace snmpv3fp::scan {

struct WalkOptions {
  std::string community = "pass123";
  asn1::Oid root = {1, 3, 6, 1, 2, 1};  // mib-2
  std::size_t max_entries = 4096;       // runaway guard
  util::VTime per_request_timeout = 2 * util::kSecond;
};

// Walks the subtree under `options.root`; stops at the end of the subtree,
// on timeout, on an endOfMibView-style NULL, or after max_entries.
std::vector<snmp::VarBind> snmp_walk(net::Transport& transport,
                                     const net::Endpoint& source,
                                     const net::Endpoint& agent,
                                     const WalkOptions& options = {});

// True when `oid` is inside the subtree rooted at `root`.
bool oid_in_subtree(const asn1::Oid& root, const asn1::Oid& oid);

}  // namespace snmpv3fp::scan
