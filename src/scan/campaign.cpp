#include "scan/campaign.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>

#include "net/packet_ring.hpp"

namespace snmpv3fp::scan {

namespace {

// Orders records by the global pacing schedule. send_time plus target is
// a total order over scan records (one probe per target), so any sorted
// sequence of the same records is unique — per-shard sorts followed by a
// k-way merge reproduce the historical concatenate-and-sort output bit
// for bit.
bool record_schedule_less(const ScanRecord& a, const ScanRecord& b) {
  if (a.send_time != b.send_time) return a.send_time < b.send_time;
  return a.target < b.target;
}

// Merges per-shard scan results back into one ScanResult ordered by probe
// time (the global pacing schedule), so the merged record order never
// depends on shard boundaries or scheduling. Store-backed shards merge via
// an external merge sort into one store (bounded RAM) and their per-shard
// files are removed; in-RAM shards arrive already sorted from the workers
// (sorting rides inside the parallel region) and k-way merge here — the
// serial tail is a single linear merge pass instead of a full sort.
ScanResult merge_shard_results(std::vector<ScanResult>& shards,
                               const store::StoreOptions& store_options,
                               const std::string& label) {
  ScanResult merged;
  bool first = true;
  bool store_backed = !shards.empty();
  for (auto& shard : shards) {
    if (first) {
      merged.label = shard.label;
      merged.start_time = shard.start_time;
      merged.end_time = shard.end_time;
      first = false;
    } else {
      merged.start_time = std::min(merged.start_time, shard.start_time);
      merged.end_time = std::max(merged.end_time, shard.end_time);
    }
    merged.targets_probed += shard.targets_probed;
    merged.probe_bytes = std::max(merged.probe_bytes, shard.probe_bytes);
    merged.undecodable_responses += shard.undecodable_responses;
    merged.pacer_backoffs += shard.pacer_backoffs;
    store_backed = store_backed && shard.store_backed();
  }

  if (store_backed) {
    std::vector<const store::RecordStore*> sources;
    sources.reserve(shards.size());
    for (const auto& shard : shards) sources.push_back(shard.store.get());
    auto sorted = store::sort_stores(
        sources, store::SortKey::kSendTimeTarget, store_options,
        label + "_merged", store::sort_chunk_records(store_options));
    if (sorted != nullptr) {
      merged.store = std::shared_ptr<store::RecordStore>(std::move(sorted));
      for (auto& shard : shards) {
        shard.store->remove_files();
        shard.store.reset();
      }
      return merged;
    }
    // A damaged shard store: fall through to the in-RAM merge with
    // whatever each store can still read (fail-soft, logged by the sort).
    obs::log_warn("store merge failed, falling back to in-RAM merge",
                  {{"scan", label}});
    for (auto& shard : shards) {
      shard.records = shard.store->materialize();
      // Materialized records come back in store (receive) order, not the
      // schedule order the worker-side sort guarantees for in-RAM shards.
      std::sort(shard.records.begin(), shard.records.end(),
                record_schedule_less);
      shard.store.reset();
    }
  }

  // K-way merge of the per-shard sorted runs. Shard schedules interleave
  // (shard k's j-th probe is global probe b_k + j), so this is a genuine
  // merge, but shard counts are small enough that a linear min-select
  // beats a heap.
  std::size_t total_records = 0;
  for (const auto& shard : shards) total_records += shard.records.size();
  merged.records.reserve(total_records);
  std::vector<std::size_t> heads(shards.size(), 0);
  while (merged.records.size() < total_records) {
    std::size_t best = shards.size();
    for (std::size_t k = 0; k < shards.size(); ++k) {
      if (heads[k] >= shards[k].records.size()) continue;
      if (best == shards.size() ||
          record_schedule_less(shards[k].records[heads[k]],
                               shards[best].records[heads[best]]))
        best = k;
    }
    merged.records.push_back(std::move(shards[best].records[heads[best]]));
    ++heads[best];
  }
  return merged;
}

// Shared mutable checkpoint state for one campaign run. Shard workers
// update their own slot under the mutex and persist the whole store; the
// final on-disk file after a simulated kill is deterministic because every
// shard settles at its own boundary regardless of scheduling.
class CheckpointStore {
 public:
  CheckpointStore(std::string path, std::uint64_t config_digest,
                  std::size_t shard_count, std::size_t abort_after)
      : path_(std::move(path)), abort_after_(abort_after) {
    data_.config_digest = config_digest;
    slots_.resize(shard_count);
    boundaries_crossed_.resize(shard_count, 0);
  }

  bool enabled() const { return !path_.empty(); }

  // Begins a scan: clears per-shard slots, keeps boundary fabrics/scan1.
  void begin_scan(std::size_t scan_index) {
    std::lock_guard<std::mutex> lock(mutex_);
    data_.scan_index = scan_index;
    std::fill(slots_.begin(), slots_.end(), std::nullopt);
  }

  void adopt_resume(const CampaignCheckpoint& resume) {
    std::lock_guard<std::mutex> lock(mutex_);
    data_.scan_index = resume.scan_index;
    data_.scan1 = resume.scan1;
    data_.scan1_manifest = resume.scan1_manifest;
    data_.scan_boundary_fabrics = resume.scan_boundary_fabrics;
    for (const auto& state : resume.shard_states)
      if (state.shard < slots_.size()) slots_[state.shard] = state;
  }

  // A shard crossed a checkpoint boundary: record its snapshot, persist,
  // and decide whether the simulated kill stops it here.
  bool record_boundary(std::size_t shard, ShardScanState state) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[shard] = std::move(state);
    ++boundaries_crossed_[shard];
    const bool keep_running =
        abort_after_ == 0 || boundaries_crossed_[shard] < abort_after_;
    if (!keep_running) aborted_ = true;
    persist_locked();
    return keep_running;
  }

  void mark_complete(std::size_t shard, const ScanResult& result,
                     sim::FabricState fabric,
                     std::optional<store::StoreManifest> manifest) {
    std::lock_guard<std::mutex> lock(mutex_);
    ShardScanState state;
    state.shard = shard;
    state.cursor = result.targets_probed;
    state.complete = true;
    state.partial = result;
    state.fabric = std::move(fabric);
    state.store_manifest = std::move(manifest);
    slots_[shard] = std::move(state);
  }

  // Scan 1 finished: persist its merged result plus every shard's fabric
  // at the scan boundary (shards without a mid-scan-2 snapshot resume
  // their fabric from here). Store-backed campaigns persist the merged
  // store's manifest instead of embedding records.
  void finish_scan1(ScanResult merged,
                    std::vector<sim::FabricState> boundary_fabrics) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (merged.store_backed()) data_.scan1_manifest = merged.store->manifest();
    data_.scan1 = std::move(merged);
    data_.scan_index = 2;
    data_.scan_boundary_fabrics = std::move(boundary_fabrics);
    std::fill(slots_.begin(), slots_.end(), std::nullopt);
    persist_locked();
  }

  void persist() {
    std::lock_guard<std::mutex> lock(mutex_);
    persist_locked();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

  const sim::FabricState* boundary_fabric(std::size_t shard) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shard >= data_.scan_boundary_fabrics.size()) return nullptr;
    return &data_.scan_boundary_fabrics[shard];
  }

 private:
  void persist_locked() {
    if (path_.empty()) return;
    data_.shard_states.clear();
    for (const auto& slot : slots_)
      if (slot.has_value()) data_.shard_states.push_back(*slot);
    save_checkpoint(data_, path_);
  }

  const std::string path_;
  const std::size_t abort_after_;
  mutable std::mutex mutex_;
  CampaignCheckpoint data_;
  std::vector<std::optional<ShardScanState>> slots_;
  std::vector<std::size_t> boundaries_crossed_;
  bool aborted_ = false;
};

std::uint64_t digest_config(const CampaignOptions& options,
                            const std::vector<net::IpAddress>& targets,
                            std::size_t shard_count) {
  std::uint64_t digest = util::hash_combine(options.seed, shard_count);
  digest = util::hash_combine(
      digest, static_cast<std::uint64_t>(options.family));
  digest = util::hash_combine(
      digest, static_cast<std::uint64_t>(options.first_scan_start));
  digest = util::hash_combine(
      digest, static_cast<std::uint64_t>(options.scan_gap));
  digest = util::hash_combine(digest,
                              std::bit_cast<std::uint64_t>(options.rate_pps));
  digest = util::hash_combine(digest, options.fabric.seed);
  digest = util::hash_combine(
      digest, static_cast<std::uint64_t>(options.pacer.adaptive));
  digest = util::hash_combine(
      digest,
      static_cast<std::uint64_t>(options.checkpoint_every_n_targets));
  // Store-backed and in-RAM checkpoints carry records differently (file
  // manifests vs embedded JSON); never resume across the two modes.
  digest = util::hash_combine(
      digest, static_cast<std::uint64_t>(options.store.dir.empty() ? 0 : 1));
  digest = util::hash_combine(
      digest, static_cast<std::uint64_t>(options.response_timeout));
  // Never resume a fabric checkpoint into a net-engine campaign (or the
  // reverse): the transports carry incompatible state. Execution-only
  // knobs (wire_fast_path, columnar, ring_receive) stay out of the
  // digest — a checkpoint taken with the ring receive path resumes
  // bit-identically without it, and vice versa.
  if (options.net_engine.has_value()) {
    digest = util::hash_combine(digest, 0x7e7e7e7e7e7e7e7eull);
    digest = util::hash_combine(
        digest, static_cast<std::uint64_t>(options.net_engine->clock));
  }
  if (options.target_spec.has_value()) {
    // Spec mode never materializes its targets; the sweep is identified by
    // its ranges and permutation parameters (a marker keeps a spec-mode
    // digest from ever colliding with a list-mode one).
    digest = util::hash_combine(digest, 0x5bec5bec5bec5becull);
    digest = util::hash_combine(digest, options.target_spec->ranges.size());
    for (const auto& range : options.target_spec->ranges) {
      digest = util::hash_combine(
          digest, static_cast<std::uint64_t>(range.base().value()));
      digest = util::hash_combine(
          digest, static_cast<std::uint64_t>(range.length()));
    }
    digest = util::hash_combine(
        digest, static_cast<std::uint64_t>(options.target_spec->feistel_rounds));
    return digest;
  }
  digest = util::hash_combine(digest, targets.size());
  for (const auto& address : targets)
    digest = util::hash_combine(digest, util::fnv1a64(address.to_string()));
  return digest;
}

}  // namespace

CampaignPair run_two_scan_campaign(topo::WorldModel& model,
                                   const CampaignOptions& options) {
  const std::uint64_t churn_seed = options.seed ^ 0xc0ffee;
  const bool spec_mode = options.target_spec.has_value();
  if (spec_mode && options.family != net::Family::kIpv4)
    throw std::invalid_argument("target_spec sweeps are IPv4-only");
  if (spec_mode && options.target_spec->ranges.empty())
    throw std::invalid_argument("target_spec needs at least one range");

  // Target list (list mode only; spec mode generates targets on demand):
  // explicit, or every address of the family assigned in either epoch (the
  // paper probes all routable space; probing known-dead space only burns
  // simulated time, so we probe the live superset). The second epoch's
  // addresses come from a model query instead of churning a full copy of
  // the world.
  std::vector<net::IpAddress> targets;
  if (!spec_mode) {
    targets = options.targets.has_value()
                  ? *options.targets
                  : model.campaign_targets(options.family, churn_seed);
  }

  const net::Endpoint prober_source{
      options.family == net::Family::kIpv4
          ? net::IpAddress(net::Ipv4(198, 51, 100, 7))
          : net::IpAddress(
                net::Ipv6::from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 7})),
      54321};

  // One transport per shard, persistent across both scans (clock and stats
  // continuity, like the former single fabric). Fabric mode: shards only
  // ever read the model while probing (each holds its own device view, so
  // lazy worlds derive into per-shard caches with no locking); churn is
  // applied between the scans. Net mode: each shard opens its own
  // BatchedUdpEngine socket and the wire's far side owns all delivery
  // semantics; the engines likewise live across both scans.
  const std::size_t shard_count = std::max<std::size_t>(options.shards, 1);
  const bool net_mode = options.net_engine.has_value();
  const bool wall_mode =
      net_mode && options.net_engine->clock == net::EngineClock::kWall;
  std::vector<std::unique_ptr<sim::Fabric>> fabrics;
  std::vector<std::unique_ptr<net::BatchedUdpEngine>> engines;
  std::unique_ptr<net::PacketRingGroup> ring_group;
  std::vector<net::Transport*> transports(shard_count, nullptr);
  if (net_mode) {
    engines.reserve(shard_count);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      auto engine = net::BatchedUdpEngine::open(*options.net_engine);
      if (!engine.ok()) {
        CampaignPair failed;
        failed.net_error = engine.error();
        return failed;
      }
      engines.push_back(std::move(engine).value());
      transports[shard] = engines.back().get();
    }
    if (options.ring_receive) {
      // First rung of the receive fallback chain: ring -> recvmmsg ->
      // recvfrom. Ring setup failing (no CAP_NET_RAW, no AF_PACKET) just
      // leaves the engines on their recvmmsg half.
      net::PacketRingConfig ring_config;  // loopback engines: capture "lo"
      auto group = net::PacketRingGroup::create(ring_config, shard_count);
      if (group.ok()) {
        ring_group = std::move(group).value();
        for (std::size_t shard = 0; shard < shard_count; ++shard) {
          ring_group->register_port(engines[shard]->local_endpoint().port,
                                    shard);
          engines[shard]->attach_ring(ring_group->view(shard));
        }
        obs::log_info("packet ring receive attached",
                      {{"shards", shard_count}});
      } else {
        obs::log_warn("packet ring unavailable, falling back to recvmmsg",
                      {{"error", group.error()}});
      }
    }
  } else {
    fabrics.reserve(shard_count);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      sim::FabricConfig config = options.fabric;
      config.seed = util::hash_combine(options.fabric.seed, shard);
      fabrics.push_back(std::make_unique<sim::Fabric>(model, config));
      transports[shard] = fabrics.back().get();
    }
  }

  const std::uint64_t digest = digest_config(options, targets, shard_count);
  CheckpointStore store(options.checkpoint_path, digest, shard_count,
                        options.abort_after_checkpoints);

  const bool store_mode = !options.store.dir.empty();

  // Resume: a checkpoint from the same configuration continues where the
  // previous process stopped; anything else is ignored with a warning. The
  // loaded checkpoint must outlive the scan that consumes its slots.
  bool resuming = false;
  std::size_t resume_scan_index = 1;
  std::optional<CampaignCheckpoint> resumed;
  // Store mode, resuming past scan 1: scan 1's records live in its merged
  // store's files; re-adopt them before committing to the resume (a
  // checkpoint whose store files are gone is as useless as no checkpoint).
  std::shared_ptr<store::RecordStore> scan1_store;
  if (store.enabled()) {
    if (auto loaded = load_checkpoint(options.checkpoint_path)) {
      bool adoptable = loaded->config_digest == digest;
      if (!adoptable) {
        obs::log_warn("checkpoint config mismatch, starting fresh",
                      {{"path", options.checkpoint_path}});
      } else if (store_mode && loaded->scan_index == 2) {
        if (loaded->scan1_manifest.has_value())
          scan1_store = store::RecordStore::restore(options.store,
                                                    *loaded->scan1_manifest);
        if (scan1_store == nullptr) {
          adoptable = false;
          obs::log_warn("checkpoint scan1 store unrecoverable, starting fresh",
                        {{"path", options.checkpoint_path}});
        }
      }
      if (adoptable) {
        resuming = true;
        resume_scan_index = loaded->scan_index;
        store.adopt_resume(*loaded);
        obs::log_info("campaign resuming from checkpoint",
                      {{"path", options.checkpoint_path},
                       {"scan", loaded->scan_index},
                       {"shard_states", loaded->shard_states.size()}});
        resumed = std::move(loaded);
      }
    }
  }

  const auto gap =
      static_cast<util::VTime>(static_cast<double>(util::kSecond) /
                               std::max(options.rate_pps, 1.0));

  // Runs one sharded scan; `resume_slots[shard]` (when non-null) continues
  // that shard from its snapshot. Returns nullopt when a simulated kill
  // interrupted the scan (the checkpoint file then holds the state).
  const auto run_sharded_scan =
      [&](const std::string& label, std::uint64_t scan_seed, util::VTime start,
          std::size_t scan_index,
          const std::vector<const ShardScanState*>& resume_slots)
      -> std::optional<ScanResult> {
    obs::Span scan_span(options.obs.trace(), options.obs.scoped(label));
    if (store.enabled() && !resuming) store.begin_scan(scan_index);

    // Global randomization first, then contiguous slices: shard k's slice
    // starts at global probe index b_k and is paced with send_offset =
    // b_k * gap, so the union of shard schedules equals one sequential
    // scan's. List mode shuffles a materialized copy (the historical
    // path); spec mode seeds a Feistel permutation and computes each
    // shard's window positionally — nothing is materialized.
    std::vector<net::IpAddress> order;
    std::optional<TargetGenerator> generator;
    if (spec_mode) {
      generator.emplace(*options.target_spec, scan_seed);
    } else {
      order = targets;
      util::Rng rng(scan_seed);
      rng.shuffle(order);
    }

    const std::size_t n = spec_mode
                              ? static_cast<std::size_t>(generator->size())
                              : order.size();
    const std::size_t base = shard_count == 0 ? 0 : n / shard_count;
    const std::size_t extra = shard_count == 0 ? 0 : n % shard_count;
    std::vector<ScanResult> shard_results(shard_count);
    // Per-shard wall times land in worker-owned slots and are reported
    // from this thread in shard order — the observer sequence (like the
    // scan output) never depends on worker scheduling.
    std::vector<double> shard_wall_ms(shard_count, 0.0);
    // Wire-path counters are registered here, on the orchestrating thread,
    // before the workers start (obs counter creation is not thread-safe;
    // Counter::add is). Shards share them — add() uses relaxed atomics.
    obs::Counter wire_fast_parses =
        options.obs.counter(label + ".wire.fast_parses");
    obs::Counter wire_parse_fallbacks =
        options.obs.counter(label + ".wire.parse_fallbacks");
    obs::Counter wire_stamped_probes =
        options.obs.counter(label + ".wire.stamped_probes");
    obs::Counter wire_full_encodes =
        options.obs.counter(label + ".wire.full_encodes");
    // Live telemetry: every handle (timeline tracks, flight rings, status
    // slots, the RTT histogram, store metrics) is registered here on the
    // orchestrating thread; workers only write through the pre-bound
    // handles. The RTT histogram observes virtual-clock round-trips, so
    // its buckets are deterministic at any thread count.
    const std::string stage = options.obs.scoped(label);
    obs::Histogram rtt_hist = options.obs.histogram(
        label + ".rtt_ms",
        {1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0});
    std::vector<obs::ShardTelemetry> shard_telemetry(shard_count);
    std::vector<obs::SpanRecord> shard_spans(shard_count);
    store::StoreOptions shard_store_options = options.store;
    obs::FlightHandle scan_flight;  // scan-level boundary events
    if (options.obs.enabled()) {
      obs::Timeline* timeline = options.obs.timeline();
      obs::FlightRecorder* flight = options.obs.flight();
      obs::StatusBoard* board = options.obs.status_board();
      if (store_mode) {
        auto& st = shard_store_options.telemetry;
        st.resident_bytes = options.obs.gauge("store.resident_bytes");
        st.sealed_blocks = options.obs.counter("store.sealed_blocks");
        st.spilled_blocks = options.obs.counter("store.spilled_blocks");
        st.evicted_blocks = options.obs.counter("store.evicted_blocks");
        st.patched_records = options.obs.counter("store.patched_records");
      }
      if (flight->enabled()) {
        scan_flight = flight->handle(stage, shard_count);
        scan_flight.record(obs::FlightEventKind::kScanBoundary, start,
                           static_cast<std::int64_t>(n), "scan_start");
      }
      for (std::size_t shard = 0; shard < shard_count; ++shard) {
        auto& telemetry = shard_telemetry[shard];
        telemetry.rtt_ms = rtt_hist;
        if (timeline->enabled())
          telemetry.timeline = timeline->recorder(stage, shard);
        if (flight->enabled()) telemetry.flight = flight->handle(stage, shard);
        if (board->enabled()) {
          const std::size_t begin = shard * base + std::min(shard, extra);
          const std::size_t end = begin + base + (shard < extra ? 1 : 0);
          telemetry.status = board->add_shard(stage, shard, end - begin);
        }
      }
    }
    util::parallel_for(0, shard_count, options.parallel, [&](std::size_t shard) {
      const auto t0 = std::chrono::steady_clock::now();
      // The worker's span finishes detached into its slot; the orchestrator
      // records the slots in shard order after the join (deterministic
      // sequence, true per-thread timing for the Chrome trace).
      obs::Span shard_span(options.obs.trace(),
                           stage + ".shard" + std::to_string(shard));
      shard_span.set_shard(static_cast<std::int64_t>(shard));
      // Per-shard store options: shared aggregate metrics, own flight ring.
      store::StoreOptions my_store_options = shard_store_options;
      my_store_options.telemetry.flight = shard_telemetry[shard].flight;
      const ShardScanState* resume_state = resume_slots[shard];
      std::shared_ptr<store::RecordStore> shard_store;
      if (store_mode && resume_state != nullptr) {
        // Re-adopt the shard's record store before anything else: a shard
        // whose store files are unrecoverable simply re-runs fresh, which
        // reproduces the uninterrupted output (just without the head
        // start), so damage degrades resume speed, never correctness.
        if (resume_state->store_manifest.has_value())
          shard_store = store::RecordStore::restore(
              my_store_options, *resume_state->store_manifest);
        if (shard_store == nullptr) {
          obs::log_warn("shard store unrecoverable, re-running shard",
                        {{"shard", shard}});
          resume_state = nullptr;
        }
      }
      if (resume_state != nullptr) {
        // Fabric state rides in the snapshot; a completed shard needs no
        // re-probing at all, only its result and fabric back. Net engines
        // carry no resumable transport state (the kernel socket is fresh),
        // so their snapshots hold an empty FabricState.
        if (!net_mode) fabrics[shard]->restore(resume_state->fabric);
        if (resume_state->complete) {
          shard_results[shard] = resume_state->partial;
          shard_results[shard].store = shard_store;
          if (store.enabled())
            store.mark_complete(shard, shard_results[shard],
                                resume_state->fabric,
                                resume_state->store_manifest);
          shard_spans[shard] = shard_span.finish_record();
          return;
        }
      } else if (!net_mode && scan_index == 2 && resuming &&
                 resume_scan_index == 2) {
        // Shard with no mid-scan-2 snapshot: its fabric continues from the
        // scan-1/scan-2 boundary.
        if (const auto* boundary = store.boundary_fabric(shard))
          fabrics[shard]->restore(*boundary);
      }
      if (store_mode && shard_store == nullptr)
        shard_store = std::make_shared<store::RecordStore>(
            my_store_options, label + "_shard" + std::to_string(shard));

      const std::size_t begin = shard * base + std::min(shard, extra);
      const std::size_t end = begin + base + (shard < extra ? 1 : 0);
      // The shard's window of the global probe order: a borrowed span of
      // the shuffled list, or a positional slice of the permuted sweep.
      std::optional<SpanTargets> span_slice;
      std::optional<GeneratorSlice> generator_slice;
      const TargetSequence* slice = nullptr;
      if (spec_mode) {
        generator_slice.emplace(*generator, begin, end);
        slice = &*generator_slice;
      } else {
        span_slice.emplace(
            std::span<const net::IpAddress>(order.data() + begin, end - begin));
        slice = &*span_slice;
      }
      ProbeConfig probe;
      probe.label = label;
      probe.rate_pps = options.rate_pps;
      probe.seed = util::hash_combine(scan_seed, shard);
      probe.randomize_order = false;  // already shuffled globally
      probe.send_offset = static_cast<util::VTime>(begin) * gap;
      probe.response_timeout = options.response_timeout;
      if (wall_mode) {
        // Real clocks tick for every shard at once: the target rate splits
        // across shards and the virtual interleaving offsets collapse —
        // wall schedules are wall schedules, not reconstructions of one
        // sequential scan.
        probe.rate_pps =
            options.rate_pps / static_cast<double>(shard_count);
        probe.send_offset = 0;
        probe.wall_pacing = true;
      }
      // Generated sweeps cover orders of magnitude more dead space than
      // they have responders; forgetting send times past the worst-case
      // round trip keeps the outstanding-probe map constant-sized. List
      // mode keeps the historical retain-everything behavior bit for bit.
      if (spec_mode)
        probe.sent_horizon = options.fabric.max_rtt + util::kSecond;
      probe.pacer = options.pacer;
      probe.resume = resume_state;
      probe.sink = shard_store.get();
      probe.wire_fast_path = options.wire_fast_path;
      probe.wire_fast_parses = wire_fast_parses;
      probe.wire_parse_fallbacks = wire_parse_fallbacks;
      probe.wire_stamped_probes = wire_stamped_probes;
      probe.wire_full_encodes = wire_full_encodes;
      probe.telemetry = shard_telemetry[shard];
      if (store.enabled() && options.checkpoint_every_n_targets != 0) {
        probe.checkpoint_every_n_targets = options.checkpoint_every_n_targets;
        probe.on_checkpoint = [&, shard](ShardScanState& state) {
          state.shard = shard;
          if (!net_mode) state.fabric = fabrics[shard]->snapshot();
          const bool keep_running =
              store.record_boundary(shard, std::move(state));
          // The flight trail lands on disk beside every checkpoint, so a
          // crash right after the boundary still leaves a diagnosable dump.
          if (obs::FlightRecorder* flight = options.obs.flight();
              flight != nullptr && flight->enabled())
            flight->dump("checkpoint");
          return keep_running;
        };
      }
      Prober prober(*transports[shard], prober_source);
      ScanResult result = prober.run(*slice, probe, start);
      result.store = shard_store;
      // A shard that ran to the end is complete even if a sibling already
      // aborted — the final persisted file must not re-probe it on resume.
      // end_time is only set after the final drain, never on an abort.
      const bool ran_to_end = result.end_time != 0;
      // In-RAM shards sort their own records here, inside the parallel
      // region, so the post-barrier merge is a linear k-way pass. The sort
      // must precede mark_complete: a completed shard's checkpointed
      // records re-enter the merge as-is on resume. Mid-scan snapshots are
      // untouched (the prober checkpoints receive-order records; a resumed
      // shard appends to them and sorts here at its own end).
      if (ran_to_end)
        std::sort(result.records.begin(), result.records.end(),
                  record_schedule_less);
      if (store.enabled() && ran_to_end)
        store.mark_complete(shard, result,
                            net_mode ? sim::FabricState{}
                                     : fabrics[shard]->snapshot(),
                            shard_store != nullptr
                                ? std::optional<store::StoreManifest>(
                                      shard_store->manifest())
                                : std::nullopt);
      shard_results[shard] = std::move(result);
      if (ran_to_end)
        shard_span.set_virtual_duration(shard_results[shard].end_time -
                                        shard_results[shard].start_time);
      shard_spans[shard] = shard_span.finish_record();
      shard_wall_ms[shard] = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    });

    if (options.obs.enabled()) {
      // Record the detached worker spans in shard order — the observer
      // sequence never depends on worker scheduling — and before the abort
      // check, so an interrupted run still carries its shard spans.
      const std::uint32_t shard_depth = scan_span.depth() + 1;
      for (std::size_t shard = 0; shard < shard_count; ++shard) {
        obs::SpanRecord record = std::move(shard_spans[shard]);
        if (record.name.empty()) continue;
        record.depth = shard_depth;
        options.obs.trace()->record(std::move(record));
      }
    }

    if (store.aborted()) {
      // Settle the file with every shard at its final (deterministic)
      // boundary-or-complete state before reporting the interruption.
      store.persist();
      obs::log_info("campaign interrupted at checkpoint",
                    {{"scan", options.obs.scoped(label)},
                     {"path", options.checkpoint_path}});
      return std::nullopt;
    }

    if (options.obs.enabled()) {
      for (std::size_t shard = 0; shard < shard_count; ++shard)
        options.obs.observer->add_shard_progress(
            {stage, shard, shard_results[shard].targets_probed,
             shard_results[shard].responsive(), shard_wall_ms[shard]});
    }

    ScanResult merged = merge_shard_results(shard_results, options.store, label);
    scan_span.set_virtual_duration(merged.end_time - merged.start_time);
    if (options.obs.enabled()) {
      options.obs.counter(label + ".targets").add(merged.targets_probed);
      options.obs.counter(label + ".responsive").add(merged.responsive());
      options.obs.counter(label + ".undecodable")
          .add(merged.undecodable_responses);
      options.obs.counter(label + ".backoffs").add(merged.pacer_backoffs);
      if (scan_flight.enabled())
        scan_flight.record(obs::FlightEventKind::kScanBoundary,
                           merged.end_time,
                           static_cast<std::int64_t>(merged.targets_probed),
                           "scan_end");
      if (obs::StatusBoard* board = options.obs.status_board();
          board->enabled())
        board->mark_stage_complete(stage);
    }
    obs::log_info("scan finished",
                  {{"scan", options.obs.scoped(label)},
                   {"targets", merged.targets_probed},
                   {"responsive", merged.responsive()},
                   {"undecodable", merged.undecodable_responses},
                   {"backoffs", merged.pacer_backoffs},
                   {"shards", shard_count}});
    return merged;
  };

  // Final telemetry flush: the flight trail and status surface always land
  // on disk once more at campaign exit, interrupted or not.
  const auto flush_telemetry = [&](bool interrupted) {
    if (obs::FlightRecorder* flight = options.obs.flight();
        flight != nullptr && flight->enabled())
      flight->dump(interrupted ? "interrupted" : "exit");
    if (obs::StatusBoard* board = options.obs.status_board();
        board != nullptr && board->enabled())
      board->write_now();
  };

  // Per-shard resume slots for the scan the checkpoint interrupted.
  std::vector<const ShardScanState*> no_resume(shard_count, nullptr);
  const auto slots_for_scan =
      [&](const CampaignCheckpoint& data) {
        std::vector<const ShardScanState*> slots(shard_count, nullptr);
        for (const auto& state : data.shard_states)
          if (state.shard < shard_count) slots[state.shard] = &state;
        return slots;
      };

  CampaignPair out;
  // Lazy-device cache telemetry survives every exit, interrupted or not
  // (a census bench wants the hit rate even when it kills the run).
  const auto collect_cache_stats = [&] {
    for (const auto& fabric : fabrics)
      out.responder_cache += fabric->cache_stats();
    for (const auto& engine : engines) out.net_io += engine->stats();
    // Ring blocks/drops/parse rejections are per-ring, not per-engine:
    // fold the group's aggregate in exactly once.
    if (ring_group != nullptr) out.net_io += ring_group->stats();
  };
  if (resuming && resume_scan_index == 2) {
    // Scan 1 finished in a previous process: take its merged result (in
    // store mode the records come back through the re-adopted store).
    out.scan1 = resumed->scan1.value_or(ScanResult{});
    out.scan1.store = scan1_store;
  } else {
    const auto slots = (resuming && resume_scan_index == 1)
                           ? slots_for_scan(*resumed)
                           : no_resume;
    auto scan1 = run_sharded_scan("scan1", options.seed * 2 + 1,
                                  options.first_scan_start, 1, slots);
    resuming = false;  // past the resume point either way
    if (!scan1.has_value()) {
      out.interrupted = true;
      collect_cache_stats();
      flush_telemetry(true);
      return out;
    }
    out.scan1 = std::move(*scan1);
    if (store.enabled()) {
      std::vector<sim::FabricState> boundary;
      boundary.reserve(shard_count);
      for (const auto& fabric : fabrics) boundary.push_back(fabric->snapshot());
      store.finish_scan1(out.scan1, std::move(boundary));
    }
  }

  model.apply_churn(churn_seed);

  {
    const auto slots = (resuming && resume_scan_index == 2)
                           ? slots_for_scan(*resumed)
                           : no_resume;
    auto scan2 =
        run_sharded_scan("scan2", options.seed * 2 + 2,
                         options.first_scan_start + options.scan_gap, 2, slots);
    resuming = false;
    if (!scan2.has_value()) {
      out.interrupted = true;
      collect_cache_stats();
      flush_telemetry(true);
      return out;
    }
    out.scan2 = std::move(*scan2);
  }

  for (const auto& fabric : fabrics) out.fabric_stats += fabric->stats();
  collect_cache_stats();
  if (store.enabled()) remove_checkpoint(options.checkpoint_path);
  flush_telemetry(false);
  return out;
}

CampaignPair run_two_scan_campaign(topo::World& world,
                                   const CampaignOptions& options) {
  topo::MaterializedWorldModel model(world);
  return run_two_scan_campaign(model, options);
}

}  // namespace snmpv3fp::scan
