#include "scan/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

namespace snmpv3fp::scan {

namespace {

// Merges per-shard scan results back into one ScanResult ordered by probe
// time (the global pacing schedule), so the merged record order never
// depends on shard boundaries or scheduling.
ScanResult merge_shard_results(std::vector<ScanResult>& shards) {
  ScanResult merged;
  std::size_t total_records = 0;
  for (const auto& shard : shards) total_records += shard.records.size();
  merged.records.reserve(total_records);
  bool first = true;
  for (auto& shard : shards) {
    if (first) {
      merged.label = shard.label;
      merged.start_time = shard.start_time;
      merged.end_time = shard.end_time;
      first = false;
    } else {
      merged.start_time = std::min(merged.start_time, shard.start_time);
      merged.end_time = std::max(merged.end_time, shard.end_time);
    }
    merged.targets_probed += shard.targets_probed;
    merged.probe_bytes = std::max(merged.probe_bytes, shard.probe_bytes);
    std::move(shard.records.begin(), shard.records.end(),
              std::back_inserter(merged.records));
  }
  std::sort(merged.records.begin(), merged.records.end(),
            [](const ScanRecord& a, const ScanRecord& b) {
              if (a.send_time != b.send_time) return a.send_time < b.send_time;
              return a.target < b.target;
            });
  return merged;
}

}  // namespace

CampaignPair run_two_scan_campaign(topo::World& world,
                                   const CampaignOptions& options) {
  const std::uint64_t churn_seed = options.seed ^ 0xc0ffee;

  // Target list: explicit, or every address of the family assigned in
  // either epoch (the paper probes all routable space; probing known-dead
  // space only burns simulated time, so we probe the live superset). The
  // second epoch's addresses are computed by a world query instead of
  // churning a full copy of the world.
  std::vector<net::IpAddress> targets;
  if (options.targets.has_value()) {
    targets = *options.targets;
  } else {
    targets = world.addresses(options.family);
    const auto later = world.addresses_after_churn(churn_seed, options.family);
    targets.insert(targets.end(), later.begin(), later.end());
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  }

  const net::Endpoint prober_source{
      options.family == net::Family::kIpv4
          ? net::IpAddress(net::Ipv4(198, 51, 100, 7))
          : net::IpAddress(
                net::Ipv6::from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 7})),
      54321};

  // One fabric per shard, persistent across both scans (clock and stats
  // continuity, like the former single fabric). Shards only ever touch the
  // world read-only while probing; churn is applied between the scans.
  const std::size_t shard_count = std::max<std::size_t>(options.shards, 1);
  std::vector<std::unique_ptr<sim::Fabric>> fabrics;
  fabrics.reserve(shard_count);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    sim::FabricConfig config = options.fabric;
    config.seed = util::hash_combine(options.fabric.seed, shard);
    fabrics.push_back(std::make_unique<sim::Fabric>(world, config));
  }

  const auto gap =
      static_cast<util::VTime>(static_cast<double>(util::kSecond) /
                               std::max(options.rate_pps, 1.0));

  const auto run_sharded_scan = [&](const std::string& label,
                                    std::uint64_t scan_seed,
                                    util::VTime start) {
    obs::Span scan_span(options.obs.trace(), options.obs.scoped(label));

    // Global shuffle first, then contiguous slices: shard k's slice starts
    // at global probe index b_k and is paced with send_offset = b_k * gap,
    // so the union of shard schedules equals one sequential scan's.
    std::vector<net::IpAddress> order = targets;
    util::Rng rng(scan_seed);
    rng.shuffle(order);

    const std::size_t n = order.size();
    const std::size_t base = shard_count == 0 ? 0 : n / shard_count;
    const std::size_t extra = shard_count == 0 ? 0 : n % shard_count;
    std::vector<ScanResult> shard_results(shard_count);
    // Per-shard wall times land in worker-owned slots and are reported
    // from this thread in shard order — the observer sequence (like the
    // scan output) never depends on worker scheduling.
    std::vector<double> shard_wall_ms(shard_count, 0.0);
    util::parallel_for(0, shard_count, options.parallel, [&](std::size_t shard) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t begin = shard * base + std::min(shard, extra);
      const std::size_t end = begin + base + (shard < extra ? 1 : 0);
      const std::vector<net::IpAddress> slice(order.begin() + begin,
                                              order.begin() + end);
      ProbeConfig probe;
      probe.label = label;
      probe.rate_pps = options.rate_pps;
      probe.seed = util::hash_combine(scan_seed, shard);
      probe.randomize_order = false;  // already shuffled globally
      probe.send_offset = static_cast<util::VTime>(begin) * gap;
      Prober prober(*fabrics[shard], prober_source);
      shard_results[shard] = prober.run(slice, probe, start);
      shard_wall_ms[shard] = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    });

    if (options.obs.enabled()) {
      const std::string stage = options.obs.scoped(label);
      for (std::size_t shard = 0; shard < shard_count; ++shard)
        options.obs.observer->add_shard_progress(
            {stage, shard, shard_results[shard].targets_probed,
             shard_results[shard].records.size(), shard_wall_ms[shard]});
    }

    ScanResult merged = merge_shard_results(shard_results);
    scan_span.set_virtual_duration(merged.end_time - merged.start_time);
    if (options.obs.enabled()) {
      options.obs.counter(label + ".targets").add(merged.targets_probed);
      options.obs.counter(label + ".responsive").add(merged.records.size());
    }
    obs::log_info("scan finished",
                  {{"scan", options.obs.scoped(label)},
                   {"targets", merged.targets_probed},
                   {"responsive", merged.records.size()},
                   {"shards", shard_count}});
    return merged;
  };

  CampaignPair out;
  out.scan1 = run_sharded_scan("scan1", options.seed * 2 + 1,
                               options.first_scan_start);

  world.rebind_churning_devices(churn_seed);

  out.scan2 = run_sharded_scan("scan2", options.seed * 2 + 2,
                               options.first_scan_start + options.scan_gap);

  for (const auto& fabric : fabrics) out.fabric_stats += fabric->stats();
  return out;
}

}  // namespace snmpv3fp::scan
