#include "scan/campaign.hpp"

#include <algorithm>
#include <set>

namespace snmpv3fp::scan {

CampaignPair run_two_scan_campaign(topo::World& world,
                                   const CampaignOptions& options) {
  const std::uint64_t churn_seed = options.seed ^ 0xc0ffee;

  // Target list: explicit, or every address of the family assigned in
  // either epoch (the paper probes all routable space; probing known-dead
  // space only burns simulated time, so we probe the live superset).
  std::vector<net::IpAddress> targets;
  if (options.targets.has_value()) {
    targets = *options.targets;
  } else {
    targets = world.addresses(options.family);
    topo::World second_epoch = world;
    second_epoch.rebind_churning_devices(churn_seed);
    const auto later = second_epoch.addresses(options.family);
    std::set<net::IpAddress> merged(targets.begin(), targets.end());
    merged.insert(later.begin(), later.end());
    targets.assign(merged.begin(), merged.end());
  }

  sim::Fabric fabric(world, options.fabric);
  const net::Endpoint prober_source{
      options.family == net::Family::kIpv4
          ? net::IpAddress(net::Ipv4(198, 51, 100, 7))
          : net::IpAddress(
                net::Ipv6::from_groups({0x2001, 0xdb8, 0, 0, 0, 0, 0, 7})),
      54321};
  Prober prober(fabric, prober_source);

  ProbeConfig probe;
  probe.rate_pps = options.rate_pps;

  CampaignPair out;
  probe.label = "scan1";
  probe.seed = options.seed * 2 + 1;
  out.scan1 = prober.run(targets, probe, options.first_scan_start);

  world.rebind_churning_devices(churn_seed);

  probe.label = "scan2";
  probe.seed = options.seed * 2 + 2;
  out.scan2 = prober.run(targets, probe,
                         options.first_scan_start + options.scan_gap);
  out.fabric_stats = fabric.stats();
  return out;
}

}  // namespace snmpv3fp::scan
