#include "util/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace snmpv3fp::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  have_spare_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // ok for full range? span==0 means full width
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  // Inverse-CDF over precomputation-free harmonic approximation would be
  // costly per call; for the modest n used in topology synthesis a simple
  // rejection scheme against the continuous envelope suffices.
  // P(k) ~ (k+1)^-s, k in [0, n).
  for (;;) {
    const double u = uniform01();
    // Continuous inverse of the envelope CDF.
    double x;
    if (s == 1.0) {
      x = std::pow(static_cast<double>(n) + 1.0, u) - 1.0;
    } else {
      const double top = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
      x = std::pow(u * (top - 1.0) + 1.0, 1.0 / (1.0 - s)) - 1.0;
    }
    const auto k = static_cast<std::size_t>(x);
    if (k < n) {
      // Accept/reject to correct the discretization.
      const double ratio = std::pow((x + 1.0) / (static_cast<double>(k) + 1.0), s);
      if (uniform01() < ratio) return k;
    }
  }
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric slop lands on the last entry
}

Rng Rng::fork(std::string_view label) {
  return Rng(next() ^ fnv1a64(label));
}

RngState Rng::save_state() const {
  RngState state;
  state.words = state_;
  state.have_spare_normal = have_spare_normal_;
  state.spare_normal_bits = std::bit_cast<std::uint64_t>(spare_normal_);
  return state;
}

void Rng::restore_state(const RngState& state) {
  state_ = state.words;
  have_spare_normal_ = state.have_spare_normal;
  spare_normal_ = std::bit_cast<double>(state.spare_normal_bits);
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace snmpv3fp::util
