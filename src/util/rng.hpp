// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulated Internet (topology synthesis,
// scan target shuffling, packet loss, clock skew, ...) draws from an
// explicitly seeded Rng so that a campaign is reproducible byte-for-byte
// from its seed. We implement xoshiro256** (public domain, Blackman/Vigna)
// seeded through SplitMix64 rather than std::mt19937 because its state is
// tiny, it is fast, and its output is stable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace snmpv3fp::util {

// Complete serializable generator state, for checkpoint/resume: restoring
// a saved state continues the exact output stream, including the cached
// Box-Muller spare (held as raw IEEE bits so a JSON round trip is exact).
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool have_spare_normal = false;
  std::uint64_t spare_normal_bits = 0;

  bool operator==(const RngState&) const = default;
};

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's rejection-free
  // multiply-shift with rejection for exactness.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool chance(double p);

  // Standard normal via polar Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given mean.
  double exponential(double mean);

  // Bounded Zipf-like rank sample in [0, n): P(k) ~ 1/(k+1)^s.
  std::size_t zipf(std::size_t n, double s);

  // Index into `weights` chosen proportionally to the weights (which need
  // not be normalized; non-positive weights are treated as zero).
  std::size_t weighted_index(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  // Derives an independent child generator; `label` decorrelates children
  // created from the same parent state.
  Rng fork(std::string_view label);

  // Checkpoint/resume: the full state round-trips through RngState.
  RngState save_state() const;
  void restore_state(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Stable 64-bit FNV-1a hash, used to derive per-entity seeds from names.
std::uint64_t fnv1a64(std::string_view text);

}  // namespace snmpv3fp::util
