// Plain-text table rendering for the bench binaries.
//
// Every bench target prints "the same rows/series the paper reports";
// TablePrinter keeps that output aligned and diff-friendly, and CsvWriter
// dumps the same data machine-readably next to it.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace snmpv3fp::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders an aligned ASCII table (header, rule, rows).
  std::string render() const;
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers used throughout the benches.
std::string fmt_count(std::size_t n);              // 12345678 -> "12,345,678"
std::string fmt_compact(double n);                 // 12.5e6 -> "12.5M", 31k...
std::string fmt_percent(double fraction, int dp = 1);  // 0.123 -> "12.3%"
std::string fmt_double(double v, int dp = 2);

// Minimal CSV emitter (RFC 4180 quoting).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snmpv3fp::util
