// MD5 (RFC 1321) and SHA-1 (RFC 3174) digests, implemented from scratch.
//
// SNMPv3's User-based Security Model authenticates messages with
// HMAC-MD5-96 or HMAC-SHA1-96 over keys localized to the agent's engine ID
// (RFC 3414). These are NOT general-purpose secure hash recommendations —
// they are exactly the (dated) algorithms the deployed protocol uses, and
// the brute-force demo in examples/ depends on bit-exact behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace snmpv3fp::util {

using Md5Digest = std::array<std::uint8_t, 16>;
using Sha1Digest = std::array<std::uint8_t, 20>;

class Md5 {
 public:
  Md5();
  void update(ByteView data);
  Md5Digest finish();  // invalidates the context

  static Md5Digest hash(ByteView data) {
    Md5 md5;
    md5.update(data);
    return md5.finish();
  }

 private:
  void process_block(const std::uint8_t* block);
  std::array<std::uint32_t, 4> state_;
  std::uint64_t length_ = 0;  // total bytes fed
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

class Sha1 {
 public:
  Sha1();
  void update(ByteView data);
  Sha1Digest finish();

  static Sha1Digest hash(ByteView data) {
    Sha1 sha;
    sha.update(data);
    return sha.finish();
  }

 private:
  void process_block(const std::uint8_t* block);
  std::array<std::uint32_t, 5> state_;
  std::uint64_t length_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

// HMAC (RFC 2104) over either hash; key of any length; full-size output.
Bytes hmac_md5(ByteView key, ByteView message);
Bytes hmac_sha1(ByteView key, ByteView message);

}  // namespace snmpv3fp::util
