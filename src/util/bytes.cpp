#include "util/bytes.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace snmpv3fp::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::string to_hex_colon(ByteView data) {
  std::string out;
  if (data.empty()) return out;
  out.reserve(data.size() * 3 - 1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(':');
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

Result<Bytes> from_hex(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  int high = -1;
  for (char c : hex) {
    if (c == ':' || c == ' ') continue;
    const int v = hex_value(c);
    if (v < 0) return Result<Bytes>::failure("invalid hex digit");
    if (high < 0) {
      high = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((high << 4) | v));
      high = -1;
    }
  }
  if (high >= 0) return Result<Bytes>::failure("odd number of hex digits");
  return out;
}

void append_be(Bytes& out, std::uint64_t value, std::size_t width) {
  assert(width <= 8);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t shift = 8 * (width - 1 - i);
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

std::uint64_t read_be(ByteView data) {
  assert(data.size() <= 8);
  std::uint64_t value = 0;
  for (std::uint8_t b : data) value = (value << 8) | b;
  return value;
}

std::size_t hamming_weight(ByteView data) {
  std::size_t total = 0;
  for (std::uint8_t b : data) total += static_cast<std::size_t>(std::popcount(b));
  return total;
}

double relative_hamming_weight(ByteView data) {
  if (data.empty()) return 0.0;
  return static_cast<double>(hamming_weight(data)) /
         static_cast<double>(data.size() * 8);
}

bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace snmpv3fp::util
