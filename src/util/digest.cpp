#include "util/digest.hpp"

#include <cstring>

namespace snmpv3fp::util {

namespace {

std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

// ---------------------------------------------------------------------------
// MD5 (RFC 1321)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                               5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                               6, 10, 15, 21};

}  // namespace

Md5::Md5() : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476} {}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<std::uint32_t>(block[4 * i]) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kMd5K[i] + m[g], kMd5Shift[i]);
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(ByteView data) {
  length_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Md5Digest Md5::finish() {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad = 0x80;
  update(ByteView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(ByteView(&zero, 1));
  std::uint8_t length_le[8];
  for (int i = 0; i < 8; ++i)
    length_le[i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
  update(ByteView(length_le, 8));

  Md5Digest digest{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      digest[4 * i + j] = static_cast<std::uint8_t>(state_[i] >> (8 * j));
  return digest;
}

// ---------------------------------------------------------------------------
// SHA-1 (RFC 3174)
// ---------------------------------------------------------------------------

Sha1::Sha1()
    : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0} {}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i)
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteView data) {
  length_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad = 0x80;
  update(ByteView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(ByteView(&zero, 1));
  std::uint8_t length_be[8];
  for (int i = 0; i < 8; ++i)
    length_be[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  update(ByteView(length_be, 8));

  Sha1Digest digest{};
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 4; ++j)
      digest[4 * i + j] = static_cast<std::uint8_t>(state_[i] >> (8 * (3 - j)));
  return digest;
}

// ---------------------------------------------------------------------------
// HMAC (RFC 2104)
// ---------------------------------------------------------------------------

namespace {

template <typename Hash, std::size_t DigestSize>
Bytes hmac(ByteView key, ByteView message) {
  std::array<std::uint8_t, 64> padded_key{};
  if (key.size() > 64) {
    Hash hasher;
    hasher.update(key);
    const auto digest = hasher.finish();
    std::memcpy(padded_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(padded_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad{}, opad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = padded_key[i] ^ 0x36;
    opad[i] = padded_key[i] ^ 0x5c;
  }

  Hash inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Hash outer;
  outer.update(opad);
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  const auto digest = outer.finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

Bytes hmac_md5(ByteView key, ByteView message) {
  return hmac<Md5, 16>(key, message);
}

Bytes hmac_sha1(ByteView key, ByteView message) {
  return hmac<Sha1, 20>(key, message);
}

}  // namespace snmpv3fp::util
