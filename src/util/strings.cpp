#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace snmpv3fp::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace snmpv3fp::util
