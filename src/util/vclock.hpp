// Virtual time.
//
// The paper's identifiers are *times*: engine time (seconds since SNMP
// engine boot) and the derived last-reboot time. Scan campaigns run days
// apart. Rather than sleeping, the whole simulation advances an explicit
// virtual clock, which also makes campaigns reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace snmpv3fp::util {

// Virtual timestamps count microseconds from a simulated epoch.
using VTime = std::int64_t;

constexpr VTime kMicrosecond = 1;
constexpr VTime kMillisecond = 1000 * kMicrosecond;
constexpr VTime kSecond = 1000 * kMillisecond;
constexpr VTime kMinute = 60 * kSecond;
constexpr VTime kHour = 60 * kMinute;
constexpr VTime kDay = 24 * kHour;
constexpr VTime kYear = 365 * kDay;

// The simulated epoch (VTime 0) corresponds to 2021-04-16T00:00:00Z — the
// paper's first scan day — which is 1,618,531,200 s after the Unix epoch.
// Engine times larger than `now - kUnixEpochVtime` imply a reboot before
// 1970 and are rejected by the "engine time in the future" filter.
constexpr VTime kUnixEpochVtime = -1618531200LL * 1000000LL;

constexpr double to_seconds(VTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr VTime from_seconds(double s) {
  return static_cast<VTime>(s * static_cast<double>(kSecond));
}

// Renders a VTime as "D+hh:mm:ss" relative to the simulated epoch,
// or "-D+hh:mm:ss" for negative times (events before the epoch).
std::string format_vtime(VTime t);

class VirtualClock {
 public:
  explicit VirtualClock(VTime start = 0) : now_(start) {}

  VTime now() const { return now_; }
  void advance(VTime delta) { now_ += delta; }
  // Never moves backwards; a target in the past is a no-op.
  void advance_to(VTime target) {
    if (target > now_) now_ = target;
  }

 private:
  VTime now_;
};

}  // namespace snmpv3fp::util
