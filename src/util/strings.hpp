// String helpers shared across modules (parsing PTR names, CLI args, ...).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace snmpv3fp::util {

std::vector<std::string> split(std::string_view text, char delim);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace snmpv3fp::util
