// Fixed-size thread pool + deterministic data-parallel helpers.
//
// Every parallel stage in the pipeline follows one rule: shard the input by
// a structure that depends only on the INPUT (contiguous index chunks, or a
// fixed hash-shard count), compute shard results independently, then merge
// in shard order. Because the shard structure never depends on how many
// threads execute it, the output is bit-identical at any thread count —
// `threads=1` is an exact sequential fallback, not a different algorithm.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace snmpv3fp::util {

// Worker-count default: SNMPFP_THREADS env var when set (> 0), otherwise
// std::thread::hardware_concurrency(), never below 1.
std::size_t default_thread_count();

struct ParallelOptions {
  // 0 = default_thread_count(). 1 = run inline on the calling thread.
  std::size_t threads = 0;

  std::size_t resolved_threads() const {
    return threads == 0 ? default_thread_count() : threads;
  }
};

// A small fixed-size pool of workers. Batches submitted through run_tasks
// are index spaces [0, count); workers (and the submitting thread, which
// participates) claim indices atomically. run_tasks blocks until the whole
// batch finished and rethrows the first exception a task threw. Tasks
// submitted from inside a pool worker run inline to avoid deadlock.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_; }

  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& task);

  // Process-wide pool used by parallel_for / parallel_map. Sized to
  // default_thread_count() but never below 2, so races are exercised (and
  // TSan-visible) even on single-core CI machines.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;
  std::size_t workers_;
};

// Splits [begin, end) into at most resolved_threads() contiguous chunks and
// runs chunk_fn(chunk_index, chunk_begin, chunk_end) for each. Chunks are
// only a scheduling granularity: merging per-chunk results in chunk order
// reproduces sequential left-to-right order for any chunk count. With one
// chunk (threads=1, or a short range) chunk_fn runs inline, in order.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, const ParallelOptions& options,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        chunk_fn);

// Convenience per-index form of parallel_for_chunks.
void parallel_for(std::size_t begin, std::size_t end,
                  const ParallelOptions& options,
                  const std::function<void(std::size_t)>& fn);

// Ordered map: out[i] = fn(i). Results land in index order regardless of
// which thread computed them. Each chunk emplaces into its own reserved
// vector and the chunks are moved into place in chunk order, so no slot is
// ever default-constructed first and assigned over (the intermediate-copy
// churn the old `out[i] = fn(i)` form showed up as in allocation profiles).
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, const ParallelOptions& options,
                            Fn&& fn) {
  const std::size_t threads = std::max<std::size_t>(
      options.resolved_threads(), 1);
  std::vector<std::vector<T>> parts(std::min(std::max<std::size_t>(count, 1),
                                             threads));
  parallel_for_chunks(
      0, count, options,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& local = parts[chunk];
        local.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) local.emplace_back(fn(i));
      });
  std::vector<T> out;
  out.reserve(count);
  for (auto& part : parts)
    for (auto& value : part) out.push_back(std::move(value));
  return out;
}

// SplitMix64-style mixer for deriving independent per-shard seeds from a
// campaign seed: hash_combine(seed, shard) never collides with the parent
// stream in practice and is stable across platforms.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

// Optional instrumentation for a BoundedQueue (attach with
// set_telemetry). Plain atomics so util stays independent of the obs
// layer; core/overlap.cpp publishes these into the metrics registry.
// Stall time is wall-clock microseconds a side spent blocked on the
// queue — producer stalls mean the consumer is the bottleneck and vice
// versa — so overlap backpressure shows up in timeline and trace.
struct QueueTelemetry {
  std::atomic<std::uint64_t> items{0};              // total pushes accepted
  std::atomic<std::uint64_t> producer_stall_us{0};  // push() blocked (full)
  std::atomic<std::uint64_t> consumer_stall_us{0};  // pop() blocked (empty)
  std::atomic<std::uint64_t> max_depth{0};          // high-water item count
  std::atomic<std::int64_t> depth{0};               // current item count
};

// Bounded single-producer/single-consumer handoff queue for overlapping
// pipeline stages (producer fills blocks while the consumer drains them).
// push blocks when `capacity` items are in flight — backpressure, so the
// producer can never run unboundedly ahead of the consumer. close() wakes
// a blocked pop, which then returns nullopt once the queue drains.
// Determinism: the queue only changes *when* items are processed, never
// their order — items pop in push order.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  // Execution-only instrumentation; attach before the first push/pop.
  void set_telemetry(QueueTelemetry* telemetry) { telemetry_ = telemetry; }

  void push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (telemetry_ != nullptr && items_.size() >= capacity_ && !closed_) {
      const auto blocked_at = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      telemetry_->producer_stall_us.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - blocked_at)
              .count(),
          std::memory_order_relaxed);
    } else {
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return;  // producer-after-close: drop (consumer is gone)
    items_.push_back(std::move(item));
    if (telemetry_ != nullptr) {
      telemetry_->items.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t depth = items_.size();
      telemetry_->depth.store(static_cast<std::int64_t>(depth),
                              std::memory_order_relaxed);
      std::uint64_t prev =
          telemetry_->max_depth.load(std::memory_order_relaxed);
      while (depth > prev && !telemetry_->max_depth.compare_exchange_weak(
                                 prev, depth, std::memory_order_relaxed)) {
      }
    }
    not_empty_.notify_one();
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (telemetry_ != nullptr && items_.empty() && !closed_) {
      const auto blocked_at = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      telemetry_->consumer_stall_us.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - blocked_at)
              .count(),
          std::memory_order_relaxed);
    } else {
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (telemetry_ != nullptr)
      telemetry_->depth.store(static_cast<std::int64_t>(items_.size()),
                              std::memory_order_relaxed);
    not_full_.notify_one();
    return item;
  }

  // Producer is done (or the consumer aborts): unblocks both sides.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  QueueTelemetry* telemetry_ = nullptr;
};

// Runs `tasks` concurrently on dedicated threads (the calling thread takes
// the first task) and joins them all; rethrows the first exception in task
// order. Unlike ThreadPool::run_tasks this never queues behind pool work
// and never inlines when nested, so producer/consumer stage pairs that
// block on a BoundedQueue cannot deadlock against pool scheduling. Meant
// for a handful of long-lived stage drivers, not data parallelism.
void run_overlapped(const std::vector<std::function<void()>>& tasks);

}  // namespace snmpv3fp::util
