// Fixed-size thread pool + deterministic data-parallel helpers.
//
// Every parallel stage in the pipeline follows one rule: shard the input by
// a structure that depends only on the INPUT (contiguous index chunks, or a
// fixed hash-shard count), compute shard results independently, then merge
// in shard order. Because the shard structure never depends on how many
// threads execute it, the output is bit-identical at any thread count —
// `threads=1` is an exact sequential fallback, not a different algorithm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace snmpv3fp::util {

// Worker-count default: SNMPFP_THREADS env var when set (> 0), otherwise
// std::thread::hardware_concurrency(), never below 1.
std::size_t default_thread_count();

struct ParallelOptions {
  // 0 = default_thread_count(). 1 = run inline on the calling thread.
  std::size_t threads = 0;

  std::size_t resolved_threads() const {
    return threads == 0 ? default_thread_count() : threads;
  }
};

// A small fixed-size pool of workers. Batches submitted through run_tasks
// are index spaces [0, count); workers (and the submitting thread, which
// participates) claim indices atomically. run_tasks blocks until the whole
// batch finished and rethrows the first exception a task threw. Tasks
// submitted from inside a pool worker run inline to avoid deadlock.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_; }

  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& task);

  // Process-wide pool used by parallel_for / parallel_map. Sized to
  // default_thread_count() but never below 2, so races are exercised (and
  // TSan-visible) even on single-core CI machines.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;
  std::size_t workers_;
};

// Splits [begin, end) into at most resolved_threads() contiguous chunks and
// runs chunk_fn(chunk_index, chunk_begin, chunk_end) for each. Chunks are
// only a scheduling granularity: merging per-chunk results in chunk order
// reproduces sequential left-to-right order for any chunk count. With one
// chunk (threads=1, or a short range) chunk_fn runs inline, in order.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, const ParallelOptions& options,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        chunk_fn);

// Convenience per-index form of parallel_for_chunks.
void parallel_for(std::size_t begin, std::size_t end,
                  const ParallelOptions& options,
                  const std::function<void(std::size_t)>& fn);

// Ordered map: out[i] = fn(i). Results land in index order regardless of
// which thread computed them.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, const ParallelOptions& options,
                            Fn&& fn) {
  std::vector<T> out(count);
  parallel_for(0, count, options,
               [&](std::size_t index) { out[index] = fn(index); });
  return out;
}

// SplitMix64-style mixer for deriving independent per-shard seeds from a
// campaign seed: hash_combine(seed, shard) never collides with the parent
// stream in practice and is stable across platforms.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

}  // namespace snmpv3fp::util
