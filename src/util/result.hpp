// Minimal expected-like result type used by the no-throw decode paths.
//
// C++20 has no std::expected, and the BER/SNMP decoders must be able to
// reject arbitrary attacker-controlled bytes without throwing (Core
// Guidelines E.3: use exceptions only for genuinely exceptional conditions;
// a malformed packet from the Internet is the common case, not the
// exception). Result<T> carries either a value or a short error string.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace snmpv3fp::util {

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string message) {
    return Result(Error{std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  struct Error {
    std::string message;
  };
  explicit Result(Error e) : data_(std::move(e)) {}
  std::variant<T, Error> data_;
};

// Success/failure with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  static Status failure(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }
  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& error() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace snmpv3fp::util
