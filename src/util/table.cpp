#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace snmpv3fp::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << cells[i] << std::string(widths[i] - cells[i].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print(std::ostream& os) const { os << render(); }

std::string fmt_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - first) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_compact(double n) {
  char buf[32];
  const double a = std::fabs(n);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fB", n / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", n / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", n / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", n);
  }
  return buf;
}

std::string fmt_percent(double fraction, int dp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", dp, fraction * 100.0);
  return buf;
}

std::string fmt_double(double v, int dp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", dp, v);
  return buf;
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace snmpv3fp::util
