#include "util/aes.hpp"

#include <cassert>
#include <cstring>

namespace snmpv3fp::util {

namespace {

// GF(2^8) multiplication modulo the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    const bool carry = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (carry) a ^= 0x1b;
    b >>= 1;
  }
  return result;
}

// The S-box computed from first principles: multiplicative inverse in
// GF(2^8) followed by the FIPS 197 affine transformation.
const std::array<std::uint8_t, 256>& sbox() {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int x = 0; x < 256; ++x) {
      // Inverse by exhaustive search (x^254 would also do); inv(0) = 0.
      std::uint8_t inv = 0;
      if (x != 0) {
        for (int candidate = 1; candidate < 256; ++candidate) {
          if (gf_mul(static_cast<std::uint8_t>(x),
                     static_cast<std::uint8_t>(candidate)) == 1) {
            inv = static_cast<std::uint8_t>(candidate);
            break;
          }
        }
      }
      std::uint8_t y = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int b = ((inv >> bit) ^ (inv >> ((bit + 4) % 8)) ^
                       (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8)) ^
                       (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)) &
                      1;
        y = static_cast<std::uint8_t>(y | (b << bit));
      }
      t[static_cast<std::size_t>(x)] = y;
    }
    return t;
  }();
  return table;
}

}  // namespace

Aes128::Aes128(ByteView key) {
  assert(key.size() == 16);
  // Key expansion (FIPS 197 §5.2) for AES-128: 44 words.
  std::memcpy(round_keys_.data(), key.data(), 16);
  std::uint8_t rcon = 0x01;
  for (int word = 4; word < 44; ++word) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (word - 1), 4);
    if (word % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t first = temp[0];
      temp[0] = static_cast<std::uint8_t>(sbox()[temp[1]] ^ rcon);
      temp[1] = sbox()[temp[2]];
      temp[2] = sbox()[temp[3]];
      temp[3] = sbox()[first];
      rcon = gf_mul(rcon, 2);
    }
    for (int i = 0; i < 4; ++i)
      round_keys_[4 * word + i] =
          round_keys_[4 * (word - 4) + i] ^ temp[i];
  }
}

void Aes128::encrypt_block(std::uint8_t block[16]) const {
  const auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) block[i] ^= round_keys_[16 * round + i];
  };
  const auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) block[i] = sbox()[block[i]];
  };
  const auto shift_rows = [&] {
    // State is column-major: byte index = 4*col + row.
    std::uint8_t t[16];
    std::memcpy(t, block, 16);
    for (int row = 1; row < 4; ++row)
      for (int col = 0; col < 4; ++col)
        block[4 * col + row] = t[4 * ((col + row) % 4) + row];
  };
  const auto mix_columns = [&] {
    for (int col = 0; col < 4; ++col) {
      std::uint8_t* c = block + 4 * col;
      const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
      c[1] = a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
      c[2] = a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
      c[3] = gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
    }
  };

  add_round_key(0);
  for (int round = 1; round < 10; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

Bytes Aes128::cfb_encrypt(ByteView iv, ByteView plaintext) const {
  assert(iv.size() == 16);
  Bytes out(plaintext.begin(), plaintext.end());
  std::uint8_t feedback[16];
  std::memcpy(feedback, iv.data(), 16);
  for (std::size_t offset = 0; offset < out.size(); offset += 16) {
    std::uint8_t keystream[16];
    std::memcpy(keystream, feedback, 16);
    encrypt_block(keystream);
    const std::size_t chunk = std::min<std::size_t>(16, out.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) out[offset + i] ^= keystream[i];
    // Ciphertext becomes the next feedback (RFC 3826 tolerates a short
    // final segment: the trailing keystream bytes are simply unused).
    if (chunk == 16) std::memcpy(feedback, out.data() + offset, 16);
  }
  return out;
}

Bytes Aes128::cfb_decrypt(ByteView iv, ByteView ciphertext) const {
  assert(iv.size() == 16);
  Bytes out(ciphertext.begin(), ciphertext.end());
  std::uint8_t feedback[16];
  std::memcpy(feedback, iv.data(), 16);
  for (std::size_t offset = 0; offset < out.size(); offset += 16) {
    std::uint8_t keystream[16];
    std::memcpy(keystream, feedback, 16);
    encrypt_block(keystream);
    const std::size_t chunk = std::min<std::size_t>(16, out.size() - offset);
    // Feedback is the *ciphertext* block — copy before overwriting.
    if (chunk == 16) std::memcpy(feedback, out.data() + offset, 16);
    for (std::size_t i = 0; i < chunk; ++i) out[offset + i] ^= keystream[i];
  }
  return out;
}

}  // namespace snmpv3fp::util
