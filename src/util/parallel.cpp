#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace snmpv3fp::util {

std::size_t default_thread_count() {
  static const std::size_t count = [] {
    if (const char* env = std::getenv("SNMPFP_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return count;
}

namespace {

// One run_tasks call. Indices are claimed with fetch_add; after a task
// throws, remaining indices are claimed but skipped so the batch drains
// quickly and the first exception is rethrown to the submitter.
struct Batch {
  std::function<void(std::size_t)> task;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr exception;
  std::mutex mutex;
  std::condition_variable finished;

  // Claims and runs indices until the batch is exhausted.
  void work() {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          task(index);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!exception) exception = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mutex);
        finished.notify_all();
      }
    }
  }

  bool complete() const {
    return done.load(std::memory_order_acquire) == count;
  }
};

thread_local bool tls_in_worker = false;

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::deque<std::shared_ptr<Batch>> queue;
  std::vector<std::thread> threads;
  bool stopping = false;

  void worker_loop() {
    tls_in_worker = true;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        batch = queue.front();
        // A batch stays queued until its index space is exhausted so every
        // idle worker can join it; the claimer that sees the end pops it.
        if (batch->next.load(std::memory_order_relaxed) >= batch->count) {
          queue.pop_front();
          continue;
        }
      }
      batch->work();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), workers_(threads == 0 ? 1 : threads) {
  impl_->threads.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i)
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& thread : impl_->threads) thread.join();
  delete impl_;
}

void ThreadPool::run_tasks(std::size_t count,
                           const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  // Inline when called from a worker (nested parallelism) — claiming pool
  // workers from a pool worker can deadlock once the pool is saturated.
  if (tls_in_worker || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->task = task;
  batch->count = count;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(batch);
  }
  impl_->work_ready.notify_all();
  // The submitting thread participates instead of blocking idle.
  batch->work();
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->finished.wait(lock, [&] { return batch->complete(); });
    if (batch->exception) std::rethrow_exception(batch->exception);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max<std::size_t>(default_thread_count(), 2));
  return pool;
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end, const ParallelOptions& options,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        chunk_fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t threads = std::max<std::size_t>(options.resolved_threads(), 1);
  const std::size_t chunks = std::min(threads, n);
  if (chunks <= 1) {
    chunk_fn(0, begin, end);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  ThreadPool::shared().run_tasks(chunks, [&](std::size_t chunk) {
    // First `extra` chunks take one more item; offsets stay contiguous.
    const std::size_t chunk_begin =
        begin + chunk * base + std::min(chunk, extra);
    const std::size_t chunk_end = chunk_begin + base + (chunk < extra ? 1 : 0);
    chunk_fn(chunk, chunk_begin, chunk_end);
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const ParallelOptions& options,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, options,
                      [&](std::size_t, std::size_t chunk_begin,
                          std::size_t chunk_end) {
                        for (std::size_t i = chunk_begin; i < chunk_end; ++i)
                          fn(i);
                      });
}

void run_overlapped(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  std::vector<std::exception_ptr> errors(tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(tasks.size() - 1);
  for (std::size_t i = 1; i < tasks.size(); ++i)
    threads.emplace_back([&, i] {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  try {
    tasks[0]();
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& thread : threads) thread.join();
  for (auto& error : errors)
    if (error) std::rethrow_exception(error);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (value + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace snmpv3fp::util
