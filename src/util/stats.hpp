// Small statistics toolkit: ECDFs, histograms and summary statistics.
//
// Nearly every figure in the paper is an empirical CDF (Figures 4, 8, 9,
// 10, 13, 14, 17-20) or a binned distribution (Figures 5, 6); Ecdf and
// Histogram are the common currency between the analytics code and the
// bench binaries that print those figures.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace snmpv3fp::util {

// Empirical cumulative distribution function over double samples.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void add(double sample);
  // Must be called after the last add() and before queries; idempotent.
  void finalize();

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Fraction of samples <= x (0 for empty ECDF).
  double fraction_at_most(double x) const;

  // Smallest sample s such that fraction_at_most(s) >= q, q in [0, 1].
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;
  double median() const { return quantile(0.5); }

  // Evaluates the ECDF at `points` evenly spaced sample positions;
  // returns (x, F(x)) pairs convenient for printing a curve.
  std::vector<std::pair<double, double>> curve(std::size_t points = 20) const;

  const std::vector<double>& sorted_samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
// edge bins so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  double bin_fraction(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Streaming mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Counter keyed by string with convenience accessors; used for the many
// "share per category" breakdowns (vendors, formats, regions).
class Tally {
 public:
  void add(const std::string& key, std::size_t count = 1);
  std::size_t get(const std::string& key) const;
  std::size_t total() const { return total_; }
  double fraction(const std::string& key) const;
  // Keys sorted by descending count (ties broken lexicographically).
  std::vector<std::pair<std::string, std::size_t>> sorted() const;
  const std::map<std::string, std::size_t>& raw() const { return counts_; }

 private:
  std::map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace snmpv3fp::util
