#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace snmpv3fp::util {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {
  finalize();
}

void Ecdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Ecdf::finalize() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  assert(sorted_);
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  assert(!samples_.empty());
  assert(sorted_);
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())) - 1.0);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Ecdf::min() const {
  assert(!samples_.empty() && sorted_);
  return samples_.front();
}

double Ecdf::max() const {
  assert(!samples_.empty() && sorted_);
  return samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  assert(sorted_);
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples_.size())) - 1.0);
    const double x = samples_[std::min(idx, samples_.size() - 1)];
    out.emplace_back(x, q);
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double sample) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((sample - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return bin_low(bin) + width / 2.0;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Tally::add(const std::string& key, std::size_t count) {
  counts_[key] += count;
  total_ += count;
}

std::size_t Tally::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double Tally::fraction(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(get(key)) / static_cast<double>(total_);
}

std::vector<std::pair<std::string, std::size_t>> Tally::sorted() const {
  std::vector<std::pair<std::string, std::size_t>> out(counts_.begin(),
                                                       counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace snmpv3fp::util
