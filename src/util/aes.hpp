// AES-128 block cipher (FIPS 197) and CFB-128 mode, from scratch.
//
// SNMPv3's modern privacy protocol is usmAesCfb128Protocol (RFC 3826):
// the scoped PDU travels AES-128-CFB-encrypted under a localized privacy
// key. CFB only ever uses the forward cipher, so only encryption of a
// single block is implemented. The S-box is computed (GF(2^8) inverse +
// affine map) rather than transcribed, and validated against the FIPS 197
// appendix vectors in the tests.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace snmpv3fp::util {

class Aes128 {
 public:
  explicit Aes128(ByteView key);  // key must be 16 bytes

  // Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[16]) const;

  // CFB-128 segment mode: ciphertext[i] = plaintext[i] XOR E(prev block);
  // encryption and decryption differ only in which side feeds back.
  Bytes cfb_encrypt(ByteView iv, ByteView plaintext) const;
  Bytes cfb_decrypt(ByteView iv, ByteView ciphertext) const;

 private:
  std::array<std::uint8_t, 176> round_keys_{};  // 11 round keys
};

}  // namespace snmpv3fp::util
