// Byte-buffer helpers: hex encoding/decoding, big-endian integer packing,
// and Hamming-weight utilities used by the engine-ID randomness analysis
// (paper Figure 6).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace snmpv3fp::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

// Lower-case hex without separators, e.g. {0x80,0x00} -> "8000".
std::string to_hex(ByteView data);

// Hex with ':' separators, e.g. "74:8e:f8:31:db:80".
std::string to_hex_colon(ByteView data);

// Parses hex (with or without ':' separators, case-insensitive).
Result<Bytes> from_hex(std::string_view hex);

// Appends `value`'s `width` least-significant bytes, most significant first.
void append_be(Bytes& out, std::uint64_t value, std::size_t width);

// Reads a big-endian unsigned integer of `data.size()` bytes (size <= 8).
std::uint64_t read_be(ByteView data);

// Number of bits set across the whole buffer.
std::size_t hamming_weight(ByteView data);

// hamming_weight / bit-length; 0 for an empty buffer.
double relative_hamming_weight(ByteView data);

// Lexicographic comparison helper for using Bytes as map keys is provided by
// std::vector already; this is equality on a view for convenience.
bool equal(ByteView a, ByteView b);

}  // namespace snmpv3fp::util
