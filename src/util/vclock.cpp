#include "util/vclock.hpp"

#include <cstdio>
#include <cstdlib>

namespace snmpv3fp::util {

std::string format_vtime(VTime t) {
  const bool negative = t < 0;
  std::int64_t us = negative ? -t : t;
  const std::int64_t days = us / kDay;
  us %= kDay;
  const std::int64_t hours = us / kHour;
  us %= kHour;
  const std::int64_t minutes = us / kMinute;
  us %= kMinute;
  const std::int64_t seconds = us / kSecond;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%lld+%02lld:%02lld:%02lld",
                negative ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(minutes),
                static_cast<long long>(seconds));
  return buf;
}

}  // namespace snmpv3fp::util
