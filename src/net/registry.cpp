#include "net/registry.hpp"

#include <algorithm>

namespace snmpv3fp::net {

namespace {

// Representative OUI assignments. Values for the vendors that matter to the
// reproduction are real IEEE assignments where well known (e.g. 74:8e:f8 is
// the Brocade block shown in the paper's Figure 3); the remainder are
// representative blocks that are internally consistent with this registry.
struct OuiSeed {
  std::uint32_t oui;
  std::string_view vendor;
};

constexpr OuiSeed kOuiSeeds[] = {
    // Cisco Systems — multiple blocks, as in the real registry.
    {0x00000c, "Cisco"},   {0x001b0d, "Cisco"},   {0x58971e, "Cisco"},
    {0x0023ea, "Cisco"},   {0x7c95f3, "Cisco"},   {0xf8664d, "Cisco"},
    {0x501cbf, "Cisco"},   {0x88f031, "Cisco"},
    // Huawei Technologies.
    {0x00e0fc, "Huawei"},  {0x001882, "Huawei"},  {0x4846fb, "Huawei"},
    {0x286ed4, "Huawei"},  {0xf84abf, "Huawei"},  {0x781dba, "Huawei"},
    // Juniper Networks.
    {0x000585, "Juniper"}, {0x28c0da, "Juniper"}, {0x2c6bf5, "Juniper"},
    {0x80711f, "Juniper"}, {0xf01c2d, "Juniper"},
    // New H3C Technologies.
    {0x3ce5a6, "H3C"},     {0x70baef, "H3C"},     {0x586ab1, "H3C"},
    // Brocade Communications Systems (74:8e:f8 appears in paper Fig. 3).
    {0x748ef8, "Brocade"}, {0x00049f, "Brocade"}, {0x002438, "Brocade"},
    // Broadcom (reference designs inside CPE).
    {0x001018, "Broadcom"}, {0xd07ab5, "Broadcom"}, {0xbcf2af, "Broadcom"},
    // Thomson / Technicolor home gateways.
    {0x001f9f, "Thomson"}, {0x3c81d8, "Thomson"}, {0x88d274, "Thomson"},
    // Netgear.
    {0x00095b, "Netgear"}, {0x204e7f, "Netgear"}, {0xa040a0, "Netgear"},
    // Ambit Microsystems (cable modems).
    {0x00d059, "Ambit"},   {0x001d6b, "Ambit"},
    // Ruijie Networks.
    {0x00749c, "Ruijie"},  {0x58696c, "Ruijie"},
    // OneAccess Networks.
    {0x70fc8c, "OneAccess"}, {0x0030b8, "OneAccess"},
    // Adtran.
    {0x00a0c8, "Adtran"},  {0xe0f6b5, "Adtran"},
    // MikroTik.
    {0x4c5e0c, "MikroTik"}, {0xd4ca6d, "MikroTik"}, {0x6c3b6b, "MikroTik"},
    // ZTE.
    {0x0019c6, "ZTE"},     {0x98f537, "ZTE"},
    // Nokia / Alcatel-Lucent service routers.
    {0x00d0f6, "Nokia"},   {0xa47b2c, "Nokia"},
    // Ericsson.
    {0x0001ec, "Ericsson"}, {0x3c19a4, "Ericsson"},
    // Arista Networks.
    {0x001c73, "Arista"},  {0x28993a, "Arista"},
    // Fortinet.
    {0x00090f, "Fortinet"}, {0x085b0e, "Fortinet"},
    // Zyxel.
    {0x00a0c5, "Zyxel"},   {0x5cf4ab, "Zyxel"},
    // D-Link.
    {0x14d64d, "D-Link"},  {0x340804, "D-Link"},
    // TP-Link.
    {0xf4f26d, "TP-Link"}, {0x50c7bf, "TP-Link"},
    // Ubiquiti.
    {0x24a43c, "Ubiquiti"}, {0xdc9fdb, "Ubiquiti"},
    // Sagemcom (ISP-supplied CPE).
    {0x68a378, "Sagemcom"}, {0x7c03ab, "Sagemcom"},
    // AVM (Fritz!Box).
    {0x3ca62f, "AVM"},     {0xc80e14, "AVM"},
    // Calix access gear.
    {0x000631, "Calix"},   {0xd0768f, "Calix"},
    // Extreme Networks.
    {0x00e02b, "Extreme"}, {0xb85d0a, "Extreme"},
    // Hewlett Packard Enterprise.
    {0x001b78, "HPE"},     {0x9457a5, "HPE"},
    // Dell.
    {0x001422, "Dell"},    {0xf8bc12, "Dell"},
    // Intel NICs (servers running Net-SNMP usually expose an Intel MAC).
    {0x001b21, "Intel"},   {0xa0369f, "Intel"},   {0x3cfdfe, "Intel"},
    // Super Micro (servers).
    {0x002590, "Supermicro"}, {0xac1f6b, "Supermicro"},
    // 00:00:00 is registered (historically Xerox). The Cisco constant
    // engine-ID bug (paper §4.3) embeds a zero MAC, which therefore
    // *survives* the unregistered-OUI filter — as it did in the paper.
    {0x000000, "Xerox"},
};

struct PenSeed {
  std::uint32_t pen;
  std::string_view vendor;
};

// IANA Private Enterprise Numbers: major ones are the real assignments
// (9 = Cisco, 2011 = Huawei, 2636 = Juniper, 1991 = Foundry/Brocade,
// 8072 = Net-SNMP, 25506 = H3C, 14988 = MikroTik, 4526 = Netgear, ...).
constexpr PenSeed kPenSeeds[] = {
    {9, "Cisco"},        {2011, "Huawei"},    {2636, "Juniper"},
    {25506, "H3C"},      {1991, "Brocade"},   {4413, "Broadcom"},
    {2863, "Thomson"},   {4526, "Netgear"},   {6889, "Ambit"},
    {4881, "Ruijie"},    {13191, "OneAccess"},{664, "Adtran"},
    {14988, "MikroTik"}, {3902, "ZTE"},       {6527, "Nokia"},
    {193, "Ericsson"},   {30065, "Arista"},   {12356, "Fortinet"},
    {890, "Zyxel"},      {171, "D-Link"},     {11863, "TP-Link"},
    {41112, "Ubiquiti"}, {4329, "Sagemcom"},  {872, "AVM"},
    {6321, "Calix"},     {1916, "Extreme"},   {11, "HPE"},
    {674, "Dell"},       {343, "Intel"},      {10876, "Supermicro"},
    {8072, "Net-SNMP"},
};

}  // namespace

OuiRegistry::OuiRegistry(std::vector<Entry> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.oui < b.oui; });
}

const OuiRegistry& OuiRegistry::embedded() {
  static const OuiRegistry registry = [] {
    std::vector<Entry> entries;
    entries.reserve(std::size(kOuiSeeds));
    for (const auto& seed : kOuiSeeds) entries.push_back({seed.oui, seed.vendor});
    return OuiRegistry(std::move(entries));
  }();
  return registry;
}

std::optional<std::string_view> OuiRegistry::vendor_of(std::uint32_t oui) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), oui,
      [](const Entry& e, std::uint32_t v) { return e.oui < v; });
  if (it == entries_.end() || it->oui != oui) return std::nullopt;
  return it->vendor;
}

std::vector<std::uint32_t> OuiRegistry::ouis_of(std::string_view vendor) const {
  std::vector<std::uint32_t> out;
  for (const auto& e : entries_)
    if (e.vendor == vendor) out.push_back(e.oui);
  return out;
}

EnterpriseRegistry::EnterpriseRegistry(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.pen < b.pen; });
}

const EnterpriseRegistry& EnterpriseRegistry::embedded() {
  static const EnterpriseRegistry registry = [] {
    std::vector<Entry> entries;
    entries.reserve(std::size(kPenSeeds));
    for (const auto& seed : kPenSeeds) entries.push_back({seed.pen, seed.vendor});
    return EnterpriseRegistry(std::move(entries));
  }();
  return registry;
}

std::optional<std::string_view> EnterpriseRegistry::vendor_of(
    std::uint32_t pen) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), pen,
      [](const Entry& e, std::uint32_t v) { return e.pen < v; });
  if (it == entries_.end() || it->pen != pen) return std::nullopt;
  return it->vendor;
}

std::optional<std::uint32_t> EnterpriseRegistry::pen_of(
    std::string_view vendor) const {
  for (const auto& e : entries_)
    if (e.vendor == vendor) return e.pen;
  return std::nullopt;
}

}  // namespace snmpv3fp::net
