// Line-rate batched UDP engine: the real-socket campaign transport.
//
// BatchedUdpEngine implements net::Transport over one non-blocking POSIX
// UDP socket with kernel-batched I/O: outgoing probes accumulate in a
// preallocated frame pool and leave in one sendmmsg(2) per batch —
// coalesced into UDP_SEGMENT (GSO) super-packets when the batch is
// destination-uniform — and arrivals are pulled with recvmmsg(2) into a
// preallocated ring. The prober's template-stamp path writes probe bytes
// straight into the frame pool (Transport::acquire_send_frame), so the
// zero-allocation pipeline from wire::ProbeTemplate extends end-to-end
// into the kernel's iovec array. Platforms or kernels without
// sendmmsg/recvmmsg/GSO degrade at runtime to a per-datagram
// sendto/recvfrom loop with identical semantics (bench/bench_net.cpp
// measures both paths).
//
// Two clock modes:
//  - kVirtual: now() is a virtual clock that jumps instantly, like
//    sim::Fabric. Paired with a loopback sim::LoopbackReflector carrying
//    virtual timestamps in an encapsulation header, a campaign through
//    real sockets reproduces the simulated campaign's records bit-for-bit
//    (tests/test_net_engine.cpp) — the CI-able configuration.
//  - kWall: now() follows the monotonic clock; run_until() really waits
//    (draining arrivals), and gaps beyond `max_sleep` (the 6-day scan
//    boundary) fast-forward a wall offset instead of sleeping.
//
// Sim encapsulation (`sim_peer` set): every wire datagram goes to one peer
// and carries a 28-byte SimFrame header — logical endpoint + virtual
// timestamp — in front of the SNMP payload. Outbound, the header holds the
// probe's logical destination and send time; inbound, the responding
// target and virtual arrival time, which become the received datagram's
// source/time (so receive_time is bit-identical to the fabric's). The
// reflector answers every frame (drop notices for dead space), letting the
// engine cap in-flight datagrams (`flow_window`) so a virtual-time sender
// cannot overrun the peer's receive buffer.
//
// Threading: an engine belongs to one thread (like a sim::Fabric shard);
// distinct engines over distinct sockets may run on distinct threads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/transport.hpp"
#include "util/result.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::net {

class ShardRingView;  // net/packet_ring.hpp (NetIoStats: net/transport.hpp)

enum class BatchMode {
  kAuto,         // sendmmsg/recvmmsg (+GSO) where available, else fallback
  kBatched,      // same as kAuto (batching cannot be forced onto a kernel
                 // without it; the engine still degrades at runtime)
  kPerDatagram,  // force the portable sendto/recvfrom loop
};

enum class EngineClock { kWall, kVirtual };

struct EngineConfig {
  Family family = Family::kIpv4;  // wire socket family
  BatchMode batch = BatchMode::kAuto;
  EngineClock clock = EngineClock::kVirtual;
  // Datagrams per kernel batch (sendmmsg/recvmmsg vector length and the
  // frame-pool capacity). Clamped to [1, kMaxBatch].
  std::size_t batch_size = 64;
  // Largest payload acquire_send_frame() hands out (excluding the encap
  // header). Larger sends take a one-off allocating path.
  std::size_t frame_bytes = 256;
  // Sim-encapsulation peer (the loopback reflector). Set -> every wire
  // datagram goes to this endpoint wrapped in a SimFrame header and the
  // socket is connected (ICMP errors surface as send_refused).
  std::optional<Endpoint> sim_peer;
  // Bind to the loopback address (port 0 = kernel-assigned) so the engine
  // has a stable local endpoint and never probes off-host by accident in
  // encap setups. Off for real scanning.
  bool bind_loopback = true;
  int sndbuf_bytes = 0;  // 0 = kernel default (SO_SNDBUF, FORCE if root)
  int rcvbuf_bytes = 0;  // 0 = kernel default (SO_RCVBUF, FORCE if root)
  // Virtual-time jump at or beyond this flushes pending sends and, with
  // datagrams outstanding, lingers for arrivals (see linger_grace).
  util::VTime flush_horizon = 100 * util::kMillisecond;
  // Real-time silence the linger drain waits for before declaring all
  // in-flight loopback datagrams arrived. The arrival timer resets on
  // every arrival, so a busy reflector extends the linger, never loses to
  // it.
  util::VTime linger_grace = 100 * util::kMillisecond;
  // kWall only: run_until() really sleeps gaps up to this long; larger
  // gaps (scan boundaries) linger-drain and fast-forward the wall offset.
  util::VTime max_sleep = util::kSecond;
  // Encap flow control: maximum datagrams sent but not yet answered (the
  // reflector answers every frame). 0 = auto: 2 x batch_size for
  // kVirtual encap (a virtual-time sender has no natural pacing and would
  // overrun the peer's receive buffer), disabled otherwise.
  std::size_t flow_window = 0;
  // Allow UDP_SEGMENT send coalescing. Must be off for senders whose
  // traffic an AF_PACKET ring captures: loopback never segments the
  // super-datagram on the wire, so the tap would see one merged datagram
  // where the UDP receive path sees many — the same reason capture stacks
  // disable NIC segmentation offloads.
  bool gso = true;
};

// The 28-byte sim-encapsulation header. Fixed layout:
//   [kind u8] [family u8 = 4|6] [address 16B, v4 in the first 4]
//   [port u16 BE] [vtime i64 BE]
struct SimFrame {
  static constexpr std::size_t kWireSize = 28;
  static constexpr std::uint8_t kData = 0xA7;  // payload follows the header
  static constexpr std::uint8_t kDrop = 0xA8;  // reflector drop notice

  std::uint8_t kind = kData;
  Endpoint logical;       // probe destination out, responding target back
  util::VTime time = 0;   // send vtime out, virtual arrival time back

  // Writes kWireSize bytes; out.size() must be >= kWireSize.
  void encode(std::span<std::uint8_t> out) const;
  static std::optional<SimFrame> decode(util::ByteView in);
};

class BatchedUdpEngine final : public Transport {
 public:
  static constexpr std::size_t kMaxBatch = 128;

  // Opens, configures and (optionally) binds/connects the socket. Fails
  // when sockets are unavailable (sandboxes) — callers surface that as a
  // visible SKIP, never a silent sim fallback.
  static util::Result<std::unique_ptr<BatchedUdpEngine>> open(
      const EngineConfig& config);
  ~BatchedUdpEngine() override;

  // Transport.
  void send(Datagram datagram) override;
  void send_view(const Endpoint& source, const Endpoint& destination,
                 util::ByteView payload, util::VTime time) override;
  std::span<std::uint8_t> acquire_send_frame(std::size_t max_len) override;
  void commit_send_frame(const Endpoint& source, const Endpoint& destination,
                         std::size_t len, util::VTime time) override;
  std::optional<Datagram> receive() override;
  std::optional<DatagramView> receive_view() override;
  util::VTime now() const override;
  void run_until(util::VTime deadline) override;
  // Kernel backpressure and ICMP refusals are this transport's explicit
  // rate-limit signal: the adaptive pacer consumes deltas of this counter
  // exactly as it consumes the sim fabric's policing counter.
  std::uint64_t rate_limit_signals() const override {
    return stats_.send_pressure + stats_.send_refused;
  }
  const NetIoStats* net_stats() const override { return &stats_; }

  // Swaps the receive half from recvmmsg on the UDP socket to an
  // AF_PACKET ring view (net/packet_ring.hpp): refills pull parsed UDP
  // frames off the shard's fanout ring and readiness waits watch the
  // ring fds alongside the socket. Sends are untouched — the UDP socket
  // keeps flowing (and keeps the port reserved so the kernel does not
  // ICMP-reject our responders). The view must outlive the engine; pass
  // nullptr to fall back to recvmmsg. The socket's own receive queue is
  // left unread while a ring is attached (the ring captures the same
  // frames at the link layer).
  void attach_ring(ShardRingView* ring);
  bool ring_attached() const { return ring_view_ != nullptr; }

  // Pushes all pending frames into the kernel now (batch boundary).
  // Invalidates any acquired-but-uncommitted frame.
  void flush();
  // Flushes, then drains arrivals until `linger_grace` of real-time
  // silence. No-op when nothing was sent since the last linger.
  void linger_drain();

  Endpoint local_endpoint() const { return local_; }
  const NetIoStats& stats() const { return stats_; }
  const EngineConfig& config() const { return config_; }
  bool batching() const { return use_mmsg_; }  // sendmmsg path active
  bool gso() const { return use_gso_; }        // UDP_SEGMENT coalescing active

 private:
  struct TxEntry;
  struct RxEntry;
  struct MmsgArrays;  // Linux mmsghdr/iovec scratch, hidden from the header

  explicit BatchedUdpEngine(const EngineConfig& config);

  void send_oversize(const Endpoint& destination, util::ByteView payload,
                     util::VTime time);
  // Sends tx_ entries starting at `start` with one sendmmsg; returns the
  // number of entries consumed (0 => sendmmsg unsupported, fall back).
  std::size_t flush_mmsg(std::size_t start);
  // Per-datagram fallback for tx_ entries starting at `start`.
  std::size_t flush_sendto(std::size_t start);
  // Pulls a kernel batch into the rx ring. `force` bypasses the idle
  // throttle. Returns true when the ring has data afterwards.
  bool refill(bool force);
  // Ring-view refill half: copies parsed frames from the attached
  // AF_PACKET ring into the rx ring slots. Returns frames ingested.
  std::size_t refill_from_ring(std::size_t cap, std::size_t stride);
  // Classifies one received wire datagram into the rx ring.
  // `source_endpoint` (ring path) takes precedence over `source_storage`
  // (a sockaddr_storage from recvmmsg/recvfrom) for the non-encap source.
  void ingest(std::size_t offset, std::size_t len, bool truncated,
              const void* source_storage,
              const Endpoint* source_endpoint = nullptr);
  // Moves every ring entry (and everything still in the kernel) into the
  // owned inbox. Allocates — only called off the per-probe hot path.
  void drain_to_inbox();
  // Blocks (really) until the flow window has room or a safety timeout.
  void flow_gate();
  bool wait_readable(int timeout_ms);
  bool wait_writable(int timeout_ms);

  EngineConfig config_;
  bool encap_ = false;
  bool connected_ = false;
  int fd_ = -1;
  Endpoint local_;
  // Prebuilt wire address of the encap peer for the unconnected fallbacks.
  alignas(8) unsigned char peer_addr_[128] = {};
  unsigned peer_len_ = 0;

  util::VirtualClock vclock_;      // kVirtual
  util::VTime wall_offset_ = 0;    // kWall: now() = steady_us() + offset

  bool use_mmsg_ = false;
  bool use_gso_ = false;

  // TX: frames packed back-to-back behind an append cursor, so a
  // destination-uniform equal-length batch is GSO-contiguous for free.
  std::vector<std::uint8_t> tx_buf_;
  std::vector<TxEntry> tx_;
  std::size_t tx_cursor_ = 0;
  std::size_t acquired_len_ = 0;
  bool acquired_ = false;
  std::uint64_t sent_since_linger_ = 0;
  std::int64_t outstanding_ = 0;  // encap frames sent minus frames answered

  // RX: fixed-stride ring refilled by recvmmsg, plus an owned inbox for
  // arrivals collected while waiting (served first, order-preserving).
  std::vector<std::uint8_t> rx_buf_;
  std::vector<RxEntry> ring_;
  std::size_t ring_pos_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t rx_backoff_ = 0;
  std::deque<Datagram> inbox_;

  std::unique_ptr<MmsgArrays> mmsg_;
  ShardRingView* ring_view_ = nullptr;  // non-owning; see attach_ring()
  NetIoStats stats_;
};

}  // namespace snmpv3fp::net
