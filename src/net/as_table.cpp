#include "net/as_table.hpp"

namespace snmpv3fp::net {

void AsTable::add_v4(const Prefix4& prefix, AsInfo info) {
  v4_[prefix.base().value()] = {prefix.length(), std::move(info)};
}

void AsTable::add_v6(const std::array<std::uint16_t, 2>& prefix, AsInfo info) {
  const std::uint32_t key =
      (std::uint32_t{prefix[0]} << 16) | prefix[1];
  v6_[key] = std::move(info);
}

std::optional<AsInfo> AsTable::lookup(const IpAddress& address) const {
  if (address.is_v4()) {
    const std::uint32_t value = address.v4().value();
    auto it = v4_.upper_bound(value);
    if (it == v4_.begin()) return std::nullopt;
    --it;
    const auto& [len, info] = it->second;
    if (Prefix4(Ipv4(it->first), len).contains(address.v4())) return info;
    return std::nullopt;
  }
  const std::uint32_t key = (std::uint32_t{address.v6().group(0)} << 16) |
                            address.v6().group(1);
  const auto it = v6_.find(key);
  if (it == v6_.end()) return std::nullopt;
  return it->second;
}

}  // namespace snmpv3fp::net
