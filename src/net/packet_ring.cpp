#include "net/packet_ring.hpp"

#include "net/udp_socket.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
// <net/if.h> must precede the <linux/if_*.h> headers: the kernel uapi
// headers suppress their conflicting struct/flag definitions only when
// glibc's net/if.h has already been seen (libc-compat).
#include <net/if.h>

#include <arpa/inet.h>
#include <linux/if_arp.h>
#include <linux/if_ether.h>
#include <linux/if_packet.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace snmpv3fp::net {

namespace {

// Link/network constants, spelled locally so the parser stays a pure
// function compilable (and unit-testable) without kernel headers.
constexpr std::size_t kEthHeader = 14;
constexpr std::size_t kSllHeader = 16;
constexpr std::uint16_t kEtherIpv4 = 0x0800;
constexpr std::uint16_t kEtherIpv6 = 0x86DD;
constexpr std::uint16_t kEtherVlan = 0x8100;
constexpr std::uint16_t kEtherQinQ = 0x88A8;
constexpr std::uint8_t kProtoUdp = 17;
// IPv6 extension headers the parser walks through. Anything else (ESP,
// unknown) fails closed. The chain walk is iteration-bounded.
constexpr std::uint8_t kExtHopByHop = 0;
constexpr std::uint8_t kExtRouting = 43;
constexpr std::uint8_t kExtFragment = 44;
constexpr std::uint8_t kExtAuth = 51;
constexpr std::uint8_t kExtDestOpts = 60;
constexpr int kMaxExtHeaders = 8;

std::uint16_t read_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

// Parses the IP layer starting at `at`; both branches bound every read
// against frame.size() before touching it.
bool parse_ip(util::ByteView frame, std::size_t at, RingFrame& out) {
  if (at + 1 > frame.size()) return false;
  const std::uint8_t version = frame[at] >> 4;

  if (version == 4) {
    if (at + 20 > frame.size()) return false;
    const std::size_t ihl = (frame[at] & 0x0F) * std::size_t{4};
    if (ihl < 20 || at + ihl > frame.size()) return false;
    const std::size_t total_len = read_be16(&frame[at + 2]);
    if (total_len < ihl + 8) return false;  // no room for a UDP header
    if (frame[at + 9] != kProtoUdp) return false;
    // Fragmented: a non-first fragment has no UDP header, a first
    // fragment has an incomplete payload — fail closed on both.
    const std::uint16_t frag = read_be16(&frame[at + 6]);
    if ((frag & 0x3FFF) != 0) return false;  // MF flag or nonzero offset
    const std::size_t udp_at = at + ihl;
    if (udp_at + 8 > frame.size()) return false;
    const std::size_t udp_len = read_be16(&frame[udp_at + 4]);
    if (udp_len < 8) return false;
    const std::size_t declared = udp_len - 8;
    // Clamp the payload to what the IP datagram and the capture actually
    // carry; delivering less than declared is a truncation, not an error.
    const std::size_t ip_room =
        total_len >= ihl + 8 ? total_len - ihl - 8 : 0;
    const std::size_t cap_room = frame.size() - udp_at - 8;
    const std::size_t have = std::min({declared, ip_room, cap_room});
    out.source.address = IpAddress(
        Ipv4((std::uint32_t{frame[at + 12]} << 24) |
             (std::uint32_t{frame[at + 13]} << 16) |
             (std::uint32_t{frame[at + 14]} << 8) | frame[at + 15]));
    out.source.port = read_be16(&frame[udp_at]);
    out.dst_port = read_be16(&frame[udp_at + 2]);
    out.payload = frame.subspan(udp_at + 8, have);
    out.truncated = have < declared;
    return true;
  }

  if (version == 6) {
    if (at + 40 > frame.size()) return false;
    std::size_t payload_room = read_be16(&frame[at + 4]);
    std::uint8_t next = frame[at + 6];
    std::array<std::uint8_t, 16> src{};
    std::memcpy(src.data(), &frame[at + 8], 16);
    std::size_t cursor = at + 40;
    for (int hop = 0; hop < kMaxExtHeaders && next != kProtoUdp; ++hop) {
      std::size_t ext_len = 0;
      switch (next) {
        case kExtHopByHop:
        case kExtRouting:
        case kExtDestOpts:
          if (cursor + 2 > frame.size()) return false;
          ext_len = (std::size_t{frame[cursor + 1]} + 1) * 8;
          break;
        case kExtAuth:  // AH length unit differs: (len + 2) * 4
          if (cursor + 2 > frame.size()) return false;
          ext_len = (std::size_t{frame[cursor + 1]} + 2) * 4;
          break;
        case kExtFragment: {
          if (cursor + 8 > frame.size()) return false;
          const std::uint16_t frag = read_be16(&frame[cursor + 2]);
          if ((frag & 0xFFF9) != 0) return false;  // offset != 0 or MF set
          ext_len = 8;
          break;
        }
        default:
          return false;  // not UDP, not a walkable extension: fail closed
      }
      if (cursor + ext_len > frame.size() || ext_len > payload_room)
        return false;
      next = frame[cursor];
      cursor += ext_len;
      payload_room -= ext_len;
    }
    if (next != kProtoUdp) return false;
    if (cursor + 8 > frame.size() || payload_room < 8) return false;
    const std::size_t udp_len = read_be16(&frame[cursor + 4]);
    if (udp_len < 8) return false;
    const std::size_t declared = udp_len - 8;
    const std::size_t ip_room = payload_room - 8;
    const std::size_t cap_room = frame.size() - cursor - 8;
    const std::size_t have = std::min({declared, ip_room, cap_room});
    out.source.address = IpAddress(Ipv6(src));
    out.source.port = read_be16(&frame[cursor]);
    out.dst_port = read_be16(&frame[cursor + 2]);
    out.payload = frame.subspan(cursor + 8, have);
    out.truncated = have < declared;
    return true;
  }

  return false;
}

}  // namespace

bool parse_link_frame(util::ByteView frame, LinkType link, RingFrame& out) {
  std::size_t at = 0;
  std::uint16_t ethertype = 0;
  if (link == LinkType::kEthernet) {
    if (frame.size() < kEthHeader) return false;
    ethertype = read_be16(&frame[12]);
    at = kEthHeader;
    // At most two VLAN tags (QinQ); each shifts the real ethertype 4 in.
    for (int tags = 0; tags < 2 && (ethertype == kEtherVlan ||
                                    ethertype == kEtherQinQ); ++tags) {
      if (at + 4 > frame.size()) return false;
      ethertype = read_be16(&frame[at + 2]);
      at += 4;
    }
  } else {
    if (frame.size() < kSllHeader) return false;
    ethertype = read_be16(&frame[14]);
    at = kSllHeader;
  }
  if (ethertype != kEtherIpv4 && ethertype != kEtherIpv6) return false;
  return parse_ip(frame, at, out);
}

PacketRingConfig apply_ring_env(PacketRingConfig config) {
  if (const char* env = std::getenv("SNMPFP_RING_BLOCKS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096)
      config.block_count = static_cast<std::size_t>(v);
  }
  return config;
}

#if defined(__linux__)

PacketRingReceiver::~PacketRingReceiver() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
  if (fd_ >= 0) ::close(fd_);
}

util::Result<std::unique_ptr<PacketRingReceiver>> PacketRingReceiver::open(
    const PacketRingConfig& config_in) {
  using R = util::Result<std::unique_ptr<PacketRingReceiver>>;
  PacketRingConfig config = config_in;
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_size = page > 0 ? static_cast<std::size_t>(page)
                                         : 4096;
  // TPACKET_V3 constraints: block size a multiple of the page size,
  // frame size 16-aligned and dividing the block evenly.
  config.frame_size =
      std::max<std::size_t>(config.frame_size, 256) & ~std::size_t{15};
  config.block_size =
      ((std::max(config.block_size, config.frame_size) + page_size - 1) /
       page_size) * page_size;
  config.block_count = std::max<std::size_t>(config.block_count, 1);

  const int fd = ::socket(AF_PACKET, SOCK_RAW, 0);
  if (fd < 0)
    return R::failure(std::string("socket(AF_PACKET): ") +
                      std::strerror(errno));
  std::unique_ptr<PacketRingReceiver> rx(new PacketRingReceiver());
  rx->fd_ = fd;

  const unsigned ifindex = ::if_nametoindex(config.interface.c_str());
  if (ifindex == 0)
    return R::failure("if_nametoindex(" + config.interface +
                      "): " + std::strerror(errno));
  {
    // Link framing from the device's ARP hardware type. Ethernet and
    // loopback carry Ethernet headers; anything exotic would need SLL
    // via SOCK_DGRAM — reject rather than misparse.
    ifreq ifr{};
    std::strncpy(ifr.ifr_name, config.interface.c_str(), IFNAMSIZ - 1);
    if (::ioctl(fd, SIOCGIFHWADDR, &ifr) != 0)
      return R::failure(std::string("SIOCGIFHWADDR: ") +
                        std::strerror(errno));
    const int hw = ifr.ifr_hwaddr.sa_family;
    if (hw != ARPHRD_ETHER && hw != ARPHRD_LOOPBACK)
      return R::failure("unsupported link type on " + config.interface);
    rx->link_ = LinkType::kEthernet;
  }

  const int version = TPACKET_V3;
  if (::setsockopt(fd, SOL_PACKET, PACKET_VERSION, &version,
                   sizeof version) != 0)
    return R::failure(std::string("PACKET_VERSION: ") + std::strerror(errno));

  tpacket_req3 req{};
  req.tp_block_size = static_cast<unsigned>(config.block_size);
  req.tp_block_nr = static_cast<unsigned>(config.block_count);
  req.tp_frame_size = static_cast<unsigned>(config.frame_size);
  req.tp_frame_nr = static_cast<unsigned>(
      config.block_size / config.frame_size * config.block_count);
  req.tp_retire_blk_tov = config.retire_tov_ms;
  req.tp_feature_req_word = 0;
  if (::setsockopt(fd, SOL_PACKET, PACKET_RX_RING, &req, sizeof req) != 0)
    return R::failure(std::string("PACKET_RX_RING: ") + std::strerror(errno));

  const std::size_t map_len = config.block_size * config.block_count;
  void* map = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_LOCKED, fd, 0);
  if (map == MAP_FAILED)  // MAP_LOCKED can exceed RLIMIT_MEMLOCK; retry soft
    map = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED)
    return R::failure(std::string("mmap ring: ") + std::strerror(errno));
  rx->map_ = static_cast<std::uint8_t*>(map);
  rx->map_len_ = map_len;
  rx->block_size_ = config.block_size;
  rx->block_count_ = config.block_count;

  sockaddr_ll sll{};
  sll.sll_family = AF_PACKET;
  sll.sll_protocol = htons(ETH_P_ALL);
  sll.sll_ifindex = static_cast<int>(ifindex);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sll), sizeof sll) != 0)
    return R::failure(std::string("bind(AF_PACKET): ") + std::strerror(errno));
  return R(std::move(rx));
}

util::Status PacketRingReceiver::join_fanout(int group_id) {
  const int arg = (group_id & 0xFFFF) | (PACKET_FANOUT_HASH << 16);
  if (::setsockopt(fd_, SOL_PACKET, PACKET_FANOUT, &arg, sizeof arg) != 0)
    return util::Status::failure(std::string("PACKET_FANOUT: ") +
                                 std::strerror(errno));
  return {};
}

void PacketRingReceiver::update_kernel_drops() {
  tpacket_stats_v3 st{};
  socklen_t len = sizeof st;
  // Cumulative since the last read — the kernel resets on getsockopt.
  if (::getsockopt(fd_, SOL_PACKET, PACKET_STATISTICS, &st, &len) == 0)
    counters_.drops += st.tp_drops;
}

bool PacketRingReceiver::advance_block() {
  if (block_open_) {
    // Release the fully-walked block back to the kernel and move on.
    auto* desc = reinterpret_cast<tpacket_block_desc*>(
        map_ + block_idx_ * block_size_);
    __atomic_store_n(&desc->hdr.bh1.block_status, TP_STATUS_KERNEL,
                     __ATOMIC_RELEASE);
    block_open_ = false;
    block_idx_ = (block_idx_ + 1) % block_count_;
  }
  auto* desc = reinterpret_cast<tpacket_block_desc*>(
      map_ + block_idx_ * block_size_);
  const std::uint32_t status =
      __atomic_load_n(&desc->hdr.bh1.block_status, __ATOMIC_ACQUIRE);
  if ((status & TP_STATUS_USER) == 0) return false;
  block_open_ = true;
  pkts_left_ = desc->hdr.bh1.num_pkts;
  frame_at_ = reinterpret_cast<const std::uint8_t*>(desc) +
              desc->hdr.bh1.offset_to_first_pkt;
  ++counters_.blocks;
  return true;  // an empty retired block still advances the walk
}

std::optional<RingFrame> PacketRingReceiver::next(int timeout_ms) {
  for (;;) {
    while (block_open_ && pkts_left_ > 0) {
      const auto* hdr = reinterpret_cast<const tpacket3_hdr*>(frame_at_);
      const std::uint8_t* raw = frame_at_ + hdr->tp_mac;
      const std::uint32_t snaplen = hdr->tp_snaplen;
      const auto* sll = reinterpret_cast<const sockaddr_ll*>(
          frame_at_ + TPACKET_ALIGN(sizeof(tpacket3_hdr)));
      const bool outgoing = sll->sll_pkttype == PACKET_OUTGOING;
      const bool clipped = hdr->tp_len > hdr->tp_snaplen;
      // Advance the walk first so a parse failure cannot stall it.
      --pkts_left_;
      frame_at_ = hdr->tp_next_offset != 0
                      ? frame_at_ + hdr->tp_next_offset
                      : frame_at_;  // last pkt; pkts_left_ is now 0
      if (outgoing) continue;  // loopback shows our own sends; skip them
      RingFrame frame;
      if (!parse_link_frame({raw, snaplen}, link_, frame)) {
        ++counters_.non_udp;
        continue;
      }
      frame.truncated = frame.truncated || clipped;
      ++counters_.frames;
      return frame;
    }
    if (advance_block()) continue;
    if (timeout_ms == 0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    if (poll_interruptible(&pfd, 1, timeout_ms) <= 0) return std::nullopt;
    timeout_ms = 0;  // one wait per call: drain what arrived, then report
  }
}

#else  // !__linux__

PacketRingReceiver::~PacketRingReceiver() = default;

util::Result<std::unique_ptr<PacketRingReceiver>> PacketRingReceiver::open(
    const PacketRingConfig&) {
  return util::Result<std::unique_ptr<PacketRingReceiver>>::failure(
      "AF_PACKET rings require Linux");
}

util::Status PacketRingReceiver::join_fanout(int) {
  return util::Status::failure("AF_PACKET rings require Linux");
}

void PacketRingReceiver::update_kernel_drops() {}

bool PacketRingReceiver::advance_block() { return false; }

std::optional<RingFrame> PacketRingReceiver::next(int) {
  return std::nullopt;
}

#endif  // __linux__

util::Result<std::unique_ptr<PacketRingGroup>> PacketRingGroup::create(
    const PacketRingConfig& config_in, std::size_t shards) {
  using R = util::Result<std::unique_ptr<PacketRingGroup>>;
  const PacketRingConfig config = apply_ring_env(config_in);
  shards = std::max<std::size_t>(shards, 1);
  std::unique_ptr<PacketRingGroup> group(new PacketRingGroup());
  // Fresh fanout id per group: ids are 16-bit per netns, and joining an
  // id another process owns would splice us into their steering.
  static std::atomic<int> g_fanout_seq{0};
  const int fanout_id =
#if defined(__linux__)
      ((static_cast<int>(::getpid()) << 6) ^
       g_fanout_seq.fetch_add(1, std::memory_order_relaxed)) &
      0xFFFF;
#else
      g_fanout_seq.fetch_add(1, std::memory_order_relaxed) & 0xFFFF;
#endif
  for (std::size_t i = 0; i < shards; ++i) {
    auto receiver = PacketRingReceiver::open(config);
    if (!receiver.ok()) return R::failure(receiver.error());
    if (shards > 1) {
      const auto joined = receiver.value()->join_fanout(fanout_id);
      if (!joined.ok()) return R::failure(joined.error());
    }
    auto ring = std::make_unique<Ring>();
    ring->receiver = std::move(receiver).value();
    group->fds_.push_back(ring->receiver->fd());
    group->rings_.push_back(std::move(ring));
    group->inboxes_.push_back(std::make_unique<Inbox>());
  }
  group->views_.resize(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    group->views_[i].group_ = group.get();
    group->views_[i].shard_ = i;
  }
  return R(std::move(group));
}

void PacketRingGroup::register_port(std::uint16_t port, std::size_t shard) {
  port_to_shard_[port] = shard;
}

bool PacketRingGroup::pump(std::size_t shard) {
  {
    std::lock_guard<std::mutex> lock(inboxes_[shard]->mutex);
    if (!inboxes_[shard]->frames.empty()) return true;
  }
  const std::size_t n = rings_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Own ring first; then steal from the others so a shard that stopped
    // polling (finished its slice, or never scheduled at 1 thread)
    // cannot strand frames the hash steered into its ring.
    Ring& ring = *rings_[(shard + i) % n];
    std::lock_guard<std::mutex> ring_lock(ring.mutex);
    while (auto frame = ring.receiver->next(0)) {
      const auto owner = port_to_shard_.find(frame->dst_port);
      if (owner == port_to_shard_.end()) {
        std::lock_guard<std::mutex> lock(foreign_mutex_);
        ++foreign_port_;
        continue;
      }
      OwnedFrame owned;
      owned.payload.assign(frame->payload.begin(), frame->payload.end());
      owned.source = frame->source;
      owned.dst_port = frame->dst_port;
      owned.truncated = frame->truncated;
      std::lock_guard<std::mutex> lock(inboxes_[owner->second]->mutex);
      inboxes_[owner->second]->frames.push_back(std::move(owned));
    }
    std::lock_guard<std::mutex> lock(inboxes_[shard]->mutex);
    if (!inboxes_[shard]->frames.empty()) return true;
  }
  return false;
}

NetIoStats PacketRingGroup::stats() {
  NetIoStats out;
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->receiver->update_kernel_drops();
    const RingCounters& c = ring->receiver->counters();
    out.ring_blocks += c.blocks;
    out.ring_drops += c.drops;
    out.ring_non_udp += c.non_udp;
  }
  std::lock_guard<std::mutex> lock(foreign_mutex_);
  out.ring_foreign_port = foreign_port_;
  return out;
}

std::optional<RingFrame> ShardRingView::poll() {
  if (!group_->pump(shard_)) return std::nullopt;
  auto& inbox = *group_->inboxes_[shard_];
  std::lock_guard<std::mutex> lock(inbox.mutex);
  if (inbox.frames.empty()) return std::nullopt;  // raced with a stealer? no —
  // inboxes only grow under pump(); still, stay defensive.
  PacketRingGroup::OwnedFrame& front = inbox.frames.front();
  slot_payload_ = std::move(front.payload);
  slot_.source = front.source;
  slot_.dst_port = front.dst_port;
  slot_.truncated = front.truncated;
  slot_.payload = slot_payload_;
  inbox.frames.pop_front();
  ++delivered_;
  return slot_;
}

const std::vector<int>& ShardRingView::fds() const { return group_->fds_; }

}  // namespace snmpv3fp::net
