#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // sendmmsg/recvmmsg declarations
#endif

#include "net/batched_udp.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <netinet/udp.h>
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103  // UDP GSO cmsg (linux >= 4.18); absent in old uapi
#endif
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>

#include "net/packet_ring.hpp"
#include "net/sockaddr_util.hpp"
#include "net/udp_socket.hpp"

namespace snmpv3fp::net {

namespace {

// Largest UDP payload one GSO super-packet may carry, and the kernel's
// per-packet segment cap (UDP_MAX_SEGMENTS).
constexpr std::size_t kMaxGsoBytes = 65000;
constexpr std::size_t kMaxGsoSegments = 64;
// Bounded retries on persistent kernel backpressure before dropping the
// rest of a batch (each retry waits up to kPressureWaitMs first).
constexpr int kPressureRetryCap = 200;
constexpr int kPressureWaitMs = 50;
// Consecutive empty refills before the idle throttle kicks in, expressed
// as skipped nonblocking recv attempts (amortizes hot-loop syscalls).
constexpr std::size_t kRxBackoffAttempts = 32;
// Flow-gate safety valve: give up waiting for reflector answers after this
// much real time and reopen the window (a lost datagram must never hang
// the scan).
constexpr util::VTime kFlowStallTimeout = 2 * util::kSecond;

util::VTime steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_socket_buffer(int fd, int option, int force_option, int bytes) {
  if (bytes <= 0) return;
#if defined(__linux__)
  // FORCE variants (CAP_NET_ADMIN) ignore rmem_max/wmem_max; fall through
  // to the capped plain option when not privileged.
  if (::setsockopt(fd, SOL_SOCKET, force_option, &bytes, sizeof bytes) == 0)
    return;
#else
  (void)force_option;
#endif
  ::setsockopt(fd, SOL_SOCKET, option, &bytes, sizeof bytes);
}

}  // namespace

NetIoStats& NetIoStats::operator+=(const NetIoStats& other) {
  datagrams_sent += other.datagrams_sent;
  datagrams_received += other.datagrams_received;
  sendmmsg_calls += other.sendmmsg_calls;
  recvmmsg_calls += other.recvmmsg_calls;
  sendto_calls += other.sendto_calls;
  recvfrom_calls += other.recvfrom_calls;
  gso_batches += other.gso_batches;
  ring_blocks += other.ring_blocks;
  ring_frames += other.ring_frames;
  ring_drops += other.ring_drops;
  ring_non_udp += other.ring_non_udp;
  ring_foreign_port += other.ring_foreign_port;
  send_pressure += other.send_pressure;
  send_refused += other.send_refused;
  send_errors += other.send_errors;
  recv_truncated += other.recv_truncated;
  recv_bad_frame += other.recv_bad_frame;
  recv_errors += other.recv_errors;
  drop_notices += other.drop_notices;
  flow_stalls += other.flow_stalls;
  return *this;
}

void SimFrame::encode(std::span<std::uint8_t> out) const {
  out[0] = kind;
  std::memset(&out[2], 0, 16);
  if (logical.address.is_v4()) {
    out[1] = 4;
    const std::uint32_t v = logical.address.v4().value();
    out[2] = static_cast<std::uint8_t>(v >> 24);
    out[3] = static_cast<std::uint8_t>(v >> 16);
    out[4] = static_cast<std::uint8_t>(v >> 8);
    out[5] = static_cast<std::uint8_t>(v);
  } else {
    out[1] = 6;
    std::memcpy(&out[2], logical.address.v6().bytes().data(), 16);
  }
  out[18] = static_cast<std::uint8_t>(logical.port >> 8);
  out[19] = static_cast<std::uint8_t>(logical.port);
  const auto t = static_cast<std::uint64_t>(time);
  for (int i = 0; i < 8; ++i)
    out[20 + i] = static_cast<std::uint8_t>(t >> (56 - 8 * i));
}

std::optional<SimFrame> SimFrame::decode(util::ByteView in) {
  if (in.size() < kWireSize) return std::nullopt;
  if (in[0] != kData && in[0] != kDrop) return std::nullopt;
  SimFrame frame;
  frame.kind = in[0];
  if (in[1] == 4) {
    frame.logical.address =
        Ipv4((std::uint32_t{in[2]} << 24) | (std::uint32_t{in[3]} << 16) |
             (std::uint32_t{in[4]} << 8) | in[5]);
  } else if (in[1] == 6) {
    std::array<std::uint8_t, 16> bytes{};
    std::memcpy(bytes.data(), &in[2], 16);
    frame.logical.address = Ipv6(bytes);
  } else {
    return std::nullopt;
  }
  frame.logical.port =
      static_cast<std::uint16_t>((std::uint16_t{in[18]} << 8) | in[19]);
  std::uint64_t t = 0;
  for (int i = 0; i < 8; ++i) t = (t << 8) | in[20 + i];
  frame.time = static_cast<util::VTime>(t);
  return frame;
}

// One committed-but-unflushed datagram: its packed extent in tx_buf_ plus
// the resolved wire address (unused on connected sockets).
struct BatchedUdpEngine::TxEntry {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;  // wire length, including any encap header
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
};

// One received wire datagram in the rx ring, post header rewrite.
struct BatchedUdpEngine::RxEntry {
  Endpoint source;
  util::VTime time = 0;
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
};

struct BatchedUdpEngine::MmsgArrays {
#if defined(__linux__)
  std::vector<mmsghdr> tx_msgs;
  std::vector<iovec> tx_iovs;
  std::vector<std::size_t> tx_segs;  // datagrams per message (GSO > 1)
  std::vector<std::array<char, CMSG_SPACE(sizeof(std::uint16_t))>> tx_ctrl;
  std::vector<mmsghdr> rx_msgs;
  std::vector<iovec> rx_iovs;
  std::vector<sockaddr_storage> rx_addrs;
#endif
};

BatchedUdpEngine::BatchedUdpEngine(const EngineConfig& config)
    : config_(config), mmsg_(std::make_unique<MmsgArrays>()) {
  encap_ = config_.sim_peer.has_value();
  const std::size_t header = encap_ ? SimFrame::kWireSize : 0;
  tx_buf_.resize(config_.batch_size * (config_.frame_bytes + header));
  tx_.reserve(config_.batch_size);
  const std::size_t stride =
      std::max<std::size_t>(2048, config_.frame_bytes + header);
  rx_buf_.resize(config_.batch_size * stride);
  ring_.resize(config_.batch_size);
  if (config_.clock == EngineClock::kWall) wall_offset_ = -steady_us();
#if defined(__linux__)
  auto& m = *mmsg_;
  m.tx_msgs.resize(config_.batch_size);
  m.tx_iovs.resize(config_.batch_size);
  m.tx_segs.resize(config_.batch_size);
  m.tx_ctrl.resize(config_.batch_size);
  m.rx_msgs.resize(config_.batch_size);
  m.rx_iovs.resize(config_.batch_size);
  m.rx_addrs.resize(config_.batch_size);
#endif
}

BatchedUdpEngine::~BatchedUdpEngine() {
  flush();
  if (fd_ >= 0) ::close(fd_);
}

util::Result<std::unique_ptr<BatchedUdpEngine>> BatchedUdpEngine::open(
    const EngineConfig& config_in) {
  using R = util::Result<std::unique_ptr<BatchedUdpEngine>>;
  EngineConfig config = config_in;
  config.batch_size = std::clamp<std::size_t>(config.batch_size, 1, kMaxBatch);
  config.frame_bytes = std::max<std::size_t>(config.frame_bytes, 64);
  if (config.sim_peer.has_value())
    config.family = config.sim_peer->address.is_v4() ? Family::kIpv4
                                                     : Family::kIpv6;
  if (config.flow_window == 0 && config.sim_peer.has_value() &&
      config.clock == EngineClock::kVirtual)
    config.flow_window = 2 * config.batch_size;

  const int domain = config.family == Family::kIpv4 ? AF_INET : AF_INET6;
  const int fd = ::socket(domain, SOCK_DGRAM, IPPROTO_UDP);
  if (fd < 0) return R::failure(std::string("socket: ") + std::strerror(errno));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    return R::failure(std::string("fcntl: ") + std::strerror(saved));
  }
  set_socket_buffer(fd, SO_SNDBUF,
#if defined(__linux__)
                    SO_SNDBUFFORCE,
#else
                    SO_SNDBUF,
#endif
                    config.sndbuf_bytes);
  set_socket_buffer(fd, SO_RCVBUF,
#if defined(__linux__)
                    SO_RCVBUFFORCE,
#else
                    SO_RCVBUF,
#endif
                    config.rcvbuf_bytes);

  std::unique_ptr<BatchedUdpEngine> engine(new BatchedUdpEngine(config));
  engine->fd_ = fd;
  if (config.bind_loopback) {
    Endpoint loopback;
    loopback.address = config.family == Family::kIpv4
                           ? IpAddress(Ipv4(127, 0, 0, 1))
                           : IpAddress(Ipv6::from_groups(
                                 {0, 0, 0, 0, 0, 0, 0, 1}));
    sockaddr_storage addr{};
    const socklen_t len = detail::to_sockaddr(loopback, addr);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0)
      return R::failure(std::string("bind: ") + std::strerror(errno));
  }
  {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      engine->local_ = detail::from_sockaddr(addr);
  }
  if (config.sim_peer.has_value()) {
    sockaddr_storage addr{};
    const socklen_t len = detail::to_sockaddr(*config.sim_peer, addr);
    static_assert(sizeof(engine->peer_addr_) >= sizeof(sockaddr_storage));
    std::memcpy(engine->peer_addr_, &addr, sizeof addr);
    engine->peer_len_ = len;
    // Connected: single-peer sends skip the route lookup and the kernel
    // reports ICMP port-unreachable back as ECONNREFUSED.
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0)
      return R::failure(std::string("connect: ") + std::strerror(errno));
    engine->connected_ = true;
  }
#if defined(__linux__)
  engine->use_mmsg_ =
      config.batch != BatchMode::kPerDatagram && config.batch_size > 1;
  engine->use_gso_ = engine->use_mmsg_ && config.gso;
#endif
  return R(std::move(engine));
}

util::VTime BatchedUdpEngine::now() const {
  if (config_.clock == EngineClock::kVirtual) return vclock_.now();
  return steady_us() + wall_offset_;
}

bool BatchedUdpEngine::wait_readable(int timeout_ms) {
  // With a ring attached, arrivals land in the fanout rings (possibly a
  // sibling shard's — hash steering does not follow port ownership), so
  // the wait watches every ring fd alongside the UDP socket.
  pollfd pfds[1 + 16];
  nfds_t nfds = 0;
  pfds[nfds++] = {fd_, POLLIN, 0};
  if (ring_view_ != nullptr) {
    for (const int fd : ring_view_->fds()) {
      if (nfds >= std::size(pfds)) break;
      pfds[nfds++] = {fd, POLLIN, 0};
    }
  }
  // EINTR retries inside re-arm with the remaining timeout only: a
  // signal (timer, SIGCHLD...) is not an arrival and not an error.
  return poll_interruptible(pfds, nfds, timeout_ms) > 0;
}

bool BatchedUdpEngine::wait_writable(int timeout_ms) {
  pollfd pfd{fd_, POLLOUT, 0};
  return poll_interruptible(&pfd, 1, timeout_ms) > 0;
}

void BatchedUdpEngine::attach_ring(ShardRingView* ring) {
  ring_view_ = ring;
}

std::span<std::uint8_t> BatchedUdpEngine::acquire_send_frame(
    std::size_t max_len) {
  if (max_len > config_.frame_bytes) return {};
  if (config_.flow_window > 0 &&
      outstanding_ + static_cast<std::int64_t>(tx_.size()) >=
          static_cast<std::int64_t>(config_.flow_window))
    flow_gate();
  const std::size_t header = encap_ ? SimFrame::kWireSize : 0;
  if (tx_.size() >= config_.batch_size ||
      tx_cursor_ + header + max_len > tx_buf_.size())
    flush();
  acquired_len_ = max_len;
  acquired_ = true;
  return {tx_buf_.data() + tx_cursor_ + header, max_len};
}

void BatchedUdpEngine::commit_send_frame(const Endpoint& /*source*/,
                                         const Endpoint& destination,
                                         std::size_t len, util::VTime time) {
  if (!acquired_ || len > acquired_len_) return;  // abandoned or contract bug
  acquired_ = false;
  TxEntry entry;
  entry.offset = static_cast<std::uint32_t>(tx_cursor_);
  if (encap_) {
    SimFrame frame;
    frame.logical = destination;
    frame.time = time;
    frame.encode({tx_buf_.data() + tx_cursor_, SimFrame::kWireSize});
    entry.len = static_cast<std::uint32_t>(SimFrame::kWireSize + len);
  } else {
    entry.len = static_cast<std::uint32_t>(len);
    entry.addr_len = detail::to_sockaddr(destination, entry.addr);
  }
  tx_cursor_ += entry.len;
  tx_.push_back(entry);
  ++outstanding_;
  if (tx_.size() >= config_.batch_size) flush();
}

void BatchedUdpEngine::send_view(const Endpoint& source,
                                 const Endpoint& destination,
                                 util::ByteView payload, util::VTime time) {
  const auto frame = acquire_send_frame(payload.size());
  if (frame.size() >= payload.size() && !payload.empty()) {
    std::memcpy(frame.data(), payload.data(), payload.size());
    commit_send_frame(source, destination, payload.size(), time);
    return;
  }
  acquired_ = false;
  send_oversize(destination, payload, time);
}

void BatchedUdpEngine::send(Datagram datagram) {
  send_view(datagram.source, datagram.destination, datagram.payload,
            datagram.time);
}

void BatchedUdpEngine::send_oversize(const Endpoint& destination,
                                     util::ByteView payload, util::VTime time) {
  // Rare path (payload > frame_bytes, or empty): one allocating sendto,
  // flushed in order behind anything already pending.
  flush();
  util::Bytes wire;
  if (encap_) {
    wire.resize(SimFrame::kWireSize + payload.size());
    SimFrame frame;
    frame.logical = destination;
    frame.time = time;
    frame.encode({wire.data(), SimFrame::kWireSize});
    std::memcpy(wire.data() + SimFrame::kWireSize, payload.data(),
                payload.size());
  } else {
    wire.assign(payload.begin(), payload.end());
  }
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (!connected_) addr_len = detail::to_sockaddr(destination, addr);
  ++outstanding_;
  for (int attempt = 0; attempt < kPressureRetryCap; ++attempt) {
    const ssize_t sent = ::sendto(
        fd_, wire.data(), wire.size(), 0,
        connected_ ? nullptr : reinterpret_cast<const sockaddr*>(&addr),
        connected_ ? 0 : addr_len);
    ++stats_.sendto_calls;
    if (sent >= 0) {
      ++stats_.datagrams_sent;
      ++sent_since_linger_;
      return;
    }
    const auto outcome = classify_send_errno(errno);
    if (outcome == SendOutcome::kWouldBlock) {
      ++stats_.send_pressure;
      wait_writable(kPressureWaitMs);
      continue;
    }
    if (outcome == SendOutcome::kRefused) {
      ++stats_.send_refused;
      continue;  // the refusal belonged to an earlier datagram; retry
    }
    break;
  }
  ++stats_.send_errors;
  if (outstanding_ > 0) --outstanding_;
}

void BatchedUdpEngine::flush() {
  acquired_ = false;
  if (tx_.empty()) {
    tx_cursor_ = 0;
    return;
  }
  const std::uint64_t before = stats_.datagrams_sent;
  std::size_t index = 0;
  while (index < tx_.size()) {
    std::size_t consumed = 0;
#if defined(__linux__)
    if (use_mmsg_) consumed = flush_mmsg(index);
#endif
    if (consumed == 0) consumed = flush_sendto(index);
    index += consumed;
  }
  sent_since_linger_ += stats_.datagrams_sent - before;
  tx_.clear();
  tx_cursor_ = 0;
}

#if defined(__linux__)
std::size_t BatchedUdpEngine::flush_mmsg(std::size_t start) {
  auto& m = *mmsg_;
  const std::size_t total = tx_.size();
  const TxEntry& first = tx_[start];
  // Extent of the destination-uniform equal-length run at `start` (encap
  // mode: everything — the socket is connected to one peer).
  std::size_t uniform_end = start + 1;
  while (uniform_end < total) {
    const TxEntry& e = tx_[uniform_end];
    if (e.len != first.len) break;
    if (!connected_ &&
        (e.addr_len != first.addr_len ||
         std::memcmp(&e.addr, &first.addr, first.addr_len) != 0))
      break;
    ++uniform_end;
  }
  const std::size_t run = uniform_end - start;
  const bool gso = use_gso_ && run >= 2 && first.len > 0 &&
                   static_cast<std::size_t>(first.len) * 2 <= kMaxGsoBytes;
  std::size_t nmsgs = 0;
  std::size_t entries = 0;
  if (gso) {
    // Frames are packed back-to-back behind the append cursor, so the run
    // is one contiguous byte range: chunk it into UDP_SEGMENT
    // super-packets of up to kMaxGsoSegments datagrams each.
    const std::size_t max_segs =
        std::min(kMaxGsoSegments, kMaxGsoBytes / first.len);
    std::size_t at = start;
    while (at < uniform_end && nmsgs < m.tx_msgs.size()) {
      const std::size_t segs = std::min(max_segs, uniform_end - at);
      m.tx_iovs[nmsgs] = {tx_buf_.data() + tx_[at].offset,
                          segs * static_cast<std::size_t>(first.len)};
      msghdr& h = m.tx_msgs[nmsgs].msg_hdr;
      std::memset(&h, 0, sizeof h);
      h.msg_iov = &m.tx_iovs[nmsgs];
      h.msg_iovlen = 1;
      if (!connected_) {
        h.msg_name = &tx_[at].addr;
        h.msg_namelen = first.addr_len;
      }
      if (segs > 1) {
        h.msg_control = m.tx_ctrl[nmsgs].data();
        h.msg_controllen = CMSG_SPACE(sizeof(std::uint16_t));
        cmsghdr* cm = CMSG_FIRSTHDR(&h);
        cm->cmsg_level = SOL_UDP;
        cm->cmsg_type = UDP_SEGMENT;
        cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
        const auto seg_len = static_cast<std::uint16_t>(first.len);
        std::memcpy(CMSG_DATA(cm), &seg_len, sizeof seg_len);
      }
      m.tx_segs[nmsgs] = segs;
      at += segs;
      ++nmsgs;
    }
    entries = at - start;
  } else {
    std::size_t at = start;
    while (at < total && nmsgs < m.tx_msgs.size()) {
      TxEntry& e = tx_[at];
      m.tx_iovs[nmsgs] = {tx_buf_.data() + e.offset,
                          static_cast<std::size_t>(e.len)};
      msghdr& h = m.tx_msgs[nmsgs].msg_hdr;
      std::memset(&h, 0, sizeof h);
      h.msg_iov = &m.tx_iovs[nmsgs];
      h.msg_iovlen = 1;
      if (!connected_) {
        h.msg_name = &e.addr;
        h.msg_namelen = e.addr_len;
      }
      m.tx_segs[nmsgs] = 1;
      ++at;
      ++nmsgs;
    }
    entries = at - start;
  }

  std::size_t sent_msgs = 0;
  int stalls = 0;
  while (sent_msgs < nmsgs) {
    const int ret = ::sendmmsg(fd_, m.tx_msgs.data() + sent_msgs,
                               static_cast<unsigned>(nmsgs - sent_msgs), 0);
    if (ret < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS) {
        ++stats_.send_pressure;
        wait_writable(kPressureWaitMs);
        if (++stalls <= kPressureRetryCap) continue;
      } else if (err == ECONNREFUSED) {
        // The refusal belonged to an earlier datagram on this connected
        // socket; the current batch was not transmitted — retry it.
        ++stats_.send_refused;
        if (++stalls <= kPressureRetryCap) continue;
      } else if (gso && (err == EINVAL || err == EIO || err == ENOTSUP ||
                         err == EOPNOTSUPP)) {
        // Kernel without UDP GSO: degrade permanently and resend this
        // range as plain per-datagram messages (recursion depth 1).
        use_gso_ = false;
        return flush_mmsg(start);
      } else if (err == ENOSYS) {
        use_mmsg_ = false;  // caller falls back to the sendto loop
        return 0;
      }
      // Persistent stall or hard error: drop the rest of this batch.
      for (std::size_t i = sent_msgs; i < nmsgs; ++i) {
        stats_.send_errors += m.tx_segs[i];
        outstanding_ -= static_cast<std::int64_t>(m.tx_segs[i]);
      }
      if (outstanding_ < 0) outstanding_ = 0;
      break;
    }
    ++stats_.sendmmsg_calls;
    for (int i = 0; i < ret; ++i) {
      stats_.datagrams_sent += m.tx_segs[sent_msgs + i];
      if (m.tx_segs[sent_msgs + i] > 1) ++stats_.gso_batches;
    }
    sent_msgs += static_cast<std::size_t>(ret);
    stalls = 0;
  }
  return entries;
}
#else
std::size_t BatchedUdpEngine::flush_mmsg(std::size_t) { return 0; }
#endif

std::size_t BatchedUdpEngine::flush_sendto(std::size_t start) {
  std::size_t at = start;
  for (; at < tx_.size(); ++at) {
    const TxEntry& e = tx_[at];
    bool sent_ok = false;
    for (int attempt = 0; attempt < kPressureRetryCap; ++attempt) {
      const ssize_t sent = ::sendto(
          fd_, tx_buf_.data() + e.offset, e.len, 0,
          connected_ ? nullptr : reinterpret_cast<const sockaddr*>(&e.addr),
          connected_ ? 0 : e.addr_len);
      ++stats_.sendto_calls;
      if (sent >= 0) {
        ++stats_.datagrams_sent;
        sent_ok = true;
        break;
      }
      const auto outcome = classify_send_errno(errno);
      if (outcome == SendOutcome::kWouldBlock) {
        ++stats_.send_pressure;
        wait_writable(kPressureWaitMs);
        continue;
      }
      if (outcome == SendOutcome::kRefused) {
        ++stats_.send_refused;
        continue;
      }
      break;
    }
    if (!sent_ok) {
      ++stats_.send_errors;
      if (outstanding_ > 0) --outstanding_;
    }
  }
  return at - start;
}

void BatchedUdpEngine::ingest(std::size_t offset, std::size_t len,
                              bool truncated, const void* source_storage,
                              const Endpoint* source_endpoint) {
  ++stats_.datagrams_received;
  if (truncated) ++stats_.recv_truncated;
  RxEntry entry;
  if (encap_) {
    const auto frame =
        SimFrame::decode({rx_buf_.data() + offset, len});
    if (!frame.has_value()) {
      ++stats_.recv_bad_frame;
      return;
    }
    if (outstanding_ > 0) --outstanding_;
    if (frame->kind == SimFrame::kDrop) {
      ++stats_.drop_notices;
      return;
    }
    entry.source = frame->logical;
    entry.time = frame->time;
    entry.offset = static_cast<std::uint32_t>(offset + SimFrame::kWireSize);
    entry.len = static_cast<std::uint32_t>(len - SimFrame::kWireSize);
  } else {
    if (source_endpoint != nullptr)
      entry.source = *source_endpoint;
    else
      entry.source =
          source_storage != nullptr
              ? detail::from_sockaddr(
                    *static_cast<const sockaddr_storage*>(source_storage))
              : (config_.sim_peer.has_value() ? *config_.sim_peer
                                              : Endpoint{});
    entry.time = now();
    entry.offset = static_cast<std::uint32_t>(offset);
    entry.len = static_cast<std::uint32_t>(len);
  }
  ring_[ring_count_++] = entry;
}

std::size_t BatchedUdpEngine::refill_from_ring(std::size_t cap,
                                               std::size_t stride) {
  std::size_t got = 0;
  while (got < cap) {
    const auto frame = ring_view_->poll();
    if (!frame.has_value()) break;
    ++stats_.ring_frames;
    const std::size_t len = std::min(frame->payload.size(), stride);
    if (len > 0)
      std::memcpy(rx_buf_.data() + got * stride, frame->payload.data(), len);
    const std::size_t before = ring_count_;
    ingest(got * stride, len,
           frame->truncated || frame->payload.size() > stride, nullptr,
           &frame->source);
    // Drop notices and bad frames consume no rx slot; reuse it.
    if (ring_count_ > before) ++got;
  }
  return got;
}

bool BatchedUdpEngine::refill(bool force) {
  if (ring_pos_ < ring_count_) return true;
  if (!force && rx_backoff_ > 0) {
    --rx_backoff_;
    return false;
  }
  ring_pos_ = 0;
  ring_count_ = 0;
  const std::size_t cap = config_.batch_size;
  const std::size_t stride = rx_buf_.size() / cap;
  if (ring_view_ != nullptr) {
    // AF_PACKET ring path: frames come off the fanout ring view (already
    // parsed down to UDP payloads); the UDP socket's receive queue stays
    // unread — the ring captured the same datagrams at the link layer.
    refill_from_ring(cap, stride);
    if (ring_count_ == 0) {
      if (!force) rx_backoff_ = kRxBackoffAttempts;
      return false;
    }
    rx_backoff_ = 0;
    return true;
  }
#if defined(__linux__)
  if (use_mmsg_) {
    auto& m = *mmsg_;
    for (std::size_t i = 0; i < cap; ++i) {
      m.rx_iovs[i] = {rx_buf_.data() + i * stride, stride};
      msghdr& h = m.rx_msgs[i].msg_hdr;
      std::memset(&h, 0, sizeof h);
      h.msg_iov = &m.rx_iovs[i];
      h.msg_iovlen = 1;
      if (!connected_) {
        h.msg_name = &m.rx_addrs[i];
        h.msg_namelen = sizeof(sockaddr_storage);
      }
    }
    int ret;
    while ((ret = ::recvmmsg(fd_, m.rx_msgs.data(),
                             static_cast<unsigned>(cap), MSG_DONTWAIT,
                             nullptr)) < 0 &&
           errno == EINTR) {
      // classify_recv_errno(EINTR) == kRetry: a signal interrupted the
      // call before any datagram moved — retrying is free and correct.
    }
    if (ret < 0) {
      const int err = errno;
      if (err == ENOSYS) {
        use_mmsg_ = false;
        return refill(force);
      }
      switch (classify_recv_errno(err)) {
        case RecvErrnoAction::kRefused:
          // ICMP port-unreachable latched against a probe we sent.
          ++stats_.send_refused;
          break;
        case RecvErrnoAction::kHard:
          ++stats_.recv_errors;
          break;
        case RecvErrnoAction::kRetry:
        case RecvErrnoAction::kEmpty:
          break;
      }
    } else {
      ++stats_.recvmmsg_calls;
      for (int i = 0; i < ret; ++i) {
        const msghdr& h = m.rx_msgs[i].msg_hdr;
        const bool truncated = (h.msg_flags & MSG_TRUNC) != 0;
        const std::size_t len =
            std::min<std::size_t>(m.rx_msgs[i].msg_len, stride);
        ingest(i * stride, len, truncated,
               connected_ ? nullptr : &m.rx_addrs[i]);
      }
    }
  } else
#endif
  {
    for (std::size_t i = 0; i < cap; ++i) {
      sockaddr_storage from{};
      socklen_t from_len = sizeof from;
      int flags = 0;
#if defined(__linux__)
      flags = MSG_DONTWAIT | MSG_TRUNC;  // returns the real wire size
#endif
      ssize_t got;
      while ((got = ::recvfrom(
                  fd_, rx_buf_.data() + i * stride, stride, flags,
                  connected_ ? nullptr : reinterpret_cast<sockaddr*>(&from),
                  connected_ ? nullptr : &from_len)) < 0 &&
             errno == EINTR) {
        // EINTR is a retry, not an empty queue and not an error (the
        // latent bug this replaces broke out of the refill loop here).
      }
      if (got < 0) {
        const auto action = classify_recv_errno(errno);
        if (action == RecvErrnoAction::kRefused) {
          ++stats_.send_refused;
          continue;
        }
        if (action == RecvErrnoAction::kHard) ++stats_.recv_errors;
        break;
      }
      ++stats_.recvfrom_calls;
      const auto wire = static_cast<std::size_t>(got);
      ingest(i * stride, std::min(wire, stride), wire > stride,
             connected_ ? nullptr : &from);
    }
  }
  if (ring_count_ == 0) {
    if (!force) rx_backoff_ = kRxBackoffAttempts;
    return false;
  }
  rx_backoff_ = 0;
  return true;
}

std::optional<DatagramView> BatchedUdpEngine::receive_view() {
  if (!inbox_.empty()) {
    view_slot_ = std::move(inbox_.front());
    inbox_.pop_front();
    return DatagramView{view_slot_.source, view_slot_.destination,
                        view_slot_.payload, view_slot_.time};
  }
  if (ring_pos_ >= ring_count_ && !refill(/*force=*/false))
    return std::nullopt;
  const RxEntry& entry = ring_[ring_pos_++];
  return DatagramView{entry.source,
                      Endpoint{local_.address, local_.port},
                      {rx_buf_.data() + entry.offset, entry.len},
                      entry.time};
}

std::optional<Datagram> BatchedUdpEngine::receive() {
  const auto view = receive_view();
  if (!view.has_value()) return std::nullopt;
  Datagram datagram;
  datagram.source = view->source;
  datagram.destination = view->destination;
  datagram.payload.assign(view->payload.begin(), view->payload.end());
  datagram.time = view->time;
  return datagram;
}

void BatchedUdpEngine::drain_to_inbox() {
  for (;;) {
    while (ring_pos_ < ring_count_) {
      const RxEntry& entry = ring_[ring_pos_++];
      Datagram datagram;
      datagram.source = entry.source;
      datagram.destination = Endpoint{local_.address, local_.port};
      datagram.payload.assign(rx_buf_.data() + entry.offset,
                              rx_buf_.data() + entry.offset + entry.len);
      datagram.time = entry.time;
      inbox_.push_back(std::move(datagram));
    }
    if (!refill(/*force=*/true)) return;
  }
}

void BatchedUdpEngine::flow_gate() {
  flush();
  const util::VTime start = steady_us();
  util::VTime last_arrival = start;
  while (outstanding_ >= static_cast<std::int64_t>(config_.flow_window)) {
    const std::int64_t before = outstanding_;
    drain_to_inbox();
    const util::VTime t = steady_us();
    if (outstanding_ < before) last_arrival = t;
    if (t - last_arrival > kFlowStallTimeout) {
      // A datagram (or its answer) was lost; reopen the window rather
      // than hang the scan. The loss shows up in the drop-cause counters.
      ++stats_.flow_stalls;
      outstanding_ = 0;
      return;
    }
    if (outstanding_ >= static_cast<std::int64_t>(config_.flow_window))
      wait_readable(1);
  }
}

void BatchedUdpEngine::linger_drain() {
  if (sent_since_linger_ == 0) return;
  flush();
  const util::VTime grace =
      std::max<util::VTime>(config_.linger_grace, util::kMillisecond);
  util::VTime last_arrival = steady_us();
  for (;;) {
    const std::uint64_t before = stats_.datagrams_received;
    drain_to_inbox();
    const util::VTime t = steady_us();
    if (stats_.datagrams_received > before) last_arrival = t;
    const util::VTime silent = t - last_arrival;
    if (silent >= grace) break;
    wait_readable(
        static_cast<int>(std::max<util::VTime>((grace - silent) / 1000, 1)));
  }
  sent_since_linger_ = 0;
}

void BatchedUdpEngine::run_until(util::VTime deadline) {
  if (config_.clock == EngineClock::kVirtual) {
    // Small jumps leave pending frames batching across probes (the
    // reflector consumes the header timestamp, not the arrival instant,
    // so delayed transmission never changes a response). Large jumps are
    // schedule boundaries: push everything out and wait for in-flight
    // datagrams before the clock moves past them.
    if (deadline - vclock_.now() >= config_.flush_horizon) {
      flush();
      linger_drain();
    }
    vclock_.advance_to(deadline);
    return;
  }
  for (;;) {
    const util::VTime gap = deadline - now();
    if (gap <= 0) return;
    if (gap > config_.max_sleep) {
      // Scan boundary: wait (really) for stragglers, then fast-forward
      // the wall offset instead of sleeping out the gap.
      flush();
      linger_drain();
      wall_offset_ += deadline - now();
      return;
    }
    flush();
    if (wait_readable(static_cast<int>(gap / 1000)))  // 0 => nonblocking poll
      drain_to_inbox();
  }
}

}  // namespace snmpv3fp::net
