// RAII wrapper over a non-blocking POSIX UDP socket (one per family).
//
// This is the "live" path: the same probe bytes the simulator answers can
// be sent at a real SNMP agent (see examples/quickstart.cpp --live). The
// wrapper owns the file descriptor (Core Guidelines R.1) and exposes only
// datagram-level operations.
#pragma once

#include <cstdint>
#include <optional>

#include "net/transport.hpp"
#include "util/result.hpp"

namespace snmpv3fp::net {

class UdpSocket {
 public:
  // Opens an unbound, non-blocking socket for the given family.
  static util::Result<UdpSocket> open(Family family);

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  // Sends one datagram; returns false if the kernel would block.
  util::Result<bool> send_to(const Endpoint& destination, util::ByteView payload);

  // Receives one datagram if available within `timeout_ms` (0 = poll).
  util::Result<std::optional<Datagram>> receive(int timeout_ms);

  int fd() const { return fd_; }

 private:
  explicit UdpSocket(int fd, Family family) : fd_(fd), family_(family) {}
  int fd_ = -1;
  Family family_ = Family::kIpv4;
};

}  // namespace snmpv3fp::net
