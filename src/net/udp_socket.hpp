// RAII wrapper over a non-blocking POSIX UDP socket (one per family).
//
// This is the "live" path: the same probe bytes the simulator answers can
// be sent at a real SNMP agent (see examples/quickstart.cpp --live). The
// wrapper owns the file descriptor (Core Guidelines R.1) and exposes only
// datagram-level operations. Kernel error conditions surface as distinct
// outcomes instead of one generic failure, so callers can account drop
// causes separately: EAGAIN (send-buffer pressure — the pacer's explicit
// backoff input), ECONNREFUSED (an ICMP port-unreachable bounced back to a
// connected socket), and MSG_TRUNC (a datagram larger than the receive
// buffer, delivered clipped).
#pragma once

#include <cstdint>
#include <optional>

#include "net/transport.hpp"
#include "util/result.hpp"

struct pollfd;  // <poll.h>; forward-declared to keep it out of this header

namespace snmpv3fp::net {

// What happened to one send_to(): delivered to the kernel, deferred by a
// full send buffer, or rejected because the destination signalled
// port-unreachable. Anything else is a Result failure.
enum class SendOutcome {
  kSent,
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: kernel send buffer full
  kRefused,     // ECONNREFUSED: ICMP port-unreachable (connected sockets)
};

// One receive() call's result. `datagram` is empty on timeout. `truncated`
// marks a datagram that was larger than the receive buffer — the payload
// holds the clipped prefix and the byte count the wire actually carried is
// in `wire_bytes`. `refused` marks an ICMP port-unreachable reported on a
// connected socket (no datagram accompanies it).
struct RecvOutcome {
  std::optional<Datagram> datagram;
  bool truncated = false;
  bool refused = false;
  std::size_t wire_bytes = 0;
};

// Maps a send-path errno to its outcome, or nullopt for errors that should
// stay hard failures. Exposed so the error taxonomy is unit-testable
// without provoking each condition from a real kernel.
std::optional<SendOutcome> classify_send_errno(int error);

// What a receive-path errno means for the caller's loop. EINTR is the
// load-bearing case: a timer or profiling signal interrupting a blocking
// wait must retry, never surface as a receive error — every recv-side
// loop (UdpSocket::receive, BatchedUdpEngine's refill and poll waits)
// consults this, the receive analogue of classify_send_errno.
enum class RecvErrnoAction {
  kRetry,    // EINTR: a signal interrupted the call; retry it
  kEmpty,    // EAGAIN/EWOULDBLOCK: nothing queued right now
  kRefused,  // ECONNREFUSED: ICMP port-unreachable latched on the socket
  kHard,     // anything else: a real receive error
};
RecvErrnoAction classify_recv_errno(int error);

// poll(2) with the EINTR contract applied: an interrupting signal re-arms
// the wait with the time that remains of `timeout_ms`, so a fast timer
// can neither surface as an error nor pin the caller past its deadline
// (retrying with the full timeout would never terminate under a
// repeating signal). Returns poll's result; 0 also when the budget ran
// out mid-retry. timeout_ms < 0 retries indefinitely, like poll.
int poll_interruptible(struct pollfd* fds, unsigned long nfds,
                       int timeout_ms);

class UdpSocket {
 public:
  // Opens an unbound, non-blocking socket for the given family.
  static util::Result<UdpSocket> open(Family family);

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  // Binds to the given endpoint (port 0 = kernel-assigned).
  util::Status bind_to(const Endpoint& local);

  // Connects the socket to one peer. Connected sockets get ICMP errors
  // (port unreachable -> SendOutcome::kRefused / RecvOutcome::refused)
  // reported by the kernel; unconnected sockets silently drop them.
  util::Status connect_to(const Endpoint& peer);

  // The bound/assigned local endpoint.
  util::Result<Endpoint> local_endpoint() const;

  // Sends one datagram; never blocks. See SendOutcome for the non-failure
  // cases a caller must handle.
  util::Result<SendOutcome> send_to(const Endpoint& destination,
                                    util::ByteView payload);

  // Receives one datagram if available within `timeout_ms` (0 = poll).
  util::Result<RecvOutcome> receive(int timeout_ms);

  int fd() const { return fd_; }

 private:
  explicit UdpSocket(int fd, Family family) : fd_(fd), family_(family) {}
  int fd_ = -1;
  Family family_ = Family::kIpv4;
};

}  // namespace snmpv3fp::net
