// IEEE MAC-48 addresses and OUI extraction.
//
// The paper's strongest identifier is an engine ID carrying one of the
// device's MAC addresses; the upper three bytes (the OUI) identify the
// vendor. MacAddress is a value type usable as a map key.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snmpv3fp::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit MacAddress(const std::array<std::uint8_t, 6>& bytes) : bytes_(bytes) {}

  static util::Result<MacAddress> parse(std::string_view text);  // aa:bb:cc:dd:ee:ff
  static util::Result<MacAddress> from_bytes(util::ByteView bytes);
  // Builds a MAC from a 24-bit OUI and a 24-bit NIC-specific suffix.
  static MacAddress from_oui(std::uint32_t oui, std::uint32_t nic);

  const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  util::Bytes to_bytes() const { return {bytes_.begin(), bytes_.end()}; }
  std::string to_string() const;  // "74:8e:f8:31:db:80"

  // Upper 24 bits: the Organizationally Unique Identifier.
  std::uint32_t oui() const {
    return (std::uint32_t{bytes_[0]} << 16) | (std::uint32_t{bytes_[1]} << 8) |
           bytes_[2];
  }
  std::uint32_t nic() const {
    return (std::uint32_t{bytes_[3]} << 16) | (std::uint32_t{bytes_[4]} << 8) |
           bytes_[5];
  }
  bool is_locally_administered() const { return (bytes_[0] & 0x02) != 0; }
  bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace snmpv3fp::net
