// Endpoint <-> sockaddr conversion shared by the POSIX transports
// (udp_socket.cpp, batched_udp.cpp). Internal header — include only from
// .cpp files that already speak POSIX sockets.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <array>
#include <cstring>

#include "net/transport.hpp"

namespace snmpv3fp::net::detail {

// Fills `storage` from `ep` and returns the address length for the family.
inline socklen_t to_sockaddr(const Endpoint& ep, sockaddr_storage& storage) {
  storage = {};
  if (ep.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(ep.port);
    sa->sin_addr.s_addr = htonl(ep.address.v4().value());
    return sizeof(sockaddr_in);
  }
  auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
  sa->sin6_family = AF_INET6;
  sa->sin6_port = htons(ep.port);
  std::memcpy(sa->sin6_addr.s6_addr, ep.address.v6().bytes().data(), 16);
  return sizeof(sockaddr_in6);
}

inline Endpoint from_sockaddr(const sockaddr_storage& storage) {
  Endpoint ep;
  if (storage.ss_family == AF_INET) {
    const auto* sa = reinterpret_cast<const sockaddr_in*>(&storage);
    ep.address = Ipv4(ntohl(sa->sin_addr.s_addr));
    ep.port = ntohs(sa->sin_port);
  } else {
    const auto* sa = reinterpret_cast<const sockaddr_in6*>(&storage);
    std::array<std::uint8_t, 16> bytes{};
    std::memcpy(bytes.data(), sa->sin6_addr.s6_addr, 16);
    ep.address = Ipv6(bytes);
    ep.port = ntohs(sa->sin6_port);
  }
  return ep;
}

}  // namespace snmpv3fp::net::detail
