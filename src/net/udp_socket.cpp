#include "net/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace snmpv3fp::net {

namespace {
using util::Result;

Result<sockaddr_storage> to_sockaddr(const Endpoint& ep, socklen_t& len) {
  sockaddr_storage storage{};
  if (ep.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(ep.port);
    sa->sin_addr.s_addr = htonl(ep.address.v4().value());
    len = sizeof(sockaddr_in);
  } else {
    auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
    sa->sin6_family = AF_INET6;
    sa->sin6_port = htons(ep.port);
    std::memcpy(sa->sin6_addr.s6_addr, ep.address.v6().bytes().data(), 16);
    len = sizeof(sockaddr_in6);
  }
  return storage;
}

Endpoint from_sockaddr(const sockaddr_storage& storage) {
  Endpoint ep;
  if (storage.ss_family == AF_INET) {
    const auto* sa = reinterpret_cast<const sockaddr_in*>(&storage);
    ep.address = Ipv4(ntohl(sa->sin_addr.s_addr));
    ep.port = ntohs(sa->sin_port);
  } else {
    const auto* sa = reinterpret_cast<const sockaddr_in6*>(&storage);
    std::array<std::uint8_t, 16> bytes{};
    std::memcpy(bytes.data(), sa->sin6_addr.s6_addr, 16);
    ep.address = Ipv6(bytes);
    ep.port = ntohs(sa->sin6_port);
  }
  return ep;
}
}  // namespace

Result<UdpSocket> UdpSocket::open(Family family) {
  const int domain = family == Family::kIpv4 ? AF_INET : AF_INET6;
  const int fd = ::socket(domain, SOCK_DGRAM, IPPROTO_UDP);
  if (fd < 0)
    return Result<UdpSocket>::failure(std::string("socket: ") +
                                      std::strerror(errno));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    return Result<UdpSocket>::failure(std::string("fcntl: ") +
                                      std::strerror(saved));
  }
  return UdpSocket(fd, family);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), family_(other.family_) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    family_ = other.family_;
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

Result<bool> UdpSocket::send_to(const Endpoint& destination,
                                util::ByteView payload) {
  socklen_t len = 0;
  auto addr = to_sockaddr(destination, len);
  if (!addr) return Result<bool>::failure(addr.error());
  const ssize_t sent =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr.value()), len);
  if (sent < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    return Result<bool>::failure(std::string("sendto: ") + std::strerror(errno));
  }
  return true;
}

Result<std::optional<Datagram>> UdpSocket::receive(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0)
    return Result<std::optional<Datagram>>::failure(std::string("poll: ") +
                                                    std::strerror(errno));
  if (ready == 0) return std::optional<Datagram>{};

  util::Bytes buffer(65536);
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  const ssize_t received =
      ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                 reinterpret_cast<sockaddr*>(&storage), &len);
  if (received < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return std::optional<Datagram>{};
    return Result<std::optional<Datagram>>::failure(std::string("recvfrom: ") +
                                                    std::strerror(errno));
  }
  buffer.resize(static_cast<std::size_t>(received));
  Datagram dg;
  dg.source = from_sockaddr(storage);
  dg.payload = std::move(buffer);
  return std::optional<Datagram>(std::move(dg));
}

}  // namespace snmpv3fp::net
