#include "net/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/sockaddr_util.hpp"

namespace snmpv3fp::net {

namespace {
using detail::from_sockaddr;
using detail::to_sockaddr;
using util::Result;
using util::Status;
}  // namespace

int poll_interruptible(struct pollfd* fds, unsigned long nfds,
                       int timeout_ms) {
  const auto started = std::chrono::steady_clock::now();
  int remaining = timeout_ms;
  int ready;
  while ((ready = ::poll(fds, static_cast<nfds_t>(nfds), remaining)) < 0 &&
         errno == EINTR) {
    if (timeout_ms < 0) continue;  // indefinite wait: re-arm as-is
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    remaining = timeout_ms - static_cast<int>(elapsed.count());
    if (remaining <= 0) return 0;  // budget spent across the interruptions
  }
  return ready;
}

RecvErrnoAction classify_recv_errno(int error) {
  switch (error) {
    case EINTR:
      return RecvErrnoAction::kRetry;
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
      return RecvErrnoAction::kEmpty;
    case ECONNREFUSED:
      return RecvErrnoAction::kRefused;
    default:
      return RecvErrnoAction::kHard;
  }
}

std::optional<SendOutcome> classify_send_errno(int error) {
  switch (error) {
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
    case ENOBUFS:  // same condition surfaced by some stacks/loopback paths
      return SendOutcome::kWouldBlock;
    case ECONNREFUSED:
      return SendOutcome::kRefused;
    default:
      return std::nullopt;
  }
}

Result<UdpSocket> UdpSocket::open(Family family) {
  const int domain = family == Family::kIpv4 ? AF_INET : AF_INET6;
  const int fd = ::socket(domain, SOCK_DGRAM, IPPROTO_UDP);
  if (fd < 0)
    return Result<UdpSocket>::failure(std::string("socket: ") +
                                      std::strerror(errno));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    return Result<UdpSocket>::failure(std::string("fcntl: ") +
                                      std::strerror(saved));
  }
  return UdpSocket(fd, family);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), family_(other.family_) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    family_ = other.family_;
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

Status UdpSocket::bind_to(const Endpoint& local) {
  sockaddr_storage addr{};
  const socklen_t len = to_sockaddr(local, addr);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), len) != 0)
    return Status::failure(std::string("bind: ") + std::strerror(errno));
  return {};
}

Status UdpSocket::connect_to(const Endpoint& peer) {
  sockaddr_storage addr{};
  const socklen_t len = to_sockaddr(peer, addr);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), len) != 0)
    return Status::failure(std::string("connect: ") + std::strerror(errno));
  return {};
}

Result<Endpoint> UdpSocket::local_endpoint() const {
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&storage), &len) != 0)
    return Result<Endpoint>::failure(std::string("getsockname: ") +
                                     std::strerror(errno));
  return from_sockaddr(storage);
}

Result<SendOutcome> UdpSocket::send_to(const Endpoint& destination,
                                       util::ByteView payload) {
  sockaddr_storage addr{};
  const socklen_t len = to_sockaddr(destination, addr);
  const ssize_t sent =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), len);
  if (sent < 0) {
    if (const auto outcome = classify_send_errno(errno)) return *outcome;
    return Result<SendOutcome>::failure(std::string("sendto: ") +
                                        std::strerror(errno));
  }
  return SendOutcome::kSent;
}

Result<RecvOutcome> UdpSocket::receive(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  // classify_recv_errno(EINTR) == kRetry: an interrupting signal is not a
  // receive failure; the wait re-arms with whatever timeout remains.
  const int ready = poll_interruptible(&pfd, 1, timeout_ms);
  if (ready < 0)
    return Result<RecvOutcome>::failure(std::string("poll: ") +
                                        std::strerror(errno));
  if (ready == 0) return RecvOutcome{};

  util::Bytes buffer(65536);
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  // MSG_TRUNC makes recvfrom return the datagram's real wire size even
  // when it exceeds the buffer, so truncation is detectable instead of
  // silently clipping.
  ssize_t received;
  while ((received =
              ::recvfrom(fd_, buffer.data(), buffer.size(), MSG_TRUNC,
                         reinterpret_cast<sockaddr*>(&storage), &len)) < 0 &&
         classify_recv_errno(errno) == RecvErrnoAction::kRetry) {
    len = sizeof storage;
  }
  if (received < 0) {
    switch (classify_recv_errno(errno)) {
      case RecvErrnoAction::kEmpty:
        return RecvOutcome{};
      case RecvErrnoAction::kRefused: {
        // The kernel queued an ICMP port-unreachable against this
        // connected socket: the probe's destination actively refused it.
        RecvOutcome out;
        out.refused = true;
        return out;
      }
      case RecvErrnoAction::kRetry:  // unreachable; the loop retried
      case RecvErrnoAction::kHard:
        break;
    }
    return Result<RecvOutcome>::failure(std::string("recvfrom: ") +
                                        std::strerror(errno));
  }
  RecvOutcome out;
  out.wire_bytes = static_cast<std::size_t>(received);
  out.truncated = out.wire_bytes > buffer.size();
  buffer.resize(std::min(out.wire_bytes, buffer.size()));
  Datagram dg;
  dg.source = from_sockaddr(storage);
  dg.payload = std::move(buffer);
  out.datagram = std::move(dg);
  return out;
}

}  // namespace snmpv3fp::net
