#include "net/mac.hpp"

#include <cstdio>

namespace snmpv3fp::net {

util::Result<MacAddress> MacAddress::parse(std::string_view text) {
  auto bytes = util::from_hex(text);
  if (!bytes) return util::Result<MacAddress>::failure(bytes.error());
  return from_bytes(bytes.value());
}

util::Result<MacAddress> MacAddress::from_bytes(util::ByteView bytes) {
  if (bytes.size() != 6)
    return util::Result<MacAddress>::failure("MAC needs 6 bytes");
  std::array<std::uint8_t, 6> arr{};
  std::copy(bytes.begin(), bytes.end(), arr.begin());
  return MacAddress(arr);
}

MacAddress MacAddress::from_oui(std::uint32_t oui, std::uint32_t nic) {
  std::array<std::uint8_t, 6> bytes{
      static_cast<std::uint8_t>(oui >> 16), static_cast<std::uint8_t>(oui >> 8),
      static_cast<std::uint8_t>(oui),       static_cast<std::uint8_t>(nic >> 16),
      static_cast<std::uint8_t>(nic >> 8),  static_cast<std::uint8_t>(nic)};
  return MacAddress(bytes);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace snmpv3fp::net
