// IP -> autonomous-system mapping (the role of public BGP/ASN data in the
// paper's per-AS and per-region analyses, §5.4 and §6.4).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/ip.hpp"

namespace snmpv3fp::net {

struct AsInfo {
  std::uint32_t asn = 0;
  std::string region;  // continent code: EU/NA/AS/SA/AF/OC
};

class AsTable {
 public:
  void add_v4(const Prefix4& prefix, AsInfo info);
  // IPv6 allocations are keyed by their leading two 16-bit groups (/32).
  void add_v6(const std::array<std::uint16_t, 2>& prefix, AsInfo info);

  std::optional<AsInfo> lookup(const IpAddress& address) const;
  std::size_t size() const { return v4_.size() + v6_.size(); }

 private:
  // Longest-prefix is unnecessary here: allocations are non-overlapping
  // /16s (v4) and /32s (v6), so an ordered map keyed by the base works.
  std::map<std::uint32_t, std::pair<int, AsInfo>> v4_;  // base -> (len, info)
  std::map<std::uint32_t, AsInfo> v6_;                  // group0<<16|group1
};

}  // namespace snmpv3fp::net
