// AF_PACKET TPACKET_V3 ring receive path (ROADMAP "AF_PACKET ring
// receive"): the receive half of line-rate campaigns.
//
// PacketRingReceiver owns one AF_PACKET socket whose RX path is a
// memory-mapped TPACKET_V3 ring: the kernel writes captured frames
// straight into user-visible blocks and retires a block to user space
// when it fills or its retire timeout expires — the scanner walks frames
// with zero syscalls and zero copies, releasing whole blocks back to the
// kernel as it advances past them (the idiom mercury and ZMap-class
// capture stacks use to keep up with line rate). A bounded, fail-closed
// link-layer parser (Ethernet/VLAN or cooked SLL -> IPv4/IPv6 with
// extension headers -> UDP) turns each raw frame into a borrowed payload
// view; anything it cannot prove well-formed is counted and dropped,
// never delivered.
//
// PacketRingGroup scales this across campaign shards: N receivers join
// one PACKET_FANOUT_HASH group, so the kernel steers each flow to exactly
// one ring. Hash steering does not know which shard's UDP socket owns a
// flow's destination port, so the group demuxes in user space: every
// shard polls through a ShardRingView that drains rings (its own first,
// then the others — a shard that finished probing must not strand frames
// in its ring) into per-shard inboxes keyed by registered destination
// port. BatchedUdpEngine::attach_ring() swaps its recvmmsg receive half
// for such a view; sends keep flowing through the UDP socket, which also
// keeps the port reserved (and thus the kernel answering with ICMP
// instead of another ring's traffic).
//
// Requires CAP_NET_RAW (AF_PACKET sockets). open()/create() fail with a
// Result on unprivileged boxes; every caller treats that as a visible
// skip/fallback, never a crash.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snmpv3fp::net {

struct PacketRingConfig {
  std::string interface = "lo";  // campaigns bind loopback engines
  // Ring geometry: block_count blocks of block_size bytes (block_size is
  // rounded up to a page multiple and must divide evenly into frames).
  // 16 x 128 KiB holds ~10k typical probe-sized frames.
  std::size_t block_size = 1u << 17;
  std::size_t block_count = 16;  // SNMPFP_RING_BLOCKS overrides (create())
  std::size_t frame_size = 2048;
  // Kernel retires a non-full block to user space after this timeout, so
  // a trickle of frames never sits invisible in an open block.
  unsigned retire_tov_ms = 4;
};

// Applies the SNMPFP_RING_BLOCKS environment override (if set and a valid
// positive integer) to `config.block_count`.
PacketRingConfig apply_ring_env(PacketRingConfig config);

// Per-receiver accounting, aggregated into NetIoStats ring_* counters.
struct RingCounters {
  std::uint64_t blocks = 0;        // retired blocks consumed
  std::uint64_t frames = 0;        // well-formed inbound UDP frames yielded
  std::uint64_t drops = 0;         // kernel PACKET_STATISTICS tp_drops
  std::uint64_t non_udp = 0;       // frames the link parser rejected
  std::uint64_t foreign_port = 0;  // UDP to a port no shard registered
};

// One parsed inbound UDP frame. `payload` is borrowed — from the mmap'd
// ring (PacketRingReceiver::next) or from a demux inbox slot
// (ShardRingView::poll) — and stays valid only until the next call on the
// object that returned it.
struct RingFrame {
  Endpoint source;              // IP source + UDP source port
  std::uint16_t dst_port = 0;   // UDP destination port (demux key)
  util::ByteView payload;
  bool truncated = false;       // snaplen clipped the UDP payload
};

// Link framing of the captured interface. Cooked SLL covers interfaces
// that deliver without an Ethernet header (and gives the parser corpus a
// second header shape to prove bounds on).
enum class LinkType { kEthernet, kCookedSll };

// Parses one captured link-layer frame down to its UDP payload. Bounded
// and fail-closed: every header read is length-checked first, and a frame
// whose link/IP/UDP headers are not fully present and well-formed is
// rejected (returns false) rather than guessed at. Fragmented datagrams
// are rejected (a non-first fragment has no UDP header; a first fragment
// has an incomplete payload). A frame whose headers are intact but whose
// payload was clipped by the capture length is delivered with
// `out.truncated` set, mirroring recvmmsg's MSG_TRUNC semantics. Pure
// function, unit-tested over a hostile corpus in tests/test_packet_ring.
bool parse_link_frame(util::ByteView frame, LinkType link, RingFrame& out);

class PacketRingReceiver {
 public:
  // Opens the AF_PACKET socket, installs the TPACKET_V3 ring and maps it.
  // Fails without CAP_NET_RAW or when the interface does not exist.
  static util::Result<std::unique_ptr<PacketRingReceiver>> open(
      const PacketRingConfig& config);
  ~PacketRingReceiver();

  PacketRingReceiver(const PacketRingReceiver&) = delete;
  PacketRingReceiver& operator=(const PacketRingReceiver&) = delete;

  // Joins a PACKET_FANOUT_HASH group (every member must join before
  // traffic flows; ids are 16-bit and per network namespace).
  util::Status join_fanout(int group_id);

  // Next inbound UDP frame, or nullopt when the ring is empty after
  // waiting up to `timeout_ms` (0 = pure poll). The returned payload view
  // points into the ring and is valid until the next next() call —
  // blocks are released back to the kernel only when the walk advances
  // past them. Outgoing loopback copies and non-UDP frames are skipped
  // and counted, never returned. Not thread-safe; PacketRingGroup
  // serializes access per receiver.
  std::optional<RingFrame> next(int timeout_ms);

  // Folds the kernel's PACKET_STATISTICS drop counter (cumulative since
  // the last read) into counters().drops.
  void update_kernel_drops();

  const RingCounters& counters() const { return counters_; }
  int fd() const { return fd_; }
  LinkType link_type() const { return link_; }

 private:
  PacketRingReceiver() = default;

  // Releases the current block to the kernel and opens the next retired
  // one, if any. Returns true when a block with unread frames is open.
  bool advance_block();

  int fd_ = -1;
  LinkType link_ = LinkType::kEthernet;
  std::uint8_t* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::size_t block_size_ = 0;
  std::size_t block_count_ = 0;

  std::size_t block_idx_ = 0;     // next block to open
  bool block_open_ = false;
  std::uint32_t pkts_left_ = 0;   // unread frames in the open block
  const std::uint8_t* frame_at_ = nullptr;  // next frame header

  RingCounters counters_;
};

class PacketRingGroup;

// One shard's handle into the group: poll() yields the next frame whose
// destination port this shard registered. Frames are copied out of the
// rings into per-shard inboxes under the group's locks (rings are shared
// across shard threads; a borrowed ring view cannot cross them), and the
// returned view borrows the inbox slot — valid until the next poll().
class ShardRingView {
 public:
  std::optional<RingFrame> poll();
  // Ring fds a readiness wait must watch: a frame for this shard can land
  // in any ring of the fanout group.
  const std::vector<int>& fds() const;
  // Frames this view delivered (the shard's ring_frames counter).
  std::uint64_t delivered() const { return delivered_; }

 private:
  friend class PacketRingGroup;
  PacketRingGroup* group_ = nullptr;
  std::size_t shard_ = 0;
  std::uint64_t delivered_ = 0;
  // Owns the bytes behind the last returned view.
  util::Bytes slot_payload_;
  RingFrame slot_;
};

// N fanout receivers + user-space port demux. create() opens every
// receiver and joins them into a fresh PACKET_FANOUT_HASH group (no
// fanout when shards == 1 — one ring sees everything). register_port()
// calls must all happen before traffic flows; poll() is safe from
// concurrent shard threads.
class PacketRingGroup {
 public:
  static util::Result<std::unique_ptr<PacketRingGroup>> create(
      const PacketRingConfig& config, std::size_t shards);

  void register_port(std::uint16_t port, std::size_t shard);
  ShardRingView* view(std::size_t shard) { return &views_[shard]; }
  std::size_t shards() const { return views_.size(); }

  // Ring counters aggregated over every receiver (reads kernel drop
  // stats first), expressed as a NetIoStats with only ring_* fields set
  // so campaigns can fold it straight into CampaignPair::net_io.
  NetIoStats stats();

 private:
  friend class ShardRingView;
  PacketRingGroup() = default;

  // Drains every ring (shard's own first) into the inboxes until the
  // shard's inbox has a frame or all rings are empty. Returns true when
  // the shard's inbox is non-empty.
  bool pump(std::size_t shard);

  struct OwnedFrame {
    util::Bytes payload;
    Endpoint source;
    std::uint16_t dst_port = 0;
    bool truncated = false;
  };
  struct Ring {
    std::unique_ptr<PacketRingReceiver> receiver;
    std::mutex mutex;
  };
  struct Inbox {
    std::mutex mutex;
    std::deque<OwnedFrame> frames;
  };

  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<ShardRingView> views_;
  std::vector<int> fds_;
  std::unordered_map<std::uint16_t, std::size_t> port_to_shard_;
  std::mutex foreign_mutex_;
  std::uint64_t foreign_port_ = 0;
};

}  // namespace snmpv3fp::net
