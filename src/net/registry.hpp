// Embedded IEEE OUI and IANA Private Enterprise Number registries.
//
// The paper maps MAC-based engine IDs to vendors via the IEEE OUI file and
// uses the engine ID's enterprise number (RFC 3411) as a fallback / cross
// check. The live registries are external data we cannot ship, so we embed
// a representative subset that covers every vendor in the simulated world
// plus deliberately *unregistered* space used to exercise the
// "Unregistered MAC engine IDs" filter. Lookup semantics match the real
// pipeline: unknown OUI -> no vendor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/mac.hpp"

namespace snmpv3fp::net {

class OuiRegistry {
 public:
  // Singleton-style accessor for the embedded table (immutable after build).
  static const OuiRegistry& embedded();

  std::optional<std::string_view> vendor_of(std::uint32_t oui) const;
  std::optional<std::string_view> vendor_of(const MacAddress& mac) const {
    return vendor_of(mac.oui());
  }
  bool contains(std::uint32_t oui) const { return vendor_of(oui).has_value(); }

  // All OUIs registered to `vendor` (the generator assigns device MACs from
  // these blocks).
  std::vector<std::uint32_t> ouis_of(std::string_view vendor) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t oui;
    std::string_view vendor;
  };
  explicit OuiRegistry(std::vector<Entry> entries);
  std::vector<Entry> entries_;  // sorted by oui
};

class EnterpriseRegistry {
 public:
  static const EnterpriseRegistry& embedded();

  std::optional<std::string_view> vendor_of(std::uint32_t pen) const;
  // Enterprise number registered to `vendor`, if any.
  std::optional<std::uint32_t> pen_of(std::string_view vendor) const;
  bool contains(std::uint32_t pen) const { return vendor_of(pen).has_value(); }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t pen;
    std::string_view vendor;
  };
  explicit EnterpriseRegistry(std::vector<Entry> entries);
  std::vector<Entry> entries_;  // sorted by pen
};

// Well-known enterprise numbers referenced directly by code/tests.
inline constexpr std::uint32_t kPenCisco = 9;
inline constexpr std::uint32_t kPenHuawei = 2011;
inline constexpr std::uint32_t kPenJuniper = 2636;
inline constexpr std::uint32_t kPenBrocade = 1991;  // Foundry/Brocade
inline constexpr std::uint32_t kPenNetSnmp = 8072;
inline constexpr std::uint32_t kPenH3c = 25506;

}  // namespace snmpv3fp::net
