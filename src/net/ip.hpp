// IPv4/IPv6 address value types.
//
// Strongly-typed addresses (Core Guidelines I.4) instead of raw integers:
// the filtering pipeline needs routability classification (the paper's
// "Unroutable IPv4 engine IDs" filter) and the alias resolver uses
// addresses as ordered map keys across both families.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <variant>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snmpv3fp::net {

using util::Bytes;
using util::ByteView;
using util::Result;

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static Result<Ipv4> parse(std::string_view text);
  // From 4 raw big-endian bytes (e.g. an IPv4-format engine ID payload).
  static Result<Ipv4> from_bytes(ByteView bytes);

  std::uint32_t value() const { return value_; }
  std::string to_string() const;
  Bytes to_bytes() const;

  std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  // True for globally routable unicast space: excludes RFC 1918 private,
  // loopback, link-local, multicast, reserved (240/4), 0/8 and broadcast.
  bool is_routable() const;

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv6 {
 public:
  constexpr Ipv6() = default;
  explicit Ipv6(const std::array<std::uint8_t, 16>& bytes) : bytes_(bytes) {}

  static Result<Ipv6> parse(std::string_view text);
  static Result<Ipv6> from_bytes(ByteView bytes);
  // Convenience builder from eight 16-bit groups.
  static Ipv6 from_groups(const std::array<std::uint16_t, 8>& groups);

  const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }
  std::uint16_t group(int i) const {
    return static_cast<std::uint16_t>((bytes_[2 * i] << 8) | bytes_[2 * i + 1]);
  }
  // RFC 5952 canonical text (lower-case, longest zero run compressed).
  std::string to_string() const;
  Bytes to_bytes() const;

  bool is_routable() const;  // excludes ::, ::1, fe80::/10, fc00::/7, ff00::/8

  auto operator<=>(const Ipv6&) const = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
};

enum class Family : std::uint8_t { kIpv4, kIpv6 };

// Either family; ordered with all IPv4 before all IPv6 so mixed containers
// iterate deterministically.
class IpAddress {
 public:
  IpAddress() : addr_(Ipv4{}) {}
  IpAddress(Ipv4 v4) : addr_(v4) {}  // NOLINT(google-explicit-constructor)
  IpAddress(Ipv6 v6) : addr_(v6) {}  // NOLINT(google-explicit-constructor)

  static Result<IpAddress> parse(std::string_view text);

  Family family() const {
    return std::holds_alternative<Ipv4>(addr_) ? Family::kIpv4 : Family::kIpv6;
  }
  bool is_v4() const { return family() == Family::kIpv4; }
  bool is_v6() const { return family() == Family::kIpv6; }
  const Ipv4& v4() const { return std::get<Ipv4>(addr_); }
  const Ipv6& v6() const { return std::get<Ipv6>(addr_); }

  std::string to_string() const;
  bool is_routable() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  std::variant<Ipv4, Ipv6> addr_;
};

// CIDR prefix over IPv4, used by the topology generator to carve AS space.
class Prefix4 {
 public:
  Prefix4(Ipv4 base, int length);
  static Result<Prefix4> parse(std::string_view text);  // "10.0.0.0/8"

  Ipv4 base() const { return base_; }
  int length() const { return length_; }
  std::uint64_t size() const { return 1ULL << (32 - length_); }
  bool contains(Ipv4 addr) const;
  Ipv4 at(std::uint64_t offset) const;  // offset-th address in the prefix
  std::string to_string() const;

 private:
  Ipv4 base_;
  int length_;
};

}  // namespace snmpv3fp::net

template <>
struct std::hash<snmpv3fp::net::IpAddress> {
  std::size_t operator()(const snmpv3fp::net::IpAddress& a) const noexcept;
};
