// Datagram transport abstraction.
//
// The scanner sends SNMPv3 probes through a Transport and reads responses
// back; the same scanner code runs against the in-memory simulated fabric
// (sim::Fabric) or, for small-scale live probing, a real UDP socket
// (net::UdpSocket behind UdpTransport).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/ip.hpp"
#include "util/bytes.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::net {

inline constexpr std::uint16_t kSnmpPort = 161;

// Syscall/drop-cause accounting for one real-socket transport (summed
// across shards into scan::CampaignPair::net_io and reported by
// core/report.cpp). Lives here rather than in batched_udp.hpp so
// Transport can expose it polymorphically (net_stats() below) and the
// packet-ring layer can aggregate into it without depending on the
// engine.
struct NetIoStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;  // includes drop notices/bad frames
  std::uint64_t sendmmsg_calls = 0;
  std::uint64_t recvmmsg_calls = 0;
  std::uint64_t sendto_calls = 0;    // per-datagram fallback sends
  std::uint64_t recvfrom_calls = 0;  // per-datagram fallback receives
  std::uint64_t gso_batches = 0;     // UDP_SEGMENT super-packets sent
  // AF_PACKET TPACKET_V3 ring receive (net/packet_ring.hpp). blocks/
  // drops/non_udp/foreign_port are per-ring (a campaign folds them in
  // once from the PacketRingGroup); frames counts what each engine
  // consumed, so it sums correctly across shards.
  std::uint64_t ring_blocks = 0;        // retired ring blocks consumed
  std::uint64_t ring_frames = 0;        // UDP frames delivered off rings
  std::uint64_t ring_drops = 0;         // kernel tp_drops (ring overrun)
  std::uint64_t ring_non_udp = 0;       // frames the link parser rejected
  std::uint64_t ring_foreign_port = 0;  // UDP to an unregistered port
  // Drop/backpressure causes (satellite of the fabric's Table-1-style
  // accounting, for the real data plane).
  std::uint64_t send_pressure = 0;   // EAGAIN/ENOBUFS: kernel buffer full
  std::uint64_t send_refused = 0;    // ECONNREFUSED: ICMP port unreachable
  std::uint64_t send_errors = 0;     // hard errors; datagrams dropped
  std::uint64_t recv_truncated = 0;  // datagram larger than the ring frame
  std::uint64_t recv_bad_frame = 0;  // encap header failed to parse
  std::uint64_t recv_errors = 0;     // hard receive errors
  std::uint64_t drop_notices = 0;    // reflector dead/filtered notices
  std::uint64_t flow_stalls = 0;     // flow-window waits that timed out

  NetIoStats& operator+=(const NetIoStats& other);
  bool operator==(const NetIoStats&) const = default;
};

struct Endpoint {
  IpAddress address;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const {
    return address.to_string() + ":" + std::to_string(port);
  }
};

struct Datagram {
  Endpoint source;
  Endpoint destination;
  util::Bytes payload;
  // Send time for outbound, receive time for inbound datagrams.
  util::VTime time = 0;
};

// Borrowed-payload view of a received datagram (the wire fast path's
// allocation-free receive). The payload view is owned by the transport and
// stays valid only until the next receive()/receive_view() call.
struct DatagramView {
  Endpoint source;
  Endpoint destination;
  util::ByteView payload;
  util::VTime time = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Queues a datagram for delivery. Never blocks.
  virtual void send(Datagram datagram) = 0;

  // Borrowed-payload send: the transport copies (or transmits) `payload`
  // before returning, so the caller may reuse the buffer immediately. The
  // default adapter copies into a Datagram; transports on the scan hot
  // path (sim::Fabric) override it to consume the bytes in place.
  virtual void send_view(const Endpoint& source, const Endpoint& destination,
                         util::ByteView payload, util::VTime time) {
    Datagram datagram;
    datagram.source = source;
    datagram.destination = destination;
    datagram.payload.assign(payload.begin(), payload.end());
    datagram.time = time;
    send(std::move(datagram));
  }

  // Zero-copy batched send path (net/batched_udp.hpp). A transport that
  // owns preallocated send frames hands one out here; the caller writes up
  // to `max_len` payload bytes into the span and finishes the send with
  // commit_send_frame() — no intermediate buffer, no copy. The default
  // returns an empty span, meaning "unsupported": callers must then take
  // the send()/send_view() path. An acquired frame is consumed only by the
  // matching commit; acquiring again without committing abandons it.
  virtual std::span<std::uint8_t> acquire_send_frame(std::size_t max_len) {
    (void)max_len;
    return {};
  }

  // Completes a send started by acquire_send_frame(): `len` is the number
  // of payload bytes written into the acquired span; source/destination/
  // time mean the same as on send(). Only called after a successful
  // acquire.
  virtual void commit_send_frame(const Endpoint& source,
                                 const Endpoint& destination, std::size_t len,
                                 util::VTime time) {
    (void)source;
    (void)destination;
    (void)len;
    (void)time;
  }

  // Pops the next datagram that has arrived by the transport's current
  // time, or nullopt if none is pending.
  virtual std::optional<Datagram> receive() = 0;

  // View-returning receive for the response hot loop: same datagrams in
  // the same order as receive(), but the payload is borrowed from a
  // transport-owned slot instead of moved into a caller-owned Bytes. The
  // view is invalidated by the next receive()/receive_view() call.
  virtual std::optional<DatagramView> receive_view() {
    auto datagram = receive();
    if (!datagram.has_value()) return std::nullopt;
    view_slot_ = std::move(*datagram);
    return DatagramView{view_slot_.source, view_slot_.destination,
                        view_slot_.payload, view_slot_.time};
  }

  // Current transport time (virtual in simulation, wall-clock otherwise).
  virtual util::VTime now() const = 0;

  // Advances virtual time / waits on real sockets until `deadline`,
  // allowing in-flight datagrams to arrive.
  virtual void run_until(util::VTime deadline) = 0;

  // Cumulative count of probes the far side explicitly refused with a
  // rate-limit signal (the ICMP admin-prohibited analogue). 0 for
  // transports that cannot observe it; the adaptive pacer consumes deltas
  // of this counter as a fast backoff input (scan/pacer.hpp).
  virtual std::uint64_t rate_limit_signals() const { return 0; }

  // Kernel I/O counters for transports that have them (the batched
  // engine), nullptr otherwise. Telemetry-only: the prober copies ring/
  // syscall counters into the status dashboard through this, never feeds
  // them back into scan decisions.
  virtual const NetIoStats* net_stats() const { return nullptr; }

 protected:
  // Backing storage for the default receive_view(): keeps the last popped
  // datagram alive while the caller holds its view.
  Datagram view_slot_;
};

}  // namespace snmpv3fp::net
