// Datagram transport abstraction.
//
// The scanner sends SNMPv3 probes through a Transport and reads responses
// back; the same scanner code runs against the in-memory simulated fabric
// (sim::Fabric) or, for small-scale live probing, a real UDP socket
// (net::UdpSocket behind UdpTransport).
#pragma once

#include <cstdint>
#include <optional>

#include "net/ip.hpp"
#include "util/bytes.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::net {

inline constexpr std::uint16_t kSnmpPort = 161;

struct Endpoint {
  IpAddress address;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const {
    return address.to_string() + ":" + std::to_string(port);
  }
};

struct Datagram {
  Endpoint source;
  Endpoint destination;
  util::Bytes payload;
  // Send time for outbound, receive time for inbound datagrams.
  util::VTime time = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Queues a datagram for delivery. Never blocks.
  virtual void send(Datagram datagram) = 0;

  // Pops the next datagram that has arrived by the transport's current
  // time, or nullopt if none is pending.
  virtual std::optional<Datagram> receive() = 0;

  // Current transport time (virtual in simulation, wall-clock otherwise).
  virtual util::VTime now() const = 0;

  // Advances virtual time / waits on real sockets until `deadline`,
  // allowing in-flight datagrams to arrive.
  virtual void run_until(util::VTime deadline) = 0;

  // Cumulative count of probes the far side explicitly refused with a
  // rate-limit signal (the ICMP admin-prohibited analogue). 0 for
  // transports that cannot observe it; the adaptive pacer consumes deltas
  // of this counter as a fast backoff input (scan/pacer.hpp).
  virtual std::uint64_t rate_limit_signals() const { return 0; }
};

}  // namespace snmpv3fp::net
