#include "net/ip.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdio>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace snmpv3fp::net {

namespace {
Result<std::uint32_t> parse_decimal_octet(std::string_view text) {
  if (text.empty() || text.size() > 3)
    return Result<std::uint32_t>::failure("bad octet");
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value > 255)
    return Result<std::uint32_t>::failure("bad octet");
  return value;
}
}  // namespace

Result<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return Result<Ipv4>::failure("IPv4 needs 4 octets");
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    auto octet = parse_decimal_octet(part);
    if (!octet) return Result<Ipv4>::failure(octet.error());
    value = (value << 8) | octet.value();
  }
  return Ipv4(value);
}

Result<Ipv4> Ipv4::from_bytes(ByteView bytes) {
  if (bytes.size() != 4) return Result<Ipv4>::failure("IPv4 needs 4 bytes");
  return Ipv4(static_cast<std::uint32_t>(util::read_be(bytes)));
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

Bytes Ipv4::to_bytes() const {
  Bytes out;
  util::append_be(out, value_, 4);
  return out;
}

bool Ipv4::is_routable() const {
  const std::uint8_t a = octet(0);
  if (a == 0 || a == 10 || a == 127) return false;
  if (a >= 224) return false;  // multicast + reserved 240/4 + broadcast
  if (a == 169 && octet(1) == 254) return false;  // link-local
  if (a == 172 && octet(1) >= 16 && octet(1) <= 31) return false;
  if (a == 192 && octet(1) == 168) return false;
  if (a == 192 && octet(1) == 0 && octet(2) == 2) return false;  // TEST-NET-1
  if (a == 198 && (octet(1) == 18 || octet(1) == 19)) return false;  // benchmark
  if (a == 100 && octet(1) >= 64 && octet(1) <= 127) return false;  // CGN
  return true;
}

Result<Ipv6> Ipv6::parse(std::string_view text) {
  // Handles full and '::'-compressed forms (no embedded IPv4 dotted quads).
  const auto fail = [] { return Result<Ipv6>::failure("bad IPv6 literal"); };
  std::array<std::uint16_t, 8> groups{};
  std::size_t double_colon = std::string_view::npos;
  std::vector<std::uint16_t> parsed;

  std::string_view rest = text;
  if (util::starts_with(rest, "::")) {
    double_colon = 0;
    rest.remove_prefix(2);
    if (rest.empty()) return Ipv6{};  // "::"
  }
  while (!rest.empty()) {
    const std::size_t colon = rest.find(':');
    const std::string_view group_text =
        colon == std::string_view::npos ? rest : rest.substr(0, colon);
    if (group_text.empty()) return fail();
    if (group_text.size() > 4) return fail();
    std::uint32_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        group_text.data(), group_text.data() + group_text.size(), value, 16);
    if (ec != std::errc() || ptr != group_text.data() + group_text.size())
      return fail();
    parsed.push_back(static_cast<std::uint16_t>(value));
    if (colon == std::string_view::npos) {
      rest = {};
    } else {
      rest.remove_prefix(colon + 1);
      if (util::starts_with(rest, ":")) {  // a second ':' → '::'
        if (double_colon != std::string_view::npos) return fail();
        double_colon = parsed.size();
        rest.remove_prefix(1);
        if (rest.empty()) break;
      } else if (rest.empty()) {
        return fail();  // trailing single ':'
      }
    }
  }
  if (double_colon == std::string_view::npos) {
    if (parsed.size() != 8) return fail();
    std::copy(parsed.begin(), parsed.end(), groups.begin());
  } else {
    if (parsed.size() >= 8) return fail();
    const std::size_t tail = parsed.size() - double_colon;
    for (std::size_t i = 0; i < double_colon; ++i) groups[i] = parsed[i];
    for (std::size_t i = 0; i < tail; ++i)
      groups[8 - tail + i] = parsed[double_colon + i];
  }
  return from_groups(groups);
}

Result<Ipv6> Ipv6::from_bytes(ByteView bytes) {
  if (bytes.size() != 16) return Result<Ipv6>::failure("IPv6 needs 16 bytes");
  std::array<std::uint8_t, 16> arr{};
  std::copy(bytes.begin(), bytes.end(), arr.begin());
  return Ipv6(arr);
}

Ipv6 Ipv6::from_groups(const std::array<std::uint16_t, 8>& groups) {
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
  }
  return Ipv6(bytes);
}

std::string Ipv6::to_string() const {
  // RFC 5952: compress the longest (leftmost on tie) run of >=2 zero groups.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  char buf[8];
  const auto joined = [&](int from, int to) {
    std::string part;
    for (int i = from; i < to; ++i) {
      if (i != from) part += ":";
      std::snprintf(buf, sizeof buf, "%x", group(i));
      part += buf;
    }
    return part;
  };
  if (best_start < 0) return joined(0, 8);
  return joined(0, best_start) + "::" + joined(best_start + best_len, 8);
}

Bytes Ipv6::to_bytes() const { return Bytes(bytes_.begin(), bytes_.end()); }

bool Ipv6::is_routable() const {
  const std::uint8_t first = bytes_[0];
  if (first == 0xff) return false;                       // multicast
  if (first == 0xfe && (bytes_[1] & 0xc0) == 0x80) return false;  // link-local
  if ((first & 0xfe) == 0xfc) return false;              // ULA fc00::/7
  // Unspecified / loopback.
  bool all_zero = true;
  for (int i = 0; i < 15; ++i) all_zero = all_zero && bytes_[i] == 0;
  if (all_zero && (bytes_[15] == 0 || bytes_[15] == 1)) return false;
  return true;
}

Result<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    auto v6 = Ipv6::parse(text);
    if (!v6) return Result<IpAddress>::failure(v6.error());
    return IpAddress(v6.value());
  }
  auto v4 = Ipv4::parse(text);
  if (!v4) return Result<IpAddress>::failure(v4.error());
  return IpAddress(v4.value());
}

std::string IpAddress::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

bool IpAddress::is_routable() const {
  return is_v4() ? v4().is_routable() : v6().is_routable();
}

Prefix4::Prefix4(Ipv4 base, int length) : base_(base), length_(length) {
  assert(length >= 0 && length <= 32);
  // Canonicalize: clear host bits.
  if (length < 32) {
    const std::uint32_t mask = length == 0 ? 0 : ~0u << (32 - length);
    base_ = Ipv4(base.value() & mask);
  }
}

Result<Prefix4> Prefix4::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos)
    return Result<Prefix4>::failure("missing '/'");
  auto base = Ipv4::parse(text.substr(0, slash));
  if (!base) return Result<Prefix4>::failure(base.error());
  int length = 0;
  const auto len_text = text.substr(slash + 1);
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc() || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32)
    return Result<Prefix4>::failure("bad prefix length");
  return Prefix4(base.value(), length);
}

bool Prefix4::contains(Ipv4 addr) const {
  if (length_ == 0) return true;
  const std::uint32_t mask = ~0u << (32 - length_);
  return (addr.value() & mask) == base_.value();
}

Ipv4 Prefix4::at(std::uint64_t offset) const {
  assert(offset < size());
  return Ipv4(base_.value() + static_cast<std::uint32_t>(offset));
}

std::string Prefix4::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace snmpv3fp::net

std::size_t std::hash<snmpv3fp::net::IpAddress>::operator()(
    const snmpv3fp::net::IpAddress& a) const noexcept {
  using namespace snmpv3fp;
  if (a.is_v4()) return util::fnv1a64("4") ^ a.v4().value();
  const auto& b = a.v6().bytes();
  return util::fnv1a64(
      std::string_view(reinterpret_cast<const char*>(b.data()), b.size()));
}
