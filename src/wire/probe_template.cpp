#include "wire/probe_template.hpp"

#include <cstring>

#include "snmp/message.hpp"

namespace snmpv3fp::wire {

namespace {

// Reference ids for offset discovery. Both bytes of each id differ between
// the pair, so a diff against the reference encoding lights up the full
// two-byte content of exactly one field.
constexpr std::int32_t kRefId = 0x1234;
constexpr std::int32_t kAltId = 0x2b47;

// Returns the offset of the changed two-byte run, or SIZE_MAX when the two
// encodings do not differ by exactly two consecutive bytes (which would
// mean the codec layout changed under us — refuse the fast path entirely
// rather than stamp garbage).
std::size_t diff_offset(const util::Bytes& a, const util::Bytes& b) {
  constexpr std::size_t kBad = static_cast<std::size_t>(-1);
  if (a.size() != b.size()) return kBad;
  std::size_t first = kBad;
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (first == kBad) first = i;
    ++count;
  }
  if (count != 2 || first == kBad || first + 1 >= a.size()) return kBad;
  if (a[first + 1] == b[first + 1]) return kBad;  // not consecutive
  return first;
}

}  // namespace

ProbeTemplate::ProbeTemplate() {
  template_ = snmp::make_discovery_request(kRefId, kRefId).encode();
  const auto with_msg = snmp::make_discovery_request(kAltId, kRefId).encode();
  const auto with_req = snmp::make_discovery_request(kRefId, kAltId).encode();
  msg_id_offset_ = diff_offset(template_, with_msg);
  request_id_offset_ = diff_offset(template_, with_req);
  constexpr std::size_t kBad = static_cast<std::size_t>(-1);
  valid_ = msg_id_offset_ != kBad && request_id_offset_ != kBad &&
           msg_id_offset_ != request_id_offset_;
}

bool ProbeTemplate::stamp(std::int32_t msg_id, std::int32_t request_id,
                          util::Bytes& out) const {
  if (!valid_ || msg_id < kMinTwoByteId || msg_id > kMaxTwoByteId ||
      request_id < kMinTwoByteId || request_id > kMaxTwoByteId)
    return false;
  // assign() reuses capacity: after the first stamp this is a 60-byte
  // memcpy with no heap traffic.
  out.assign(template_.begin(), template_.end());
  out[msg_id_offset_] = static_cast<std::uint8_t>(msg_id >> 8);
  out[msg_id_offset_ + 1] = static_cast<std::uint8_t>(msg_id & 0xff);
  out[request_id_offset_] = static_cast<std::uint8_t>(request_id >> 8);
  out[request_id_offset_ + 1] = static_cast<std::uint8_t>(request_id & 0xff);
  return true;
}

bool ProbeTemplate::stamp_into(std::int32_t msg_id, std::int32_t request_id,
                               std::span<std::uint8_t> out) const {
  if (!valid_ || out.size() < template_.size() || msg_id < kMinTwoByteId ||
      msg_id > kMaxTwoByteId || request_id < kMinTwoByteId ||
      request_id > kMaxTwoByteId)
    return false;
  std::memcpy(out.data(), template_.data(), template_.size());
  out[msg_id_offset_] = static_cast<std::uint8_t>(msg_id >> 8);
  out[msg_id_offset_ + 1] = static_cast<std::uint8_t>(msg_id & 0xff);
  out[request_id_offset_] = static_cast<std::uint8_t>(request_id >> 8);
  out[request_id_offset_ + 1] = static_cast<std::uint8_t>(request_id & 0xff);
  return true;
}

}  // namespace snmpv3fp::wire
