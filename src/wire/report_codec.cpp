#include "wire/report_codec.hpp"

#include "snmp/message.hpp"

namespace snmpv3fp::wire {

namespace {

using util::ByteView;
using util::Bytes;

// ---------------------------------------------------------------------------
// Parsing: a bool-returning cursor that mirrors asn1::Reader::read_tlv's
// accept/reject rules exactly, minus the error-string allocations.
// ---------------------------------------------------------------------------

struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  explicit Cursor(ByteView data)
      : p(data.data()), end(data.data() + data.size()) {}
  bool at_end() const { return p >= end; }
};

bool read_tlv(Cursor& c, std::uint8_t& tag, ByteView& content) {
  if (c.end - c.p < 2) return false;  // truncated TLV header
  tag = c.p[0];
  if ((tag & 0x1f) == 0x1f) return false;  // multi-byte tags unsupported
  const std::uint8_t* q = c.p + 1;
  const std::uint8_t first_len = *q++;
  std::size_t length = 0;
  if (first_len < 0x80) {
    length = first_len;
  } else {
    const std::size_t num_bytes = first_len & 0x7f;
    if (num_bytes == 0) return false;                  // indefinite length
    if (num_bytes > sizeof(std::size_t)) return false;  // length too large
    if (static_cast<std::size_t>(c.end - q) < num_bytes) return false;
    for (std::size_t i = 0; i < num_bytes; ++i) length = (length << 8) | *q++;
  }
  if (static_cast<std::size_t>(c.end - q) < length) return false;
  content = ByteView(q, length);
  c.p = q + length;
  return true;
}

bool expect(Cursor& c, std::uint8_t want, ByteView& content) {
  std::uint8_t tag = 0;
  return read_tlv(c, tag, content) && tag == want;
}

// Mirrors decode_integer_content: 1..8 content bytes, two's complement
// (non-minimal encodings accepted, like the full decoder).
bool parse_int(Cursor& c, std::int64_t& out) {
  ByteView content;
  if (!expect(c, asn1::kTagInteger, content)) return false;
  if (content.empty() || content.size() > 8) return false;
  std::int64_t value = (content[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : content) value = (value << 8) | b;
  out = value;
  return true;
}

// Mirrors decode_oid_content's accept set without building the Oid.
bool oid_content_ok(ByteView content) {
  if (content.empty()) return false;
  int continuation = 0;
  for (std::size_t i = 1; i < content.size(); ++i) {
    if (continuation > 4) return false;  // arc wider than 32 bits
    if (content[i] & 0x80)
      ++continuation;
    else
      continuation = 0;
  }
  return continuation == 0;  // no trailing continuation byte
}

// Mirrors decode_var_value's accept set per tag.
bool var_value_ok(std::uint8_t tag, ByteView content) {
  switch (tag) {
    case asn1::kTagNull:
      return true;  // full decoder ignores NULL content
    case asn1::kTagInteger:
      return !content.empty() && content.size() <= 8;
    case asn1::kTagCounter32:
    case asn1::kTagTimeTicks:
      return !content.empty() && content.size() <= 5;
    case asn1::kTagOctetString:
      return true;
    case asn1::kTagOid:
      return oid_content_ok(content);
    default:
      return false;
  }
}

// Mirrors pdu_type_from_tag: context-class constructed tag with a known
// PDU selector.
bool pdu_tag_ok(std::uint8_t tag) {
  if ((tag & 0xe0) != 0xa0) return false;
  switch (tag & 0x1f) {
    case 0: case 1: case 2: case 3: case 5: case 6: case 7: case 8:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool FastReportParser::parse(ByteView payload, V3Fields& out) {
  // Outer message SEQUENCE (trailing bytes after it are ignored, like the
  // full decoder's Reader).
  Cursor top(payload);
  ByteView message;
  if (!expect(top, asn1::kTagSequence, message)) return false;
  Cursor m(message);

  std::int64_t version = 0;
  if (!parse_int(m, version) || version != 3) return false;

  // msgGlobalData header.
  ByteView header;
  if (!expect(m, asn1::kTagSequence, header)) return false;
  Cursor h(header);
  std::int64_t msg_id = 0;
  std::int64_t max_size = 0;
  std::int64_t model = 0;
  ByteView flags;
  if (!parse_int(h, msg_id)) return false;
  if (!parse_int(h, max_size)) return false;
  if (!expect(h, asn1::kTagOctetString, flags) || flags.size() != 1)
    return false;
  if (!parse_int(h, model)) return false;
  // Encrypted msgData is the full codec's job (it keeps the ciphertext);
  // the fast path only walks plaintext scoped PDUs.
  if ((flags[0] & snmp::kFlagPriv) != 0) return false;

  // UsmSecurityParameters: BER SEQUENCE inside an OCTET STRING.
  ByteView usm_wire;
  if (!expect(m, asn1::kTagOctetString, usm_wire)) return false;
  Cursor u_outer(usm_wire);
  ByteView usm_seq;
  if (!expect(u_outer, asn1::kTagSequence, usm_seq)) return false;
  Cursor u(usm_seq);
  ByteView engine;
  ByteView user;
  ByteView auth_params;
  ByteView priv_params;
  std::int64_t boots = 0;
  std::int64_t time = 0;
  if (!expect(u, asn1::kTagOctetString, engine)) return false;
  if (!parse_int(u, boots)) return false;
  if (!parse_int(u, time)) return false;
  if (boots < 0 || time < 0) return false;
  if (!expect(u, asn1::kTagOctetString, user)) return false;
  if (!expect(u, asn1::kTagOctetString, auth_params)) return false;
  if (!expect(u, asn1::kTagOctetString, priv_params)) return false;

  // Plaintext scoped PDU.
  ByteView scoped;
  if (!expect(m, asn1::kTagSequence, scoped)) return false;
  Cursor s(scoped);
  ByteView ctx_engine;
  ByteView ctx_name;
  if (!expect(s, asn1::kTagOctetString, ctx_engine)) return false;
  if (!expect(s, asn1::kTagOctetString, ctx_name)) return false;

  std::uint8_t pdu_tag = 0;
  ByteView pdu;
  if (!read_tlv(s, pdu_tag, pdu)) return false;
  if (!pdu_tag_ok(pdu_tag)) return false;
  Cursor b(pdu);
  std::int64_t request_id = 0;
  std::int64_t error_status = 0;
  std::int64_t error_index = 0;
  if (!parse_int(b, request_id)) return false;
  if (!parse_int(b, error_status)) return false;
  if (!parse_int(b, error_index)) return false;
  ByteView bindings;
  if (!expect(b, asn1::kTagSequence, bindings)) return false;
  Cursor vb(bindings);
  while (!vb.at_end()) {
    ByteView one;
    if (!expect(vb, asn1::kTagSequence, one)) return false;
    Cursor o(one);
    ByteView oid;
    if (!expect(o, asn1::kTagOid, oid) || !oid_content_ok(oid)) return false;
    std::uint8_t value_tag = 0;
    ByteView value;
    if (!read_tlv(o, value_tag, value)) return false;
    if (!var_value_ok(value_tag, value)) return false;
  }

  // Same narrowing the full decoder applies (int64 -> int32 / uint32).
  out.msg_id = static_cast<std::int32_t>(msg_id);
  out.msg_flags = flags[0];
  out.engine_id = engine;
  out.engine_boots = static_cast<std::uint32_t>(boots);
  out.engine_time = static_cast<std::uint32_t>(time);
  out.user_name = user;
  out.pdu_tag = pdu_tag;
  out.request_id = static_cast<std::int32_t>(request_id);
  return true;
}

// ---------------------------------------------------------------------------
// Direct REPORT writer: bottom-up length precomputation, single reserve.
// ---------------------------------------------------------------------------

namespace {

// Content width of a minimal two's-complement INTEGER (what encode_integer
// emits).
std::size_t int_content_size(std::int64_t value) {
  std::size_t n = 0;
  bool more = true;
  while (more) {
    const auto byte = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
    more = !((value == 0 && (byte & 0x80) == 0) ||
             (value == -1 && (byte & 0x80) != 0));
    ++n;
  }
  return n;
}

// Content width of an unsigned (Counter32-style) value, including the
// 0x00 pad byte a set top bit forces (what encode_unsigned emits).
std::size_t unsigned_content_size(std::uint64_t value) {
  std::size_t n = 0;
  std::uint8_t top = 0;
  do {
    top = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
    ++n;
  } while (value > 0);
  return (top & 0x80) ? n + 1 : n;
}

std::size_t length_size(std::size_t length) {
  if (length < 0x80) return 1;
  std::size_t n = 0;
  while (length > 0) {
    length >>= 8;
    ++n;
  }
  return 1 + n;
}

// Full TLV width for a given content width.
std::size_t tlv_size(std::size_t content) {
  return 1 + length_size(content) + content;
}

std::size_t oid_content_size(const asn1::Oid& oid) {
  std::size_t n = 1;  // first two components pack into one byte
  for (std::size_t i = 2; i < oid.size(); ++i) {
    std::uint32_t v = oid[i];
    do {
      ++n;
      v >>= 7;
    } while (v > 0);
  }
  return n;
}

void put_tag_len(Bytes& out, std::uint8_t tag, std::size_t length) {
  out.push_back(tag);
  asn1::write_length(out, length);
}

void put_int(Bytes& out, std::int64_t value) {
  const std::size_t n = int_content_size(value);  // <= 8, short-form length
  out.push_back(asn1::kTagInteger);
  out.push_back(static_cast<std::uint8_t>(n));
  for (std::size_t i = n; i > 0; --i)
    out.push_back(static_cast<std::uint8_t>((value >> ((i - 1) * 8)) & 0xff));
}

void put_unsigned(Bytes& out, std::uint8_t tag, std::uint64_t value) {
  const std::size_t n = unsigned_content_size(value);  // <= 9
  out.push_back(tag);
  out.push_back(static_cast<std::uint8_t>(n));
  for (std::size_t i = n; i > 0; --i) {
    // i == 9 is the pad byte (shift by 64 would be UB).
    out.push_back(i > 8 ? std::uint8_t{0}
                        : static_cast<std::uint8_t>(
                              (value >> ((i - 1) * 8)) & 0xff));
  }
}

void put_octet_string(Bytes& out, ByteView value) {
  put_tag_len(out, asn1::kTagOctetString, value.size());
  out.insert(out.end(), value.begin(), value.end());
}

void put_oid(Bytes& out, const asn1::Oid& oid, std::size_t content_size) {
  put_tag_len(out, asn1::kTagOid, content_size);
  out.push_back(static_cast<std::uint8_t>(oid[0] * 40 + oid[1]));
  for (std::size_t i = 2; i < oid.size(); ++i) {
    const std::uint32_t v = oid[i];
    std::size_t chunks = 0;
    for (std::uint32_t t = v;; t >>= 7) {
      ++chunks;
      if (t < 0x80) break;
    }
    for (std::size_t c = chunks; c > 0; --c) {
      auto byte = static_cast<std::uint8_t>((v >> ((c - 1) * 7)) & 0x7f);
      if (c > 1) byte |= 0x80;
      out.push_back(byte);
    }
  }
}

}  // namespace

void encode_report_into(Bytes& out, std::int32_t msg_id,
                        std::int32_t request_id, ByteView engine_id,
                        std::uint32_t engine_boots, std::uint32_t engine_time,
                        std::uint32_t report_counter,
                        const asn1::Oid& report_oid) {
  // Bottom-up content widths. Fixed fields: maxSize 65507 encodes in 3
  // content bytes, msgFlags 0x00 in 1, securityModel 3 in 1, the empty
  // user/auth/priv strings and contextName in 0, error-status/index in 1.
  const std::size_t header_content = tlv_size(int_content_size(msg_id)) +
                                     (2 + 3) + (2 + 1) + (2 + 1);

  const std::size_t engine_tlv = tlv_size(engine_id.size());
  const std::size_t usm_seq_content =
      engine_tlv + tlv_size(int_content_size(engine_boots)) +
      tlv_size(int_content_size(engine_time)) + 2 + 2 + 2;
  const std::size_t usm_string_content = tlv_size(usm_seq_content);

  const std::size_t oid_content = oid_content_size(report_oid);
  const std::size_t varbind_content =
      tlv_size(oid_content) + tlv_size(unsigned_content_size(report_counter));
  const std::size_t bindings_content = tlv_size(varbind_content);
  const std::size_t pdu_content = tlv_size(int_content_size(request_id)) +
                                  (2 + 1) + (2 + 1) +
                                  tlv_size(bindings_content);
  const std::size_t scoped_content =
      engine_tlv + 2 + tlv_size(pdu_content);

  const std::size_t message_content =
      (2 + 1) +  // msgVersion INTEGER 3
      tlv_size(header_content) + tlv_size(usm_string_content) +
      tlv_size(scoped_content);

  out.clear();
  out.reserve(tlv_size(message_content));

  put_tag_len(out, asn1::kTagSequence, message_content);
  put_int(out, 3);  // msgVersion

  put_tag_len(out, asn1::kTagSequence, header_content);
  put_int(out, msg_id);
  put_int(out, 65507);  // msgMaxSize
  out.push_back(asn1::kTagOctetString);  // msgFlags: response, noAuthNoPriv
  out.push_back(1);
  out.push_back(0x00);
  put_int(out, snmp::kSecurityModelUsm);

  put_tag_len(out, asn1::kTagOctetString, usm_string_content);
  put_tag_len(out, asn1::kTagSequence, usm_seq_content);
  put_octet_string(out, engine_id);
  put_int(out, engine_boots);
  put_int(out, engine_time);
  put_octet_string(out, {});  // user name
  put_octet_string(out, {});  // authentication parameters
  put_octet_string(out, {});  // privacy parameters

  put_tag_len(out, asn1::kTagSequence, scoped_content);
  put_octet_string(out, engine_id);  // contextEngineID
  put_octet_string(out, {});         // contextName
  put_tag_len(out, asn1::context_tag(8), pdu_content);  // REPORT
  put_int(out, request_id);
  put_int(out, 0);  // error-status
  put_int(out, 0);  // error-index
  put_tag_len(out, asn1::kTagSequence, bindings_content);
  put_tag_len(out, asn1::kTagSequence, varbind_content);
  put_oid(out, report_oid, oid_content);
  put_unsigned(out, asn1::kTagCounter32, report_counter);
}

}  // namespace snmpv3fp::wire
