// Zero-allocation probe encoding for the census hot loop.
//
// Every discovery probe is byte-identical except for msgID and request-id
// (paper Figure 2: with both ids in [128, 32767] the payload is exactly 60
// bytes and both ids occupy exactly two content bytes). ProbeTemplate
// encodes the message ONCE through the full snmp/asn1 codec, locates the
// two id fields by differential encoding, and thereafter stamps only those
// four bytes into a caller-owned reusable buffer — no BER walk, no
// allocation after the buffer's first fill.
//
// Contract: stamp(m, r, out) leaves `out` bit-identical to
// make_discovery_request(m, r).encode() (tests/test_wire.cpp proves it
// across the id range); ids outside [128, 32767] return false and the
// caller must take the full-encoder path.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace snmpv3fp::wire {

// Ids whose INTEGER content is exactly two bytes — the range the prober
// draws from (scan/prober.cpp two_byte_id).
inline constexpr std::int32_t kMinTwoByteId = 128;
inline constexpr std::int32_t kMaxTwoByteId = 32767;

class ProbeTemplate {
 public:
  // Encodes the reference message and locates the id offsets. Cheap (three
  // full encodes); build once per shard, outside the probe loop.
  ProbeTemplate();

  // Writes the complete probe for (msg_id, request_id) into `out`,
  // reusing its capacity (zero allocations once `out` has been stamped
  // once). Returns false — and leaves `out` untouched — if either id
  // falls outside [kMinTwoByteId, kMaxTwoByteId] or offset discovery
  // failed; the caller then falls back to the full encoder.
  bool stamp(std::int32_t msg_id, std::int32_t request_id,
             util::Bytes& out) const;

  // Stamps straight into caller-owned storage (a preallocated kernel batch
  // frame — net::Transport::acquire_send_frame) instead of a growable
  // buffer, extending the zero-allocation path end-to-end into the
  // sendmmsg iovec array. Returns false — writing nothing — when either id
  // is out of range, offset discovery failed, or `out` is smaller than the
  // probe; the caller then falls back to stamp()/the full encoder.
  bool stamp_into(std::int32_t msg_id, std::int32_t request_id,
                  std::span<std::uint8_t> out) const;

  bool valid() const { return valid_; }
  std::size_t size() const { return template_.size(); }
  // Fixed byte layout, exposed for tests and the docs diagram.
  std::size_t msg_id_offset() const { return msg_id_offset_; }
  std::size_t request_id_offset() const { return request_id_offset_; }
  util::ByteView bytes() const { return template_; }

 private:
  util::Bytes template_;
  std::size_t msg_id_offset_ = 0;
  std::size_t request_id_offset_ = 0;
  bool valid_ = false;
};

}  // namespace snmpv3fp::wire
