// Single-pass SNMPv3 wire fast path for the response side of the census.
//
// FastReportParser walks the exact RFC 3412 message / RFC 3414 §2.4 USM
// layout in one bounds-checked pass and returns the fingerprint fields
// (msgAuthoritativeEngineID as a borrowed view, engineBoots, engineTime)
// without allocating — no Result<> error strings, no variant tree, no
// Bytes copies.
//
// Fallback contract (the invariant tests/test_wire.cpp fuzzes): the fast
// parser accepts a SUBSET of what V3Message::decode accepts, and whenever
// it accepts, the extracted fields equal the full decoder's. Anything it
// rejects — encrypted messages, v2c, malformed or hostile bytes — the
// caller routes through V3Message::decode, so the combined path's results
// are bit-identical to the full codec alone. The fast path and the full
// codec must never disagree; any divergence is a bug in this file, not a
// tolerable approximation.
//
// encode_report_into is the mirror image for the simulated agents: it
// writes make_discovery_report(...).encode()'s exact bytes into a reusable
// buffer with all lengths precomputed bottom-up (one reserve, no
// intermediate TLV buffers).
#pragma once

#include <cstdint>

#include "asn1/ber.hpp"
#include "util/bytes.hpp"

namespace snmpv3fp::wire {

// The fields the scanner (and the simulated agent) needs from a plaintext
// v3 message. Views borrow from the parsed buffer and are valid only while
// it is.
struct V3Fields {
  std::int32_t msg_id = 0;
  std::uint8_t msg_flags = 0;
  util::ByteView engine_id;   // msgAuthoritativeEngineID
  std::uint32_t engine_boots = 0;
  std::uint32_t engine_time = 0;
  util::ByteView user_name;
  std::uint8_t pdu_tag = 0;   // context tag, e.g. 0xa8 for REPORT
  std::int32_t request_id = 0;
};

class FastReportParser {
 public:
  // Returns true and fills `out` iff `payload` is a structurally valid
  // plaintext (priv bit clear) SNMPv3 message that V3Message::decode would
  // also accept with identical field values. Never throws, never
  // allocates, never reads out of bounds.
  static bool parse(util::ByteView payload, V3Fields& out);
};

inline bool parse_v3_fast(util::ByteView payload, V3Fields& out) {
  return FastReportParser::parse(payload, out);
}

// Writes the discovery REPORT (paper Figure 3) for the given fields into
// `out`, byte-identical to
//   make_discovery_report(request, engine, boots, time, counter, oid)
//       .encode()
// for a request with (msg_id, request_id). Clears and reuses `out`'s
// capacity: zero allocations once the buffer has grown to the message
// size. `report_oid` must have >= 2 components with oid[0] <= 2 and
// oid[1] < 40 (the usmStats OIDs always do).
void encode_report_into(util::Bytes& out, std::int32_t msg_id,
                        std::int32_t request_id, util::ByteView engine_id,
                        std::uint32_t engine_boots, std::uint32_t engine_time,
                        std::uint32_t report_counter,
                        const asn1::Oid& report_oid);

}  // namespace snmpv3fp::wire
