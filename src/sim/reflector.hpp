// Loopback reflector: the simulated Internet behind a real UDP socket.
//
// A LoopbackReflector owns a background thread that serves a WorldModel's
// agents over an actual kernel socket, speaking the net::SimFrame
// encapsulation of net::BatchedUdpEngine. Campaigns configured with a
// net-engine transport send real datagrams through the kernel to this
// endpoint; the reflector dispatches each probe to the owning device's
// agent (sim/agent.hpp) and sends the responses back to the wire source,
// carrying the virtual arrival time in the frame header. That makes a
// full real-socket campaign CI-able without privileges or network access —
// and, over a loss-free fixed-RTT world, bit-identical to the sim-fabric
// campaign (tests/test_net_engine.cpp).
//
// Delivery semantics mirror sim::Fabric::deliver for the deterministic
// subset: no device at the address -> dead, port != 161 -> filtered (both
// answered with a drop notice so the engine's flow window keeps moving),
// otherwise at_device = send_time + rtt/2 and arrival = at_device + rtt/2
// with the same integer division the fabric uses. The stochastic fabric
// knobs (loss, rtt jitter, corruption, policing) are intentionally absent:
// equality runs disable them in the fabric instead.
//
// Thread-safety: the reflector thread calls DeviceView::device_at only
// while datagrams are arriving. Between scans — after every engine's
// linger drain has completed — the wire is silent, which is what makes
// WorldModel::apply_churn on the campaign thread safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "net/batched_udp.hpp"
#include "sim/agent.hpp"
#include "topo/world_model.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::sim {

struct ReflectorConfig {
  // Fixed round trip applied to every probe; must equal the fabric's
  // min_rtt == max_rtt for equality runs. Even values keep rtt/2 exact.
  util::VTime rtt = 20 * util::kMillisecond;
  AgentConfig agent;
  // Agent rng stream. Never observable when the world's jitter knobs are
  // zero (the equality configuration); seeded so hostile worlds still get
  // varied draws.
  std::uint64_t seed = 1;
  // Kernel batch size and buffer requests for the reflector's engine.
  std::size_t batch_size = 64;
  int sndbuf_bytes = 4 << 20;
  int rcvbuf_bytes = 4 << 20;
  // UDP_SEGMENT coalescing for response sends. Campaigns that capture
  // the wire with an AF_PACKET ring turn this off: loopback never
  // segments the super-datagram, so the tap would otherwise see one
  // merged response where the socket path sees many.
  bool gso = true;
};

struct ReflectorStats {
  std::uint64_t frames = 0;      // wire datagrams examined
  std::uint64_t bad_frames = 0;  // not a SimFrame data frame
  std::uint64_t dead = 0;        // no device at the logical address
  std::uint64_t filtered = 0;    // logical port != 161
  std::uint64_t delivered = 0;   // dispatched to an agent
  std::uint64_t responses = 0;   // response frames sent back
};

class LoopbackReflector {
 public:
  // Opens the socket and starts the service thread. The model must
  // outlive the reflector.
  static util::Result<std::unique_ptr<LoopbackReflector>> start(
      const topo::WorldModel& model, ReflectorConfig config = {});

  ~LoopbackReflector();
  LoopbackReflector(const LoopbackReflector&) = delete;
  LoopbackReflector& operator=(const LoopbackReflector&) = delete;

  // Where engines should point their EngineConfig::sim_peer.
  net::Endpoint endpoint() const { return engine_->local_endpoint(); }
  ReflectorStats stats() const;

 private:
  LoopbackReflector(const topo::WorldModel& model,
                    const ReflectorConfig& config,
                    std::unique_ptr<net::BatchedUdpEngine> engine);
  void loop();
  // Serves every queued frame; returns whether any was handled.
  bool process();
  void respond_drop(const net::Endpoint& reply_to, const net::SimFrame& probe,
                    util::VTime time);

  ReflectorConfig config_;
  std::unique_ptr<topo::DeviceView> view_;
  std::unique_ptr<net::BatchedUdpEngine> engine_;
  util::Rng rng_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> dead_{0};
  std::atomic<std::uint64_t> filtered_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> responses_{0};
};

}  // namespace snmpv3fp::sim
