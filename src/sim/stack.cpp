#include "sim/stack.hpp"

#include <cmath>

namespace snmpv3fp::sim {

namespace {

// Background traffic rate (IP-ID increments per second) for a device:
// deterministic per device, heavy-tailed — busy routers wrap the 16-bit
// counter faster than it can be sampled, MIDAR's documented failure mode.
double background_rate(const topo::Device& device) {
  const std::uint64_t h = util::fnv1a64("ipid" + std::to_string(device.index));
  const double u = static_cast<double>(h % 100000) / 100000.0;
  // 10 .. ~30000 ids/sec, log-uniform: busy routers wrap the 16-bit
  // counter between samples, MIDAR's documented failure mode.
  return std::pow(10.0, 1.0 + u * 3.5);
}

std::uint32_t interface_salt(const topo::Device& device,
                             const net::IpAddress& target) {
  return static_cast<std::uint32_t>(
      util::fnv1a64(target.to_string() + std::to_string(device.index)));
}

}  // namespace

StackSimulator::StackSimulator(const topo::World& world, std::uint64_t seed)
    : world_(world), rng_(seed) {}

std::uint16_t StackSimulator::ip_id_for(const topo::Device& device,
                                        const net::IpAddress& target,
                                        util::VTime now) {
  const double t = util::to_seconds(now);
  switch (device.ipid_policy) {
    case topo::IpIdPolicy::kSharedCounter: {
      const double base = static_cast<double>(device.index * 7919u % 65536u);
      const double count =
          base + background_rate(device) * t + probe_counts_[device.index];
      return static_cast<std::uint16_t>(static_cast<std::uint64_t>(count) %
                                        65536u);
    }
    case topo::IpIdPolicy::kPerInterface: {
      const double base = interface_salt(device, target) % 65536u;
      const double count = base + background_rate(device) * 0.3 * t;
      return static_cast<std::uint16_t>(static_cast<std::uint64_t>(count) %
                                        65536u);
    }
    case topo::IpIdPolicy::kRandom:
      return static_cast<std::uint16_t>(rng_.next());
    case topo::IpIdPolicy::kZero:
      return 0;
  }
  return 0;
}

std::optional<IcmpEchoReply> StackSimulator::icmp_echo(const net::Ipv4& target,
                                                       util::VTime now) {
  const topo::Device* device = world_.device_at(net::IpAddress(target));
  if (device == nullptr) return std::nullopt;
  // A sliver of devices filter ICMP entirely.
  if (util::fnv1a64("icmpf" + std::to_string(device->index)) % 12 == 0)
    return std::nullopt;
  ++probe_counts_[device->index];
  IcmpEchoReply reply;
  reply.ip_id = ip_id_for(*device, net::IpAddress(target), now);
  // 10..25 hops consumed on the way back.
  reply.ttl = static_cast<std::uint8_t>(
      device->initial_ttl - 10 - (interface_salt(*device, target) % 16));
  return reply;
}

std::optional<std::uint32_t> StackSimulator::fragment_id(
    const net::Ipv6& target, util::VTime now) {
  const topo::Device* device = world_.device_at(net::IpAddress(target));
  if (device == nullptr) return std::nullopt;
  // Many IPv6 stacks use randomized fragment IDs; only shared sequential
  // counters give Speedtrap a signal (mirrors the vendor's IPv4 policy).
  if (device->ipid_policy == topo::IpIdPolicy::kRandom ||
      device->ipid_policy == topo::IpIdPolicy::kZero)
    return static_cast<std::uint32_t>(rng_.next());
  ++probe_counts_[device->index];
  const double t = util::to_seconds(now);
  const double base = static_cast<double>(device->index * 104729u % 0xffffffu);
  const double rate = device->ipid_policy == topo::IpIdPolicy::kSharedCounter
                          ? background_rate(*device) * 0.2
                          : background_rate(*device) * 0.05;
  const double salt = device->ipid_policy == topo::IpIdPolicy::kSharedCounter
                          ? 0.0
                          : interface_salt(*device, net::IpAddress(target));
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(base + salt + rate * t +
                                 probe_counts_[device->index]) %
      0xffffffffULL);
}

TcpProbeReply StackSimulator::tcp_syn(const net::IpAddress& target,
                                      std::uint16_t port, util::VTime) {
  TcpProbeReply reply;
  const topo::Device* device = world_.device_at(target);
  if (device == nullptr) return reply;

  const bool management_port = port == 22 || port == 23 || port == 443;
  if (device->tcp_open && management_port) {
    reply.outcome = TcpProbeOutcome::kOpen;
  } else if (device->tcp_open) {
    // A host with some open service answers RST on closed ports.
    reply.outcome = TcpProbeOutcome::kClosed;
  } else {
    // Tightly secured: drop silently (paper §6.2.3 — Nmap gets nothing).
    reply.outcome = TcpProbeOutcome::kSilent;
    return reply;
  }
  reply.ttl = device->initial_ttl;
  // Vendor-flavoured TCP signature for Nmap's database matching.
  const auto vendor_hash =
      static_cast<std::uint32_t>(util::fnv1a64(device->vendor->name));
  reply.window = static_cast<std::uint16_t>(4096 + vendor_hash % 60000);
  reply.options_signature = static_cast<std::uint8_t>(vendor_hash % 17);
  return reply;
}

}  // namespace snmpv3fp::sim
