#include "sim/reflector.hpp"

#include <cstring>

namespace snmpv3fp::sim {

namespace {
using net::BatchedUdpEngine;
using net::SimFrame;
}  // namespace

LoopbackReflector::LoopbackReflector(
    const topo::WorldModel& model, const ReflectorConfig& config,
    std::unique_ptr<net::BatchedUdpEngine> engine)
    : config_(config),
      view_(model.open_view()),
      engine_(std::move(engine)),
      rng_(config.seed) {}

util::Result<std::unique_ptr<LoopbackReflector>> LoopbackReflector::start(
    const topo::WorldModel& model, ReflectorConfig config) {
  net::EngineConfig engine_config;
  engine_config.family = net::Family::kIpv4;  // wire family; logical
                                              // addresses ride the header
  engine_config.clock = net::EngineClock::kWall;
  engine_config.batch_size = config.batch_size;
  engine_config.frame_bytes = 2048;  // responses outgrow 60-byte probes
  engine_config.bind_loopback = true;
  engine_config.sndbuf_bytes = config.sndbuf_bytes;
  engine_config.rcvbuf_bytes = config.rcvbuf_bytes;
  engine_config.gso = config.gso;
  auto engine = BatchedUdpEngine::open(engine_config);
  if (!engine.ok())
    return util::Result<std::unique_ptr<LoopbackReflector>>::failure(
        engine.error());
  std::unique_ptr<LoopbackReflector> reflector(new LoopbackReflector(
      model, config, std::move(engine).value()));
  reflector->thread_ = std::thread(&LoopbackReflector::loop, reflector.get());
  return util::Result<std::unique_ptr<LoopbackReflector>>(
      std::move(reflector));
}

LoopbackReflector::~LoopbackReflector() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

ReflectorStats LoopbackReflector::stats() const {
  ReflectorStats stats;
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  stats.dead = dead_.load(std::memory_order_relaxed);
  stats.filtered = filtered_.load(std::memory_order_relaxed);
  stats.delivered = delivered_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  return stats;
}

void LoopbackReflector::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // run_until really waits (wall clock), draining arrivals as they
    // land; process() then serves everything queued.
    engine_->run_until(engine_->now() + util::kMillisecond);
    process();
  }
  // Final sweep so probes that raced the stop flag still get answers
  // before the socket closes.
  process();
  engine_->flush();
}

void LoopbackReflector::respond_drop(const net::Endpoint& reply_to,
                                     const net::SimFrame& probe,
                                     util::VTime time) {
  SimFrame notice;
  notice.kind = SimFrame::kDrop;
  notice.logical = probe.logical;
  notice.time = time;
  const auto span = engine_->acquire_send_frame(SimFrame::kWireSize);
  if (span.size() < SimFrame::kWireSize) return;
  notice.encode(span);
  engine_->commit_send_frame({}, reply_to, SimFrame::kWireSize, time);
}

bool LoopbackReflector::process() {
  bool any = false;
  while (const auto view = engine_->receive_view()) {
    any = true;
    frames_.fetch_add(1, std::memory_order_relaxed);
    const auto probe = SimFrame::decode(view->payload);
    if (!probe.has_value() || probe->kind != SimFrame::kData) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const util::ByteView payload =
        view->payload.subspan(SimFrame::kWireSize);
    const net::Endpoint reply_to = view->source;
    // Same integer halving as sim::Fabric::deliver: at_device and arrival
    // must be bit-identical to the fabric's for the equality contract.
    const util::VTime at_device = probe->time + config_.rtt / 2;
    const topo::Device* device = view_->device_at(probe->logical.address);
    if (device == nullptr) {
      dead_.fetch_add(1, std::memory_order_relaxed);
      respond_drop(reply_to, *probe, at_device);
      continue;
    }
    if (probe->logical.port != net::kSnmpPort) {
      filtered_.fetch_add(1, std::memory_order_relaxed);
      respond_drop(reply_to, *probe, at_device);
      continue;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    auto responses =
        handle_udp(*device, payload, at_device, rng_, config_.agent);
    if (responses.empty()) {
      // The agent ignored the payload; the engine's flow window still
      // needs an answer.
      respond_drop(reply_to, *probe, at_device);
      continue;
    }
    const util::VTime arrival = at_device + config_.rtt / 2;
    for (const auto& response : responses) {
      SimFrame header;
      header.kind = SimFrame::kData;
      header.logical = probe->logical;  // agents reply from the probed IP
      header.time = arrival;
      const std::size_t wire_len = SimFrame::kWireSize + response.size();
      const auto span = engine_->acquire_send_frame(wire_len);
      if (span.size() >= wire_len) {
        header.encode(span);
        std::memcpy(span.data() + SimFrame::kWireSize, response.data(),
                    response.size());
        engine_->commit_send_frame({}, reply_to, wire_len, arrival);
      } else {
        // Response outgrew the frame pool: allocating one-off send.
        util::Bytes wire(wire_len);
        header.encode({wire.data(), SimFrame::kWireSize});
        std::memcpy(wire.data() + SimFrame::kWireSize, response.data(),
                    response.size());
        engine_->send_view({}, reply_to, wire, arrival);
      }
      responses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (any) engine_->flush();
  return any;
}

}  // namespace snmpv3fp::sim
