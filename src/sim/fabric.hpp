// The in-memory UDP fabric: the simulated Internet's data plane.
//
// Implements net::Transport over the World: a datagram sent to an address
// is delivered (after latency, unless lost) to the owning device's agent;
// the agent's response datagrams are scheduled back toward the prober.
// All timing uses the virtual clock, so a full Internet-wide campaign runs
// in milliseconds of wall time and is bit-reproducible from the seed.
#pragma once

#include <deque>
#include <queue>
#include <unordered_map>

#include "net/transport.hpp"
#include "sim/agent.hpp"
#include "sim/faults.hpp"
#include "topo/world.hpp"
#include "topo/world_model.hpp"
#include "util/rng.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::sim {

// Hostile-fabric knobs: probability that a delivered datagram is mutated
// in flight (sim/faults.hpp picks the mutation). Both off by default, so
// default campaigns consume no extra RNG draws and stay bit-identical.
struct FaultConfig {
  double probe_corrupt_rate = 0.0;     // probe mutated before the agent
  double response_corrupt_rate = 0.0;  // response mutated before the prober
};

struct FabricConfig {
  std::uint64_t seed = 1;
  double probe_loss = 0.01;     // probe never reaches the target
  double response_loss = 0.01;  // response never reaches the prober
  util::VTime min_rtt = 10 * util::kMillisecond;
  util::VTime max_rtt = 400 * util::kMillisecond;
  // Per-device inbound rate limit (datagrams per simulated second);
  // 0 = unlimited. Real routers police SNMP control-plane traffic — the
  // knob exists for robustness experiments and is off by default, so
  // default campaigns are unchanged.
  std::size_t device_rate_limit_pps = 0;
  FaultConfig faults;
  AgentConfig agent;
};

struct FabricStats {
  std::size_t datagrams_sent = 0;       // by the prober
  std::size_t datagrams_delivered = 0;  // to agents
  std::size_t responses_generated = 0;  // by agents (incl. amplification)
  std::size_t responses_received = 0;   // by the prober

  // Drop/duplication causes (Table-1-style accounting for the data plane;
  // datagrams_sent = datagrams_delivered + probes_lost + probes_dead +
  // probes_filtered + probes_rate_limited).
  std::size_t probes_lost = 0;          // random probe loss
  std::size_t probes_dead = 0;          // no device at the address
  std::size_t probes_filtered = 0;      // closed port / not listening
  std::size_t probes_rate_limited = 0;  // device-side rate policing
  std::size_t responses_lost = 0;       // random response loss
  std::size_t responses_duplicated = 0; // amplified extra copies generated
  std::size_t probes_corrupted = 0;     // fault-injected before the agent
  std::size_t responses_corrupted = 0;  // fault-injected before the prober

  FabricStats& operator+=(const FabricStats& other);
  bool operator==(const FabricStats&) const = default;
};

// Complete serializable fabric state for campaign checkpoint/resume: the
// virtual clock, the RNG stream, accumulated stats, every in-flight and
// matured-but-unread datagram, and the per-device rate windows. Restoring
// it continues the simulation bit-for-bit (scan/checkpoint.hpp holds the
// JSON codec).
struct FabricState {
  util::VTime clock = 0;
  util::RngState rng;
  FabricStats stats;
  std::vector<net::Datagram> in_flight;  // arrival time in Datagram::time
  std::vector<net::Datagram> inbox;      // matured, not yet received()
  // Rate-limit windows, sorted by device index for a stable serialization.
  struct RateWindowState {
    std::uint32_t device = 0;
    util::VTime window_start = 0;
    std::size_t count = 0;
  };
  std::vector<RateWindowState> rate_windows;
  // Lazy-backend responder cache: primary addresses of cached devices, most
  // recently used first. Empty for materialized worlds. Execution-only —
  // restoring it reproduces hit-rate telemetry, never an output bit.
  std::vector<net::IpAddress> responder_cache;
};

class Fabric final : public net::Transport {
 public:
  // The world must outlive the fabric.
  Fabric(const topo::World& world, const FabricConfig& config);
  // Probes through any WorldModel (materialized or procedural); the model
  // must outlive the fabric. Each fabric owns its own DeviceView, so one
  // model can back many shard fabrics concurrently.
  Fabric(const topo::WorldModel& model, const FabricConfig& config);

  void send(net::Datagram datagram) override;
  // Borrowed-payload send (the prober's stamped-template hot path): no
  // Datagram construction, no payload copy — identical delivery behavior
  // and RNG draws to send().
  void send_view(const net::Endpoint& source, const net::Endpoint& destination,
                 util::ByteView payload, util::VTime time) override;
  std::optional<net::Datagram> receive() override;
  util::VTime now() const override { return clock_.now(); }
  void run_until(util::VTime deadline) override;

  // Policed probes surface to the scanner as explicit rate-limit signals
  // (net::Transport contract), like ICMP admin-prohibited rejections would
  // on a real path.
  std::uint64_t rate_limit_signals() const override {
    return stats_.probes_rate_limited;
  }

  const FabricStats& stats() const { return stats_; }
  // Responder-cache accounting of this fabric's device view (all-zero over
  // materialized worlds).
  topo::WorldCacheStats cache_stats() const { return view_->cache_stats(); }
  util::VirtualClock& clock() { return clock_; }

  // Checkpoint/resume: snapshot() captures the complete mutable state;
  // restore() on a fabric built over the same world and config continues
  // the simulation exactly where the snapshot was taken.
  FabricState snapshot() const;
  void restore(const FabricState& state);

 private:
  // Shared body of send()/send_view(): loss, lookup, policing, agent
  // dispatch and response scheduling over a borrowed payload view.
  void deliver(const net::Endpoint& source, const net::Endpoint& destination,
               util::ByteView payload);

  struct InFlight {
    util::VTime arrival;
    net::Datagram datagram;
    bool operator>(const InFlight& other) const {
      return arrival > other.arrival;
    }
  };

  // Per-device one-second token window for device_rate_limit_pps.
  struct RateWindow {
    util::VTime window_start = 0;
    std::size_t count = 0;
  };

  std::unique_ptr<topo::DeviceView> view_;
  FabricConfig config_;
  util::Rng rng_;
  util::VirtualClock clock_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight_;
  std::deque<net::Datagram> inbox_;
  FabricStats stats_;
  std::unordered_map<std::uint32_t, RateWindow> rate_windows_;
};

}  // namespace snmpv3fp::sim
