// The in-memory UDP fabric: the simulated Internet's data plane.
//
// Implements net::Transport over the World: a datagram sent to an address
// is delivered (after latency, unless lost) to the owning device's agent;
// the agent's response datagrams are scheduled back toward the prober.
// All timing uses the virtual clock, so a full Internet-wide campaign runs
// in milliseconds of wall time and is bit-reproducible from the seed.
#pragma once

#include <deque>
#include <queue>

#include "net/transport.hpp"
#include "sim/agent.hpp"
#include "topo/world.hpp"
#include "util/rng.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::sim {

struct FabricConfig {
  std::uint64_t seed = 1;
  double probe_loss = 0.01;     // probe never reaches the target
  double response_loss = 0.01;  // response never reaches the prober
  util::VTime min_rtt = 10 * util::kMillisecond;
  util::VTime max_rtt = 400 * util::kMillisecond;
  AgentConfig agent;
};

struct FabricStats {
  std::size_t datagrams_sent = 0;       // by the prober
  std::size_t datagrams_delivered = 0;  // to agents
  std::size_t responses_generated = 0;  // by agents (incl. amplification)
  std::size_t responses_received = 0;   // by the prober
};

class Fabric final : public net::Transport {
 public:
  // The world must outlive the fabric.
  Fabric(const topo::World& world, const FabricConfig& config);

  void send(net::Datagram datagram) override;
  std::optional<net::Datagram> receive() override;
  util::VTime now() const override { return clock_.now(); }
  void run_until(util::VTime deadline) override;

  const FabricStats& stats() const { return stats_; }
  util::VirtualClock& clock() { return clock_; }

 private:
  struct InFlight {
    util::VTime arrival;
    net::Datagram datagram;
    bool operator>(const InFlight& other) const {
      return arrival > other.arrival;
    }
  };

  const topo::World& world_;
  FabricConfig config_;
  util::Rng rng_;
  util::VirtualClock clock_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight_;
  std::deque<net::Datagram> inbox_;
  FabricStats stats_;
};

}  // namespace snmpv3fp::sim
