// TCP/IP stack probing simulator for the baseline techniques.
//
// The paper compares SNMPv3 fingerprinting/aliasing against methods that
// read other stack signals: MIDAR samples IPv4 IP-ID counters, Speedtrap
// elicits IPv6 fragment IDs, Nmap needs open/closed TCP ports plus probe
// responses, and TTL fingerprinting reads initial TTLs. StackSimulator
// answers those probes from the same ground-truth devices the SNMP agents
// run on, with the vendor personalities of topo::VendorProfile.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "topo/world.hpp"
#include "util/rng.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::sim {

struct IcmpEchoReply {
  std::uint16_t ip_id = 0;
  std::uint8_t ttl = 0;  // remaining TTL as seen by the prober
};

enum class TcpProbeOutcome : std::uint8_t { kSilent, kClosed, kOpen };

struct TcpProbeReply {
  TcpProbeOutcome outcome = TcpProbeOutcome::kSilent;
  std::uint16_t window = 0;
  std::uint8_t ttl = 0;
  std::uint8_t options_signature = 0;  // vendor-specific option ordering
};

class StackSimulator {
 public:
  StackSimulator(const topo::World& world, std::uint64_t seed);

  // ICMP echo toward an IPv4 address; nullopt if the address is dead or
  // the device rate-limits/filters ICMP.
  std::optional<IcmpEchoReply> icmp_echo(const net::Ipv4& target,
                                         util::VTime now);

  // IPv6 fragment-ID elicitation (too-big/echo trick used by Speedtrap).
  std::optional<std::uint32_t> fragment_id(const net::Ipv6& target,
                                           util::VTime now);

  // TCP SYN to a port (Nmap prerequisite).
  TcpProbeReply tcp_syn(const net::IpAddress& target, std::uint16_t port,
                        util::VTime now);

 private:
  // IP-ID value for a device/interface pair under the vendor's policy.
  std::uint16_t ip_id_for(const topo::Device& device,
                          const net::IpAddress& target, util::VTime now);

  const topo::World& world_;
  util::Rng rng_;
  // Per-device extra increments caused by our own probes.
  std::unordered_map<topo::DeviceIndex, std::uint32_t> probe_counts_;
};

}  // namespace snmpv3fp::sim
