#include "sim/agent.hpp"

#include "snmp/usm.hpp"
#include "sim/mib.hpp"
#include "wire/report_codec.hpp"

#include <algorithm>

namespace snmpv3fp::sim {

namespace {

using snmp::EngineId;
using snmp::PduType;
using snmp::V3Message;

// REPORT counters are per-engine statistics; deriving them from the boots
// counter gives stable, plausible-looking values without per-device state.
std::uint32_t report_counter(const topo::Device& device, util::VTime now) {
  return device.engine_boots_at(now) * 7 + (device.index % 131);
}

std::vector<util::Bytes> amplify(util::Bytes payload, int factor) {
  std::vector<util::Bytes> out;
  out.reserve(static_cast<std::size_t>(factor));
  for (int i = 1; i < factor; ++i) out.push_back(payload);
  out.push_back(std::move(payload));
  return out;
}

// An authenticated GET from the configured user with a valid HMAC gets a
// real Response (this is how legitimate management traffic looks — and
// what the offline brute-force example captures).
std::vector<util::Bytes> handle_authenticated_v3(const topo::Device& device,
                                                 const V3Message& request,
                                                 util::VTime now,
                                                 util::Rng& rng,
                                                 const AgentConfig& config) {
  constexpr auto kProto = snmp::AuthProtocol::kHmacSha1_96;
  const auto auth_key = snmp::derive_localized_key(
      kProto, device.usm_auth_password, device.engine_id);
  // Authentication covers the message as transmitted (ciphertext included).
  if (!snmp::verify_authentication(kProto, auth_key, request))
    return {};  // wrong digest: usmStatsWrongDigests, no disclosure needed

  // authPriv: decrypt the scoped PDU before processing (RFC 3826).
  const bool priv = (request.header.msg_flags & snmp::kFlagPriv) != 0;
  V3Message plain_request = request;
  util::Bytes priv_key;
  if (priv) {
    if (device.usm_priv_password.empty()) return {};  // user has no priv
    priv_key = snmp::derive_privacy_key(kProto, device.usm_priv_password,
                                        device.engine_id);
    auto decrypted = snmp::decrypt_scoped_pdu(priv_key, request);
    if (!decrypted) return {};  // wrong privacy key / garbled ciphertext
    plain_request = std::move(decrypted).value();
  }

  V3Message response;
  response.header = plain_request.header;
  response.header.msg_flags = snmp::kFlagAuth;
  response.usm = plain_request.usm;
  response.usm.privacy_parameters.clear();
  response.encrypted_scoped_pdu.reset();
  response.scoped_pdu.context_engine_id = device.engine_id.raw();
  response.scoped_pdu.pdu.type = PduType::kResponse;
  response.scoped_pdu.pdu.request_id = plain_request.scoped_pdu.pdu.request_id;
  for (const auto& binding : plain_request.scoped_pdu.pdu.bindings) {
    snmp::VarBind vb;
    vb.oid = binding.oid;
    vb.value = binding.oid == snmp::kOidSysDescr
                   ? snmp::VarValue::string(config.sys_descr_prefix + " " +
                                            device.vendor->name)
                   : snmp::VarValue::null();
    response.scoped_pdu.pdu.bindings.push_back(std::move(vb));
  }
  if (priv)
    response = snmp::encrypt_scoped_pdu(priv_key, rng.next(),
                                        std::move(response));
  response = snmp::authenticate(kProto, auth_key, std::move(response));
  return {response.encode()};
}

// REPORT generation shared by the full-decode path and the wire fast path:
// engine selection (incl. the VIP/bug behaviours), boots/time, and the
// direct single-pass REPORT writer — byte-identical to
// make_discovery_report(...).encode() (tests/test_wire.cpp), without the
// message-tree build and re-encode per response.
std::vector<util::Bytes> discovery_reports(const topo::Device& device,
                                           std::int32_t msg_id,
                                           std::int32_t request_id,
                                           bool discovery, util::VTime now,
                                           util::Rng& rng) {
  EngineId engine_id =
      device.empty_engine_id_bug ? EngineId() : device.engine_id;
  // Load-balancer VIP: each request lands on one of the backends.
  if (!device.backend_engines.empty() && !device.empty_engine_id_bug) {
    const std::size_t pick =
        rng.next_below(device.backend_engines.size() + 1);
    if (pick > 0) engine_id = device.backend_engines[pick - 1];
  }

  std::uint32_t boots = device.engine_boots_at(now);
  std::uint32_t time = reported_engine_time(device, now, rng);
  if (device.zero_time_bug) {
    boots = 0;
    time = 0;
  }

  // Discovery (empty engine ID) -> usmStatsUnknownEngineIDs.
  // Wrong engine ID or unknown user -> usmStatsUnknownUserNames. Either
  // way the authoritative engine fields are disclosed — the paper's core
  // observation.
  const auto& oid = discovery ? snmp::kOidUsmStatsUnknownEngineIds
                              : snmp::kOidUsmStatsUnknownUserNames;
  util::Bytes report;
  wire::encode_report_into(report, msg_id, request_id, engine_id.raw(), boots,
                           time, report_counter(device, now), oid);
  return amplify(std::move(report), std::max(device.amplification, 1));
}

std::vector<util::Bytes> handle_v3(const topo::Device& device,
                                   const V3Message& request, util::VTime now,
                                   util::Rng& rng,
                                   const AgentConfig& config) {
  if (!device.snmpv3_enabled) return {};

  // Configured-user path: correct engine ID + user + HMAC -> Response.
  if ((request.header.msg_flags & snmp::kFlagAuth) &&
      !device.usm_user.empty() && request.usm.user_name == device.usm_user &&
      request.usm.authoritative_engine_id == device.engine_id)
    return handle_authenticated_v3(device, request, now, rng, config);

  // Only reportable requests elicit REPORTs (RFC 3412 §7.1).
  if (!(request.header.msg_flags & snmp::kFlagReportable)) return {};

  return discovery_reports(device, request.header.msg_id,
                           request.scoped_pdu.pdu.request_id,
                           request.usm.authoritative_engine_id.empty(), now,
                           rng);
}

std::vector<util::Bytes> handle_v2c(const topo::Device& device,
                                    const snmp::V2cMessage& request,
                                    util::VTime now, const AgentConfig& config) {
  if (!device.snmpv2_enabled) return {};
  if (request.community != config.community) return {};  // silently dropped
  if (request.pdu.type != PduType::kGetRequest &&
      request.pdu.type != PduType::kGetNextRequest)
    return {};

  const auto mib = build_mib(device, now);
  snmp::V2cMessage response;
  response.community = request.community;
  response.pdu.type = PduType::kResponse;
  response.pdu.request_id = request.pdu.request_id;
  for (const auto& binding : request.pdu.bindings) {
    snmp::VarBind vb;
    if (request.pdu.type == PduType::kGetRequest) {
      vb.oid = binding.oid;
      const auto* entry = mib_get(mib, binding.oid);
      if (entry != nullptr && binding.oid == snmp::kOidSysDescr) {
        // Keep the lab-validation wording configurable.
        vb.value = snmp::VarValue::string(config.sys_descr_prefix + " " +
                                          device.vendor->name);
      } else if (entry != nullptr) {
        vb.value = entry->value;
      } else {
        vb.value = snmp::VarValue::null();  // noSuchObject simplification
      }
    } else {  // GetNext: lexicographic successor, endOfMibView as NULL
      const auto* entry = mib_next(mib, binding.oid);
      if (entry == nullptr) {
        vb.oid = binding.oid;
        vb.value = snmp::VarValue::null();
      } else {
        vb = *entry;
      }
    }
    response.pdu.bindings.push_back(std::move(vb));
  }
  return {response.encode()};
}

}  // namespace

std::uint32_t reported_engine_time(const topo::Device& device, util::VTime now,
                                   util::Rng& rng) {
  if (device.future_time_bug) {
    // Misimplementation: engineTime holds a huge bogus value implying a
    // reboot before 1970 ("engine time in the future" filter, paper §4.4).
    return 0x70000000u + static_cast<std::uint32_t>(rng.next_below(1 << 20));
  }
  double seconds = device.engine_time_at(now);
  if (device.time_jitter_s != 0.0)
    seconds += rng.uniform(-device.time_jitter_s, device.time_jitter_s);
  return seconds <= 0.0 ? 0u : static_cast<std::uint32_t>(seconds);
}

std::vector<util::Bytes> handle_udp(const topo::Device& device,
                                    util::ByteView payload, util::VTime now,
                                    util::Rng& rng, const AgentConfig& config) {
  // Wire fast path: census traffic is overwhelmingly plaintext discovery
  // GETs. One allocation-free pass covers them; anything it rejects —
  // authenticated/encrypted v3, v2c, hostile bytes — takes the original
  // full-decode route. The fast parser accepts a strict subset of
  // V3Message::decode with identical fields (src/wire/report_codec.hpp),
  // so behavior and response bytes are identical either way. Requests
  // carrying the auth flag need the whole message for HMAC verification,
  // hence the full-decode route even when the fast parse succeeds.
  wire::V3Fields fast;
  if (wire::parse_v3_fast(payload, fast) &&
      (fast.msg_flags & snmp::kFlagAuth) == 0) {
    if (!device.snmpv3_enabled) return {};
    // Only reportable requests elicit REPORTs (RFC 3412 §7.1).
    if (!(fast.msg_flags & snmp::kFlagReportable)) return {};
    return discovery_reports(device, fast.msg_id, fast.request_id,
                             fast.engine_id.empty(), now, rng);
  }

  const auto version = snmp::peek_version(payload);
  if (!version) return {};  // not SNMP at all
  if (version.value() == 3) {
    auto request = V3Message::decode(payload);
    if (!request) return {};
    return handle_v3(device, request.value(), now, rng, config);
  }
  if (version.value() == 1) {  // SNMPv2c
    auto request = snmp::V2cMessage::decode(payload);
    if (!request) return {};
    return handle_v2c(device, request.value(), now, config);
  }
  return {};
}

}  // namespace snmpv3fp::sim
