#include "sim/faults.hpp"

#include <algorithm>

namespace snmpv3fp::sim {

namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t length) {
  util::Bytes out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i)
    out.push_back(static_cast<std::uint8_t>(rng.next()));
  return out;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kGarbage: return "garbage";
    case FaultKind::kOversizedTlv: return "oversized_tlv";
    case FaultKind::kSplice: return "splice";
    case FaultKind::kTrailing: return "trailing";
  }
  return "?";
}

util::Bytes apply_fault(util::ByteView payload, FaultKind kind,
                        util::Rng& rng) {
  util::Bytes out(payload.begin(), payload.end());
  switch (kind) {
    case FaultKind::kTruncate:
      if (out.empty()) return random_bytes(rng, 1 + rng.next_below(8));
      out.resize(rng.next_below(out.size()));
      return out;
    case FaultKind::kBitFlip: {
      if (out.empty()) return random_bytes(rng, 1 + rng.next_below(8));
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t i = 0; i < flips; ++i)
        out[rng.next_below(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      return out;
    }
    case FaultKind::kGarbage:
      return random_bytes(rng, 1 + rng.next_below(256));
    case FaultKind::kOversizedTlv: {
      // Long-form length claiming up to 4 GiB of content: a decoder that
      // trusts it allocates or reads far past the buffer end.
      if (out.size() < 6) out.resize(6, 0x00);
      const std::size_t at = rng.next_below(out.size() - 5);
      out[at + 1] = 0x84;  // long form, 4 length bytes follow
      for (std::size_t i = 0; i < 4; ++i)
        out[at + 2 + i] = static_cast<std::uint8_t>(rng.next());
      out[at + 2] |= 0x80;  // force a length >= 2 GiB
      return out;
    }
    case FaultKind::kSplice: {
      if (out.size() < 2) return random_bytes(rng, 1 + rng.next_below(8));
      const std::size_t from = rng.next_below(out.size());
      const std::size_t to = rng.next_below(out.size());
      const std::size_t length =
          1 + rng.next_below(out.size() - std::max(from, to));
      std::copy_n(out.begin() + static_cast<std::ptrdiff_t>(from), length,
                  out.begin() + static_cast<std::ptrdiff_t>(to));
      return out;
    }
    case FaultKind::kTrailing: {
      const auto tail = random_bytes(rng, 1 + rng.next_below(64));
      out.insert(out.end(), tail.begin(), tail.end());
      return out;
    }
  }
  return out;
}

util::Bytes apply_random_fault(util::ByteView payload, util::Rng& rng) {
  const auto kind = static_cast<FaultKind>(rng.next_below(kFaultKindCount));
  return apply_fault(payload, kind, rng);
}

}  // namespace snmpv3fp::sim
