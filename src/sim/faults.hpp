// Byte-level fault injection for hostile-fabric experiments.
//
// The paper's Internet-wide scans receive truncated, bit-flipped and
// outright garbage datagrams from middleboxes and broken agents; the
// decode path (asn1::ber -> snmp::message) must reject every such payload
// cleanly. This module produces the corruptions: the Fabric applies them
// in flight (sim/fabric.hpp, FabricConfig::faults) and the hostile-input
// regression corpus applies them directly (tests/test_hostile.cpp).
//
// Every mutation draws only from the caller's Rng, so a corrupted
// campaign is exactly as reproducible as a clean one.
#pragma once

#include <string_view>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::sim {

enum class FaultKind : std::uint8_t {
  kTruncate,      // cut the payload at a random offset
  kBitFlip,       // flip 1-8 random bits
  kGarbage,       // replace the whole payload with random bytes
  kOversizedTlv,  // patch in a long-form length that overruns the buffer
  kSplice,        // overwrite a slice with bytes copied from elsewhere
  kTrailing,      // append random trailing bytes
};

inline constexpr std::size_t kFaultKindCount = 6;

std::string_view to_string(FaultKind kind);

// Applies one specific corruption. Always returns a mutated buffer (an
// empty input only ever grows); never reads out of bounds.
util::Bytes apply_fault(util::ByteView payload, FaultKind kind,
                        util::Rng& rng);

// Applies a fault kind chosen uniformly by `rng`.
util::Bytes apply_random_fault(util::ByteView payload, util::Rng& rng);

}  // namespace snmpv3fp::sim
