#include "sim/fabric.hpp"

#include <algorithm>

namespace snmpv3fp::sim {

FabricStats& FabricStats::operator+=(const FabricStats& other) {
  datagrams_sent += other.datagrams_sent;
  datagrams_delivered += other.datagrams_delivered;
  responses_generated += other.responses_generated;
  responses_received += other.responses_received;
  probes_lost += other.probes_lost;
  probes_dead += other.probes_dead;
  probes_filtered += other.probes_filtered;
  probes_rate_limited += other.probes_rate_limited;
  responses_lost += other.responses_lost;
  responses_duplicated += other.responses_duplicated;
  probes_corrupted += other.probes_corrupted;
  responses_corrupted += other.responses_corrupted;
  return *this;
}

Fabric::Fabric(const topo::World& world, const FabricConfig& config)
    : view_(topo::make_materialized_view(world)),
      config_(config),
      rng_(config.seed) {}

Fabric::Fabric(const topo::WorldModel& model, const FabricConfig& config)
    : view_(model.open_view()), config_(config), rng_(config.seed) {}

void Fabric::send(net::Datagram datagram) {
  deliver(datagram.source, datagram.destination, datagram.payload);
}

void Fabric::send_view(const net::Endpoint& source,
                       const net::Endpoint& destination,
                       util::ByteView payload, util::VTime /*time*/) {
  // Same path as send(): the fabric consumes the bytes synchronously (the
  // agent either answers or drops), so a borrowed view needs no copy and
  // the caller's buffer is free for the next probe on return. send() has
  // always stamped delivery times from the virtual clock, so the send-time
  // parameter is as unused here as Datagram::time was.
  deliver(source, destination, payload);
}

void Fabric::deliver(const net::Endpoint& source,
                     const net::Endpoint& destination,
                     util::ByteView payload) {
  ++stats_.datagrams_sent;
  if (rng_.chance(config_.probe_loss)) {
    ++stats_.probes_lost;
    return;
  }

  const topo::Device* device = view_->device_at(destination.address);
  if (device == nullptr) {  // dead address space
    ++stats_.probes_dead;
    return;
  }
  if (destination.port != net::kSnmpPort) {
    ++stats_.probes_filtered;
    return;
  }

  const util::VTime rtt =
      config_.min_rtt +
      static_cast<util::VTime>(rng_.uniform01() *
                               static_cast<double>(config_.max_rtt -
                                                   config_.min_rtt));
  const util::VTime at_device = clock_.now() + rtt / 2;

  // Device-side control-plane policing (off unless configured): at most
  // device_rate_limit_pps datagrams per device per simulated second.
  if (config_.device_rate_limit_pps > 0) {
    auto& window = rate_windows_[static_cast<std::uint32_t>(device->index)];
    if (at_device - window.window_start >= util::kSecond) {
      window.window_start = at_device;
      window.count = 0;
    }
    if (++window.count > config_.device_rate_limit_pps) {
      ++stats_.probes_rate_limited;
      return;
    }
  }

  ++stats_.datagrams_delivered;

  // In-flight probe corruption: the agent sees the mutated bytes and must
  // reject them like any hostile input (tests/test_robustness.cpp).
  util::Bytes corrupted;
  if (rng_.chance(config_.faults.probe_corrupt_rate)) {
    ++stats_.probes_corrupted;
    corrupted = apply_random_fault(payload, rng_);
    payload = corrupted;
  }

  auto responses = handle_udp(*device, payload, at_device, rng_,
                              config_.agent);
  util::VTime arrival = at_device + rtt / 2;
  bool first_response = true;
  for (auto& response_payload : responses) {
    ++stats_.responses_generated;
    if (!first_response) ++stats_.responses_duplicated;
    first_response = false;
    if (rng_.chance(config_.response_loss)) {
      ++stats_.responses_lost;
      continue;
    }
    net::Datagram response;
    response.source = destination;  // agents reply from the probed IP
    response.destination = source;
    response.payload = std::move(response_payload);
    // Response corruption happens after loss: only bytes that actually
    // reach the prober can be hostile input for its decode path.
    if (rng_.chance(config_.faults.response_corrupt_rate)) {
      ++stats_.responses_corrupted;
      response.payload = apply_random_fault(response.payload, rng_);
    }
    response.time = arrival;
    in_flight_.push({arrival, std::move(response)});
    // Amplified duplicates trickle out over time (paper §8 reports
    // responses arriving over hours; we compress so most copies land
    // within the prober's drain window).
    arrival += static_cast<util::VTime>(rng_.next_below(4 * util::kMillisecond));
  }
}

std::optional<net::Datagram> Fabric::receive() {
  while (!in_flight_.empty() && in_flight_.top().arrival <= clock_.now()) {
    inbox_.push_back(std::move(const_cast<InFlight&>(in_flight_.top()).datagram));
    in_flight_.pop();
  }
  if (inbox_.empty()) return std::nullopt;
  net::Datagram out = std::move(inbox_.front());
  inbox_.pop_front();
  ++stats_.responses_received;
  return out;
}

void Fabric::run_until(util::VTime deadline) { clock_.advance_to(deadline); }

FabricState Fabric::snapshot() const {
  FabricState state;
  state.clock = clock_.now();
  state.rng = rng_.save_state();
  state.stats = stats_;
  // Draining a copy of the priority queue yields arrival order — a stable
  // serialization independent of insertion history.
  auto queue = in_flight_;
  state.in_flight.reserve(queue.size());
  while (!queue.empty()) {
    state.in_flight.push_back(queue.top().datagram);
    queue.pop();
  }
  state.inbox.assign(inbox_.begin(), inbox_.end());
  state.rate_windows.reserve(rate_windows_.size());
  for (const auto& [device, window] : rate_windows_)
    state.rate_windows.push_back({device, window.window_start, window.count});
  std::sort(state.rate_windows.begin(), state.rate_windows.end(),
            [](const auto& a, const auto& b) { return a.device < b.device; });
  state.responder_cache = view_->cached_addresses();
  return state;
}

void Fabric::restore(const FabricState& state) {
  clock_ = util::VirtualClock(state.clock);
  rng_.restore_state(state.rng);
  stats_ = state.stats;
  in_flight_ = {};
  for (const auto& datagram : state.in_flight)
    in_flight_.push({datagram.time, datagram});
  inbox_.assign(state.inbox.begin(), state.inbox.end());
  rate_windows_.clear();
  for (const auto& window : state.rate_windows)
    rate_windows_[window.device] = {window.window_start, window.count};
  view_->warm(state.responder_cache);
}

}  // namespace snmpv3fp::sim
