#include "sim/fabric.hpp"

namespace snmpv3fp::sim {

Fabric::Fabric(const topo::World& world, const FabricConfig& config)
    : world_(world), config_(config), rng_(config.seed) {}

void Fabric::send(net::Datagram datagram) {
  ++stats_.datagrams_sent;
  if (rng_.chance(config_.probe_loss)) return;

  const topo::Device* device = world_.device_at(datagram.destination.address);
  if (device == nullptr) return;  // dead address space
  if (datagram.destination.port != net::kSnmpPort) return;

  const util::VTime rtt =
      config_.min_rtt +
      static_cast<util::VTime>(rng_.uniform01() *
                               static_cast<double>(config_.max_rtt -
                                                   config_.min_rtt));
  const util::VTime at_device = clock_.now() + rtt / 2;
  ++stats_.datagrams_delivered;

  const auto responses = handle_udp(*device, datagram.payload, at_device, rng_,
                                    config_.agent);
  util::VTime arrival = at_device + rtt / 2;
  for (const auto& payload : responses) {
    ++stats_.responses_generated;
    if (rng_.chance(config_.response_loss)) continue;
    net::Datagram response;
    response.source = datagram.destination;  // agents reply from the probed IP
    response.destination = datagram.source;
    response.payload = payload;
    response.time = arrival;
    in_flight_.push({arrival, std::move(response)});
    // Amplified duplicates trickle out over time (paper §8 reports
    // responses arriving over hours; we compress so most copies land
    // within the prober's drain window).
    arrival += static_cast<util::VTime>(rng_.next_below(4 * util::kMillisecond));
  }
}

std::optional<net::Datagram> Fabric::receive() {
  while (!in_flight_.empty() && in_flight_.top().arrival <= clock_.now()) {
    inbox_.push_back(std::move(const_cast<InFlight&>(in_flight_.top()).datagram));
    in_flight_.pop();
  }
  if (inbox_.empty()) return std::nullopt;
  net::Datagram out = std::move(inbox_.front());
  inbox_.pop_front();
  ++stats_.responses_received;
  return out;
}

void Fabric::run_until(util::VTime deadline) { clock_.advance_to(deadline); }

}  // namespace snmpv3fp::sim
