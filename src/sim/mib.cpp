#include "sim/mib.hpp"

#include <algorithm>

namespace snmpv3fp::sim {

using asn1::Oid;
using snmp::VarBind;
using snmp::VarValue;

const Oid kOidSysObjectId = {1, 3, 6, 1, 2, 1, 1, 2, 0};
const Oid kOidSysContact = {1, 3, 6, 1, 2, 1, 1, 4, 0};
const Oid kOidSysName = {1, 3, 6, 1, 2, 1, 1, 5, 0};
const Oid kOidSysLocation = {1, 3, 6, 1, 2, 1, 1, 6, 0};
const Oid kOidIfNumber = {1, 3, 6, 1, 2, 1, 2, 1, 0};
const Oid kOidIfTable = {1, 3, 6, 1, 2, 1, 2, 2};

namespace {

Oid if_entry(std::uint32_t column, std::uint32_t index) {
  // ifEntry: 1.3.6.1.2.1.2.2.1.<column>.<ifIndex>
  Oid oid = kOidIfTable;
  oid.push_back(1);
  oid.push_back(column);
  oid.push_back(index);
  return oid;
}

}  // namespace

std::vector<VarBind> build_mib(const topo::Device& device, util::VTime now) {
  std::vector<VarBind> mib;

  const std::string name = device.vendor->name + "-" +
                           std::string(topo::to_string(device.kind)) + "-" +
                           std::to_string(device.index);
  mib.push_back({snmp::kOidSysDescr,
                 VarValue::string(device.vendor->name + " " +
                                  std::string(topo::to_string(device.kind)) +
                                  " (simulated)")});
  mib.push_back({kOidSysObjectId,
                 VarValue{.data = Oid{1, 3, 6, 1, 4, 1,
                                      device.vendor->enterprise_pen, 1}}});
  mib.push_back({snmp::kOidSysUpTime,
                 VarValue::timeticks(device.engine_time_at(now) * 100u)});
  mib.push_back({kOidSysContact, VarValue::string("noc@example.net")});
  mib.push_back({kOidSysName, VarValue::string(name)});
  mib.push_back({kOidSysLocation, VarValue::string("rack-sim")});
  mib.push_back({kOidIfNumber,
                 VarValue::integer(
                     static_cast<std::int64_t>(device.interfaces.size()))});

  for (std::uint32_t i = 0; i < device.interfaces.size(); ++i) {
    const auto& itf = device.interfaces[i];
    const std::uint32_t index = i + 1;  // ifIndex is 1-based
    mib.push_back({if_entry(1, index),
                   VarValue::integer(static_cast<std::int64_t>(index))});
    mib.push_back({if_entry(2, index),
                   VarValue::string("eth" + std::to_string(i))});
    mib.push_back({if_entry(6, index),  // ifPhysAddress
                   VarValue::octets(itf.mac.to_bytes())});
    mib.push_back({if_entry(8, index),  // ifOperStatus: up(1)
                   VarValue::integer(1)});
  }

  std::sort(mib.begin(), mib.end(), [](const VarBind& a, const VarBind& b) {
    return a.oid < b.oid;
  });
  return mib;
}

const VarBind* mib_get(const std::vector<VarBind>& mib, const Oid& oid) {
  const auto it =
      std::lower_bound(mib.begin(), mib.end(), oid,
                       [](const VarBind& vb, const Oid& o) { return vb.oid < o; });
  if (it == mib.end() || it->oid != oid) return nullptr;
  return &*it;
}

const VarBind* mib_next(const std::vector<VarBind>& mib, const Oid& oid) {
  const auto it =
      std::upper_bound(mib.begin(), mib.end(), oid,
                       [](const Oid& o, const VarBind& vb) { return o < vb.oid; });
  if (it == mib.end()) return nullptr;
  return &*it;
}

}  // namespace snmpv3fp::sim
