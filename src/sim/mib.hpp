// Minimal MIB-II view of a simulated device (RFC 1213 subset).
//
// Once v2c credentials are right (the lab experiment) or a v3 user is
// authenticated, real management tooling walks the agent with GetNext.
// This module materializes the sorted (OID, value) table those walks
// traverse: the system group plus one ifTable row per interface — enough
// for sysDescr fingerprinting, uptime queries and interface inventory.
#pragma once

#include <vector>

#include "snmp/message.hpp"
#include "topo/world.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::sim {

// Well-known MIB-II OIDs (scalars carry the .0 instance suffix).
extern const asn1::Oid kOidSysObjectId;   // 1.3.6.1.2.1.1.2.0
extern const asn1::Oid kOidSysContact;    // 1.3.6.1.2.1.1.4.0
extern const asn1::Oid kOidSysName;       // 1.3.6.1.2.1.1.5.0
extern const asn1::Oid kOidSysLocation;   // 1.3.6.1.2.1.1.6.0
extern const asn1::Oid kOidIfNumber;      // 1.3.6.1.2.1.2.1.0
extern const asn1::Oid kOidIfTable;       // 1.3.6.1.2.1.2.2

// The device's full MIB view at virtual time `now`, sorted by OID
// (GetNext order). Deterministic for a given (device, now).
std::vector<snmp::VarBind> build_mib(const topo::Device& device,
                                     util::VTime now);

// Exact lookup; nullptr when the OID is not instantiated.
const snmp::VarBind* mib_get(const std::vector<snmp::VarBind>& mib,
                             const asn1::Oid& oid);

// First entry with OID strictly greater than `oid` (GetNext semantics);
// nullptr at end of MIB.
const snmp::VarBind* mib_next(const std::vector<snmp::VarBind>& mib,
                              const asn1::Oid& oid);

}  // namespace snmpv3fp::sim
