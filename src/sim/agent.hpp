// Per-device SNMP agent behaviour.
//
// The agent consumes the *actual wire bytes* of a probe and produces actual
// wire bytes back, so the scanner exercises the same codec path it would
// against real devices: discovery GETs are answered with REPORTs carrying
// engine ID / boots / time (RFC 3414 §4), authenticated-looking requests
// with a wrong user get usmStatsUnknownUserNames (the lab experiment of
// paper §6.2.1), and SNMPv2c GETs are answered when the community matches.
#pragma once

#include <vector>

#include "snmp/message.hpp"
#include "topo/world.hpp"
#include "util/rng.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::sim {

struct AgentConfig {
  // SNMPv2c community accepted by devices with v2c configured.
  std::string community = "pass123";
  // sysDescr returned to an authorized v2c GET.
  std::string sys_descr_prefix = "Simulated OS";
};

// Handles one inbound UDP payload addressed to `device` at virtual time
// `now`. Returns zero or more response payloads (amplifiers return many).
std::vector<util::Bytes> handle_udp(const topo::Device& device,
                                    util::ByteView payload, util::VTime now,
                                    util::Rng& rng,
                                    const AgentConfig& config = {});

// The engine time value the device reports at `now`, including the
// zero-time and future-time bug behaviours and per-response jitter.
std::uint32_t reported_engine_time(const topo::Device& device, util::VTime now,
                                   util::Rng& rng);

}  // namespace snmpv3fp::sim
