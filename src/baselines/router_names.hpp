// Router Names: rDNS-based alias resolution (Luckie et al., IMC 2019;
// paper §5.2).
//
// Operators often encode a router identity in interface PTR records
// ("xe-0-0-1.cr1-fra.as3320.eu.example.net"). CAIDA learns per-domain
// regexes that extract that identity; interfaces sharing an extracted name
// are aliases, and because PTR records exist for both families, this was
// the paper's only prior dual-stack-capable comparison point.
//
// We reproduce the approach: per domain, candidate extraction rules are
// scored by how *consistently* they group records (a proxy for CAIDA's
// positive predictive value threshold of 0.8), and only domains with a
// winning rule contribute alias sets.
#pragma once

#include <string>
#include <vector>

#include "net/ip.hpp"
#include "topo/datasets.hpp"

namespace snmpv3fp::baselines {

struct RouterNamesOptions {
  // Minimum fraction of a domain's records the winning rule must parse.
  double min_rule_support = 0.5;
  // Rules whose extracted names are almost all unique carry no alias
  // information (e.g. ip-1-2-3-4 schemes) — require some grouping.
  std::size_t min_groups_smaller_than_records = 1;
};

struct RouterNamesResult {
  // Alias sets (hostname groups with >= 1 address); dual-stack when a
  // name appears in both families' PTR records.
  std::vector<std::vector<net::IpAddress>> alias_sets;
  std::size_t domains_total = 0;
  std::size_t domains_with_rule = 0;
  std::size_t records_parsed = 0;
};

RouterNamesResult run_router_names(const std::vector<topo::PtrRecord>& records,
                                   const RouterNamesOptions& options = {});

// Extraction rules, exposed for tests: returns the router identity or ""
// if the rule does not parse the hostname.
std::string extract_suffix_rule(const std::string& hostname);  // drop 1st label
std::string extract_dash_rule(const std::string& hostname);    // strip -if suffix

}  // namespace snmpv3fp::baselines
