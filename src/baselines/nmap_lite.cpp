#include "baselines/nmap_lite.hpp"

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace snmpv3fp::baselines {

namespace {
// Nmap's default "fast" behaviour probes only a handful of top ports
// (paper: "by default, Nmap will attempt to find an open TCP port by
// scanning only the top 10 services").
constexpr std::uint16_t kTopPorts[] = {80, 23, 443, 21, 22, 25, 3389, 110, 445, 139};
}  // namespace

NmapLite::NmapLite() {
  // Train the signature database the same way the simulator derives vendor
  // personalities (deterministic hash of the vendor name) — standing in
  // for nmap-os-db entries.
  for (const auto* table :
       {&topo::builtin_router_vendors(), &topo::builtin_cpe_vendors(),
        &topo::builtin_server_vendors()}) {
    for (const auto& vendor : *table) {
      const auto vendor_hash =
          static_cast<std::uint32_t>(util::fnv1a64(vendor.name));
      database_.push_back({vendor.name,
                           static_cast<std::uint16_t>(4096 + vendor_hash % 60000),
                           static_cast<std::uint8_t>(vendor_hash % 17),
                           vendor.initial_ttl});
    }
  }
}

NmapFingerprint NmapLite::fingerprint(sim::StackSimulator& stack,
                                      const net::IpAddress& target,
                                      util::VTime now) {
  NmapSignature signature;
  bool open_found = false;
  for (const std::uint16_t port : kTopPorts) {
    const auto reply = stack.tcp_syn(target, port, now);
    if (reply.outcome == sim::TcpProbeOutcome::kOpen && !open_found) {
      open_found = true;
      signature.window = reply.window;
      signature.options_signature = reply.options_signature;
      signature.initial_ttl = reply.ttl;
    } else if (reply.outcome == sim::TcpProbeOutcome::kClosed) {
      signature.has_closed_port = true;
    }
  }

  if (!open_found) return {};  // the common case for secured routers

  if (signature.has_closed_port) {
    // Complete test suite: exact database match possible.
    for (const auto& entry : database_) {
      if (entry.window == signature.window &&
          entry.options_signature == signature.options_signature &&
          entry.initial_ttl == signature.initial_ttl)
        return {NmapOutcome::kExactMatch, entry.vendor};
    }
  }

  // Incomplete tests (or no DB hit): best guess by nearest window size
  // among entries with the same initial TTL class — frequently wrong.
  const DbEntry* best = nullptr;
  std::uint32_t best_distance = std::numeric_limits<std::uint32_t>::max();
  for (const auto& entry : database_) {
    if (entry.initial_ttl != signature.initial_ttl) continue;
    const std::uint32_t distance =
        entry.window > signature.window
            ? entry.window - signature.window
            : signature.window - entry.window;
    if (distance < best_distance) {
      best_distance = distance;
      best = &entry;
    }
  }
  if (best == nullptr) return {};
  return {NmapOutcome::kBestGuess, best->vendor};
}

}  // namespace snmpv3fp::baselines
