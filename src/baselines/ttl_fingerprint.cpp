#include "baselines/ttl_fingerprint.hpp"

#include <set>

namespace snmpv3fp::baselines {

std::uint8_t infer_initial_ttl(std::uint8_t observed) {
  for (const std::uint8_t initial : {std::uint8_t{32}, std::uint8_t{64},
                                     std::uint8_t{128}}) {
    if (observed <= initial) return initial;
  }
  return 255;
}

TtlFingerprint ttl_fingerprint(sim::StackSimulator& stack,
                               const net::Ipv4& target, util::VTime now) {
  TtlFingerprint result;
  const auto reply = stack.icmp_echo(target, now);
  if (!reply) return result;
  result.responsive = true;
  result.initial_ttl = infer_initial_ttl(reply->ttl);

  // Every builtin vendor whose personality shares this iTTL is a
  // candidate — the method cannot distinguish within the class.
  std::set<std::string> candidates;
  for (const auto* table :
       {&topo::builtin_router_vendors(), &topo::builtin_cpe_vendors(),
        &topo::builtin_server_vendors()}) {
    for (const auto& vendor : *table)
      if (vendor.initial_ttl == result.initial_ttl)
        candidates.insert(vendor.name);
  }
  result.candidate_vendors.assign(candidates.begin(), candidates.end());
  return result;
}

}  // namespace snmpv3fp::baselines
