// Speedtrap-style IPv6 alias resolution (Luckie et al., IMC 2013; §5.3).
//
// IPv6 has no IP-ID in the base header; Speedtrap elicits fragmented
// responses whose 32-bit fragment identifiers, on many stacks, come from a
// shared sequential counter. The inference machinery is the same monotonic
// reasoning as MIDAR over a larger modulus (so wraps are rare).
#pragma once

#include <vector>

#include "sim/stack.hpp"

namespace snmpv3fp::baselines {

struct SpeedtrapOptions {
  std::size_t estimation_samples = 6;
  util::VTime estimation_spacing = 2 * util::kSecond;
  std::size_t verification_rounds = 4;
  double max_velocity = 50000.0;  // 32-bit counters rarely wrap
  double velocity_tolerance = 0.03;
  std::size_t max_bin_size = 24;  // sliding-window width
};

struct SpeedtrapResult {
  std::vector<std::vector<net::IpAddress>> alias_sets;
  std::size_t monotonic_targets = 0;
  std::size_t verified_pairs = 0;
};

SpeedtrapResult run_speedtrap(sim::StackSimulator& stack,
                              const std::vector<net::IpAddress>& targets,
                              util::VTime start_time,
                              const SpeedtrapOptions& options = {});

}  // namespace snmpv3fp::baselines
