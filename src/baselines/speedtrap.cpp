#include "baselines/speedtrap.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "baselines/midar.hpp"  // monotonic_bounds_test

namespace snmpv3fp::baselines {

namespace {
constexpr std::uint64_t kModulus = 1ULL << 32;
}

SpeedtrapResult run_speedtrap(sim::StackSimulator& stack,
                              const std::vector<net::IpAddress>& targets,
                              util::VTime start_time,
                              const SpeedtrapOptions& options) {
  SpeedtrapResult result;

  struct Estimate {
    net::IpAddress address;
    double velocity = 0.0;
    bool usable = false;
  };
  std::vector<Estimate> estimates;
  util::VTime t = start_time;
  for (const auto& target : targets) {
    if (!target.is_v6()) continue;
    Estimate estimate;
    estimate.address = target;
    std::vector<std::pair<util::VTime, std::uint32_t>> samples;
    for (std::size_t i = 0; i < options.estimation_samples; ++i) {
      const util::VTime when =
          t + static_cast<util::VTime>(i) * options.estimation_spacing;
      const auto id = stack.fragment_id(target.v6(), when);
      if (!id) break;
      samples.emplace_back(when, *id);
    }
    if (samples.size() == options.estimation_samples &&
        monotonic_bounds_test(samples, kModulus, options.max_velocity)) {
      // Velocity from first/last sample.
      const double span =
          util::to_seconds(samples.back().first - samples.front().first);
      const std::uint64_t diff =
          (samples.back().second + kModulus - samples.front().second) %
          kModulus;
      estimate.velocity = static_cast<double>(diff) / std::max(span, 1e-9);
      if (estimate.velocity > 0.01) {
        estimate.usable = true;
        ++result.monotonic_targets;
      }
    }
    estimates.push_back(std::move(estimate));
    t += util::kMillisecond;
  }

  // Velocity-sorted sliding-window candidate pairing (see midar.cpp).
  std::vector<std::size_t> ordered;
  for (std::size_t i = 0; i < estimates.size(); ++i)
    if (estimates[i].usable) ordered.push_back(i);
  std::sort(ordered.begin(), ordered.end(), [&](std::size_t a, std::size_t b) {
    return estimates[a].velocity < estimates[b].velocity;
  });

  std::vector<std::size_t> parent(estimates.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  util::VTime verify_time = t + util::kMinute;
  {
    const std::size_t window = options.max_bin_size;
    for (std::size_t a = 0; a < ordered.size(); ++a) {
      for (std::size_t b = a + 1;
           b < ordered.size() && b - a <= window; ++b) {
        const std::size_t ia = ordered[a], ib = ordered[b];
        if (estimates[ib].velocity >
            estimates[ia].velocity * (1.0 + options.velocity_tolerance) + 0.5)
          break;
        if (find(ia) == find(ib)) continue;
        std::vector<std::pair<util::VTime, std::uint32_t>> merged;
        util::VTime when = verify_time;
        bool responsive = true;
        for (std::size_t round = 0;
             round < options.verification_rounds && responsive; ++round) {
          for (const std::size_t index : {ia, ib}) {
            const auto id =
                stack.fragment_id(estimates[index].address.v6(), when);
            if (!id) {
              responsive = false;
              break;
            }
            merged.emplace_back(when, *id);
            when += 500 * util::kMillisecond;
          }
        }
        verify_time = when + util::kSecond;
        if (!responsive) continue;
        const double cap =
            (estimates[ia].velocity + estimates[ib].velocity) * 0.75 + 4.0;
        if (monotonic_bounds_test(merged, kModulus, cap)) {
          parent[find(ia)] = find(ib);
          ++result.verified_pairs;
        }
      }
    }
  }

  std::map<std::size_t, std::vector<net::IpAddress>> groups;
  for (std::size_t i = 0; i < estimates.size(); ++i)
    groups[find(i)].push_back(estimates[i].address);
  for (auto& [root, addresses] : groups) {
    std::sort(addresses.begin(), addresses.end());
    result.alias_sets.push_back(std::move(addresses));
  }
  return result;
}

}  // namespace snmpv3fp::baselines
