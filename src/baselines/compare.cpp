#include "baselines/compare.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace snmpv3fp::baselines {

SetComparison compare_alias_sets(const AliasSets& ours,
                                 const AliasSets& theirs) {
  SetComparison result;
  result.ours_sets = ours.size();
  result.theirs_sets = theirs.size();

  std::set<std::vector<net::IpAddress>> ours_sorted;
  std::unordered_map<net::IpAddress, std::size_t> ours_by_address;
  for (std::size_t i = 0; i < ours.size(); ++i) {
    auto sorted = ours[i];
    std::sort(sorted.begin(), sorted.end());
    ours_sorted.insert(std::move(sorted));
    for (const auto& address : ours[i]) ours_by_address.emplace(address, i);
  }

  for (const auto& their_set : theirs) {
    auto sorted = their_set;
    std::sort(sorted.begin(), sorted.end());
    if (ours_sorted.count(sorted) > 0) ++result.exact_matches;
    const bool overlaps = std::any_of(
        their_set.begin(), their_set.end(), [&](const net::IpAddress& a) {
          return ours_by_address.count(a) > 0;
        });
    if (overlaps) ++result.partial_overlaps;
  }
  return result;
}

PairMetrics pair_metrics(
    const AliasSets& inferred,
    const std::function<std::int64_t(const net::IpAddress&)>& truth_of,
    const std::vector<net::IpAddress>& universe) {
  PairMetrics metrics;
  for (const auto& set : inferred) {
    if (set.size() < 2) continue;
    metrics.inferred_pairs += set.size() * (set.size() - 1) / 2;
    // Count correct pairs by grouping the set's addresses by truth device.
    std::map<std::int64_t, std::size_t> by_device;
    for (const auto& address : set) {
      const std::int64_t device = truth_of(address);
      if (device >= 0) ++by_device[device];
    }
    for (const auto& [device, count] : by_device)
      metrics.correct_pairs += count * (count - 1) / 2;
  }
  std::map<std::int64_t, std::size_t> truth_sizes;
  for (const auto& address : universe) {
    const std::int64_t device = truth_of(address);
    if (device >= 0) ++truth_sizes[device];
  }
  for (const auto& [device, count] : truth_sizes)
    metrics.truth_pairs += count * (count - 1) / 2;
  return metrics;
}

std::size_t dealiased_addresses(const AliasSets& sets) {
  std::size_t total = 0;
  for (const auto& set : sets)
    if (set.size() > 1) total += set.size();
  return total;
}

}  // namespace snmpv3fp::baselines
