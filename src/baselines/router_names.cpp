#include "baselines/router_names.hpp"

#include <algorithm>
#include <map>
#include <regex>

#include "util/strings.hpp"

namespace snmpv3fp::baselines {

namespace {

// The registrable zone for our synthetic names is the last four labels
// ("asN.<region>.example.net").
std::string domain_of(const std::string& hostname) {
  const auto labels = util::split(hostname, '.');
  if (labels.size() <= 4) return hostname;
  std::vector<std::string> tail(labels.end() - 4, labels.end());
  return util::join(tail, ".");
}

using Extractor = std::string (*)(const std::string&);

struct RuleScore {
  std::size_t parsed = 0;
  std::size_t groups = 0;
  std::size_t largest_group = 0;
};

RuleScore score_rule(const std::vector<const topo::PtrRecord*>& records,
                     Extractor rule) {
  std::map<std::string, std::size_t> groups;
  RuleScore score;
  for (const auto* record : records) {
    const std::string name = rule(record->name);
    if (name.empty()) continue;
    ++score.parsed;
    ++groups[name];
  }
  score.groups = groups.size();
  for (const auto& [name, count] : groups)
    score.largest_group = std::max(score.largest_group, count);
  return score;
}

}  // namespace

std::string extract_suffix_rule(const std::string& hostname) {
  // Drop the first (interface) label; the rest must still contain a
  // router-specific label, i.e. be longer than the registrable domain.
  const auto dot = hostname.find('.');
  if (dot == std::string::npos) return {};
  std::string rest = hostname.substr(dot + 1);
  if (util::split(rest, '.').size() <= 4) return {};  // nothing device-specific
  return rest;
}

std::string extract_dash_rule(const std::string& hostname) {
  // First label of the form "<router>-<ifname>" where ifname looks like an
  // interface (xe-0-0-1, ge-0-1-2, eth3, te1-0, hu0-0-0-1).
  static const std::regex kPattern(
      R"(^(.+)-(?:xe|ge|eth|te|hu)[0-9][0-9-]*$)",
      std::regex::ECMAScript | std::regex::optimize);
  const auto dot = hostname.find('.');
  if (dot == std::string::npos) return {};
  const std::string first = hostname.substr(0, dot);
  std::smatch match;
  if (!std::regex_match(first, match, kPattern)) return {};
  return match[1].str() + "." + hostname.substr(dot + 1);
}

RouterNamesResult run_router_names(const std::vector<topo::PtrRecord>& records,
                                   const RouterNamesOptions& options) {
  RouterNamesResult result;

  // Bucket PTR records by domain.
  std::map<std::string, std::vector<const topo::PtrRecord*>> by_domain;
  for (const auto& record : records)
    by_domain[domain_of(record.name)].push_back(&record);
  result.domains_total = by_domain.size();

  constexpr Extractor kRules[] = {&extract_suffix_rule, &extract_dash_rule};

  for (const auto& [domain, domain_records] : by_domain) {
    // Score both candidate rules; keep the best acceptable one.
    Extractor best = nullptr;
    RuleScore best_score;
    for (const Extractor rule : kRules) {
      const RuleScore score = score_rule(domain_records, rule);
      if (score.parsed <
          static_cast<std::size_t>(options.min_rule_support *
                                   static_cast<double>(domain_records.size())))
        continue;
      // A rule that throws (nearly) everything into one group has no
      // discriminating power (e.g. suffix-stripping "ip-a-b-c-d" names).
      if (score.groups <= 1 && score.parsed > 3) continue;
      if (score.largest_group > 256) continue;
      // Prefer rules that actually group interfaces together.
      const bool better =
          best == nullptr ||
          (score.parsed > score.groups &&
           best_score.parsed <= best_score.groups) ||
          score.parsed > best_score.parsed;
      if (better) {
        best = rule;
        best_score = score;
      }
    }
    if (best == nullptr) continue;
    ++result.domains_with_rule;

    std::map<std::string, std::vector<net::IpAddress>> groups;
    for (const auto* record : domain_records) {
      const std::string name = best(record->name);
      if (name.empty()) continue;
      ++result.records_parsed;
      groups[name].push_back(record->address);
    }
    for (auto& [name, addresses] : groups) {
      std::sort(addresses.begin(), addresses.end());
      addresses.erase(std::unique(addresses.begin(), addresses.end()),
                      addresses.end());
      result.alias_sets.push_back(std::move(addresses));
    }
  }
  return result;
}

}  // namespace snmpv3fp::baselines
