// Nmap-style active OS/vendor fingerprinting (paper §6.2.3).
//
// Nmap needs at least one open and one closed TCP port to assemble a
// signature; routers in the wild rarely oblige, which is the paper's
// headline comparison result (22.2k of 26.4k routers: no result at all).
// NmapLite reproduces the decision structure: probe the top management
// ports, build a signature from the replies, and match it against a
// database keyed by the simulated vendors' stack personalities; when the
// tests are incomplete it falls back to a best guess (often wrong).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/stack.hpp"

namespace snmpv3fp::baselines {

enum class NmapOutcome : std::uint8_t {
  kNoResult,    // no responsive TCP port: no fingerprint possible
  kExactMatch,  // complete tests, database hit
  kBestGuess,   // incomplete tests, low-confidence guess
};

struct NmapFingerprint {
  NmapOutcome outcome = NmapOutcome::kNoResult;
  std::string vendor;  // empty for kNoResult
};

struct NmapSignature {
  std::uint16_t window = 0;
  std::uint8_t options_signature = 0;
  std::uint8_t initial_ttl = 0;
  bool has_closed_port = false;
};

class NmapLite {
 public:
  // The fingerprint database is trained from the builtin vendor
  // personalities (Nmap's DB likewise holds known device signatures).
  NmapLite();

  NmapFingerprint fingerprint(sim::StackSimulator& stack,
                              const net::IpAddress& target, util::VTime now);

 private:
  struct DbEntry {
    std::string vendor;
    std::uint16_t window;
    std::uint8_t options_signature;
    std::uint8_t initial_ttl;
  };
  std::vector<DbEntry> database_;
};

}  // namespace snmpv3fp::baselines
