// MIDAR-style IP-ID alias resolution (Keys et al., ToN 2013; paper §5.3).
//
// Routers that stamp outgoing packets from one shared, sequential IP-ID
// counter reveal aliases: samples from two aliased interfaces interleave
// into a single monotonically increasing (mod 2^16) sequence. Like MIDAR,
// we run an estimation stage (velocity + monotonicity per target), bin
// candidates by velocity to avoid O(n^2) pairing, and verify candidate
// pairs with the Monotonic Bounds Test (MBT) on interleaved time series.
//
// The known failure modes reproduce too: random/zero IP-ID policies give
// no signal, and high-velocity counters wrap faster than the probing can
// sample, causing both false negatives and (without the MBT) merges.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stack.hpp"

namespace snmpv3fp::baselines {

struct MidarOptions {
  std::size_t estimation_samples = 8;
  util::VTime estimation_spacing = 2 * util::kSecond;
  std::size_t verification_rounds = 4;
  // Counters faster than this (IDs/s) wrap too quickly to track.
  double max_velocity = 1500.0;
  // Relative velocity tolerance for candidate pairing.
  double velocity_tolerance = 0.03;
  // Sliding-window width over the velocity-sorted target list.
  std::size_t max_bin_size = 24;
};

struct MidarResult {
  // Disjoint alias sets over the input targets (singletons included).
  std::vector<std::vector<net::IpAddress>> alias_sets;
  std::size_t monotonic_targets = 0;  // targets passing estimation
  std::size_t verified_pairs = 0;
};

MidarResult run_midar(sim::StackSimulator& stack,
                      const std::vector<net::IpAddress>& targets,
                      util::VTime start_time, const MidarOptions& options = {});

// The Monotonic Bounds Test on a merged (time, id) sequence with the given
// modulus; exposed for unit testing.
bool monotonic_bounds_test(
    const std::vector<std::pair<util::VTime, std::uint32_t>>& samples,
    std::uint64_t modulus, double max_velocity);

}  // namespace snmpv3fp::baselines
