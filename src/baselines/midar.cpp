#include "baselines/midar.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace snmpv3fp::baselines {

namespace {

struct TargetEstimate {
  net::IpAddress address;
  double velocity = 0.0;  // IDs per second
  bool usable = false;
  std::vector<std::pair<util::VTime, std::uint32_t>> samples;
};

// Unwraps a mod-`modulus` counter sequence; returns false if any forward
// step exceeds what `max_velocity` allows (i.e. not plausibly monotonic).
bool unwrap_monotonic(
    const std::vector<std::pair<util::VTime, std::uint32_t>>& samples,
    std::uint64_t modulus, double max_velocity, double* velocity_out) {
  if (samples.size() < 2) return false;
  double total_increment = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt =
        util::to_seconds(samples[i].first - samples[i - 1].first);
    if (dt <= 0.0) return false;
    const std::uint64_t diff =
        (samples[i].second + modulus - samples[i - 1].second) % modulus;
    // The step must be explainable by the velocity cap; a "backwards"
    // counter shows up as a near-modulus forward step.
    if (static_cast<double>(diff) > max_velocity * dt + 8.0) return false;
    total_increment += static_cast<double>(diff);
  }
  const double span =
      util::to_seconds(samples.back().first - samples.front().first);
  if (velocity_out != nullptr && span > 0.0)
    *velocity_out = total_increment / span;
  return true;
}

}  // namespace

bool monotonic_bounds_test(
    const std::vector<std::pair<util::VTime, std::uint32_t>>& samples,
    std::uint64_t modulus, double max_velocity) {
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return unwrap_monotonic(sorted, modulus, max_velocity, nullptr);
}

MidarResult run_midar(sim::StackSimulator& stack,
                      const std::vector<net::IpAddress>& targets,
                      util::VTime start_time, const MidarOptions& options) {
  MidarResult result;

  // ---- estimation stage ----------------------------------------------------
  std::vector<TargetEstimate> estimates;
  estimates.reserve(targets.size());
  util::VTime t = start_time;
  for (const auto& target : targets) {
    if (!target.is_v4()) continue;
    TargetEstimate estimate;
    estimate.address = target;
    for (std::size_t i = 0; i < options.estimation_samples; ++i) {
      const util::VTime when =
          t + static_cast<util::VTime>(i) * options.estimation_spacing;
      const auto reply = stack.icmp_echo(target.v4(), when);
      if (!reply) break;
      estimate.samples.emplace_back(when, reply->ip_id);
    }
    if (estimate.samples.size() == options.estimation_samples &&
        unwrap_monotonic(estimate.samples, 65536, options.max_velocity,
                         &estimate.velocity) &&
        estimate.velocity > 0.01) {
      estimate.usable = true;
      ++result.monotonic_targets;
    }
    estimates.push_back(std::move(estimate));
    t += util::kMillisecond;  // paced probing
  }

  // ---- candidate selection by velocity ---------------------------------------
  // Aliased interfaces share one counter, so their velocity estimates are
  // nearly identical. Sorting usable targets by velocity and testing each
  // against its next few neighbours within tolerance covers every target
  // in O(n * window) probes instead of O(n^2) (MIDAR's sliding-overlap
  // candidate stage plays this role at Internet scale).
  std::vector<std::size_t> ordered;
  for (std::size_t i = 0; i < estimates.size(); ++i)
    if (estimates[i].usable) ordered.push_back(i);
  std::sort(ordered.begin(), ordered.end(), [&](std::size_t a, std::size_t b) {
    return estimates[a].velocity < estimates[b].velocity;
  });

  // ---- verification: MBT on interleaved samples ------------------------------
  // Union-find over targets.
  std::vector<std::size_t> parent(estimates.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  util::VTime verify_time = t + util::kMinute;
  {
    const std::size_t window = options.max_bin_size;
    for (std::size_t a = 0; a < ordered.size(); ++a) {
      for (std::size_t b = a + 1;
           b < ordered.size() && b - a <= window; ++b) {
        const std::size_t ia = ordered[a], ib = ordered[b];
        // Outside the velocity tolerance: later neighbours only diverge
        // further, stop extending the window.
        if (estimates[ib].velocity >
            estimates[ia].velocity * (1.0 + options.velocity_tolerance) + 0.5)
          break;
        if (find(ia) == find(ib)) continue;
        // Interleave fresh samples A,B,A,B,... and require joint
        // monotonicity.
        std::vector<std::pair<util::VTime, std::uint32_t>> merged;
        util::VTime when = verify_time;
        bool responsive = true;
        for (std::size_t round = 0;
             round < options.verification_rounds && responsive; ++round) {
          for (const std::size_t index : {ia, ib}) {
            const auto reply =
                stack.icmp_echo(estimates[index].address.v4(), when);
            if (!reply) {
              responsive = false;
              break;
            }
            merged.emplace_back(when, reply->ip_id);
            when += 500 * util::kMillisecond;
          }
        }
        verify_time = when + util::kSecond;
        if (!responsive) continue;
        // Joint monotonicity must hold at roughly the shared counter's
        // own velocity; a generous cap lets offset counters slip through.
        const double cap =
            (estimates[ia].velocity + estimates[ib].velocity) * 0.75 + 4.0;
        if (monotonic_bounds_test(merged, 65536, cap)) {
          parent[find(ia)] = find(ib);
          ++result.verified_pairs;
        }
      }
    }
  }

  // ---- emit alias sets -------------------------------------------------------
  std::map<std::size_t, std::vector<net::IpAddress>> groups;
  for (std::size_t i = 0; i < estimates.size(); ++i)
    groups[find(i)].push_back(estimates[i].address);
  result.alias_sets.reserve(groups.size());
  for (auto& [root, addresses] : groups) {
    std::sort(addresses.begin(), addresses.end());
    result.alias_sets.push_back(std::move(addresses));
  }
  return result;
}

}  // namespace snmpv3fp::baselines
