// TTL-based router fingerprinting (Vanaubel et al., IMC 2013; paper §7.1).
//
// The tuple of *initial* TTLs inferred from different probe responses can
// separate some router platforms — but the signature universe is tiny and
// Huawei shares Cisco's (255), the paper's example of the method's
// ambiguity. We infer iTTL by rounding the observed remaining TTL up to
// the next canonical initial value {32, 64, 128, 255}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stack.hpp"

namespace snmpv3fp::baselines {

// Rounds an observed TTL up to the canonical initial TTL.
std::uint8_t infer_initial_ttl(std::uint8_t observed);

struct TtlFingerprint {
  bool responsive = false;
  std::uint8_t initial_ttl = 0;
  // All vendor classes consistent with the signature — usually several.
  std::vector<std::string> candidate_vendors;
};

TtlFingerprint ttl_fingerprint(sim::StackSimulator& stack,
                               const net::Ipv4& target, util::VTime now);

}  // namespace snmpv3fp::baselines
