// Alias-set comparison machinery for §5.2-§5.4's cross-technique analyses
// and for validating inferences against simulation ground truth.
#pragma once

#include <functional>
#include <vector>

#include "net/ip.hpp"

namespace snmpv3fp::baselines {

using AliasSets = std::vector<std::vector<net::IpAddress>>;

struct SetComparison {
  std::size_t exact_matches = 0;     // identical sets in both collections
  std::size_t partial_overlaps = 0;  // sets of `theirs` sharing >= 1 IP with ours
  std::size_t ours_sets = 0;
  std::size_t theirs_sets = 0;
};

// `exact` counts sets whose sorted address lists are identical; `partial`
// counts sets of `theirs` with at least one address inside any of `ours`
// (the paper's §5.2 methodology).
SetComparison compare_alias_sets(const AliasSets& ours, const AliasSets& theirs);

// Pairwise precision/recall of inferred alias sets against ground truth:
// a pair of addresses is correct iff both map to the same truth device.
struct PairMetrics {
  std::size_t inferred_pairs = 0;
  std::size_t correct_pairs = 0;
  std::size_t truth_pairs = 0;  // pairs achievable over the probed universe
  double precision() const {
    return inferred_pairs == 0
               ? 1.0
               : static_cast<double>(correct_pairs) /
                     static_cast<double>(inferred_pairs);
  }
  double recall() const {
    return truth_pairs == 0 ? 1.0
                            : static_cast<double>(correct_pairs) /
                                  static_cast<double>(truth_pairs);
  }
};

// `truth_of` maps an address to a device id (or a negative value when the
// address is unknown). `universe` restricts truth pairs to addresses the
// technique had any chance to see.
PairMetrics pair_metrics(
    const AliasSets& inferred,
    const std::function<std::int64_t(const net::IpAddress&)>& truth_of,
    const std::vector<net::IpAddress>& universe);

// Count of addresses inside non-singleton sets (de-aliased addresses),
// used by §5.4's combined-coverage computation.
std::size_t dealiased_addresses(const AliasSets& sets);

}  // namespace snmpv3fp::baselines
