#include "topo/vendor.hpp"

#include <cstdlib>

#include "net/registry.hpp"

namespace snmpv3fp::topo {

std::string_view to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kRouter: return "router";
    case DeviceKind::kCpe: return "cpe";
    case DeviceKind::kServer: return "server";
  }
  return "?";
}

namespace {

VendorProfile router(std::string name, std::uint32_t pen) {
  VendorProfile p;
  p.name = std::move(name);
  p.enterprise_pen = pen;
  p.typical_kind = DeviceKind::kRouter;
  // Routers keep decent clocks and reboot rarely.
  p.clock_skew_ppm_sigma = 4.0;
  p.mean_days_between_reboots = 300.0;
  p.tcp_service_open = 0.08;  // mostly firewalled (paper §6.2.3)
  return p;
}

VendorProfile cpe(std::string name, std::uint32_t pen) {
  VendorProfile p;
  p.name = std::move(name);
  p.enterprise_pen = pen;
  p.typical_kind = DeviceKind::kCpe;
  p.engine_id_policy = {.mac = 0.70, .ipv4 = 0.08, .octets = 0.08,
                        .non_conforming = 0.14};
  p.snmpv3_responsive = 0.35;
  p.clock_skew_ppm_sigma = 500.0;  // cheap clocks: drives Figure 8's spread
  p.mean_days_between_reboots = 15.0;
  p.ipid_policy = IpIdPolicy::kPerInterface;
  p.initial_ttl = 64;
  p.tcp_service_open = 0.02;
  p.amplifier = 0.006;
  p.mean_extra_interfaces = 0.05;
  p.dual_stack = 0.20;
  return p;
}

}  // namespace

const std::vector<VendorProfile>& builtin_router_vendors() {
  static const std::vector<VendorProfile> vendors = [] {
    std::vector<VendorProfile> v;

    // ---- Cisco: dominant router vendor; MAC engine IDs; the constant
    // engine-ID bug (CSCts87275) lives here.
    auto cisco = router("Cisco", net::kPenCisco);
    cisco.engine_id_policy = {.mac = 0.78, .ipv4 = 0.10, .text = 0.04,
                              .octets = 0.05, .non_conforming = 0.03};
    cisco.snmpv3_responsive = 0.22;  // v2c config implicitly enables v3
    cisco.constant_engine_id_bug = 0.035;
    cisco.cloned_engine_id = 0.004;
    cisco.amplifier = 0.005;
    cisco.ipid_policy = IpIdPolicy::kSharedCounter;
    cisco.initial_ttl = 255;
    cisco.mean_extra_interfaces = 7.0;
    cisco.dual_stack = 0.20;
    v.push_back(cisco);

    // ---- Huawei: strong in Asia/EU, absent in North America.
    auto huawei = router("Huawei", net::kPenHuawei);
    huawei.engine_id_policy = {.mac = 0.63, .ipv4 = 0.15, .text = 0.02,
                               .octets = 0.12, .enterprise = 0.05,
                               .non_conforming = 0.03};
    huawei.snmpv3_responsive = 0.25;
    huawei.cloned_engine_id = 0.006;
    huawei.amplifier = 0.004;
    huawei.ipid_policy = IpIdPolicy::kSharedCounter;
    huawei.initial_ttl = 255;  // same iTTL signature as Cisco (paper §7.1)
    huawei.mean_extra_interfaces = 6.0;
    huawei.dual_stack = 0.25;
    v.push_back(huawei);

    // ---- Net-SNMP software routers/appliances (white-box, Linux-based).
    auto netsnmp = router("Net-SNMP", net::kPenNetSnmp);
    netsnmp.engine_id_policy = {.text = 0.05, .octets = 0.03, .net_snmp = 0.92};
    netsnmp.snmpv3_responsive = 0.42;
    netsnmp.clock_skew_ppm_sigma = 12.0;
    netsnmp.ipid_policy = IpIdPolicy::kRandom;
    netsnmp.initial_ttl = 64;
    netsnmp.tcp_service_open = 0.45;  // hosts often run ssh
    netsnmp.mean_extra_interfaces = 1.2;
    netsnmp.dual_stack = 0.20;
    v.push_back(netsnmp);

    // ---- Juniper: requires explicit per-interface enablement, hence less
    // visible (paper §6.2.1).
    auto juniper = router("Juniper", net::kPenJuniper);
    juniper.engine_id_policy = {.mac = 0.60, .ipv4 = 0.28, .text = 0.05,
                                .octets = 0.07};
    juniper.snmpv3_responsive = 0.09;
    juniper.ipid_policy = IpIdPolicy::kSharedCounter;
    juniper.initial_ttl = 64;
    juniper.mean_extra_interfaces = 9.0;
    juniper.dual_stack = 0.40;
    v.push_back(juniper);

    // ---- H3C.
    auto h3c = router("H3C", net::kPenH3c);
    h3c.engine_id_policy = {.mac = 0.60, .ipv4 = 0.15, .octets = 0.15,
                            .enterprise = 0.10};
    h3c.snmpv3_responsive = 0.22;
    h3c.initial_ttl = 255;
    h3c.mean_extra_interfaces = 5.0;
    h3c.dual_stack = 0.10;
    v.push_back(h3c);

    // ---- The long tail of router vendors.
    auto oneaccess = router("OneAccess", 13191);
    oneaccess.engine_id_policy = {.mac = 0.80, .octets = 0.20};
    oneaccess.snmpv3_responsive = 0.30;
    oneaccess.mean_extra_interfaces = 2.0;
    v.push_back(oneaccess);

    auto ruijie = router("Ruijie", 4881);
    ruijie.engine_id_policy = {.mac = 0.70, .ipv4 = 0.15, .octets = 0.15};
    ruijie.snmpv3_responsive = 0.26;
    ruijie.initial_ttl = 255;
    ruijie.mean_extra_interfaces = 3.0;
    v.push_back(ruijie);

    auto brocade = router("Brocade", net::kPenBrocade);
    brocade.engine_id_policy = {.mac = 0.85, .octets = 0.15};
    brocade.snmpv3_responsive = 0.22;
    brocade.mean_extra_interfaces = 6.0;
    brocade.dual_stack = 0.15;
    v.push_back(brocade);

    auto adtran = router("Adtran", 664);
    adtran.engine_id_policy = {.mac = 0.75, .ipv4 = 0.10, .octets = 0.15};
    adtran.snmpv3_responsive = 0.26;
    adtran.mean_extra_interfaces = 1.5;
    v.push_back(adtran);

    auto ambit = router("Ambit", 6889);
    ambit.engine_id_policy = {.mac = 0.80, .non_conforming = 0.20};
    ambit.snmpv3_responsive = 0.30;
    ambit.mean_extra_interfaces = 1.0;
    v.push_back(ambit);

    auto nokia = router("Nokia", 6527);
    nokia.engine_id_policy = {.mac = 0.40, .ipv4 = 0.45, .octets = 0.15};
    nokia.snmpv3_responsive = 0.08;
    nokia.mean_extra_interfaces = 8.0;
    nokia.dual_stack = 0.45;
    v.push_back(nokia);

    auto mikrotik = router("MikroTik", 14988);
    mikrotik.engine_id_policy = {.mac = 0.55, .text = 0.15, .octets = 0.30};
    mikrotik.snmpv3_responsive = 0.19;
    mikrotik.initial_ttl = 64;
    mikrotik.mean_extra_interfaces = 2.0;
    v.push_back(mikrotik);

    auto zte = router("ZTE", 3902);
    zte.engine_id_policy = {.mac = 0.65, .octets = 0.20, .non_conforming = 0.15};
    zte.snmpv3_responsive = 0.19;
    zte.mean_extra_interfaces = 4.0;
    v.push_back(zte);

    auto arista = router("Arista", 30065);
    arista.engine_id_policy = {.mac = 0.85, .octets = 0.15};
    arista.snmpv3_responsive = 0.06;
    arista.initial_ttl = 64;
    arista.mean_extra_interfaces = 8.0;
    arista.dual_stack = 0.25;
    v.push_back(arista);

    auto extreme = router("Extreme", 1916);
    extreme.engine_id_policy = {.mac = 0.80, .octets = 0.20};
    extreme.snmpv3_responsive = 0.15;
    extreme.mean_extra_interfaces = 4.0;
    v.push_back(extreme);

    return v;
  }();
  return vendors;
}

const std::vector<VendorProfile>& builtin_cpe_vendors() {
  static const std::vector<VendorProfile> vendors = [] {
    std::vector<VendorProfile> v;
    // Broadcom reference designs show the SoC vendor's OUI, not the box
    // brand — which is why "Broadcom" ranks so high in Figure 11.
    v.push_back(cpe("Broadcom", 4413));
    v.push_back(cpe("Thomson", 2863));
    v.push_back(cpe("Netgear", 4526));
    v.push_back(cpe("Ambit", 6889));
    v.push_back(cpe("Sagemcom", 4329));
    v.push_back(cpe("TP-Link", 11863));
    v.push_back(cpe("AVM", 872));
    v.push_back(cpe("Zyxel", 890));
    v.push_back(cpe("D-Link", 171));
    v.push_back(cpe("Ubiquiti", 41112));
    v.push_back(cpe("Calix", 6321));
    return v;
  }();
  return vendors;
}

const std::vector<VendorProfile>& builtin_server_vendors() {
  static const std::vector<VendorProfile> vendors = [] {
    std::vector<VendorProfile> v;
    VendorProfile netsnmp;
    netsnmp.name = "Net-SNMP";
    netsnmp.enterprise_pen = net::kPenNetSnmp;
    netsnmp.typical_kind = DeviceKind::kServer;
    netsnmp.engine_id_policy = {.text = 0.06, .octets = 0.02, .net_snmp = 0.90,
                                .non_conforming = 0.02};
    netsnmp.snmpv3_responsive = 0.60;
    netsnmp.clock_skew_ppm_sigma = 12.0;
    netsnmp.mean_days_between_reboots = 120.0;
    netsnmp.ipid_policy = IpIdPolicy::kRandom;
    netsnmp.initial_ttl = 64;
    netsnmp.tcp_service_open = 0.55;
    netsnmp.mean_extra_interfaces = 0.1;
    netsnmp.dual_stack = 0.20;
    v.push_back(netsnmp);
    return v;
  }();
  return vendors;
}

const VendorProfile& vendor_profile(std::string_view name) {
  for (const auto* table :
       {&builtin_router_vendors(), &builtin_cpe_vendors(),
        &builtin_server_vendors()}) {
    for (const auto& profile : *table)
      if (profile.name == name) return profile;
  }
  std::abort();  // unknown vendor name is a programming error
}

}  // namespace snmpv3fp::topo
