#include "topo/datasets.hpp"

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace snmpv3fp::topo {

namespace {

using util::Rng;

RouterDataset export_family(const World& world, const DatasetOptions& options,
                            net::Family family, std::string name,
                            bool with_alias_sets) {
  Rng rng(options.seed ^ util::fnv1a64(name));
  RouterDataset dataset;
  dataset.name = std::move(name);
  for (const auto& device : world.devices) {
    if (!device.itdk_eligible) continue;
    if (!rng.chance(options.router_coverage)) continue;
    std::vector<net::IpAddress> seen;
    for (const auto& itf : device.interfaces) {
      if (family == net::Family::kIpv4 && itf.v4 &&
          rng.chance(options.interface_coverage))
        seen.emplace_back(*itf.v4);
      if (family == net::Family::kIpv6 && itf.v6 &&
          rng.chance(options.interface_coverage))
        seen.emplace_back(*itf.v6);
    }
    if (seen.empty()) continue;
    dataset.addresses.insert(dataset.addresses.end(), seen.begin(), seen.end());
    if (!with_alias_sets) continue;
    // Like MIDAR/Speedtrap, the curated dataset groups only a minority of
    // routers into non-singleton alias sets; the rest remain singletons.
    if (seen.size() > 1 && rng.chance(options.alias_grouping_rate)) {
      dataset.alias_sets.push_back(seen);
    } else {
      for (const auto& addr : seen) dataset.alias_sets.push_back({addr});
    }
  }
  std::sort(dataset.addresses.begin(), dataset.addresses.end());
  dataset.addresses.erase(
      std::unique(dataset.addresses.begin(), dataset.addresses.end()),
      dataset.addresses.end());
  return dataset;
}

}  // namespace

RouterDataset export_itdk_v4(const World& world, const DatasetOptions& options) {
  return export_family(world, options, net::Family::kIpv4, "ITDK",
                       /*with_alias_sets=*/true);
}

RouterDataset export_itdk_v6(const World& world, const DatasetOptions& options) {
  return export_family(world, options, net::Family::kIpv6, "ITDK-Speedtrap",
                       /*with_alias_sets=*/true);
}

RouterDataset export_atlas(const World& world, const DatasetOptions& options) {
  // Atlas traceroutes see routers through probe vantage points: thinner and
  // biased toward well-connected boxes; combine both families.
  DatasetOptions thin = options;
  thin.router_coverage = options.router_coverage * 0.25;
  thin.interface_coverage = options.interface_coverage * 0.55;
  RouterDataset v4 = export_family(world, thin, net::Family::kIpv4,
                                   "RIPE Atlas", /*with_alias_sets=*/false);
  RouterDataset v6 = export_family(world, thin, net::Family::kIpv6,
                                   "RIPE Atlas", /*with_alias_sets=*/false);
  v4.addresses.insert(v4.addresses.end(), v6.addresses.begin(),
                      v6.addresses.end());
  std::sort(v4.addresses.begin(), v4.addresses.end());
  return v4;
}

std::vector<net::IpAddress> export_hitlist_v6(const World& world,
                                              std::uint64_t seed) {
  Rng rng(seed ^ 0x6f1a2b3cULL);
  std::vector<net::IpAddress> out;
  for (const auto& device : world.devices) {
    // The hitlist aggregates traceroute targets over a year: routers are
    // covered well, and a large CPE corpus (routed last hops) dominates.
    const double coverage =
        device.kind == DeviceKind::kRouter ? 0.85 : 0.40;
    for (const auto& itf : device.interfaces)
      if (itf.v6 && rng.chance(coverage)) out.emplace_back(*itf.v6);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<PtrRecord> export_ptr_records(const World& world) {
  std::vector<PtrRecord> out;
  for (const auto& device : world.devices) {
    for (const auto& itf : device.interfaces) {
      if (itf.ptr_name.empty()) continue;
      if (itf.v4) out.push_back({net::IpAddress(*itf.v4), itf.ptr_name});
      // Some dual-stack interfaces publish the same hostname under
      // ip6.arpa — that minority is what gives rDNS its dual-stack
      // resolution power (and why it found far fewer dual-stack aliases
      // than SNMPv3 in the paper's §5.2).
      if (itf.v6 && util::fnv1a64(itf.ptr_name) % 16 == 0)
        out.push_back({net::IpAddress(*itf.v6), itf.ptr_name});
    }
  }
  return out;
}

net::AsTable build_as_table(const World& world) {
  net::AsTable table;
  for (const auto& as : world.ases) {
    net::AsInfo info{as.asn, as.region};
    table.add_v4(as.v4_prefix, info);
    table.add_v6(as.v6_prefix, info);
  }
  return table;
}

std::vector<net::IpAddress> dataset_union(
    const std::vector<const RouterDataset*>& datasets) {
  std::set<net::IpAddress> merged;
  for (const auto* dataset : datasets)
    merged.insert(dataset->addresses.begin(), dataset->addresses.end());
  return {merged.begin(), merged.end()};
}

}  // namespace snmpv3fp::topo
