// Procedural world backend: O(responders) topology at census scale.
//
// The paper's campaigns cover the whole routable IPv4 space (~3.7B
// probes), but topo::World materializes every device up front, which caps
// simulated sweeps far below that. ProceduralWorld derives a device the
// first time a probe arrives at its address — vendor, engine ID, reboot
// history, clock skew and fault bugs are all pure functions of a seeded
// hash of (world seed, scenario region, device ordinal) — so a
// billion-address sweep allocates state only for the addresses that
// actually answer.
//
// The address space is a list of disjoint scenario regions, each a v4
// prefix (or v6 aliased-/64 block) with one behavior layer:
//
//   kPlain          sparse routers: k responders per 2^block_bits block
//   kNatPool        every address answers; 2^pool_bits-address pools share
//                   one device (one engine ID) — NAT frontends
//   kLoadBalancer   sparse VIPs fronting several backend engines
//   kAnycast        sparse addresses answered by one of `sites` global
//                   sites; the serving site re-resolves each epoch
//   kCgnatChurn     every address answers, but the subscriber (device
//                   identity) behind it re-randomizes each churn epoch
//   kAliasedPrefix  v6 /64s where one server answers every IID
//   kMiddlebox      sparse boxes answering with mangled (short,
//                   non-conforming) engine IDs and zeroed timers
//
// Everything is rank-computable: a device's global index (which is
// wire-visible through the agent's report counter) is derived in O(1)
// from its region's prefix sums, so lazy derivation and materialize()
// produce byte-identical Devices — a procedural world constrained to a
// small prefix yields a bit-identical PipelineResult to its materialized
// twin (tests/test_worlds.cpp). docs/WORLDS.md walks the whole scheme.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topo/world_model.hpp"

namespace snmpv3fp::topo {

enum class ScenarioKind : std::uint8_t {
  kPlain,
  kNatPool,
  kLoadBalancer,
  kAnycast,
  kCgnatChurn,
  kAliasedPrefix,
  kMiddlebox,
};

std::string_view to_string(ScenarioKind kind);

// One contiguous slice of address space with one behavior layer. v4 kinds
// use `v4`; kAliasedPrefix carves /64 pools from `v6_base`. Regions must
// not overlap (validated at construction).
struct ScenarioRegion {
  ScenarioKind kind = ScenarioKind::kPlain;

  // ---- v4 kinds ----
  net::Prefix4 v4{net::Ipv4(10, 0, 0, 0), 8};
  // Sparse kinds (kPlain/kLoadBalancer/kAnycast/kMiddlebox): exactly
  // `responders_per_block` responders per 2^block_bits-address block, at
  // hash-chosen offsets. Density = responders_per_block / 2^block_bits.
  std::uint32_t block_bits = 8;
  std::uint32_t responders_per_block = 4;
  // kNatPool: pool size = 2^pool_bits addresses sharing one device.
  std::uint32_t pool_bits = 4;
  // kLoadBalancer: backend engines per VIP.
  std::uint32_t backends = 3;
  // kAnycast: global sites; each address resolves to one per epoch.
  std::uint32_t sites = 4;

  // ---- kAliasedPrefix ----
  net::Ipv6 v6_base{};              // base of the aliased block
  std::uint32_t v6_prefix_len = 60; // 2^(64-len) aliased /64 pools
  std::uint32_t v6_iids_per_pool = 4;  // enumerated (hitlist) IIDs per /64

  // Vendor market the region draws from (generator regional shares).
  std::string market_region = "EU";
};

struct ProceduralConfig {
  std::uint64_t seed = 20210416;
  std::vector<ScenarioRegion> regions;
  // Per-view responder cache capacity (devices). Sized so a census sweep's
  // working set fits; eviction only costs re-derivation, never bits.
  std::size_t cache_capacity = std::size_t{1} << 16;

  // Engine-state fault rates (generator semantics), applied to every kind
  // except the ones that force their own engine state (load balancer,
  // anycast, middlebox).
  double empty_engine_id_rate = 0.0002;
  double zero_time_rate = 0.030;
  double future_time_rate = 0.0008;
  double time_jitter_rate = 0.08;

  // A small multi-layer world exercising every scenario kind; the tests'
  // workhorse and the equivalence fixture.
  static ProceduralConfig tiny();
  // A plain-region sweep covering at least `addresses` targets (power-of-
  // two prefix), at census-like responder density (~1/2^14).
  static ProceduralConfig census(std::uint64_t addresses);
};

class ProceduralWorld final : public WorldModel {
 public:
  explicit ProceduralWorld(ProceduralConfig config);

  // ---- WorldModel ----
  std::unique_ptr<DeviceView> open_view() const override;
  void apply_churn(std::uint64_t epoch_seed) override;
  std::vector<net::IpAddress> campaign_targets(
      net::Family family, std::uint64_t churn_seed) const override;
  std::vector<net::IpAddress> hitlist_v6(std::uint64_t seed) const override;
  World materialize() const override;

  // ---- introspection ----
  const ProceduralConfig& config() const { return config_; }
  // Total derivable devices / addressable probe surface, O(regions).
  std::uint64_t device_count() const { return total_devices_; }
  std::uint64_t address_count(net::Family family) const;
  // Monotone stamp bumped by apply_churn; open views use it to drop stale
  // cached identities.
  std::uint64_t epoch_stamp() const { return epoch_stamp_; }

  // Derives the device behind `address` in the current epoch (nullopt for
  // dead space). Pure: same (config, epoch, address) -> same Device bytes.
  std::optional<Device> derive(const net::IpAddress& address) const;

 private:
  friend class ProceduralView;

  struct RegionInfo {
    ScenarioRegion spec;
    std::uint64_t device_base = 0;   // global index of the region's device 0
    std::uint64_t device_count = 0;
    // v4 kinds: [v4_base, v4_base + v4_size).
    std::uint64_t v4_base = 0;
    std::uint64_t v4_size = 0;
    // kAliasedPrefix: [v6_base64, v6_base64 + pool_count) in /64 units.
    std::uint64_t v6_base64 = 0;
    std::uint64_t pool_count = 0;
    // Vendor market resolved once: parallel weight/profile arrays.
    std::vector<double> vendor_weights;
    std::vector<const VendorProfile*> vendor_profiles;
  };

  struct Resolved {
    std::uint32_t region = 0;
    std::uint64_t member = 0;  // device ordinal within the region
  };

  // Address -> (region, member); nullopt when nothing answers there.
  std::optional<Resolved> resolve(const net::IpAddress& address) const;
  // The hash-chosen responder offsets of one block, sorted ascending.
  std::vector<std::uint32_t> block_offsets(std::uint32_t region,
                                           std::uint64_t block) const;
  // The enumerated (hitlist-visible) IIDs of one aliased /64 pool; the
  // first is the pool device's primary address.
  std::vector<net::Ipv6> pool_iids(std::uint32_t region,
                                   std::uint64_t member) const;
  Device derive_device(std::uint32_t region, std::uint64_t member) const;
  // The canonical (first-interface) address of a device — the cache/
  // checkpoint key that resolves back to the same (region, member).
  net::IpAddress primary_address(std::uint32_t region,
                                 std::uint64_t member) const;

  ProceduralConfig config_;
  std::vector<RegionInfo> regions_;
  std::vector<std::uint32_t> v4_order_;  // region indices sorted by v4_base
  std::vector<std::uint32_t> v6_order_;  // aliased regions sorted by base64
  std::uint64_t total_devices_ = 0;
  std::uint64_t epoch_seed_ = 0;
  std::uint64_t epoch_stamp_ = 0;
};

}  // namespace snmpv3fp::topo
