// Vendor profiles: how each manufacturer behaves on the wire.
//
// The paper's measurements hinge on vendor-specific implementation choices:
// which engine-ID format an agent emits (Figure 5), whether SNMPv3 answers
// come back at all, the Cisco constant-engine-ID bug (Figure 7), IP-ID
// counter policy (MIDAR baseline), initial TTL and open TCP services (Nmap
// baseline). A VendorProfile bundles those policies; the builtin table is
// calibrated so the simulated Internet reproduces the paper's mixtures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snmpv3fp::topo {

enum class DeviceKind : std::uint8_t {
  kRouter,  // core/edge network router, many interfaces
  kCpe,     // customer premises equipment, one (churning) address
  kServer,  // host running a software agent (Net-SNMP)
};

std::string_view to_string(DeviceKind kind);

// How a device generates engine IDs (weights; normalized at use).
struct EngineIdPolicy {
  double mac = 0.0;             // RFC 3411 format 3, first interface MAC
  double ipv4 = 0.0;            // format 1, one of the device's addresses
  double text = 0.0;            // format 4, hostname-derived text
  double octets = 0.0;          // format 5, random bytes
  double enterprise = 0.0;      // format >= 128, vendor scheme
  double net_snmp = 0.0;        // the Net-SNMP PEN-8072 scheme
  double non_conforming = 0.0;  // conformance bit clear, raw skewed bytes
};

// IPv4 IP-ID assignment policy (drives the MIDAR-style baseline).
enum class IpIdPolicy : std::uint8_t {
  kSharedCounter,   // one sequential counter across all interfaces
  kPerInterface,    // sequential but independent per interface
  kRandom,          // random per packet
  kZero,            // constant zero with DF set
};

struct VendorProfile {
  std::string name;
  std::uint32_t enterprise_pen = 0;
  DeviceKind typical_kind = DeviceKind::kRouter;

  EngineIdPolicy engine_id_policy;

  // Fraction of this vendor's devices whose SNMPv3 engine answers
  // unsolicited discovery from the open Internet (rest: disabled or ACLed).
  double snmpv3_responsive = 0.5;

  // Fraction of responsive devices afflicted by a constant-engine-ID bug
  // (all afflicted devices share one engine ID — paper §4.3's
  // 0x800000090300000000000000 with >181k IPs).
  double constant_engine_id_bug = 0.0;

  // Fraction of devices whose engine ID is cloned from a vendor-wide config
  // template (misconfiguration; engine IDs reused across devices).
  double cloned_engine_id = 0.0;

  // Fraction answering each request with multiple copies (paper §8).
  double amplifier = 0.0;

  // Timekeeping: stddev of engine-clock skew in parts-per-million. Large
  // values push devices over the 10 s last-reboot consistency threshold.
  double clock_skew_ppm_sigma = 5.0;

  // Mean time between reboots, in days (drives engine boots and Figure 13).
  double mean_days_between_reboots = 240.0;

  // Stack personality for the baselines.
  IpIdPolicy ipid_policy = IpIdPolicy::kSharedCounter;
  std::uint8_t initial_ttl = 255;
  // Probability a TCP management service (ssh/telnet) is reachable — what
  // Nmap needs for a fingerprint.
  double tcp_service_open = 0.05;

  // Interface count distribution for routers of this vendor:
  // 1 + geometric-ish tail with this mean extra interfaces.
  double mean_extra_interfaces = 3.0;

  // Probability that a router of this vendor is dual-stack.
  double dual_stack = 0.1;
};

// The builtin vendor tables. Shares are per-population weights used by the
// generator; see generator.cpp for the regional mixing that produces the
// paper's Figure 15.
const std::vector<VendorProfile>& builtin_router_vendors();
const std::vector<VendorProfile>& builtin_cpe_vendors();
const std::vector<VendorProfile>& builtin_server_vendors();

// Looks up a profile by name across all builtin tables; aborts on unknown
// names (programming error, not input error).
const VendorProfile& vendor_profile(std::string_view name);

}  // namespace snmpv3fp::topo
