#include "topo/world_model.hpp"

#include <algorithm>

#include "topo/datasets.hpp"

namespace snmpv3fp::topo {

WorldCacheStats& WorldCacheStats::operator+=(const WorldCacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  resident += other.resident;
  return *this;
}

void DeviceView::warm(const std::vector<net::IpAddress>& addresses) {
  for (const auto& address : addresses) device_at(address);
}

namespace {

class MaterializedView final : public DeviceView {
 public:
  explicit MaterializedView(const World& world) : world_(world) {}

  const Device* device_at(const net::IpAddress& address) override {
    return world_.device_at(address);
  }

  // Nothing to persist: every device already exists, so warm() stays the
  // base-class no-op-by-lookup and cached_addresses() stays empty.

 private:
  const World& world_;
};

}  // namespace

std::unique_ptr<DeviceView> make_materialized_view(const World& world) {
  return std::make_unique<MaterializedView>(world);
}

std::unique_ptr<DeviceView> MaterializedWorldModel::open_view() const {
  return make_materialized_view(*world_);
}

void MaterializedWorldModel::apply_churn(std::uint64_t epoch_seed) {
  world_->rebind_churning_devices(epoch_seed);
}

std::vector<net::IpAddress> MaterializedWorldModel::campaign_targets(
    net::Family family, std::uint64_t churn_seed) const {
  // The union the campaign orchestrator historically computed inline:
  // probe every address assigned in either epoch (probing known-dead space
  // only burns simulated time), without churning a copy of the world.
  std::vector<net::IpAddress> targets = world_->addresses(family);
  const auto later = world_->addresses_after_churn(churn_seed, family);
  targets.insert(targets.end(), later.begin(), later.end());
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  return targets;
}

std::vector<net::IpAddress> MaterializedWorldModel::hitlist_v6(
    std::uint64_t seed) const {
  return export_hitlist_v6(*world_, seed);
}

}  // namespace snmpv3fp::topo
