// The world abstraction the simulation probes through.
//
// A WorldModel is anything that can answer "which device owns this
// address?" plus the handful of bulk queries the campaign layer needs
// (target enumeration, the IPv6 hitlist, churn between scan epochs). Two
// implementations exist: the materialized topo::World (every device built
// up front — adapted here by MaterializedWorldModel) and the procedural
// backend (topo/procedural.hpp), which derives devices on demand from a
// seeded hash so memory stays O(responders) at census scale.
//
// Probing goes through a DeviceView: a per-consumer handle (one per
// sim::Fabric, i.e. one per scan shard) that may cache lazily derived
// devices. Views are NOT thread-safe — each shard owns its own — and the
// pointer a view returns stays valid only until its next device_at call.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/ip.hpp"
#include "topo/world.hpp"

namespace snmpv3fp::topo {

// Responder-cache accounting for lazy backends. Execution-only telemetry:
// nothing downstream of the fabric reads it, so cache sizing never changes
// an output bit. Materialized views report all-zero stats.
struct WorldCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    // devices derived on demand
  std::uint64_t evictions = 0;
  std::size_t resident = 0;    // devices currently cached

  WorldCacheStats& operator+=(const WorldCacheStats& other);
  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

// One consumer's window onto a world model's device state.
class DeviceView {
 public:
  virtual ~DeviceView() = default;

  // The device answering at `address` in the current epoch, or nullptr for
  // dead space. The pointer is owned by the view and is invalidated by the
  // next device_at call (lazy views may evict), so callers must finish
  // with the device before looking up another.
  virtual const Device* device_at(const net::IpAddress& address) = 0;

  virtual WorldCacheStats cache_stats() const { return {}; }

  // Checkpoint support: the primary addresses of every cached device, most
  // recently used first. warm() re-derives them (least recently used
  // first) so a restored view reproduces the snapshot's cache contents and
  // eviction order. Materialized views have nothing to persist.
  virtual std::vector<net::IpAddress> cached_addresses() const { return {}; }
  virtual void warm(const std::vector<net::IpAddress>& addresses);
};

class WorldModel {
 public:
  virtual ~WorldModel() = default;

  // Opens an independent probing handle. Each sim::Fabric (one per scan
  // shard) holds its own; views must not be shared across threads.
  virtual std::unique_ptr<DeviceView> open_view() const = 0;

  // Advances the model to the next address epoch (the DHCP/CGNAT churn the
  // campaign applies between its two scans). Open views observe the new
  // epoch on their next lookup.
  virtual void apply_churn(std::uint64_t epoch_seed) = 0;

  // Every address of `family` assigned in the current OR the post-churn
  // epoch, sorted and deduplicated — the campaign's default target list.
  // Subsumes World::addresses + World::addresses_after_churn without the
  // caller pre-enumerating or deep-copying anything.
  virtual std::vector<net::IpAddress> campaign_targets(
      net::Family family, std::uint64_t churn_seed) const = 0;

  // The IPv6 hitlist (topo/datasets.hpp semantics), pre-alias-filtering.
  virtual std::vector<net::IpAddress> hitlist_v6(std::uint64_t seed) const = 0;

  // Ground truth: the full World at the current epoch. Lazy backends build
  // it by enumerating every derivable device — bit-identical to what their
  // views answer probe by probe (tests/test_worlds.cpp enforces this).
  virtual World materialize() const = 0;
};

// Adapts a caller-owned World. apply_churn mutates the adapted world (the
// rebind the campaign historically performed itself).
class MaterializedWorldModel final : public WorldModel {
 public:
  explicit MaterializedWorldModel(World& world) : world_(&world) {}

  std::unique_ptr<DeviceView> open_view() const override;
  void apply_churn(std::uint64_t epoch_seed) override;
  std::vector<net::IpAddress> campaign_targets(
      net::Family family, std::uint64_t churn_seed) const override;
  std::vector<net::IpAddress> hitlist_v6(std::uint64_t seed) const override;
  World materialize() const override { return *world_; }

 private:
  World* world_;
};

// A zero-overhead view over an already-materialized World.
std::unique_ptr<DeviceView> make_materialized_view(const World& world);

}  // namespace snmpv3fp::topo
