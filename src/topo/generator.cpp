#include "topo/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <optional>

#include "net/registry.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace snmpv3fp::topo {

namespace {

using net::Ipv4;
using net::Ipv6;
using net::MacAddress;
using snmp::EngineId;
using util::Rng;
using util::VTime;

// ---------------------------------------------------------------------------
// Regional structure
// ---------------------------------------------------------------------------

struct RegionSpec {
  std::string_view name;
  double as_weight;        // share of tail ASes
  double size_multiplier;  // scales per-AS router counts
  std::uint8_t v4_octet_base;  // /16 blocks carved from base..base+span-1 /8s
  std::uint8_t v4_octet_span;
};

// AS-count weights chosen so region router totals land near Figure 15's
// (EU 134k, NA 97k, AS 81k, SA 22k, AF 5k, OC 5k) once size multipliers
// are applied. The /8 pools are disjoint, globally routable ranges.
constexpr RegionSpec kRegions[] = {
    {"EU", 0.37, 1.15, 128, 24},  // 128.0.0.0 .. 151.255.255.255
    {"NA", 0.25, 1.05, 64, 36},   // 64/8 .. 99/8
    {"AS", 0.23, 1.00, 200, 24},  // 200/8 .. 223/8
    {"SA", 0.08, 0.80, 32, 28},   // 32/8 .. 59/8
    {"AF", 0.04, 0.35, 102, 8},   // 102/8 .. 109/8
    {"OC", 0.04, 0.35, 110, 8},   // 110/8 .. 117/8
};

const RegionSpec& region_spec(std::string_view name) {
  for (const auto& r : kRegions)
    if (r.name == name) return r;
  std::abort();
}

std::size_t region_index(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kRegions); ++i)
    if (kRegions[i].name == name) return i;
  std::abort();
}

// Observed router-vendor market share per region, per Figure 15 (heatmap)
// calibrated so global totals approximate Figure 12 (Cisco ~240k,
// Huawei ~52k of ~347k routers).
struct RegionalShare {
  std::string_view vendor;
  double share[6];  // EU, NA, AS, SA, AF, OC
};

constexpr RegionalShare kRouterShares[] = {
    {"Cisco",     {0.62, 0.75, 0.55, 0.60, 0.60, 0.70}},
    {"Huawei",    {0.09, 0.00, 0.14, 0.10, 0.12, 0.005}},
    {"Net-SNMP",  {0.05, 0.08, 0.04, 0.08, 0.07, 0.10}},
    {"Juniper",   {0.045, 0.085, 0.030, 0.050, 0.050, 0.090}},
    {"H3C",       {0.005, 0.001, 0.050, 0.010, 0.010, 0.001}},
    {"OneAccess", {0.015, 0.002, 0.002, 0.010, 0.020, 0.005}},
    {"Ruijie",    {0.002, 0.001, 0.030, 0.005, 0.010, 0.001}},
    {"Brocade",   {0.008, 0.020, 0.004, 0.010, 0.010, 0.020}},
    {"Adtran",    {0.003, 0.025, 0.001, 0.005, 0.005, 0.010}},
    {"Ambit",     {0.004, 0.008, 0.004, 0.010, 0.010, 0.005}},
    {"Nokia",     {0.005, 0.005, 0.003, 0.005, 0.005, 0.005}},
    {"MikroTik",  {0.005, 0.003, 0.002, 0.015, 0.015, 0.005}},
    {"ZTE",       {0.001, 0.000, 0.008, 0.005, 0.010, 0.001}},
    {"Arista",    {0.004, 0.008, 0.001, 0.002, 0.001, 0.008}},
    {"Extreme",   {0.003, 0.005, 0.001, 0.002, 0.002, 0.005}},
};

// ---------------------------------------------------------------------------
// PTR naming
// ---------------------------------------------------------------------------

constexpr std::string_view kCities[] = {
    "fra", "ams", "lon", "par", "mad", "waw", "nyc", "chi", "dal",
    "sea", "lax", "mia", "sin", "hkg", "tok", "bom", "syd", "akl",
    "gru", "bog", "scl", "jnb", "cai", "lag"};

constexpr std::string_view kIfPrefixes[] = {"xe-0-0-", "ge-0-1-", "eth",
                                            "te1-", "hu0-0-0-"};

// Naming schemes (paper §5.2 / Luckie et al.): 0 and 1 embed a stable
// router name; 2 embeds only the IP (no alias information); -1 = none.
std::string ptr_name(int scheme, const std::string& router_name,
                     std::string_view if_name, const Ipv4& v4,
                     const std::string& domain) {
  switch (scheme) {
    case 0:
      return std::string(if_name) + "." + router_name + "." + domain;
    case 1:
      return router_name + "-" + std::string(if_name) + "." + domain;
    case 2: {
      std::string ip = v4.to_string();
      std::replace(ip.begin(), ip.end(), '.', '-');
      return "ip-" + ip + "." + domain;
    }
    default:
      return {};
  }
}

// ---------------------------------------------------------------------------
// Engine state synthesis
// ---------------------------------------------------------------------------

// The paper's Cisco constant-engine-ID bug value (§4.3), byte for byte:
// 0x800000090300000000000000 — enterprise 9 (Cisco), format byte 3 (MAC)
// followed by SEVEN zero bytes (one more than a MAC holds; the strict
// classifier therefore degrades it to Octets, and fingerprinting falls
// back on the enterprise number, which still says Cisco).
EngineId constant_bug_engine_id() {
  return EngineId(
      util::from_hex("800000090300000000000000").value());
}

// Payloads reused verbatim across vendors — the "promiscuous" filter prey.
util::Bytes promiscuous_payload(Rng& rng) {
  static const util::Bytes kTemplates[] = {
      {0x64, 0x65, 0x66, 0x61, 0x75, 0x6c, 0x74},          // "default"
      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff},                // all-ones MAC
      {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc},                // doc example
  };
  return kTemplates[rng.next_below(std::size(kTemplates))];
}

struct EngineStateRates {
  double empty_engine_id;
  double zero_time;
  double future_time;
  double time_jitter;
  double promiscuous = 0.004;
  double unregistered_mac = 0.003;
  double short_nonconforming = 0.30;  // within the non-conforming class
  double private_ipv4_engine = 0.25;  // within the IPv4-format class
};

MacAddress vendor_mac(Rng& rng, const VendorProfile& vendor,
                      bool unregistered) {
  if (unregistered) {
    // An OUI absent from the registry; locally-administered style.
    const std::uint32_t oui = 0x020000 | (rng.next() & 0x00ff00) | 0x42;
    return MacAddress::from_oui(oui, static_cast<std::uint32_t>(rng.next()) &
                                         0xffffff);
  }
  const auto ouis = net::OuiRegistry::embedded().ouis_of(vendor.name);
  // Vendors missing from the OUI registry fall back to Intel-style NICs.
  const std::uint32_t oui =
      ouis.empty() ? 0x001b21 : ouis[rng.next_below(ouis.size())];
  return MacAddress::from_oui(oui,
                              static_cast<std::uint32_t>(rng.next()) & 0xffffff);
}

EngineId synthesize_engine_id(Rng& rng, const Device& device,
                              const VendorProfile& vendor,
                              const EngineStateRates& rates,
                              const std::string& router_name) {
  const auto& p = vendor.engine_id_policy;
  if (rng.chance(rates.promiscuous)) {
    const auto payload = promiscuous_payload(rng);
    return EngineId::make_octets(vendor.enterprise_pen, payload);
  }
  const std::vector<double> weights = {p.mac,        p.ipv4,     p.text,
                                       p.octets,     p.enterprise, p.net_snmp,
                                       p.non_conforming};
  switch (rng.weighted_index(weights)) {
    case 0: {  // MAC
      // Per the lab experiment (§6.2.1): the MAC of the "first" interface.
      MacAddress mac = device.interfaces.front().mac;
      if (rng.chance(rates.unregistered_mac))
        mac = vendor_mac(rng, vendor, /*unregistered=*/true);
      return EngineId::make_mac(vendor.enterprise_pen, mac);
    }
    case 1: {  // IPv4
      if (rng.chance(rates.private_ipv4_engine)) {
        // Management loopback in RFC 1918 space: unroutable filter food.
        return EngineId::make_ipv4(
            vendor.enterprise_pen,
            Ipv4(10, static_cast<std::uint8_t>(rng.next()),
                 static_cast<std::uint8_t>(rng.next()),
                 static_cast<std::uint8_t>(rng.next())));
      }
      for (const auto& itf : device.interfaces)
        if (itf.v4) return EngineId::make_ipv4(vendor.enterprise_pen, *itf.v4);
      return EngineId::make_ipv4(vendor.enterprise_pen,
                                 Ipv4(10, 0, 0, 1));  // v6-only device
    }
    case 2:  // Text: the device's FQDN — unique-ish, as in the wild
      return EngineId::make_text(vendor.enterprise_pen,
                                 router_name.empty() ? "snmp-agent"
                                                     : router_name);
    case 3: {  // Octets: random bytes, Hamming weight ~0.5 (Figure 6)
      util::Bytes payload;
      const std::size_t len = 6 + rng.next_below(7);
      for (std::size_t i = 0; i < len; ++i)
        payload.push_back(static_cast<std::uint8_t>(rng.next()));
      return EngineId::make_octets(vendor.enterprise_pen, payload);
    }
    case 4: {  // enterprise-specific format
      util::Bytes raw;
      util::append_be(raw, (vendor.enterprise_pen & 0x7fffffffu) | 0x80000000u,
                      4);
      raw.push_back(static_cast<std::uint8_t>(128 + rng.next_below(4)));
      const std::size_t len = 4 + rng.next_below(8);
      for (std::size_t i = 0; i < len; ++i)
        raw.push_back(static_cast<std::uint8_t>(rng.next()));
      return EngineId(std::move(raw));
    }
    case 5:  // Net-SNMP scheme
      return EngineId::make_netsnmp(rng.next());
    default: {  // non-conforming: raw bytes, positively-skewed Hamming weight
      std::size_t len = 8 + rng.next_below(5);
      if (rng.chance(rates.short_nonconforming)) len = 1 + rng.next_below(3);
      util::Bytes raw;
      for (std::size_t i = 0; i < len; ++i) {
        std::uint8_t b = 0;
        for (int bit = 0; bit < 8; ++bit)
          b = static_cast<std::uint8_t>((b << 1) | (rng.chance(0.35) ? 1 : 0));
        raw.push_back(b);
      }
      return EngineId::make_nonconforming(raw);
    }
  }
}

// Uptime draw calibrated against Figure 13: ~20% rebooted within a month,
// ~50% within ~3.5 months, ~75% within a year (router baseline, scaled by
// the vendor's mean time between reboots).
double draw_uptime_days(Rng& rng, double mtbr_days) {
  const double scale = mtbr_days / 300.0;
  if (rng.chance(0.72)) return rng.exponential(100.0 * scale);
  return rng.uniform(0.0, 2500.0 * scale);
}

void synthesize_reboot_history(Rng& rng, Device& device, double mtbr_days,
                               VTime horizon) {
  const double age_days = rng.uniform(360.0, 3600.0);
  const double uptime_days = std::min(draw_uptime_days(rng, mtbr_days),
                                      age_days);
  const VTime last_reboot = -util::from_seconds(uptime_days * 86400.0);
  device.reboots.push_back(last_reboot);
  // Forward reboots over the measurement horizon (causes the
  // "inconsistent engine boots" filter drops between scans).
  VTime t = 0;
  while (true) {
    t += util::from_seconds(rng.exponential(mtbr_days * 86400.0));
    if (t >= horizon) break;
    device.reboots.push_back(t);
  }
  const double prior = age_days / std::max(mtbr_days, 1.0);
  device.boots_before_history = 1 + static_cast<std::uint32_t>(
                                        std::max(0.0, rng.normal(prior,
                                                                 prior * 0.2)));
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

class Generator {
 public:
  explicit Generator(const WorldConfig& config)
      : config_(config), rng_(config.seed) {
    rates_.empty_engine_id = config.empty_engine_id_rate;
    rates_.zero_time = config.zero_time_rate;
    rates_.future_time = config.future_time_rate;
    rates_.time_jitter = config.time_jitter_rate;
  }

  World build() {
    make_ases();
    populate_routers();
    populate_extra_devices();
    world_.reindex();
    return std::move(world_);
  }

 private:
  static constexpr VTime kHorizon = 30 * util::kDay;

  void make_ases() {
    std::vector<std::size_t> region_block(std::size(kRegions), 0);
    std::uint32_t next_asn = 174;
    auto add_as = [&](const std::string& region, std::size_t router_target,
                      const std::string& primary = {}) {
      const auto& spec = region_spec(region);
      const std::size_t ri = region_index(region);
      AutonomousSystem as;
      as.asn = next_asn;
      next_asn += 1 + static_cast<std::uint32_t>(rng_.next_below(37));
      as.region = region;
      const std::size_t block = region_block[ri]++;
      const std::size_t max_blocks = std::size_t{spec.v4_octet_span} * 256;
      assert(block < max_blocks);
      (void)max_blocks;
      as.v4_prefix = net::Prefix4(
          Ipv4(static_cast<std::uint8_t>(spec.v4_octet_base + block / 256),
               static_cast<std::uint8_t>(block % 256), 0, 0),
          16);
      as.v6_prefix = {0x2001, static_cast<std::uint16_t>(as.asn & 0xffff)};
      as.domain = "as" + std::to_string(as.asn) + "." +
                  util::to_lower(region) + ".example.net";
      as.naming_scheme = rng_.chance(config_.rdns_as_coverage)
                             ? static_cast<int>(rng_.next_below(3))
                             : -1;
      world_.ases.push_back(std::move(as));
      router_targets_.push_back(router_target);
      pinned_primary_.push_back(primary);
    };

    // Figure 16's mega networks first, at full per-AS fidelity / scale.
    for (const auto& mega : config_.mega_ases)
      add_as(mega.region,
             std::max<std::size_t>(
                 1, static_cast<std::size_t>(static_cast<double>(mega.routers) /
                                             config_.mega_scale)),
             mega.primary_vendor);

    // Heavy-tailed per-AS router counts: P(X >= x) = x^-alpha.
    for (std::size_t i = 0; i < config_.tail_as_count; ++i) {
      const std::size_t ri = rng_.weighted_index(region_weights());
      const auto& spec = kRegions[ri];
      double u;
      do {
        u = rng_.uniform01();
      } while (u <= 0.0);
      double count = std::pow(u, -1.0 / config_.pareto_alpha);
      count *= spec.size_multiplier;
      const auto routers = std::min<std::size_t>(
          config_.max_tail_as_routers,
          static_cast<std::size_t>(count));
      add_as(std::string(spec.name), std::max<std::size_t>(1, routers));
    }
    world_.v4_cursor.assign(world_.ases.size(), 0);
  }

  static const std::vector<double>& region_weights() {
    static const std::vector<double> weights = [] {
      std::vector<double> w;
      for (const auto& r : kRegions) w.push_back(r.as_weight);
      return w;
    }();
    return weights;
  }

  std::vector<double> vendor_weights_for_region(std::size_t ri) const {
    std::vector<double> weights;
    weights.reserve(std::size(kRouterShares));
    for (const auto& row : kRouterShares) {
      const auto& profile = vendor_profile(row.vendor);
      // Observed share / responsiveness = deployment weight.
      weights.push_back(row.share[ri] /
                        std::max(profile.snmpv3_responsive, 0.02));
    }
    return weights;
  }

  void populate_routers() {
    for (std::size_t as_index = 0; as_index < world_.ases.size(); ++as_index) {
      auto& as = world_.ases[as_index];
      const std::size_t ri = region_index(as.region);
      const auto weights = vendor_weights_for_region(ri);
      Rng as_rng = rng_.fork("as" + std::to_string(as.asn));

      // Vendor dominance target (Figures 17/18): group SA/AS/AF runs less
      // homogeneous networks than OC/NA/EU.
      const bool low_dominance_region =
          as.region == "SA" || as.region == "AS" || as.region == "AF";
      const double u = as_rng.uniform01();
      const double dominance =
          low_dominance_region ? 1.0 - 0.75 * std::pow(u, 1.8)
                               : 1.0 - 0.55 * std::pow(u, 2.5);
      std::size_t primary = as_rng.weighted_index(weights);
      if (!pinned_primary_[as_index].empty()) {
        for (std::size_t vi = 0; vi < std::size(kRouterShares); ++vi)
          if (kRouterShares[vi].vendor == pinned_primary_[as_index]) primary = vi;
      }

      const std::size_t count = router_targets_[as_index];
      for (std::size_t i = 0; i < count; ++i) {
        std::size_t vi = primary;
        if (!as_rng.chance(dominance)) vi = as_rng.weighted_index(weights);
        const auto& profile = vendor_profile(kRouterShares[vi].vendor);
        make_device(as_rng, as_index, profile, DeviceKind::kRouter,
                    /*itdk_eligible=*/true);
      }
    }
  }

  void populate_extra_devices() {
    if (config_.populations.empty()) return;
    // Eyeball ASes host the CPE/server populations.
    std::vector<std::size_t> eyeballs;
    for (std::size_t i = config_.mega_ases.size(); i < world_.ases.size(); ++i)
      if (rng_.chance(config_.eyeball_as_fraction)) eyeballs.push_back(i);
    if (eyeballs.empty()) eyeballs.push_back(world_.ases.size() - 1);

    for (const auto& pop : config_.populations) {
      const auto& profile = vendor_profile(pop.vendor);
      const auto count = static_cast<std::size_t>(pop.count /
                                                  config_.device_scale);
      Rng pop_rng = rng_.fork("pop" + pop.vendor);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t as_index =
            eyeballs[pop_rng.next_below(eyeballs.size())];
        // Population devices (CPE, servers, enterprise switches) expose one
        // or two addresses regardless of the vendor's router profile.
        make_device(pop_rng, as_index, profile, pop.kind, pop.itdk_eligible,
                    /*extra_interfaces_override=*/0.15);
      }
    }
  }

  void make_device(Rng& rng, std::size_t as_index, const VendorProfile& vendor,
                   DeviceKind kind, bool itdk_eligible,
                   std::optional<double> extra_interfaces_override = {}) {
    auto& as = world_.ases[as_index];
    Device device;
    device.index = static_cast<DeviceIndex>(world_.devices.size());
    device.kind = kind;
    device.vendor = &vendor;
    device.as_index = static_cast<std::uint32_t>(as_index);
    device.itdk_eligible = itdk_eligible && kind == DeviceKind::kRouter;

    // ---- interfaces ----
    const double mean_extra =
        extra_interfaces_override.value_or(vendor.mean_extra_interfaces);
    std::size_t extra = 0;
    if (mean_extra > 0.0)
      extra = static_cast<std::size_t>(rng.exponential(mean_extra));
    const bool dual = rng.chance(vendor.dual_stack);
    if (dual && kind == DeviceKind::kRouter) extra = 1 + extra * 3;  // big boxes
    extra = std::min<std::size_t>(extra, 120);
    const std::size_t if_count = 1 + extra;

    // ~2% of dual-stack routers are observed v6-only (no v4 reachability).
    const bool v6_only = dual && rng.chance(0.08);

    const std::string router_name =
        std::string(kCities[rng.next_below(std::size(kCities))]) + "-" +
        (kind == DeviceKind::kRouter ? "cr" : "host") +
        std::to_string(rng.next_below(kind == DeviceKind::kRouter ? 400000
                                                                  : 4000000));
    const auto if_prefix = kIfPrefixes[rng.next_below(std::size(kIfPrefixes))];

    for (std::size_t i = 0; i < if_count; ++i) {
      Interface itf;
      itf.mac = vendor_mac(rng, vendor, /*unregistered=*/false);
      const bool want_v4 = !v6_only && (i == 0 || rng.chance(0.95));
      if (want_v4) {
        const std::uint64_t offset =
            world_.v4_cursor[as_index]++ % as.v4_prefix.size();
        itf.v4 = as.v4_prefix.at(offset);
      }
      if (dual && (v6_only || rng.chance(0.75))) {
        std::array<std::uint16_t, 8> groups{};
        groups[0] = as.v6_prefix[0];
        groups[1] = as.v6_prefix[1];
        for (int g = 4; g < 8; ++g)
          groups[g] = static_cast<std::uint16_t>(rng.next());
        itf.v6 = net::Ipv6::from_groups(groups);
      }
      if (as.naming_scheme >= 0 && itf.v4 &&
          rng.chance(config_.ptr_record_coverage)) {
        itf.ptr_name =
            ptr_name(as.naming_scheme, router_name,
                     std::string(if_prefix) + std::to_string(i), *itf.v4,
                     as.domain);
      }
      device.interfaces.push_back(std::move(itf));
    }

    // ---- SNMP engine ----
    device.snmpv3_enabled = rng.chance(vendor.snmpv3_responsive);
    // Most responsive engines got v3 implicitly by configuring v2c
    // (lab finding, §6.2.1).
    device.snmpv2_enabled = device.snmpv3_enabled || rng.chance(0.05);
    device.clock_skew_ppm = rng.normal(0.0, vendor.clock_skew_ppm_sigma);
    // A minority of engines keep time badly regardless of vendor class
    // (no discipline on the engine-time counter) — the long tail of
    // Figure 8 and a large share of the "inconsistent last reboot" drops.
    if (rng.chance(0.22)) device.clock_skew_ppm *= 30.0;
    if (rng.chance(rates_.time_jitter))
      device.time_jitter_s = rng.uniform(-30.0, 30.0);
    const double mtbr =
        vendor.mean_days_between_reboots * std::exp(rng.normal(0.0, 0.4));
    synthesize_reboot_history(rng, device, mtbr, kHorizon);

    if (rng.chance(vendor.constant_engine_id_bug)) {
      device.engine_id = constant_bug_engine_id();
    } else if (rng.chance(vendor.cloned_engine_id)) {
      device.engine_id = clone_template(vendor);
    } else {
      device.engine_id = synthesize_engine_id(rng, device, vendor, rates_,
                                              router_name + "." + as.domain);
    }
    device.empty_engine_id_bug = rng.chance(rates_.empty_engine_id);
    device.zero_time_bug = rng.chance(rates_.zero_time);
    device.future_time_bug = rng.chance(rates_.future_time);

    device.amplification = 1;
    if (rng.chance(vendor.amplifier))
      device.amplification = 2 + static_cast<int>(rng.next_below(4));
    if (device.snmpv3_enabled && config_.mega_amplifier_inverse > 0 &&
        rng.next_below(config_.mega_amplifier_inverse) == 0)
      device.amplification = 500 + static_cast<int>(rng.next_below(1500));

    device.churns = kind == DeviceKind::kCpe && rng.chance(config_.cpe_churn_rate);

    // Aliased /64s: some server deployments answer on every interface
    // identifier; the hitlist methodology must exclude them (§4.1.1).
    if (kind == DeviceKind::kServer && device.v6_count() > 0 &&
        rng.chance(config_.aliased_prefix_rate))
      device.answers_whole_v6_prefix = true;

    // Load-balancer VIPs (paper §9 future work): a sliver of server
    // addresses front several real engines.
    if (kind == DeviceKind::kServer && rng.chance(config_.load_balancer_rate)) {
      const std::size_t backends = 1 + rng.next_below(3);
      for (std::size_t b = 0; b < backends; ++b)
        device.backend_engines.push_back(EngineId::make_netsnmp(rng.next()));
    }
    // NAT frontends: the same engine is also reachable via an address
    // translated in a *different* network.
    if (kind == DeviceKind::kRouter && device.snmpv3_enabled &&
        rng.chance(config_.nat_frontend_rate) && world_.ases.size() > 1) {
      std::size_t other = rng.next_below(world_.ases.size());
      if (other == as_index) other = (other + 1) % world_.ases.size();
      auto& frontend_as = world_.ases[other];
      Interface frontend;
      frontend.mac = vendor_mac(rng, vendor, /*unregistered=*/false);
      const std::uint64_t offset =
          world_.v4_cursor[other]++ % frontend_as.v4_prefix.size();
      frontend.v4 = frontend_as.v4_prefix.at(offset);
      device.interfaces.push_back(std::move(frontend));
    }

    // ---- stack personality ----
    device.ipid_policy = vendor.ipid_policy;
    // Most current software randomizes the IP-ID even on vendors whose
    // classic stacks used a shared counter — only a minority of deployed
    // boxes still give MIDAR a usable signal (paper §5.3-§5.4).
    if (device.ipid_policy == IpIdPolicy::kSharedCounter && rng.chance(0.78))
      device.ipid_policy = IpIdPolicy::kRandom;
    device.initial_ttl = vendor.initial_ttl;
    device.tcp_open = rng.chance(vendor.tcp_service_open);

    as.devices.push_back(device.index);
    world_.devices.push_back(std::move(device));
  }

  EngineId clone_template(const VendorProfile& vendor) {
    auto& templates = clone_templates_[vendor.name];
    if (templates.size() < 3) {
      templates.push_back(EngineId::make_mac(
          vendor.enterprise_pen,
          vendor_mac(rng_, vendor, /*unregistered=*/false)));
    }
    return templates[rng_.next_below(templates.size())];
  }

  const WorldConfig& config_;
  Rng rng_;
  EngineStateRates rates_{};
  World world_;
  std::vector<std::size_t> router_targets_;
  std::vector<std::string> pinned_primary_;
  std::map<std::string, std::vector<EngineId>> clone_templates_;
};

}  // namespace

std::vector<std::pair<std::string, double>> router_vendor_weights(
    const std::string& region) {
  const std::size_t ri = region_index(region);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& row : kRouterShares)
    out.emplace_back(std::string(row.vendor), row.share[ri]);
  return out;
}

WorldConfig WorldConfig::full_internet() {
  WorldConfig config;
  config.seed = 20210416;
  config.router_scale = 12.0;
  config.mega_scale = 12.0;
  config.device_scale = 50.0;
  config.tail_as_count = 1900;
  config.mega_ases = {
      {"EU", 9400, "Huawei"}, {"EU", 9000, "Cisco"}, {"EU", 8900, "Cisco"},
      {"EU", 5200, "Huawei"},  {"AS", 7000, "Huawei"}, {"SA", 6400, "Cisco"},
      {"NA", 8000, "Cisco"},  {"NA", 6500, "Cisco"},  {"NA", 5600, "Cisco"},
      {"NA", 4600, ""},   // the mixed Cisco/Huawei/UNIX network: sampled
  };
  // Deployment counts (pre-scale) calibrated so that responsiveness x
  // filtering yields Figure 11's observed device mix.
  config.populations = {
      {"Net-SNMP", DeviceKind::kServer, 3.0e6, false},
      {"Cisco", DeviceKind::kRouter, 4.2e6, false},     // enterprise switches
      {"Broadcom", DeviceKind::kCpe, 3.1e6, false},
      {"Thomson", DeviceKind::kCpe, 3.1e6, false},
      {"Netgear", DeviceKind::kCpe, 2.2e6, false},
      {"Huawei", DeviceKind::kRouter, 0.9e6, false},    // enterprise gear
      {"Ambit", DeviceKind::kCpe, 0.8e6, false},
      {"MikroTik", DeviceKind::kRouter, 0.9e6, false},
      {"Sagemcom", DeviceKind::kCpe, 0.6e6, false},
      {"TP-Link", DeviceKind::kCpe, 0.55e6, false},
      {"Ubiquiti", DeviceKind::kRouter, 0.65e6, false},
      {"Zyxel", DeviceKind::kCpe, 0.45e6, false},
      {"AVM", DeviceKind::kCpe, 0.38e6, false},
      {"D-Link", DeviceKind::kCpe, 0.33e6, false},
      {"ZTE", DeviceKind::kCpe, 0.36e6, false},
      {"H3C", DeviceKind::kRouter, 0.1e6, false},
      {"Ruijie", DeviceKind::kRouter, 0.3e6, false},
  };
  return config;
}

WorldConfig WorldConfig::router_focus() {
  WorldConfig config;
  config.seed = 20210417;
  config.router_scale = 5.0;
  config.mega_scale = 2.0;
  config.device_scale = 1000.0;
  config.tail_as_count = 4500;
  config.mega_ases = {
      {"EU", 9400, "Huawei"}, {"EU", 9000, "Cisco"}, {"EU", 8900, "Cisco"},
      {"EU", 5200, "Huawei"},  {"AS", 7000, "Huawei"}, {"SA", 6400, "Cisco"},
      {"NA", 8000, "Cisco"},  {"NA", 6500, "Cisco"},  {"NA", 5600, "Cisco"},
      {"NA", 4600, ""},   // the mixed Cisco/Huawei/UNIX network: sampled
  };
  // A thin long-tail population keeps the "device vs router" distinction
  // meaningful without dominating runtime.
  config.populations = {
      {"Net-SNMP", DeviceKind::kServer, 3.0e6, false},
      {"Broadcom", DeviceKind::kCpe, 3.1e6, false},
  };
  return config;
}

WorldConfig WorldConfig::tiny() {
  WorldConfig config;
  config.seed = 7;
  config.router_scale = 200.0;
  config.mega_scale = 200.0;
  config.device_scale = 2000.0;
  config.tail_as_count = 60;
  config.mega_ases = {{"EU", 9400, ""}, {"NA", 8000, ""}};
  config.populations = {
      {"Net-SNMP", DeviceKind::kServer, 3.0e6, false},
      {"Broadcom", DeviceKind::kCpe, 3.1e6, false},
      {"Thomson", DeviceKind::kCpe, 3.1e6, false},
  };
  return config;
}

World generate_world(const WorldConfig& config) {
  return Generator(config).build();
}

}  // namespace snmpv3fp::topo
