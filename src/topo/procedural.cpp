#include "topo/procedural.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <list>
#include <stdexcept>
#include <unordered_map>

#include "net/registry.hpp"
#include "topo/datasets.hpp"
#include "topo/generator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace snmpv3fp::topo {

namespace {

using net::Ipv4;
using net::Ipv6;
using net::MacAddress;
using snmp::EngineId;
using util::hash_combine;
using util::Rng;
using util::VTime;

// Derivation-domain salts: every lazily derived quantity draws from its own
// Rng seeded by a hash chain (world seed, salt, region, ordinal), so the
// streams never collide and — crucially — never touch the fabric's RNG.
constexpr std::uint64_t kBlockSalt = 0xb10c0f5e75eed011ull;   // responder offsets
constexpr std::uint64_t kDeviceSalt = 0xdeb1ce5eed5a1701ull;  // device identity
constexpr std::uint64_t kSiteSalt = 0xa11cca575a170002ull;    // anycast sites
constexpr std::uint64_t kIidSalt = 0x11d5a170ddf00d03ull;     // aliased-/64 IIDs

constexpr VTime kHorizon = 30 * util::kDay;

// Engine-state synthesis below mirrors topo/generator.cpp's calibration
// (the rates and draw shapes that reproduce the paper's figures) but runs
// against an independent per-device seed; the two backends share numbers,
// not RNG streams.
constexpr double kPromiscuousRate = 0.004;
constexpr double kUnregisteredMacRate = 0.003;
constexpr double kShortNonconformingRate = 0.30;
constexpr double kPrivateIpv4EngineRate = 0.25;

void check(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(std::string("ProceduralWorld: ") + message);
}

bool is_sparse(ScenarioKind kind) {
  return kind == ScenarioKind::kPlain || kind == ScenarioKind::kLoadBalancer ||
         kind == ScenarioKind::kAnycast || kind == ScenarioKind::kMiddlebox;
}

bool is_v4_kind(ScenarioKind kind) {
  return kind != ScenarioKind::kAliasedPrefix;
}

DeviceKind device_kind_of(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kCgnatChurn:
      return DeviceKind::kCpe;
    case ScenarioKind::kLoadBalancer:
    case ScenarioKind::kAliasedPrefix:
      return DeviceKind::kServer;
    default:
      return DeviceKind::kRouter;
  }
}

MacAddress vendor_mac(Rng& rng, const VendorProfile& vendor, bool unregistered) {
  if (unregistered) {
    const std::uint32_t oui = 0x020000 | (rng.next() & 0x00ff00) | 0x42;
    return MacAddress::from_oui(
        oui, static_cast<std::uint32_t>(rng.next()) & 0xffffff);
  }
  const auto ouis = net::OuiRegistry::embedded().ouis_of(vendor.name);
  const std::uint32_t oui =
      ouis.empty() ? 0x001b21 : ouis[rng.next_below(ouis.size())];
  return MacAddress::from_oui(oui,
                              static_cast<std::uint32_t>(rng.next()) & 0xffffff);
}

// The paper's Cisco constant-engine-ID bug value (§4.3).
EngineId constant_bug_engine_id() {
  return EngineId(util::from_hex("800000090300000000000000").value());
}

util::Bytes promiscuous_payload(Rng& rng) {
  static const util::Bytes kTemplates[] = {
      {0x64, 0x65, 0x66, 0x61, 0x75, 0x6c, 0x74},  // "default"
      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff},        // all-ones MAC
      {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc},        // doc example
  };
  return kTemplates[rng.next_below(std::size(kTemplates))];
}

// Raw skewed-Hamming-weight bytes for non-conforming IDs (Figure 6 tail).
util::Bytes skewed_bytes(Rng& rng, std::size_t len) {
  util::Bytes raw;
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t b = 0;
    for (int bit = 0; bit < 8; ++bit)
      b = static_cast<std::uint8_t>((b << 1) | (rng.chance(0.35) ? 1 : 0));
    raw.push_back(b);
  }
  return raw;
}

EngineId synthesize_engine_id(Rng& rng, const Device& device,
                              const VendorProfile& vendor,
                              const std::string& router_name) {
  const auto& p = vendor.engine_id_policy;
  if (rng.chance(kPromiscuousRate))
    return EngineId::make_octets(vendor.enterprise_pen,
                                 promiscuous_payload(rng));
  const std::vector<double> weights = {p.mac,    p.ipv4,       p.text,
                                       p.octets, p.enterprise, p.net_snmp,
                                       p.non_conforming};
  switch (rng.weighted_index(weights)) {
    case 0: {  // MAC: the first interface's, per the lab finding (§6.2.1)
      MacAddress mac = device.interfaces.front().mac;
      if (rng.chance(kUnregisteredMacRate))
        mac = vendor_mac(rng, vendor, /*unregistered=*/true);
      return EngineId::make_mac(vendor.enterprise_pen, mac);
    }
    case 1: {  // IPv4
      if (rng.chance(kPrivateIpv4EngineRate)) {
        return EngineId::make_ipv4(
            vendor.enterprise_pen,
            Ipv4(10, static_cast<std::uint8_t>(rng.next()),
                 static_cast<std::uint8_t>(rng.next()),
                 static_cast<std::uint8_t>(rng.next())));
      }
      for (const auto& itf : device.interfaces)
        if (itf.v4) return EngineId::make_ipv4(vendor.enterprise_pen, *itf.v4);
      return EngineId::make_ipv4(vendor.enterprise_pen, Ipv4(10, 0, 0, 1));
    }
    case 2:
      return EngineId::make_text(
          vendor.enterprise_pen,
          router_name.empty() ? "snmp-agent" : router_name);
    case 3: {  // Octets: random bytes, Hamming weight ~0.5
      util::Bytes payload;
      const std::size_t len = 6 + rng.next_below(7);
      for (std::size_t i = 0; i < len; ++i)
        payload.push_back(static_cast<std::uint8_t>(rng.next()));
      return EngineId::make_octets(vendor.enterprise_pen, payload);
    }
    case 4: {  // enterprise-specific format
      util::Bytes raw;
      util::append_be(raw, (vendor.enterprise_pen & 0x7fffffffu) | 0x80000000u,
                      4);
      raw.push_back(static_cast<std::uint8_t>(128 + rng.next_below(4)));
      const std::size_t len = 4 + rng.next_below(8);
      for (std::size_t i = 0; i < len; ++i)
        raw.push_back(static_cast<std::uint8_t>(rng.next()));
      return EngineId(std::move(raw));
    }
    case 5:
      return EngineId::make_netsnmp(rng.next());
    default: {  // non-conforming
      std::size_t len = 8 + rng.next_below(5);
      if (rng.chance(kShortNonconformingRate)) len = 1 + rng.next_below(3);
      return EngineId::make_nonconforming(skewed_bytes(rng, len));
    }
  }
}

double draw_uptime_days(Rng& rng, double mtbr_days) {
  const double scale = mtbr_days / 300.0;
  if (rng.chance(0.72)) return rng.exponential(100.0 * scale);
  return rng.uniform(0.0, 2500.0 * scale);
}

void synthesize_reboot_history(Rng& rng, Device& device, double mtbr_days) {
  const double age_days = rng.uniform(360.0, 3600.0);
  const double uptime_days =
      std::min(draw_uptime_days(rng, mtbr_days), age_days);
  device.reboots.push_back(-util::from_seconds(uptime_days * 86400.0));
  VTime t = 0;
  while (true) {
    t += util::from_seconds(rng.exponential(mtbr_days * 86400.0));
    if (t >= kHorizon) break;
    device.reboots.push_back(t);
  }
  const double prior = age_days / std::max(mtbr_days, 1.0);
  device.boots_before_history =
      1 + static_cast<std::uint32_t>(
              std::max(0.0, rng.normal(prior, prior * 0.2)));
}

Ipv6 v6_from_parts(std::uint64_t net64, std::uint64_t iid) {
  std::array<std::uint8_t, 16> bytes{};
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(net64 >> (8 * (7 - i)));
  for (int i = 0; i < 8; ++i)
    bytes[8 + i] = static_cast<std::uint8_t>(iid >> (8 * (7 - i)));
  return Ipv6(bytes);
}

}  // namespace

std::string_view to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kPlain:
      return "plain";
    case ScenarioKind::kNatPool:
      return "nat_pool";
    case ScenarioKind::kLoadBalancer:
      return "load_balancer";
    case ScenarioKind::kAnycast:
      return "anycast";
    case ScenarioKind::kCgnatChurn:
      return "cgnat_churn";
    case ScenarioKind::kAliasedPrefix:
      return "aliased_prefix";
    case ScenarioKind::kMiddlebox:
      return "middlebox";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Construction and validation
// ---------------------------------------------------------------------------

ProceduralWorld::ProceduralWorld(ProceduralConfig config)
    : config_(std::move(config)) {
  check(!config_.regions.empty(), "config has no scenario regions");
  check(config_.cache_capacity > 0, "cache_capacity must be positive");

  std::uint64_t device_base = 0;
  for (std::size_t i = 0; i < config_.regions.size(); ++i) {
    const ScenarioRegion& spec = config_.regions[i];
    RegionInfo info;
    info.spec = spec;
    info.device_base = device_base;

    if (is_v4_kind(spec.kind)) {
      info.v4_base = spec.v4.base().value();
      info.v4_size = spec.v4.size();
      const std::uint32_t host_bits =
          static_cast<std::uint32_t>(32 - spec.v4.length());
      if (is_sparse(spec.kind)) {
        check(spec.block_bits >= 1 && spec.block_bits <= host_bits,
              "block_bits must be in [1, prefix host bits]");
        const std::uint64_t block_size = std::uint64_t{1} << spec.block_bits;
        check(spec.responders_per_block >= 1 &&
                  std::uint64_t{spec.responders_per_block} * 2 <= block_size,
              "responders_per_block must be in [1, block size / 2]");
        info.device_count =
            (info.v4_size >> spec.block_bits) * spec.responders_per_block;
      } else if (spec.kind == ScenarioKind::kNatPool) {
        check(spec.pool_bits >= 1 && spec.pool_bits <= 8 &&
                  spec.pool_bits <= host_bits,
              "pool_bits must be in [1, min(8, prefix host bits)]");
        info.device_count = info.v4_size >> spec.pool_bits;
      } else {  // kCgnatChurn
        info.device_count = info.v4_size;
      }
      if (spec.kind == ScenarioKind::kLoadBalancer)
        check(spec.backends >= 1 && spec.backends <= 16,
              "backends must be in [1, 16]");
      if (spec.kind == ScenarioKind::kAnycast)
        check(spec.sites >= 1 && spec.sites <= 256,
              "sites must be in [1, 256]");
    } else {  // kAliasedPrefix
      check(spec.v6_prefix_len >= 44 && spec.v6_prefix_len <= 63,
            "v6_prefix_len must be in [44, 63]");
      check(spec.v6_iids_per_pool >= 1 && spec.v6_iids_per_pool <= 64,
            "v6_iids_per_pool must be in [1, 64]");
      info.v6_base64 = World::v6_prefix64(spec.v6_base);
      info.pool_count = std::uint64_t{1} << (64 - spec.v6_prefix_len);
      info.device_count = info.pool_count;
    }
    check(info.device_count > 0, "region derives no devices");
    check(info.device_count < (std::uint64_t{1} << 48),
          "region derives too many devices");

    // Resolve the vendor market once; weights follow the generator's
    // regional share table (responders only, so raw shares suffice).
    for (const auto& [name, share] : router_vendor_weights(spec.market_region)) {
      info.vendor_weights.push_back(share);
      info.vendor_profiles.push_back(&vendor_profile(name));
    }

    device_base += info.device_count;
    regions_.push_back(std::move(info));
  }
  total_devices_ = device_base;
  check(total_devices_ < kNoDevice, "world exceeds the device index space");

  for (std::uint32_t i = 0; i < regions_.size(); ++i) {
    if (is_v4_kind(regions_[i].spec.kind))
      v4_order_.push_back(i);
    else
      v6_order_.push_back(i);
  }
  std::sort(v4_order_.begin(), v4_order_.end(), [&](auto a, auto b) {
    return regions_[a].v4_base < regions_[b].v4_base;
  });
  std::sort(v6_order_.begin(), v6_order_.end(), [&](auto a, auto b) {
    return regions_[a].v6_base64 < regions_[b].v6_base64;
  });
  for (std::size_t i = 1; i < v4_order_.size(); ++i) {
    const auto& prev = regions_[v4_order_[i - 1]];
    check(prev.v4_base + prev.v4_size <= regions_[v4_order_[i]].v4_base,
          "v4 scenario regions overlap");
  }
  for (std::size_t i = 1; i < v6_order_.size(); ++i) {
    const auto& prev = regions_[v6_order_[i - 1]];
    check(prev.v6_base64 + prev.pool_count <= regions_[v6_order_[i]].v6_base64,
          "v6 scenario regions overlap");
  }
}

// ---------------------------------------------------------------------------
// Address resolution (rank computation)
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> ProceduralWorld::block_offsets(
    std::uint32_t region, std::uint64_t block) const {
  const ScenarioRegion& spec = regions_[region].spec;
  const std::uint64_t block_size = std::uint64_t{1} << spec.block_bits;
  Rng rng(hash_combine(hash_combine(hash_combine(config_.seed, kBlockSalt),
                                    region),
                       block));
  std::vector<std::uint32_t> offsets;
  offsets.reserve(spec.responders_per_block);
  while (offsets.size() < spec.responders_per_block) {
    const auto candidate = static_cast<std::uint32_t>(rng.next_below(block_size));
    if (std::find(offsets.begin(), offsets.end(), candidate) == offsets.end())
      offsets.push_back(candidate);
  }
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

std::vector<net::Ipv6> ProceduralWorld::pool_iids(std::uint32_t region,
                                                  std::uint64_t member) const {
  const RegionInfo& info = regions_[region];
  Rng rng(hash_combine(hash_combine(hash_combine(config_.seed, kIidSalt),
                                    region),
                       member));
  const std::uint64_t net64 = info.v6_base64 + member;
  std::vector<net::Ipv6> iids;
  iids.reserve(info.spec.v6_iids_per_pool);
  while (iids.size() < info.spec.v6_iids_per_pool) {
    const std::uint64_t iid = rng.next();
    if (iid == 0) continue;  // reserve the anycast-zero IID
    const Ipv6 address = v6_from_parts(net64, iid);
    if (std::find(iids.begin(), iids.end(), address) == iids.end())
      iids.push_back(address);
  }
  return iids;
}

std::optional<ProceduralWorld::Resolved> ProceduralWorld::resolve(
    const net::IpAddress& address) const {
  if (address.is_v4()) {
    const std::uint64_t value = address.v4().value();
    // Last region whose base <= value.
    auto it = std::upper_bound(
        v4_order_.begin(), v4_order_.end(), value,
        [&](std::uint64_t v, std::uint32_t r) { return v < regions_[r].v4_base; });
    if (it == v4_order_.begin()) return std::nullopt;
    const std::uint32_t region = *(it - 1);
    const RegionInfo& info = regions_[region];
    if (value >= info.v4_base + info.v4_size) return std::nullopt;
    const std::uint64_t offset = value - info.v4_base;
    const ScenarioRegion& spec = info.spec;
    switch (spec.kind) {
      case ScenarioKind::kNatPool:
        return Resolved{region, offset >> spec.pool_bits};
      case ScenarioKind::kCgnatChurn:
        return Resolved{region, offset};
      default: {  // sparse kinds
        const std::uint64_t block = offset >> spec.block_bits;
        const auto within = static_cast<std::uint32_t>(
            offset & ((std::uint64_t{1} << spec.block_bits) - 1));
        const auto offsets = block_offsets(region, block);
        const auto pos =
            std::lower_bound(offsets.begin(), offsets.end(), within);
        if (pos == offsets.end() || *pos != within) return std::nullopt;
        const auto rank =
            static_cast<std::uint64_t>(pos - offsets.begin());
        return Resolved{region, block * spec.responders_per_block + rank};
      }
    }
  }
  const std::uint64_t p64 = World::v6_prefix64(address.v6());
  auto it = std::upper_bound(
      v6_order_.begin(), v6_order_.end(), p64,
      [&](std::uint64_t v, std::uint32_t r) { return v < regions_[r].v6_base64; });
  if (it == v6_order_.begin()) return std::nullopt;
  const std::uint32_t region = *(it - 1);
  const RegionInfo& info = regions_[region];
  if (p64 >= info.v6_base64 + info.pool_count) return std::nullopt;
  // The whole /64 answers: any IID resolves to the pool device.
  return Resolved{region, p64 - info.v6_base64};
}

net::IpAddress ProceduralWorld::primary_address(std::uint32_t region,
                                                std::uint64_t member) const {
  const RegionInfo& info = regions_[region];
  const ScenarioRegion& spec = info.spec;
  switch (spec.kind) {
    case ScenarioKind::kAliasedPrefix:
      return pool_iids(region, member).front();
    case ScenarioKind::kNatPool:
      return spec.v4.at(member << spec.pool_bits);
    case ScenarioKind::kCgnatChurn:
      return spec.v4.at(member);
    default: {
      const std::uint64_t block = member / spec.responders_per_block;
      const std::uint64_t rank = member % spec.responders_per_block;
      const auto offsets = block_offsets(region, block);
      return spec.v4.at((block << spec.block_bits) + offsets[rank]);
    }
  }
}

// ---------------------------------------------------------------------------
// Device derivation
// ---------------------------------------------------------------------------

Device ProceduralWorld::derive_device(std::uint32_t region,
                                      std::uint64_t member) const {
  const RegionInfo& info = regions_[region];
  const ScenarioRegion& spec = info.spec;

  std::uint64_t identity = hash_combine(
      hash_combine(hash_combine(config_.seed, kDeviceSalt), region), member);
  // CGNAT: the subscriber behind the address re-randomizes every churn
  // epoch. The address set itself never moves (resolve/enumeration ignore
  // the epoch), only who answers there.
  if (spec.kind == ScenarioKind::kCgnatChurn)
    identity = hash_combine(identity, epoch_seed_);
  Rng rng(identity);

  Device device;
  device.index = static_cast<DeviceIndex>(info.device_base + member);
  device.as_index = region;
  device.kind = device_kind_of(spec.kind);

  // Anycast: the serving site is re-resolved each epoch, and the engine
  // identity (vendor, clocks, reboots, engine ID) belongs to the *site* —
  // every VIP the site serves presents the same engine.
  std::optional<Rng> site_rng;
  if (spec.kind == ScenarioKind::kAnycast) {
    const std::uint64_t site = hash_combine(identity, epoch_seed_) % spec.sites;
    site_rng.emplace(hash_combine(
        hash_combine(hash_combine(config_.seed, kSiteSalt), region), site));
  }
  Rng& id_rng = site_rng ? *site_rng : rng;

  const VendorProfile* vendor = nullptr;
  if (spec.kind == ScenarioKind::kLoadBalancer ||
      spec.kind == ScenarioKind::kAliasedPrefix)
    vendor = &vendor_profile("Net-SNMP");
  else
    vendor = info.vendor_profiles[id_rng.weighted_index(info.vendor_weights)];
  device.vendor = vendor;

  // ---- interfaces ----
  switch (spec.kind) {
    case ScenarioKind::kAliasedPrefix: {
      for (const auto& iid : pool_iids(region, member)) {
        Interface itf;
        itf.mac = vendor_mac(rng, *vendor, /*unregistered=*/false);
        itf.v6 = iid;
        device.interfaces.push_back(std::move(itf));
      }
      device.answers_whole_v6_prefix = true;
      break;
    }
    case ScenarioKind::kNatPool: {
      // The frontend owns every address of its pool; one engine, many IPs.
      const std::uint64_t pool_size = std::uint64_t{1} << spec.pool_bits;
      const std::uint64_t base_offset = member << spec.pool_bits;
      for (std::uint64_t j = 0; j < pool_size; ++j) {
        Interface itf;
        itf.mac = vendor_mac(rng, *vendor, /*unregistered=*/false);
        itf.v4 = spec.v4.at(base_offset + j);
        device.interfaces.push_back(std::move(itf));
      }
      break;
    }
    default: {
      Interface itf;
      itf.mac = vendor_mac(rng, *vendor, /*unregistered=*/false);
      itf.v4 = primary_address(region, member).v4();
      device.interfaces.push_back(std::move(itf));
      break;
    }
  }

  // ---- engine clocks ----
  device.snmpv3_enabled = true;  // procedural devices exist iff they answer
  device.snmpv2_enabled = false;
  device.clock_skew_ppm = id_rng.normal(0.0, vendor->clock_skew_ppm_sigma);
  if (id_rng.chance(0.22)) device.clock_skew_ppm *= 30.0;
  if (id_rng.chance(config_.time_jitter_rate))
    device.time_jitter_s = id_rng.uniform(-30.0, 30.0);
  const double mtbr =
      vendor->mean_days_between_reboots * std::exp(id_rng.normal(0.0, 0.4));
  synthesize_reboot_history(id_rng, device, mtbr);

  // ---- engine identity ----
  const std::string name = "dev" + std::to_string(device.index) + ".proc" +
                           std::to_string(region) + ".example.net";
  switch (spec.kind) {
    case ScenarioKind::kLoadBalancer: {
      device.engine_id = EngineId::make_netsnmp(rng.next());
      for (std::uint32_t b = 0; b < spec.backends; ++b)
        device.backend_engines.push_back(EngineId::make_netsnmp(rng.next()));
      break;
    }
    case ScenarioKind::kAnycast:
      device.engine_id = EngineId::make_netsnmp(id_rng.next());
      break;
    case ScenarioKind::kMiddlebox:
      // Mangled: short non-conforming ID and zeroed engine timers.
      device.engine_id =
          EngineId::make_nonconforming(skewed_bytes(rng, 1 + rng.next_below(3)));
      device.zero_time_bug = true;
      break;
    default: {  // kPlain, kNatPool, kCgnatChurn, kAliasedPrefix
      if (rng.chance(vendor->constant_engine_id_bug))
        device.engine_id = constant_bug_engine_id();
      else
        device.engine_id = synthesize_engine_id(rng, device, *vendor, name);
      device.empty_engine_id_bug = rng.chance(config_.empty_engine_id_rate);
      device.zero_time_bug = rng.chance(config_.zero_time_rate);
      device.future_time_bug = rng.chance(config_.future_time_rate);
      break;
    }
  }

  // ---- stack personality ----
  device.amplification = 1;
  device.churns = false;  // CGNAT churn is modeled as identity churn above
  device.itdk_eligible = false;
  device.ipid_policy = vendor->ipid_policy;
  device.initial_ttl = vendor->initial_ttl;
  device.tcp_open = false;
  return device;
}

std::optional<Device> ProceduralWorld::derive(
    const net::IpAddress& address) const {
  const auto resolved = resolve(address);
  if (!resolved) return std::nullopt;
  return derive_device(resolved->region, resolved->member);
}

// ---------------------------------------------------------------------------
// Bulk queries
// ---------------------------------------------------------------------------

void ProceduralWorld::apply_churn(std::uint64_t epoch_seed) {
  epoch_seed_ = epoch_seed;
  ++epoch_stamp_;
}

std::uint64_t ProceduralWorld::address_count(net::Family family) const {
  std::uint64_t total = 0;
  for (const auto& info : regions_) {
    if (family == net::Family::kIpv4 && is_v4_kind(info.spec.kind)) {
      // Sparse kinds assign one address per device; pools/CGNAT assign the
      // whole prefix.
      total += is_sparse(info.spec.kind) ? info.device_count : info.v4_size;
    } else if (family == net::Family::kIpv6 && !is_v4_kind(info.spec.kind)) {
      total += info.device_count * info.spec.v6_iids_per_pool;
    }
  }
  return total;
}

std::vector<net::IpAddress> ProceduralWorld::campaign_targets(
    net::Family family, std::uint64_t /*churn_seed*/) const {
  // The assigned-address set is epoch-independent by construction (identity
  // churns, addresses don't), so the cross-epoch union is just the set.
  std::vector<net::IpAddress> out;
  for (std::uint32_t region = 0; region < regions_.size(); ++region) {
    const RegionInfo& info = regions_[region];
    const ScenarioRegion& spec = info.spec;
    if (family == net::Family::kIpv4 && is_v4_kind(spec.kind)) {
      if (is_sparse(spec.kind)) {
        const std::uint64_t blocks = info.v4_size >> spec.block_bits;
        for (std::uint64_t block = 0; block < blocks; ++block)
          for (const auto offset : block_offsets(region, block))
            out.emplace_back(spec.v4.at((block << spec.block_bits) + offset));
      } else {  // NAT pools and CGNAT assign the whole prefix
        for (std::uint64_t offset = 0; offset < info.v4_size; ++offset)
          out.emplace_back(spec.v4.at(offset));
      }
    } else if (family == net::Family::kIpv6 && !is_v4_kind(spec.kind)) {
      for (std::uint64_t member = 0; member < info.device_count; ++member)
        for (const auto& iid : pool_iids(region, member)) out.emplace_back(iid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::IpAddress> ProceduralWorld::hitlist_v6(
    std::uint64_t seed) const {
  return export_hitlist_v6(materialize(), seed);
}

World ProceduralWorld::materialize() const {
  World world;
  for (std::uint32_t region = 0; region < regions_.size(); ++region) {
    const ScenarioRegion& spec = regions_[region].spec;
    AutonomousSystem as;
    as.asn = 64512 + region;  // private-use ASNs, one per scenario region
    as.region = spec.market_region;
    if (is_v4_kind(spec.kind)) as.v4_prefix = spec.v4;
    as.v6_prefix = {0x2001, static_cast<std::uint16_t>(as.asn & 0xffff)};
    as.domain = "proc" + std::to_string(region) + ".example.net";
    as.naming_scheme = -1;
    world.ases.push_back(std::move(as));
  }
  world.devices.reserve(total_devices_);
  for (std::uint32_t region = 0; region < regions_.size(); ++region) {
    for (std::uint64_t member = 0; member < regions_[region].device_count;
         ++member) {
      Device device = derive_device(region, member);
      world.ases[region].devices.push_back(device.index);
      assert(device.index == world.devices.size());
      world.devices.push_back(std::move(device));
    }
  }
  world.v4_cursor.assign(world.ases.size(), 0);
  world.reindex();
  return world;
}

// ---------------------------------------------------------------------------
// Lazy view
// ---------------------------------------------------------------------------

// LRU of derived devices, keyed by (region, member). Eviction only costs
// re-derivation: the cache can never change an output bit, so its capacity
// and hit pattern are pure execution details (like thread count).
class ProceduralView final : public DeviceView {
 public:
  explicit ProceduralView(const ProceduralWorld& world)
      : world_(world), epoch_stamp_(world.epoch_stamp()) {}

  const Device* device_at(const net::IpAddress& address) override {
    sync_epoch();
    const auto resolved = world_.resolve(address);
    if (!resolved) return nullptr;
    const std::uint64_t key =
        (std::uint64_t{resolved->region} << 48) | resolved->member;
    if (const auto it = index_.find(key); it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return &it->second->device;
    }
    ++stats_.misses;
    if (lru_.size() >= world_.config().cache_capacity) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(Entry{
        key,
        world_.primary_address(resolved->region, resolved->member),
        world_.derive_device(resolved->region, resolved->member),
    });
    index_[key] = lru_.begin();
    return &lru_.front().device;
  }

  WorldCacheStats cache_stats() const override {
    WorldCacheStats stats = stats_;
    stats.resident = lru_.size();
    return stats;
  }

  std::vector<net::IpAddress> cached_addresses() const override {
    std::vector<net::IpAddress> out;
    out.reserve(lru_.size());
    for (const auto& entry : lru_) out.push_back(entry.primary);  // MRU first
    return out;
  }

  void warm(const std::vector<net::IpAddress>& addresses) override {
    // Snapshots are MRU-first; touching in reverse rebuilds the same order.
    for (auto it = addresses.rbegin(); it != addresses.rend(); ++it)
      device_at(*it);
  }

 private:
  struct Entry {
    std::uint64_t key;
    net::IpAddress primary;
    Device device;
  };

  void sync_epoch() {
    if (epoch_stamp_ == world_.epoch_stamp()) return;
    // Identities may have churned; drop everything and re-derive on demand.
    lru_.clear();
    index_.clear();
    epoch_stamp_ = world_.epoch_stamp();
  }

  const ProceduralWorld& world_;
  std::uint64_t epoch_stamp_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  WorldCacheStats stats_;
};

std::unique_ptr<DeviceView> ProceduralWorld::open_view() const {
  return std::make_unique<ProceduralView>(*this);
}

// ---------------------------------------------------------------------------
// Canned configurations
// ---------------------------------------------------------------------------

ProceduralConfig ProceduralConfig::tiny() {
  ProceduralConfig config;
  config.seed = 0x7117;
  config.regions = {
      {.kind = ScenarioKind::kPlain,
       .v4 = net::Prefix4(net::Ipv4(10, 10, 0, 0), 20),
       .block_bits = 6,
       .responders_per_block = 3,
       .market_region = "EU"},
      {.kind = ScenarioKind::kNatPool,
       .v4 = net::Prefix4(net::Ipv4(10, 20, 0, 0), 24),
       .pool_bits = 4,
       .market_region = "NA"},
      {.kind = ScenarioKind::kLoadBalancer,
       .v4 = net::Prefix4(net::Ipv4(10, 30, 0, 0), 22),
       .block_bits = 7,
       .responders_per_block = 2,
       .backends = 3,
       .market_region = "EU"},
      {.kind = ScenarioKind::kAnycast,
       .v4 = net::Prefix4(net::Ipv4(10, 40, 0, 0), 22),
       .block_bits = 7,
       .responders_per_block = 2,
       .sites = 3,
       .market_region = "AS"},
      {.kind = ScenarioKind::kCgnatChurn,
       .v4 = net::Prefix4(net::Ipv4(10, 50, 0, 0), 26),
       .market_region = "NA"},
      {.kind = ScenarioKind::kMiddlebox,
       .v4 = net::Prefix4(net::Ipv4(10, 60, 0, 0), 22),
       .block_bits = 8,
       .responders_per_block = 1,
       .market_region = "EU"},
      {.kind = ScenarioKind::kAliasedPrefix,
       .v6_base = net::Ipv6::from_groups(
           {0x2001, 0x0db8, 0x00aa, 0, 0, 0, 0, 0}),
       .v6_prefix_len = 62,
       .v6_iids_per_pool = 3,
       .market_region = "EU"},
  };
  return config;
}

ProceduralConfig ProceduralConfig::census(std::uint64_t addresses) {
  ProceduralConfig config;
  config.seed = 20210416;
  // Smallest power-of-two prefix covering the request, census responder
  // density (~1/16k — the order of the paper's v3-responsive rate).
  std::uint32_t host_bits = 20;
  while (host_bits < 30 && (std::uint64_t{1} << host_bits) < addresses)
    ++host_bits;
  config.regions = {
      {.kind = ScenarioKind::kPlain,
       .v4 = net::Prefix4(net::Ipv4(0x40000000u),
                          static_cast<int>(32 - host_bits)),
       .block_bits = 14,
       .responders_per_block = 1,
       .market_region = "EU"},
  };
  return config;
}

}  // namespace snmpv3fp::topo
