#include "topo/world.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace snmpv3fp::topo {

std::uint32_t Device::engine_boots_at(util::VTime t) const {
  const auto it = std::upper_bound(reboots.begin(), reboots.end(), t);
  return boots_before_history +
         static_cast<std::uint32_t>(it - reboots.begin());
}

util::VTime Device::last_reboot_before(util::VTime t) const {
  assert(!reboots.empty());
  const auto it = std::upper_bound(reboots.begin(), reboots.end(), t);
  if (it == reboots.begin()) return reboots.front();
  return *(it - 1);
}

std::uint32_t Device::engine_time_at(util::VTime t) const {
  const util::VTime since = t - last_reboot_before(t);
  double seconds = util::to_seconds(std::max<util::VTime>(since, 0));
  seconds *= 1.0 + clock_skew_ppm * 1e-6;
  if (seconds < 0) seconds = 0;
  return static_cast<std::uint32_t>(seconds);
}

bool Device::dual_stack() const { return v4_count() > 0 && v6_count() > 0; }

std::size_t Device::v4_count() const {
  std::size_t n = 0;
  for (const auto& itf : interfaces) n += itf.v4.has_value();
  return n;
}

std::size_t Device::v6_count() const {
  std::size_t n = 0;
  for (const auto& itf : interfaces) n += itf.v6.has_value();
  return n;
}

const Device* World::device_at(const net::IpAddress& address) const {
  const auto index = device_index_at(address);
  return index == kNoDevice ? nullptr : &devices[index];
}

std::uint64_t World::v6_prefix64(const net::Ipv6& address) {
  return util::read_be(util::ByteView(address.bytes()).first(8));
}

DeviceIndex World::device_index_at(const net::IpAddress& address) const {
  const auto it = address_map_.find(address);
  if (it != address_map_.end()) return it->second;
  // Aliased /64s answer on every interface identifier.
  if (address.is_v6()) {
    const auto aliased =
        aliased_v6_prefixes_.find(v6_prefix64(address.v6()));
    if (aliased != aliased_v6_prefixes_.end()) return aliased->second;
  }
  return kNoDevice;
}

std::vector<net::IpAddress> World::addresses(net::Family family) const {
  std::vector<net::IpAddress> out;
  for (const auto& [addr, index] : address_map_)
    if (addr.family() == family) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

void World::rebind_churning_devices(std::uint64_t epoch_seed) {
  util::Rng rng(epoch_seed);
  // DHCP-style churn: within each AS, the dynamic pool is *recycled* — a
  // churning device usually receives an address another churning device
  // held during the previous epoch. This is what produces the paper's
  // "inconsistent engine ID" filter drops: the same IP answers with a
  // different device's engine ID in the second scan.
  std::vector<std::vector<Interface*>> v4_slots(ases.size());
  std::vector<std::vector<Interface*>> v6_slots(ases.size());
  for (auto& device : devices) {
    if (!device.churns) continue;
    for (auto& itf : device.interfaces) {
      if (itf.v4) v4_slots[device.as_index].push_back(&itf);
      if (itf.v6) v6_slots[device.as_index].push_back(&itf);
    }
  }
  constexpr double kFreshAddressRate = 0.3;  // leases from outside the pool
  for (std::size_t as_index = 0; as_index < ases.size(); ++as_index) {
    auto& as = ases[as_index];
    auto& v4 = v4_slots[as_index];
    if (v4.size() > 1) {
      std::vector<net::Ipv4> pool;
      pool.reserve(v4.size());
      for (const auto* itf : v4) pool.push_back(*itf->v4);
      // Rotation guarantees nobody keeps their own lease.
      const std::size_t shift = 1 + rng.next_below(pool.size() - 1);
      for (std::size_t i = 0; i < v4.size(); ++i) {
        if (rng.chance(kFreshAddressRate)) {
          const std::uint64_t offset =
              v4_cursor[as_index]++ % as.v4_prefix.size();
          v4[i]->v4 = as.v4_prefix.at(offset);
        } else {
          v4[i]->v4 = pool[(i + shift) % pool.size()];
        }
      }
    }
    auto& v6 = v6_slots[as_index];
    if (v6.size() > 1) {
      std::vector<net::Ipv6> pool;
      pool.reserve(v6.size());
      for (const auto* itf : v6) pool.push_back(*itf->v6);
      const std::size_t shift = 1 + rng.next_below(pool.size() - 1);
      for (std::size_t i = 0; i < v6.size(); ++i) {
        if (rng.chance(kFreshAddressRate)) {
          std::array<std::uint16_t, 8> groups{};
          groups[0] = as.v6_prefix[0];
          groups[1] = as.v6_prefix[1];
          for (int g = 4; g < 8; ++g)
            groups[g] = static_cast<std::uint16_t>(rng.next());
          v6[i]->v6 = net::Ipv6::from_groups(groups);
        } else {
          v6[i]->v6 = pool[(i + shift) % pool.size()];
        }
      }
    }
  }
  reindex();
}

void World::reindex() {
  address_map_.clear();
  if (v4_cursor.size() < ases.size()) v4_cursor.resize(ases.size(), 0);
  aliased_v6_prefixes_.clear();
  for (const auto& device : devices) {
    for (const auto& itf : device.interfaces) {
      if (itf.v4) address_map_[net::IpAddress(*itf.v4)] = device.index;
      if (itf.v6) {
        address_map_[net::IpAddress(*itf.v6)] = device.index;
        if (device.answers_whole_v6_prefix)
          aliased_v6_prefixes_[v6_prefix64(*itf.v6)] = device.index;
      }
    }
  }
}

std::vector<std::vector<net::IpAddress>> World::truth_alias_sets() const {
  std::vector<std::vector<net::IpAddress>> sets;
  sets.reserve(devices.size());
  for (const auto& device : devices) {
    std::vector<net::IpAddress> set;
    for (const auto& itf : device.interfaces) {
      if (itf.v4) set.emplace_back(*itf.v4);
      if (itf.v6) set.emplace_back(*itf.v6);
    }
    if (!set.empty()) {
      std::sort(set.begin(), set.end());
      sets.push_back(std::move(set));
    }
  }
  return sets;
}

std::size_t World::router_count() const {
  std::size_t n = 0;
  for (const auto& d : devices) n += d.kind == DeviceKind::kRouter;
  return n;
}

std::size_t World::address_count(net::Family family) const {
  std::size_t n = 0;
  for (const auto& [addr, index] : address_map_) n += addr.family() == family;
  return n;
}

}  // namespace snmpv3fp::topo
