#include "topo/world.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace snmpv3fp::topo {

std::uint32_t Device::engine_boots_at(util::VTime t) const {
  const auto it = std::upper_bound(reboots.begin(), reboots.end(), t);
  return boots_before_history +
         static_cast<std::uint32_t>(it - reboots.begin());
}

util::VTime Device::last_reboot_before(util::VTime t) const {
  assert(!reboots.empty());
  const auto it = std::upper_bound(reboots.begin(), reboots.end(), t);
  if (it == reboots.begin()) return reboots.front();
  return *(it - 1);
}

std::uint32_t Device::engine_time_at(util::VTime t) const {
  const util::VTime since = t - last_reboot_before(t);
  double seconds = util::to_seconds(std::max<util::VTime>(since, 0));
  seconds *= 1.0 + clock_skew_ppm * 1e-6;
  if (seconds < 0) seconds = 0;
  return static_cast<std::uint32_t>(seconds);
}

bool Device::dual_stack() const { return v4_count() > 0 && v6_count() > 0; }

std::size_t Device::v4_count() const {
  std::size_t n = 0;
  for (const auto& itf : interfaces) n += itf.v4.has_value();
  return n;
}

std::size_t Device::v6_count() const {
  std::size_t n = 0;
  for (const auto& itf : interfaces) n += itf.v6.has_value();
  return n;
}

const Device* World::device_at(const net::IpAddress& address) const {
  const auto index = device_index_at(address);
  return index == kNoDevice ? nullptr : &devices[index];
}

std::uint64_t World::v6_prefix64(const net::Ipv6& address) {
  return util::read_be(util::ByteView(address.bytes()).first(8));
}

DeviceIndex World::device_index_at(const net::IpAddress& address) const {
  const auto it = address_map_.find(address);
  if (it != address_map_.end()) return it->second;
  // Aliased /64s answer on every interface identifier.
  if (address.is_v6()) {
    const auto aliased =
        aliased_v6_prefixes_.find(v6_prefix64(address.v6()));
    if (aliased != aliased_v6_prefixes_.end()) return aliased->second;
  }
  return kNoDevice;
}

std::vector<net::IpAddress> World::addresses(net::Family family) const {
  std::vector<net::IpAddress> out;
  for (const auto& [addr, index] : address_map_)
    if (addr.family() == family) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

World::ChurnPlan World::plan_churn(std::uint64_t epoch_seed,
                                   std::vector<std::uint64_t>& cursor) const {
  util::Rng rng(epoch_seed);
  // DHCP-style churn: within each AS, the dynamic pool is *recycled* — a
  // churning device usually receives an address another churning device
  // held during the previous epoch. This is what produces the paper's
  // "inconsistent engine ID" filter drops: the same IP answers with a
  // different device's engine ID in the second scan.
  struct Slot {
    DeviceIndex device;
    std::uint32_t interface;
  };
  std::vector<std::vector<Slot>> v4_slots(ases.size());
  std::vector<std::vector<Slot>> v6_slots(ases.size());
  for (const auto& device : devices) {
    if (!device.churns) continue;
    for (std::uint32_t i = 0; i < device.interfaces.size(); ++i) {
      const auto& itf = device.interfaces[i];
      if (itf.v4) v4_slots[device.as_index].push_back({device.index, i});
      if (itf.v6) v6_slots[device.as_index].push_back({device.index, i});
    }
  }
  ChurnPlan plan;
  constexpr double kFreshAddressRate = 0.3;  // leases from outside the pool
  for (std::size_t as_index = 0; as_index < ases.size(); ++as_index) {
    const auto& as = ases[as_index];
    const auto& v4 = v4_slots[as_index];
    if (v4.size() > 1) {
      std::vector<net::Ipv4> pool;
      pool.reserve(v4.size());
      for (const auto& slot : v4)
        pool.push_back(*devices[slot.device].interfaces[slot.interface].v4);
      // Rotation guarantees nobody keeps their own lease.
      const std::size_t shift = 1 + rng.next_below(pool.size() - 1);
      for (std::size_t i = 0; i < v4.size(); ++i) {
        net::Ipv4 address;
        if (rng.chance(kFreshAddressRate)) {
          const std::uint64_t offset = cursor[as_index]++ % as.v4_prefix.size();
          address = as.v4_prefix.at(offset);
        } else {
          address = pool[(i + shift) % pool.size()];
        }
        plan.v4.push_back({v4[i].device, v4[i].interface, address});
      }
    }
    const auto& v6 = v6_slots[as_index];
    if (v6.size() > 1) {
      std::vector<net::Ipv6> pool;
      pool.reserve(v6.size());
      for (const auto& slot : v6)
        pool.push_back(*devices[slot.device].interfaces[slot.interface].v6);
      const std::size_t shift = 1 + rng.next_below(pool.size() - 1);
      for (std::size_t i = 0; i < v6.size(); ++i) {
        net::Ipv6 address;
        if (rng.chance(kFreshAddressRate)) {
          std::array<std::uint16_t, 8> groups{};
          groups[0] = as.v6_prefix[0];
          groups[1] = as.v6_prefix[1];
          for (int g = 4; g < 8; ++g)
            groups[g] = static_cast<std::uint16_t>(rng.next());
          address = net::Ipv6::from_groups(groups);
        } else {
          address = pool[(i + shift) % pool.size()];
        }
        plan.v6.push_back({v6[i].device, v6[i].interface, address});
      }
    }
  }
  return plan;
}

void World::rebind_churning_devices(std::uint64_t epoch_seed) {
  if (v4_cursor.size() < ases.size()) v4_cursor.resize(ases.size(), 0);
  const ChurnPlan plan = plan_churn(epoch_seed, v4_cursor);
  for (const auto& slot : plan.v4)
    devices[slot.device].interfaces[slot.interface].v4 = slot.address;
  for (const auto& slot : plan.v6)
    devices[slot.device].interfaces[slot.interface].v6 = slot.address;
  reindex();
}

std::vector<net::IpAddress> World::addresses_after_churn(
    std::uint64_t epoch_seed, net::Family family) const {
  std::vector<std::uint64_t> cursor = v4_cursor;
  cursor.resize(std::max(cursor.size(), ases.size()), 0);
  const ChurnPlan plan = plan_churn(epoch_seed, cursor);
  const auto slot_key = [](DeviceIndex device, std::uint32_t interface) {
    return (static_cast<std::uint64_t>(device) << 32) | interface;
  };
  std::unordered_map<std::uint64_t, net::Ipv4> new_v4;
  std::unordered_map<std::uint64_t, net::Ipv6> new_v6;
  new_v4.reserve(plan.v4.size());
  new_v6.reserve(plan.v6.size());
  for (const auto& slot : plan.v4)
    new_v4.emplace(slot_key(slot.device, slot.interface), slot.address);
  for (const auto& slot : plan.v6)
    new_v6.emplace(slot_key(slot.device, slot.interface), slot.address);

  std::vector<net::IpAddress> out;
  out.reserve(address_map_.size());
  for (const auto& device : devices) {
    for (std::uint32_t i = 0; i < device.interfaces.size(); ++i) {
      const auto& itf = device.interfaces[i];
      if (family == net::Family::kIpv4) {
        if (!itf.v4) continue;
        const auto it = new_v4.find(slot_key(device.index, i));
        out.emplace_back(it == new_v4.end() ? *itf.v4 : it->second);
      } else {
        if (!itf.v6) continue;
        const auto it = new_v6.find(slot_key(device.index, i));
        out.emplace_back(it == new_v6.end() ? *itf.v6 : it->second);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void World::reindex() {
  address_map_.clear();
  if (v4_cursor.size() < ases.size()) v4_cursor.resize(ases.size(), 0);
  aliased_v6_prefixes_.clear();
  for (const auto& device : devices) {
    for (const auto& itf : device.interfaces) {
      if (itf.v4) address_map_[net::IpAddress(*itf.v4)] = device.index;
      if (itf.v6) {
        address_map_[net::IpAddress(*itf.v6)] = device.index;
        if (device.answers_whole_v6_prefix)
          aliased_v6_prefixes_[v6_prefix64(*itf.v6)] = device.index;
      }
    }
  }
}

std::vector<std::vector<net::IpAddress>> World::truth_alias_sets() const {
  std::vector<std::vector<net::IpAddress>> sets;
  sets.reserve(devices.size());
  for (const auto& device : devices) {
    std::vector<net::IpAddress> set;
    for (const auto& itf : device.interfaces) {
      if (itf.v4) set.emplace_back(*itf.v4);
      if (itf.v6) set.emplace_back(*itf.v6);
    }
    if (!set.empty()) {
      std::sort(set.begin(), set.end());
      sets.push_back(std::move(set));
    }
  }
  return sets;
}

std::size_t World::router_count() const {
  std::size_t n = 0;
  for (const auto& d : devices) n += d.kind == DeviceKind::kRouter;
  return n;
}

std::size_t World::address_count(net::Family family) const {
  std::size_t n = 0;
  for (const auto& [addr, index] : address_map_) n += addr.family() == family;
  return n;
}

}  // namespace snmpv3fp::topo
