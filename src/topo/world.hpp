// The simulated Internet's ground-truth model.
//
// World owns the autonomous systems, devices and interfaces that the
// SNMPv3 scans probe. Everything the paper must *infer* (alias sets,
// vendors, reboot history, dual-stack pairs) exists here as ground truth,
// which lets the tests measure precision/recall of the inference pipeline —
// the "ground truth" the paper itself lacked (§3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"
#include "net/mac.hpp"
#include "snmp/engine_id.hpp"
#include "topo/vendor.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::topo {

using DeviceIndex = std::uint32_t;
inline constexpr DeviceIndex kNoDevice = ~DeviceIndex{0};

struct Interface {
  net::MacAddress mac;
  std::optional<net::Ipv4> v4;
  std::optional<net::Ipv6> v6;
  std::string ptr_name;  // reverse-DNS hostname; empty if no PTR record
};

// A device's SNMP engine + stack state. Fields that only matter to one
// baseline (IP-ID counters, TTLs) live here too so a single ground-truth
// object drives every measurement technique.
struct Device {
  DeviceIndex index = 0;
  DeviceKind kind = DeviceKind::kRouter;
  const VendorProfile* vendor = nullptr;  // points into the builtin tables
  std::uint32_t as_index = 0;
  std::vector<Interface> interfaces;

  // --- SNMP engine -------------------------------------------------------
  bool snmpv3_enabled = false;  // answers unauthenticated discovery
  // v2c configured (community string). Vendors that implicitly enable v3
  // when v2c is configured (paper §6.2.1) set both flags together.
  bool snmpv2_enabled = false;
  // Configured USM user (empty = none). An authenticated GET with the
  // right HMAC under this user's localized key is answered; a wrong user
  // or digest still leaks the engine triple via a REPORT.
  std::string usm_user;
  std::string usm_auth_password;
  // Non-empty = authPriv: scoped PDUs travel AES-128-CFB encrypted.
  std::string usm_priv_password;
  snmp::EngineId engine_id;
  bool empty_engine_id_bug = false;  // responds with a missing engine ID
  bool zero_time_bug = false;        // reports engineBoots=0, engineTime=0
  bool future_time_bug = false;      // reports an implausibly huge engineTime
  // Engine clock skew: engineTime advances at (1 + skew_ppm * 1e-6) x real.
  double clock_skew_ppm = 0.0;
  // Coarse engine-time counters: the agent adds uniform +-time_jitter_s of
  // fresh jitter to every response (0 = precise counter).
  double time_jitter_s = 0.0;
  // Reboot history: sorted virtual times (typically negative = before the
  // simulated epoch). The engine's last reboot before t defines engineTime.
  std::vector<util::VTime> reboots;
  std::uint32_t boots_before_history = 0;  // engineBoots before reboots[0]
  int amplification = 1;  // responses sent per request (paper §8)
  // Load-balancer VIP: additional backend engines answering behind this
  // device's addresses; the agent picks one engine per request (the NAT/
  // load-balancer inference extension, paper §9 future work).
  std::vector<snmp::EngineId> backend_engines;
  // Aliased IPv6 prefix: the device answers on EVERY address of its /64
  // (server farms with on-link /64 routes). The hitlist methodology must
  // detect and exclude these (paper §4.1.1, Gasser et al. [21]).
  bool answers_whole_v6_prefix = false;
  bool churns = false;    // CPE: address reassigned between epochs

  // Whether this device is part of the router infrastructure that topology
  // datasets (ITDK / RIPE Atlas) could observe.
  bool itdk_eligible = false;

  // --- stack personality (baselines) --------------------------------------
  IpIdPolicy ipid_policy = IpIdPolicy::kSharedCounter;
  std::uint8_t initial_ttl = 255;
  bool tcp_open = false;
  // Speedtrap: IPv6 fragment-ID counter behaves like ipid_policy.

  // Engine boots counter value at virtual time t.
  std::uint32_t engine_boots_at(util::VTime t) const;
  // Time of the last reboot at or before t (falls back to the first known
  // reboot when t precedes all history).
  util::VTime last_reboot_before(util::VTime t) const;
  // engineTime in seconds at t, including skew and truncation to seconds.
  std::uint32_t engine_time_at(util::VTime t) const;

  bool dual_stack() const;
  std::size_t v4_count() const;
  std::size_t v6_count() const;
};

struct AutonomousSystem {
  std::uint32_t asn = 0;
  std::string region;  // "EU", "NA", "AS", "SA", "AF", "OC"
  net::Prefix4 v4_prefix{net::Ipv4{}, 16};
  // IPv6 allocation: 2001:asn-derived::/32; interfaces get random IIDs.
  std::array<std::uint16_t, 2> v6_prefix{0x2001, 0};
  std::string domain;      // rDNS zone, e.g. "as3320.example.net"
  int naming_scheme = -1;  // PTR template index; -1 = no useful rDNS
  std::vector<DeviceIndex> devices;
};

class World {
 public:
  std::vector<AutonomousSystem> ases;
  std::vector<Device> devices;

  // --- address mapping (current epoch) ------------------------------------
  const Device* device_at(const net::IpAddress& address) const;
  DeviceIndex device_index_at(const net::IpAddress& address) const;

  // All currently assigned addresses of the given family, sorted.
  std::vector<net::IpAddress> addresses(net::Family family) const;

  // Re-assigns the addresses of churning (CPE) devices within their AS
  // pool; models the DHCP churn between the paper's two campaigns. Called
  // by the campaign orchestrator between scans.
  void rebind_churning_devices(std::uint64_t epoch_seed);

  // All addresses of `family` that would be assigned after
  // rebind_churning_devices(epoch_seed), sorted and deduplicated — without
  // copying or mutating the world. Lets the campaign enumerate the second
  // epoch's targets up front.
  std::vector<net::IpAddress> addresses_after_churn(std::uint64_t epoch_seed,
                                                    net::Family family) const;

  // Rebuilds the IP -> device maps from the interface lists. Must be
  // called after construction or any address mutation.
  void reindex();

  // --- ground truth --------------------------------------------------------
  // True alias sets: every assigned address of every device (both
  // families), grouped per device. Devices with a single address yield
  // singleton sets.
  std::vector<std::vector<net::IpAddress>> truth_alias_sets() const;

  // Convenience totals.
  std::size_t router_count() const;
  std::size_t address_count(net::Family family) const;

  // Allocation cursors used by the generator (per-AS next host offset).
  std::vector<std::uint64_t> v4_cursor;

  // The /64 network part of an IPv6 address as a map key.
  static std::uint64_t v6_prefix64(const net::Ipv6& address);

 private:
  // One churn epoch's address re-assignments, keyed by (device, interface).
  struct ChurnPlan {
    struct V4Slot {
      DeviceIndex device;
      std::uint32_t interface;
      net::Ipv4 address;
    };
    struct V6Slot {
      DeviceIndex device;
      std::uint32_t interface;
      net::Ipv6 address;
    };
    std::vector<V4Slot> v4;
    std::vector<V6Slot> v6;
  };
  // Computes the re-assignments rebind_churning_devices(epoch_seed) would
  // apply. `cursor` is the per-AS fresh-lease cursor (advanced in place);
  // rebind passes v4_cursor, the const query passes a copy.
  ChurnPlan plan_churn(std::uint64_t epoch_seed,
                       std::vector<std::uint64_t>& cursor) const;

  std::unordered_map<net::IpAddress, DeviceIndex> address_map_;
  // /64s on which one device answers every interface identifier.
  std::unordered_map<std::uint64_t, DeviceIndex> aliased_v6_prefixes_;
};

}  // namespace snmpv3fp::topo
