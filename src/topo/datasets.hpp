// Synthetic third-party topology datasets.
//
// The paper tags router interfaces using CAIDA's ITDK (MIDAR + Speedtrap
// alias sets), RIPE Atlas traceroute hops and the IPv6 Hitlist Service
// (§4.1.2, Table 2), and compares alias sets against the Router Names
// rDNS dataset (§5.2). These exporters derive the analogous datasets from
// the simulated world with configurable partial coverage and pollution, so
// the comparison sections reproduce the paper's "complementary, partially
// overlapping" findings rather than a trivially perfect join.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/as_table.hpp"
#include "net/ip.hpp"
#include "topo/world.hpp"

namespace snmpv3fp::topo {

struct RouterDataset {
  std::string name;
  // Router-tagged addresses (the coverage join of Table 2).
  std::vector<net::IpAddress> addresses;
  // Alias sets as the dataset's own technique inferred them (mostly
  // singletons, like MIDAR/Speedtrap in the paper).
  std::vector<std::vector<net::IpAddress>> alias_sets;
};

struct PtrRecord {
  net::IpAddress address;
  std::string name;
};

struct DatasetOptions {
  std::uint64_t seed = 1;
  double router_coverage = 0.75;     // fraction of eligible routers seen
  double interface_coverage = 0.80;  // fraction of a seen router's addrs
  // Fraction of covered routers whose interfaces were correctly grouped
  // into a non-singleton alias set (the rest stay singletons).
  double alias_grouping_rate = 0.12;
};

// CAIDA ITDK-like IPv4 router topology (MIDAR-curated).
RouterDataset export_itdk_v4(const World& world, const DatasetOptions& options);

// CAIDA ITDK-like IPv6 router topology (Speedtrap-curated).
RouterDataset export_itdk_v6(const World& world, const DatasetOptions& options);

// RIPE Atlas-like intermediate hop addresses (both families, thinner
// coverage, no alias sets).
RouterDataset export_atlas(const World& world, const DatasetOptions& options);

// IPv6 Hitlist-like address list: routers plus a large CPE/server corpus
// whose addresses churn (paper: "many CPE device addresses").
std::vector<net::IpAddress> export_hitlist_v6(const World& world,
                                              std::uint64_t seed);

// All reverse-DNS records of the world (paper §5.2 Router Names input).
std::vector<PtrRecord> export_ptr_records(const World& world);

// Union of router-tagged addresses across datasets (paper Table 2 last row).
std::vector<net::IpAddress> dataset_union(
    const std::vector<const RouterDataset*>& datasets);

// IP -> (ASN, region) mapping derived from the world's allocations — the
// stand-in for public BGP data used by the paper's per-AS analyses.
net::AsTable build_as_table(const World& world);

}  // namespace snmpv3fp::topo
