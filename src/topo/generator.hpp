// Synthesis of the simulated Internet.
//
// The generator turns a WorldConfig into a World: autonomous systems with
// regional vendor markets, router infrastructure with heavy-tailed per-AS
// counts, CPE/server populations, SNMP engine state (engine IDs, reboot
// histories, clock skew, implementation bugs), and reverse-DNS naming.
//
// Scale philosophy: per-AS structure (router counts, dominance, vendor
// mixes) follows the paper's *distributions* at full fidelity, while the
// NUMBER of ASes and the device populations are divided by configurable
// scale factors so benches run in seconds. EXPERIMENTS.md records the
// factors used for each experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/world.hpp"

namespace snmpv3fp::topo {

// One of the paper's Figure 16 mega networks (top-10 ASes by router count).
struct MegaAsSpec {
  std::string region;
  std::size_t routers;  // pre-scale (paper magnitude)
  // Dominant vendor (Figure 16 shows who runs each top-10 network);
  // empty = sample from the regional market like any other AS.
  std::string primary_vendor;
};

// A non-infrastructure device population (CPE, servers, enterprise
// switches). Counts are *deployment* counts before responsiveness and
// filtering shrink them to the paper's observed numbers.
struct PopulationSpec {
  std::string vendor;
  DeviceKind kind = DeviceKind::kCpe;
  double count = 0;        // pre-scale deployment count
  bool itdk_eligible = false;
};

struct WorldConfig {
  std::uint64_t seed = 20210416;  // first scan date as default seed

  // ---- router infrastructure ----
  std::size_t tail_as_count = 1900;
  std::vector<MegaAsSpec> mega_ases;
  // Per-AS router count tail: P(X >= x) = x^-alpha, truncated.
  double pareto_alpha = 0.88;
  std::size_t max_tail_as_routers = 2500;
  double router_scale = 12.0;  // divides mega sizes (tail scales via AS count)
  // Mega ASes use their own divisor so they stay ranked above the tail
  // (tail per-AS counts are NOT divided — the AS *count* is the scaled
  // knob — so megas must shrink less to keep Figure 16's ranking).
  double mega_scale = 12.0;

  // ---- other device populations ----
  std::vector<PopulationSpec> populations;
  double device_scale = 50.0;
  // Fraction of tail ASes that host CPE/server populations ("eyeball" ASes).
  double eyeball_as_fraction = 0.4;

  // ---- reverse DNS ----
  double rdns_as_coverage = 0.32;    // ASes with a consistent naming scheme
  double ptr_record_coverage = 0.42; // interfaces with PTR in covered ASes

  // ---- behaviour rates (population-wide) ----
  double cpe_churn_rate = 0.35;
  double empty_engine_id_rate = 0.0002;
  double zero_time_rate = 0.030;
  double future_time_rate = 0.0008;  // engine time implausibly large
  double time_jitter_rate = 0.08;    // coarse engine-time counters
  // One in this many responsive devices is a pathological mega-amplifier.
  std::size_t mega_amplifier_inverse = 40000;
  // §9 future-work extension populations.
  double load_balancer_rate = 0.004;  // servers fronting several engines
  double nat_frontend_rate = 0.002;   // routers with a translated frontend
  double aliased_prefix_rate = 0.02;  // v6 servers answering their whole /64

  // Factory configs used throughout benches/tests.
  static WorldConfig full_internet();  // all device kinds; Figures 4-9, 11
  static WorldConfig router_focus();   // deep router infra; Figures 10, 12-20
  static WorldConfig tiny();           // fast unit-test world
};

// Deterministically builds the world for a config (same config -> same
// world, byte for byte).
World generate_world(const WorldConfig& config);

// Observed router-vendor market share per region (paper Figure 15),
// divided by each vendor's responsiveness to yield deployment weights.
std::vector<std::pair<std::string, double>> router_vendor_weights(
    const std::string& region);

inline const std::vector<std::string>& region_names() {
  static const std::vector<std::string> regions = {"EU", "NA", "AS",
                                                   "SA", "AF", "OC"};
  return regions;
}

}  // namespace snmpv3fp::topo
