#include "store/record_store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <queue>
#include <utility>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "store/columnar.hpp"

namespace snmpv3fp::store {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kIndexEntryBytes = 24;

void put_u32le(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
  out[2] = static_cast<std::uint8_t>(value >> 16);
  out[3] = static_cast<std::uint8_t>(value >> 24);
}

std::uint32_t get_u32le(const std::uint8_t* data) {
  return static_cast<std::uint32_t>(data[0]) |
         (static_cast<std::uint32_t>(data[1]) << 8) |
         (static_cast<std::uint32_t>(data[2]) << 16) |
         (static_cast<std::uint32_t>(data[3]) << 24);
}

void put_u64le(std::uint8_t* out, std::uint64_t value) {
  put_u32le(out, static_cast<std::uint32_t>(value));
  put_u32le(out + 4, static_cast<std::uint32_t>(value >> 32));
}

std::uint64_t get_u64le(const std::uint8_t* data) {
  return static_cast<std::uint64_t>(get_u32le(data)) |
         (static_cast<std::uint64_t>(get_u32le(data + 4)) << 32);
}

// Same sorted-unique insertion the prober uses for live records
// (scan/prober.cpp), so the patch overlay reproduces it exactly.
void insert_sorted_unique(std::vector<snmp::EngineId>& engines,
                          const snmp::EngineId& engine) {
  const auto pos =
      std::lower_bound(engines.begin(), engines.end(), engine);
  if (pos == engines.end() || *pos != engine) engines.insert(pos, engine);
}

std::string u64_hex(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
  return buf;
}

std::uint64_t parse_u64_hex(const obs::JsonValue* value) {
  if (value == nullptr || value->kind() != obs::JsonValue::Kind::kString)
    return 0;
  return std::strtoull(value->as_string().c_str(), nullptr, 16);
}

}  // namespace

// ---- RecordStore ----

RecordStore::RecordStore(StoreOptions options, std::string name)
    : RecordStore(std::move(options), std::move(name), /*fresh=*/true) {}

RecordStore::RecordStore(StoreOptions options, std::string name, bool fresh)
    : options_(std::move(options)), name_(std::move(name)) {
  if (options_.records_per_block == 0) options_.records_per_block = 1;
  if (options_.dir.empty() || !fresh) return;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  seg_ = std::fopen(seg_path().c_str(), "wb");
  idx_ = std::fopen(idx_path().c_str(), "wb");
  if (seg_ == nullptr || idx_ == nullptr) {
    // Degraded mode: keep collecting resident (a full disk must not kill
    // a week-long scan), but record the failure so checkpoints know the
    // manifest is not restorable.
    status_ = util::Status::failure("store: cannot create files under " +
                                    options_.dir);
    obs::log_warn("record store spill disabled",
                  {{"store", name_}, {"dir", options_.dir}});
    if (seg_ != nullptr) std::fclose(seg_);
    if (idx_ != nullptr) std::fclose(idx_);
    seg_ = nullptr;
    idx_ = nullptr;
  }
}

RecordStore::~RecordStore() {
  if (seg_ != nullptr) std::fclose(seg_);
  if (idx_ != nullptr) std::fclose(idx_);
  // Hand the resident budget back so the shared gauge tracks live stores.
  options_.telemetry.resident_bytes.add(
      -static_cast<std::int64_t>(resident_bytes_));
}

std::string RecordStore::seg_path() const {
  return options_.dir + "/" + name_ + ".seg";
}

std::string RecordStore::idx_path() const {
  return options_.dir + "/" + name_ + ".idx";
}

std::size_t RecordStore::append(const scan::ScanRecord& record) {
  const std::size_t index = committed_records_ + tail_.size();
  tail_.push_back(record);
  if (tail_.size() >= options_.records_per_block) seal_block();
  return index;
}

void RecordStore::note_duplicate(std::size_t index,
                                 const snmp::EngineId* engine) {
  if (index >= size()) return;
  if (index >= committed_records_) {
    auto& record = tail_[index - committed_records_];
    ++record.response_count;
    if (engine != nullptr) insert_sorted_unique(record.extra_engines, *engine);
    return;
  }
  auto& patch = patches_[index];
  ++patch.extra_responses;
  if (engine != nullptr) insert_sorted_unique(patch.extra_engines, *engine);
  options_.telemetry.patched_records.add();
}

void RecordStore::seal() { seal_block(); }

void RecordStore::seal_block() {
  if (tail_.empty()) return;
  auto encoded = std::make_shared<const util::Bytes>(encode_block(tail_));

  Block block;
  block.offset = committed_bytes_;
  block.bytes = static_cast<std::uint32_t>(encoded->size());
  block.records = static_cast<std::uint32_t>(tail_.size());
  block.crc = get_u32le(encoded->data() + 16);  // payload CRC from header

  if (seg_ != nullptr && status_.ok()) {
    std::uint8_t entry[kIndexEntryBytes];
    put_u64le(entry, block.offset);
    put_u32le(entry + 8, block.bytes);
    put_u32le(entry + 12, block.records);
    put_u32le(entry + 16, block.crc);
    put_u32le(entry + 20, crc32(util::ByteView(entry, 20)));
    const bool wrote =
        std::fwrite(encoded->data(), 1, encoded->size(), seg_) ==
            encoded->size() &&
        std::fflush(seg_) == 0 &&
        std::fwrite(entry, 1, kIndexEntryBytes, idx_) == kIndexEntryBytes &&
        std::fflush(idx_) == 0;
    if (wrote) {
      block.spilled = true;
      spilled_bytes_ += encoded->size();
      options_.telemetry.spilled_blocks.add();
      options_.telemetry.flight.record(
          obs::FlightEventKind::kStoreSpill, 0,
          static_cast<std::int64_t>(encoded->size()), name_);
    } else {
      status_ = util::Status::failure("store: short write to " + seg_path());
      obs::log_warn("record store spill failed, staying resident",
                    {{"store", name_}});
    }
  }

  block.resident = encoded;
  resident_bytes_ += encoded->size();
  committed_records_ += tail_.size();
  committed_bytes_ += encoded->size();
  options_.telemetry.sealed_blocks.add();
  options_.telemetry.resident_bytes.add(
      static_cast<std::int64_t>(encoded->size()));
  blocks_.push_back(std::move(block));
  tail_.clear();
  evict_over_budget();
}

void RecordStore::evict_over_budget() {
  if (options_.max_resident_bytes == 0) return;
  while (resident_bytes_ > options_.max_resident_bytes &&
         evict_cursor_ < blocks_.size()) {
    Block& block = blocks_[evict_cursor_++];
    if (block.resident != nullptr && block.spilled) {
      const std::size_t freed = block.resident->size();
      resident_bytes_ -= freed;
      block.resident.reset();
      options_.telemetry.evicted_blocks.add();
      options_.telemetry.resident_bytes.add(
          -static_cast<std::int64_t>(freed));
      options_.telemetry.flight.record(obs::FlightEventKind::kStoreEvict, 0,
                                       static_cast<std::int64_t>(freed),
                                       name_);
    }
  }
}

util::Status RecordStore::read_block(std::size_t index, std::FILE* file,
                                     std::vector<scan::ScanRecord>& out) const {
  const Block& block = blocks_[index];
  util::Bytes from_disk;
  util::ByteView view;
  // Hold a reference so concurrent readers of a still-resident block stay
  // safe even if the writer has since evicted it.
  const std::shared_ptr<const util::Bytes> resident = block.resident;
  if (resident != nullptr) {
    view = *resident;
  } else {
    if (file == nullptr)
      return util::Status::failure("store: evicted block without segment");
    from_disk.resize(block.bytes);
    if (std::fseek(file, static_cast<long>(block.offset), SEEK_SET) != 0 ||
        std::fread(from_disk.data(), 1, from_disk.size(), file) !=
            from_disk.size())
      return util::Status::failure("store: short read from " + seg_path());
    view = from_disk;
  }
  auto decoded = decode_block(view);
  if (!decoded)
    return util::Status::failure("store: block " + std::to_string(index) +
                                 ": " + decoded.error());
  if (decoded.value().size() != block.records)
    return util::Status::failure("store: block " + std::to_string(index) +
                                 ": record count disagrees with index");
  out = std::move(decoded).value();
  return {};
}

void RecordStore::apply_patches(std::vector<scan::ScanRecord>& records,
                                std::size_t base_index) const {
  if (patches_.empty()) return;
  const auto end = patches_.lower_bound(base_index + records.size());
  for (auto it = patches_.lower_bound(base_index); it != end; ++it) {
    auto& record = records[it->first - base_index];
    record.response_count += it->second.extra_responses;
    for (const auto& engine : it->second.extra_engines)
      insert_sorted_unique(record.extra_engines, engine);
  }
}

void RecordStore::apply_patches_columnar(ColumnarBlock& block,
                                         std::size_t base_index) const {
  if (patches_.empty()) return;
  const auto end = patches_.lower_bound(base_index + block.size());
  for (auto it = patches_.lower_bound(base_index); it != end; ++it) {
    const auto row = static_cast<std::uint32_t>(it->first - base_index);
    block.response_count[row] += it->second.extra_responses;
    if (it->second.extra_engines.empty()) continue;
    // The overlay stays sorted by row: patches iterate in ascending index
    // order, but a decoded block may already carry an entry for this row.
    auto pos = std::lower_bound(
        block.extra_engines.begin(), block.extra_engines.end(), row,
        [](const auto& entry, std::uint32_t r) { return entry.first < r; });
    if (pos == block.extra_engines.end() || pos->first != row)
      pos = block.extra_engines.insert(
          pos, {row, std::vector<snmp::EngineId>()});
    for (const auto& engine : it->second.extra_engines)
      insert_sorted_unique(pos->second, engine);
  }
}

// ---- Cursor ----

RecordStore::Cursor::Cursor(const RecordStore& owner)
    : owner_(&owner), file_(nullptr, std::fclose) {}

bool RecordStore::Cursor::load_block(std::size_t block) {
  const Block& meta = owner_->blocks_[block];
  if (meta.resident == nullptr && file_ == nullptr) {
    file_.reset(std::fopen(owner_->seg_path().c_str(), "rb"));
    if (file_ == nullptr) {
      error_ = "store: cannot open " + owner_->seg_path();
      return false;
    }
  }
  const auto status = owner_->read_block(block, file_.get(), buffer_);
  if (!status.ok()) {
    error_ = status.error();
    return false;
  }
  return true;
}

bool RecordStore::Cursor::next(scan::ScanRecord& out) {
  if (!error_.empty()) return false;
  while (buffer_pos_ >= buffer_.size()) {
    if (block_ < owner_->blocks_.size()) {
      buffer_base_ = next_index_;
      if (!load_block(block_)) return false;
      owner_->apply_patches(buffer_, buffer_base_);
      ++block_;
      buffer_pos_ = 0;
    } else if (block_ == owner_->blocks_.size()) {
      // Open tail: copy, never patched (patches cover sealed blocks only).
      buffer_ = owner_->tail_;
      buffer_base_ = owner_->committed_records_;
      buffer_pos_ = 0;
      ++block_;
    } else {
      return false;
    }
  }
  out = buffer_[buffer_pos_++];
  ++next_index_;
  return true;
}

// ---- ColumnarCursor ----

RecordStore::ColumnarCursor::ColumnarCursor(const RecordStore& owner)
    : owner_(&owner), file_(nullptr, std::fclose) {}

bool RecordStore::ColumnarCursor::next_block(ColumnarBlock& out) {
  if (!error_.empty()) return false;
  if (block_ < owner_->blocks_.size()) {
    const Block& meta = owner_->blocks_[block_];
    // Hold a reference so concurrent readers of a still-resident block
    // stay safe even if the writer has since evicted it.
    const std::shared_ptr<const util::Bytes> resident = meta.resident;
    util::Bytes from_disk;
    util::ByteView view;
    if (resident != nullptr) {
      view = *resident;
    } else {
      if (file_ == nullptr) {
        file_.reset(std::fopen(owner_->seg_path().c_str(), "rb"));
        if (file_ == nullptr) {
          error_ = "store: cannot open " + owner_->seg_path();
          return false;
        }
      }
      from_disk.resize(meta.bytes);
      if (std::fseek(file_.get(), static_cast<long>(meta.offset), SEEK_SET) !=
              0 ||
          std::fread(from_disk.data(), 1, from_disk.size(), file_.get()) !=
              from_disk.size()) {
        error_ = "store: short read from " + owner_->seg_path();
        return false;
      }
      view = from_disk;
    }
    auto decoded = decode_block_columnar(view);
    if (!decoded) {
      error_ = "store: block " + std::to_string(block_) + ": " +
               decoded.error();
      return false;
    }
    if (decoded.value().size() != meta.records) {
      error_ = "store: block " + std::to_string(block_) +
               ": record count disagrees with index";
      return false;
    }
    out = std::move(decoded).value();
    base_ = next_base_;
    next_base_ = base_ + out.size();
    owner_->apply_patches_columnar(out, base_);
    ++block_;
    return true;
  }
  if (block_ == owner_->blocks_.size()) {
    // Open tail: pivoted in place, never patched (patches cover sealed
    // blocks only).
    ++block_;
    if (!owner_->tail_.empty()) {
      out = ColumnarBlock::from_records(owner_->tail_);
      base_ = next_base_;
      next_base_ = base_ + out.size();
      return true;
    }
  }
  return false;
}

util::Status RecordStore::for_each(
    const std::function<void(const scan::ScanRecord&, std::size_t)>& fn)
    const {
  auto cur = cursor();
  scan::ScanRecord record;
  std::size_t index = 0;
  while (cur.next(record)) fn(record, index++);
  if (!cur.error().empty()) return util::Status::failure(cur.error());
  return {};
}

std::vector<scan::ScanRecord> RecordStore::materialize() const {
  std::vector<scan::ScanRecord> records;
  records.reserve(size());
  const auto status = for_each(
      [&records](const scan::ScanRecord& record, std::size_t) {
        records.push_back(record);
      });
  if (!status.ok())
    obs::log_warn("record store materialize stopped early",
                  {{"store", name_}, {"error", status.error()}});
  return records;
}

StoreManifest RecordStore::manifest() const {
  StoreManifest m;
  m.name = name_;
  m.committed_records = committed_records_;
  m.committed_bytes = committed_bytes_;
  m.block_count = blocks_.size();
  if (!tail_.empty()) m.tail_hex = util::to_hex(encode_block(tail_));
  m.patches.reserve(patches_.size());
  for (const auto& [index, patch] : patches_) m.patches.emplace_back(index, patch);
  return m;
}

std::unique_ptr<RecordStore> RecordStore::restore(
    StoreOptions options, const StoreManifest& manifest) {
  const auto fail = [&manifest](const std::string& reason)
      -> std::unique_ptr<RecordStore> {
    obs::log_warn("record store restore failed",
                  {{"store", manifest.name}, {"reason", reason}});
    return nullptr;
  };
  if (options.dir.empty()) return fail("no spill directory");

  auto store = std::unique_ptr<RecordStore>(
      new RecordStore(std::move(options), manifest.name, /*fresh=*/false));

  // Rebuild the block table from the index file, validating each entry's
  // own CRC and that offsets tile the segment exactly.
  if (manifest.block_count != 0) {
    std::FILE* idx = std::fopen(store->idx_path().c_str(), "rb");
    if (idx == nullptr) return fail("missing index file");
    std::uint64_t offset = 0;
    for (std::uint64_t i = 0; i < manifest.block_count; ++i) {
      std::uint8_t entry[kIndexEntryBytes];
      if (std::fread(entry, 1, kIndexEntryBytes, idx) != kIndexEntryBytes) {
        std::fclose(idx);
        return fail("short index file");
      }
      if (get_u32le(entry + 20) != crc32(util::ByteView(entry, 20))) {
        std::fclose(idx);
        return fail("index entry crc mismatch");
      }
      Block block;
      block.offset = get_u64le(entry);
      block.bytes = get_u32le(entry + 8);
      block.records = get_u32le(entry + 12);
      block.crc = get_u32le(entry + 16);
      block.spilled = true;
      if (block.offset != offset || block.records == 0) {
        std::fclose(idx);
        return fail("index does not tile the segment");
      }
      offset += block.bytes;
      store->committed_records_ += block.records;
      store->blocks_.push_back(std::move(block));
    }
    std::fclose(idx);
    if (offset != manifest.committed_bytes)
      return fail("segment length disagrees with manifest");
  }
  if (store->committed_records_ != manifest.committed_records)
    return fail("record count disagrees with manifest");
  store->committed_bytes_ = manifest.committed_bytes;
  store->spilled_bytes_ = manifest.committed_bytes;

  // A crash after the checkpoint boundary can leave blocks the manifest
  // never committed; truncate both files back to the boundary so appends
  // continue from exactly the checkpointed state.
  std::error_code ec;
  const auto seg_size = fs::file_size(store->seg_path(), ec);
  if (ec || seg_size < manifest.committed_bytes)
    return fail("segment file shorter than manifest");
  fs::resize_file(store->seg_path(), manifest.committed_bytes, ec);
  if (ec) return fail("cannot truncate segment");
  fs::resize_file(store->idx_path(), manifest.block_count * kIndexEntryBytes,
                  ec);
  if (ec) return fail("cannot truncate index");
  store->seg_ = std::fopen(store->seg_path().c_str(), "ab");
  store->idx_ = std::fopen(store->idx_path().c_str(), "ab");
  if (store->seg_ == nullptr || store->idx_ == nullptr)
    return fail("cannot reopen for append");

  if (!manifest.tail_hex.empty()) {
    const auto bytes = util::from_hex(manifest.tail_hex);
    if (!bytes) return fail("bad tail hex");
    auto decoded = decode_block(bytes.value());
    if (!decoded) return fail("bad tail block: " + decoded.error());
    store->tail_ = std::move(decoded).value();
  }
  for (const auto& [index, patch] : manifest.patches) {
    if (index >= store->committed_records_)
      return fail("patch index out of range");
    store->patches_[index] = patch;
  }
  return store;
}

void RecordStore::remove_files() {
  if (seg_ != nullptr) {
    std::fclose(seg_);
    seg_ = nullptr;
  }
  if (idx_ != nullptr) {
    std::fclose(idx_);
    idx_ = nullptr;
  }
  if (options_.dir.empty()) return;
  std::error_code ec;
  fs::remove(seg_path(), ec);
  fs::remove(idx_path(), ec);
}

// ---- external merge sort ----

namespace {

bool record_less(SortKey key, const scan::ScanRecord& a,
                 const scan::ScanRecord& b) {
  if (key == SortKey::kSendTimeTarget) {
    // Must match merge_shard_results (scan/campaign.cpp) exactly.
    if (a.send_time != b.send_time) return a.send_time < b.send_time;
    return a.target < b.target;
  }
  return a.target < b.target;
}

}  // namespace

std::size_t sort_chunk_records(const StoreOptions& options) {
  if (options.dir.empty() || options.max_resident_bytes == 0)
    return std::numeric_limits<std::size_t>::max();  // one in-RAM run
  // A run chunk holds decoded ScanRecords (heap engine IDs included, a few
  // hundred bytes each); budget/256 keeps the sort's working set near the
  // resident budget without degenerating into thousands of tiny runs.
  return std::max<std::size_t>(options.max_resident_bytes / 256, 1024);
}

std::unique_ptr<RecordStore> sort_stores(
    const std::vector<const RecordStore*>& sources, SortKey key,
    StoreOptions options, const std::string& name,
    std::size_t chunk_records) {
  if (chunk_records == 0) chunk_records = 1;
  std::vector<std::unique_ptr<RecordStore>> runs;
  const auto cleanup = [&runs] {
    for (auto& run : runs) run->remove_files();
  };

  // Pass 1: cut the concatenated sources into sorted runs of at most
  // `chunk_records` records. Keys are unique within a scan, so plain
  // std::sort is deterministic.
  std::vector<scan::ScanRecord> chunk;
  const auto flush = [&] {
    if (chunk.empty()) return;
    std::sort(chunk.begin(), chunk.end(),
              [key](const scan::ScanRecord& a, const scan::ScanRecord& b) {
                return record_less(key, a, b);
              });
    auto run = std::make_unique<RecordStore>(
        options, name + ".run" + std::to_string(runs.size()));
    for (const auto& record : chunk) run->append(record);
    run->seal();
    runs.push_back(std::move(run));
    chunk.clear();
  };
  for (const auto* source : sources) {
    auto cur = source->cursor();
    scan::ScanRecord record;
    while (cur.next(record)) {
      chunk.push_back(std::move(record));
      if (chunk.size() >= chunk_records) flush();
    }
    if (!cur.error().empty()) {
      obs::log_warn("store sort: damaged source",
                    {{"store", source->name()}, {"error", cur.error()}});
      cleanup();
      return nullptr;
    }
  }
  flush();

  // Pass 2: k-way merge of the runs. Ties cannot happen (unique keys);
  // the run index keeps the comparator a strict weak order regardless.
  auto out = std::make_unique<RecordStore>(std::move(options), name);
  std::vector<RecordStore::Cursor> cursors;
  cursors.reserve(runs.size());
  struct Head {
    scan::ScanRecord record;
    std::size_t run;
  };
  const auto head_after = [key](const Head& a, const Head& b) {
    if (record_less(key, b.record, a.record)) return true;
    if (record_less(key, a.record, b.record)) return false;
    return a.run > b.run;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_after)> heads(
      head_after);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    cursors.push_back(runs[i]->cursor());
    scan::ScanRecord record;
    if (cursors.back().next(record))
      heads.push(Head{std::move(record), i});
  }
  while (!heads.empty()) {
    Head head = heads.top();
    heads.pop();
    out->append(head.record);
    if (cursors[head.run].next(head.record)) {
      heads.push(std::move(head));
    } else if (!cursors[head.run].error().empty()) {
      obs::log_warn("store sort: damaged run",
                    {{"error", cursors[head.run].error()}});
      out->remove_files();
      cleanup();
      return nullptr;
    }
  }
  out->seal();
  cleanup();
  return out;
}

// ---- manifest JSON codec ----

void write_manifest_json(std::string& out, const StoreManifest& manifest) {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("name", manifest.name);
  json.kv("records", u64_hex(manifest.committed_records));
  json.kv("bytes", u64_hex(manifest.committed_bytes));
  json.kv("blocks", u64_hex(manifest.block_count));
  json.kv("tail", manifest.tail_hex);
  json.key("patches").begin_array();
  for (const auto& [index, patch] : manifest.patches) {
    json.begin_object();
    json.kv("index", u64_hex(index));
    json.kv("responses", u64_hex(patch.extra_responses));
    json.key("engines").begin_array();
    for (const auto& engine : patch.extra_engines)
      json.value(engine.to_hex());
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out += json.str();
}

StoreManifest read_manifest_json(const obs::JsonValue& value) {
  StoreManifest manifest;
  if (const auto* name = value.find("name")) manifest.name = name->as_string();
  manifest.committed_records = parse_u64_hex(value.find("records"));
  manifest.committed_bytes = parse_u64_hex(value.find("bytes"));
  manifest.block_count = parse_u64_hex(value.find("blocks"));
  if (const auto* tail = value.find("tail"))
    manifest.tail_hex = tail->as_string();
  if (const auto* patches = value.find("patches"); patches != nullptr &&
      patches->is_array()) {
    for (const auto& entry : patches->items()) {
      RecordPatch patch;
      patch.extra_responses = parse_u64_hex(entry.find("responses"));
      if (const auto* engines = entry.find("engines");
          engines != nullptr && engines->is_array()) {
        for (const auto& engine : engines->items()) {
          const auto bytes = util::from_hex(engine.as_string());
          if (bytes)
            patch.extra_engines.push_back(snmp::EngineId(bytes.value()));
        }
      }
      manifest.patches.emplace_back(parse_u64_hex(entry.find("index")),
                                    std::move(patch));
    }
  }
  return manifest;
}

}  // namespace snmpv3fp::store
