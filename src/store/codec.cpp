#include "store/codec.hpp"

#include <array>

namespace snmpv3fp::store {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32le(util::Bytes& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_u32le(util::ByteView data, std::size_t pos) {
  return static_cast<std::uint32_t>(data[pos]) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 3]) << 24);
}

using DecodeResult = util::Result<std::vector<scan::ScanRecord>>;

bool get_bytes(util::ByteView data, std::size_t& pos, std::size_t count,
               util::ByteView& out) {
  if (count > data.size() - pos) return false;
  out = data.subspan(pos, count);
  pos += count;
  return true;
}

// Reads one length-prefixed engine ID; false on overrun.
bool get_engine(util::ByteView payload, std::size_t& pos,
                snmp::EngineId& out) {
  std::uint64_t length = 0;
  if (!get_varint(payload, pos, length)) return false;
  if (length > payload.size() - pos) return false;
  util::ByteView bytes;
  if (!get_bytes(payload, pos, static_cast<std::size_t>(length), bytes))
    return false;
  out = snmp::EngineId(util::Bytes(bytes.begin(), bytes.end()));
  return true;
}

}  // namespace

std::uint32_t crc32(util::ByteView data, std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data)
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

void put_varint(util::Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool get_varint(util::ByteView data, std::size_t& pos, std::uint64_t& out) {
  std::uint64_t value = 0;
  for (std::size_t shift = 0; shift < 64; shift += 7) {
    if (pos >= data.size()) return false;
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical 10-byte encodings that would overflow.
      if (shift == 63 && byte > 1) return false;
      out = value;
      return true;
    }
  }
  return false;  // unterminated varint
}

util::Bytes encode_block(std::span<const scan::ScanRecord> records) {
  util::Bytes payload;
  payload.reserve(records.size() * 24);
  util::VTime previous_send = 0;
  for (const auto& record : records) {
    if (record.target.is_v4()) {
      payload.push_back(4);
      util::append_be(payload, record.target.v4().value(), 4);
    } else {
      payload.push_back(6);
      const auto& bytes = record.target.v6().bytes();
      payload.insert(payload.end(), bytes.begin(), bytes.end());
    }
    put_varint(payload, record.engine_id.size());
    payload.insert(payload.end(), record.engine_id.raw().begin(),
                   record.engine_id.raw().end());
    put_varint(payload, record.engine_boots);
    put_varint(payload, record.engine_time);
    put_varint(payload, zigzag(record.send_time - previous_send));
    previous_send = record.send_time;
    put_varint(payload, zigzag(record.receive_time - record.send_time));
    put_varint(payload, record.response_count);
    put_varint(payload, record.response_bytes);
    put_varint(payload, record.extra_engines.size());
    for (const auto& engine : record.extra_engines) {
      put_varint(payload, engine.size());
      payload.insert(payload.end(), engine.raw().begin(), engine.raw().end());
    }
  }

  util::Bytes block;
  block.reserve(kBlockHeaderBytes + payload.size());
  put_u32le(block, kBlockMagic);
  put_u32le(block, kCodecVersion);
  put_u32le(block, static_cast<std::uint32_t>(payload.size()));
  put_u32le(block, static_cast<std::uint32_t>(records.size()));
  put_u32le(block, crc32(payload));
  block.insert(block.end(), payload.begin(), payload.end());
  return block;
}

util::Result<std::size_t> peek_block_size(util::ByteView data) {
  using R = util::Result<std::size_t>;
  if (data.size() < kBlockHeaderBytes) return R::failure("short block header");
  if (get_u32le(data, 0) != kBlockMagic) return R::failure("bad block magic");
  if (get_u32le(data, 4) != kCodecVersion)
    return R::failure("unknown codec version");
  const std::uint64_t payload_bytes = get_u32le(data, 8);
  return static_cast<std::size_t>(kBlockHeaderBytes + payload_bytes);
}

util::Result<std::vector<scan::ScanRecord>> decode_block(util::ByteView data) {
  const auto framed = peek_block_size(data);
  if (!framed) return DecodeResult::failure(framed.error());
  if (data.size() != framed.value())
    return DecodeResult::failure("block size mismatch");

  const std::uint32_t record_count = get_u32le(data, 12);
  const std::uint32_t expected_crc = get_u32le(data, 16);
  const util::ByteView payload = data.subspan(kBlockHeaderBytes);
  if (crc32(payload) != expected_crc)
    return DecodeResult::failure("block crc mismatch");
  // Every record costs at least one byte; a count beyond that is damage
  // the CRC happened to miss (or a hostile header) — reject before any
  // allocation sized from it.
  if (record_count > payload.size() && record_count != 0)
    return DecodeResult::failure("implausible record count");

  std::vector<scan::ScanRecord> records;
  records.reserve(record_count);
  std::size_t pos = 0;
  util::VTime previous_send = 0;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    scan::ScanRecord record;
    if (pos >= payload.size())
      return DecodeResult::failure("truncated record");
    const std::uint8_t family = payload[pos++];
    util::ByteView address_bytes;
    if (family == 4) {
      if (!get_bytes(payload, pos, 4, address_bytes))
        return DecodeResult::failure("truncated IPv4 address");
      record.target = net::Ipv4(
          static_cast<std::uint32_t>(util::read_be(address_bytes)));
    } else if (family == 6) {
      if (!get_bytes(payload, pos, 16, address_bytes))
        return DecodeResult::failure("truncated IPv6 address");
      auto parsed = net::Ipv6::from_bytes(address_bytes);
      if (!parsed) return DecodeResult::failure("bad IPv6 address");
      record.target = parsed.value();
    } else {
      return DecodeResult::failure("bad address family");
    }
    if (!get_engine(payload, pos, record.engine_id))
      return DecodeResult::failure("truncated engine ID");
    std::uint64_t value = 0;
    if (!get_varint(payload, pos, value) || value > 0xFFFFFFFFull)
      return DecodeResult::failure("bad engine boots");
    record.engine_boots = static_cast<std::uint32_t>(value);
    if (!get_varint(payload, pos, value) || value > 0xFFFFFFFFull)
      return DecodeResult::failure("bad engine time");
    record.engine_time = static_cast<std::uint32_t>(value);
    if (!get_varint(payload, pos, value))
      return DecodeResult::failure("bad send time");
    record.send_time = previous_send + unzigzag(value);
    previous_send = record.send_time;
    if (!get_varint(payload, pos, value))
      return DecodeResult::failure("bad receive time");
    record.receive_time = record.send_time + unzigzag(value);
    if (!get_varint(payload, pos, value))
      return DecodeResult::failure("bad response count");
    record.response_count = static_cast<std::size_t>(value);
    if (!get_varint(payload, pos, value))
      return DecodeResult::failure("bad response bytes");
    record.response_bytes = static_cast<std::size_t>(value);
    std::uint64_t extra_count = 0;
    if (!get_varint(payload, pos, extra_count) ||
        extra_count > payload.size() - pos)
      return DecodeResult::failure("bad extra-engine count");
    record.extra_engines.reserve(static_cast<std::size_t>(extra_count));
    for (std::uint64_t e = 0; e < extra_count; ++e) {
      snmp::EngineId engine;
      if (!get_engine(payload, pos, engine))
        return DecodeResult::failure("truncated extra engine");
      record.extra_engines.push_back(std::move(engine));
    }
    records.push_back(std::move(record));
  }
  if (pos != payload.size())
    return DecodeResult::failure("trailing payload bytes");
  return records;
}

}  // namespace snmpv3fp::store
