// Columnar (structure-of-arrays) view of a ScanRecord batch.
//
// The analysis funnel is read-heavy: the filter stages and the alias
// grouping touch one or two fields of every record, yet the row layout
// (scan/record.hpp) drags the whole struct — two heap buffers per record —
// through the cache on every pass. A ColumnarBlock pivots a batch into
// per-field column slices: engine IDs are dictionary-encoded (one owning
// EngineId per *distinct* ID, a u32 code per record), everything else is a
// flat primitive array. decode_block_columnar() parses an encoded codec
// block (store/codec.hpp) straight into columns in a single pass, so a
// sealed block is decoded exactly once and never materializes per-record
// ScanRecords at all.
//
// The pivot is lossless: row(i) reconstructs the exact ScanRecord, and
// tests/test_columnar.cpp drives round-trip identity against the row
// decoder, including patch overlays and damaged/truncated blocks (the
// columnar decoder fails closed on everything decode_block rejects).
#pragma once

#include <span>

#include "scan/record.hpp"
#include "store/codec.hpp"
#include "util/result.hpp"

namespace snmpv3fp::store {

// Open-addressing dictionary of engine-ID byte strings -> dense u32 codes,
// assigned in first-appearance order. Shared by the block pivot here and
// the joined-record pivot in core/columnar.hpp; deliberately tiny — the
// whole point of dictionary encoding is that distinct engine IDs number in
// the thousands while records number in the hundreds of millions.
class EngineDictionary {
 public:
  // Code of `raw`, inserting a new entry when unseen. References into
  // `entries()` remain valid (codes are stable, entries only append).
  std::uint32_t encode(util::ByteView raw);
  // Lookup without insertion; returns false when unseen.
  bool find(util::ByteView raw, std::uint32_t& code) const;
  // Pre-size the slot table for `expected` total entries, so a bulk encode
  // pass re-hashes existing entries at most once instead of per doubling.
  void reserve(std::size_t expected);

  const std::vector<snmp::EngineId>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  void grow();
  void rebuild(std::size_t capacity);

  std::vector<snmp::EngineId> entries_;
  // Slot table: code + 1 (0 = empty slot), sized to a power of two kept
  // under 70% load.
  std::vector<std::uint32_t> slots_;
  std::uint64_t mask_ = 0;
};

// FNV-1a over a byte view — the dictionary's hash, exposed so per-code
// hash tables elsewhere agree with it.
std::uint64_t fnv1a(util::ByteView data);

struct ColumnarBlock {
  // Dictionary of distinct engine IDs in first-appearance order;
  // `engine_code[i]` indexes dictionary(). The empty engine ID is an
  // ordinary entry.
  EngineDictionary dict;
  std::vector<std::uint32_t> engine_code;

  std::vector<net::IpAddress> target;
  std::vector<std::uint32_t> engine_boots;
  std::vector<std::uint32_t> engine_time;
  std::vector<util::VTime> send_time;
  std::vector<util::VTime> receive_time;
  std::vector<std::uint64_t> response_count;
  std::vector<std::uint64_t> response_bytes;
  // Extra engines are rare (amplifiers and LB rotation); kept as a sparse
  // (row, engines) overlay sorted by row instead of a per-row column.
  std::vector<std::pair<std::uint32_t, std::vector<snmp::EngineId>>>
      extra_engines;

  std::size_t size() const { return target.size(); }
  const std::vector<snmp::EngineId>& dictionary() const {
    return dict.entries();
  }

  // Derived last reboot, same definition as ScanRecord::last_reboot().
  util::VTime last_reboot(std::size_t i) const {
    return receive_time[i] -
           static_cast<util::VTime>(engine_time[i]) * util::kSecond;
  }

  // Reconstructs row `i` as an owning ScanRecord (engine IDs copied out of
  // the dictionary).
  scan::ScanRecord row(std::size_t i) const;

  // Appends one record, dictionary-encoding its engine ID.
  void append(const scan::ScanRecord& record);

  void clear();

  // Pivots a record batch (tests, in-RAM stores).
  static ColumnarBlock from_records(std::span<const scan::ScanRecord> records);
};

// Single-pass decode of exactly one framed codec block into columns. Fails
// closed on precisely the inputs decode_block rejects (same validation,
// same error surface); never throws, never reads out of bounds.
util::Result<ColumnarBlock> decode_block_columnar(util::ByteView data);

}  // namespace snmpv3fp::store
