// Compact binary codec for ScanRecord batches (the record store's block
// format).
//
// An Internet-wide campaign collects hundreds of millions of ScanRecords;
// keeping them as in-RAM structs (or as checkpoint JSON) costs an order of
// magnitude more memory than the information they carry. A block packs a
// batch of records with varint/delta encoding:
//
//   block   := header payload
//   header  := magic u32le | version u32le | payload_bytes u32le |
//              record_count u32le | crc32 u32le          (20 bytes, fixed)
//   payload := record*
//   record  := family u8 | address bytes (4 or 16) |
//              engine_id (varint len | bytes) |
//              engine_boots varint | engine_time varint |
//              send_time zigzag-varint delta from previous record |
//              receive_time zigzag-varint delta from own send_time |
//              response_count varint | response_bytes varint |
//              extra_engines (varint count | (varint len | bytes)*)
//
// send_time deltas are small (records arrive in receive order at a paced
// send rate) and receive_time sits one RTT after send_time, so both
// collapse to a few bytes. The CRC is over the payload; decode fails
// closed — truncation, bit flips, garbage, oversized fields and trailing
// bytes all return an error, never throw, and never read out of bounds
// (tests/test_store.cpp drives the sim/faults mutation corpus against
// encoded blocks under ASan+UBSan).
#pragma once

#include <span>

#include "scan/record.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snmpv3fp::store {

inline constexpr std::uint32_t kBlockMagic = 0x42523353;  // "S3RB" little-endian
inline constexpr std::uint32_t kCodecVersion = 1;
inline constexpr std::size_t kBlockHeaderBytes = 20;

// CRC-32 (IEEE 802.3 polynomial, reflected), the per-block integrity check.
std::uint32_t crc32(util::ByteView data, std::uint32_t seed = 0);

// LEB128 varint helpers, bounds-checked on the read side.
void put_varint(util::Bytes& out, std::uint64_t value);
bool get_varint(util::ByteView data, std::size_t& pos, std::uint64_t& out);

// Zigzag mapping for signed deltas.
constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// Encodes `records` as one framed block.
util::Bytes encode_block(std::span<const scan::ScanRecord> records);

// Decodes one framed block. The input must be exactly one block (trailing
// bytes are an error). Fails closed with a short reason on any damage.
util::Result<std::vector<scan::ScanRecord>> decode_block(util::ByteView data);

// Header-only probe: validates the fixed header of a block starting at
// `data[0]` without touching the payload; returns the framed size
// (header + payload_bytes) or an error.
util::Result<std::size_t> peek_block_size(util::ByteView data);

}  // namespace snmpv3fp::store
