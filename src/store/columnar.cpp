#include "store/columnar.hpp"

#include <algorithm>

namespace snmpv3fp::store {

std::uint64_t fnv1a(util::ByteView data) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

bool equal_bytes(const util::Bytes& a, util::ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::uint32_t get_u32le(util::ByteView data, std::size_t pos) {
  return static_cast<std::uint32_t>(data[pos]) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 3]) << 24);
}

}  // namespace

// ---- EngineDictionary ----

std::uint32_t EngineDictionary::encode(util::ByteView raw) {
  if (slots_.empty()) grow();
  std::uint64_t slot = fnv1a(raw) & mask_;
  for (;;) {
    const std::uint32_t entry = slots_[slot];
    if (entry == 0) break;
    if (equal_bytes(entries_[entry - 1].raw(), raw)) return entry - 1;
    slot = (slot + 1) & mask_;
  }
  const auto code = static_cast<std::uint32_t>(entries_.size());
  entries_.emplace_back(util::Bytes(raw.begin(), raw.end()));
  slots_[slot] = code + 1;
  // Keep the table under ~70% load so probe chains stay short.
  if ((entries_.size() + 1) * 10 >= slots_.size() * 7) grow();
  return code;
}

bool EngineDictionary::find(util::ByteView raw, std::uint32_t& code) const {
  if (slots_.empty()) return false;
  std::uint64_t slot = fnv1a(raw) & mask_;
  for (;;) {
    const std::uint32_t entry = slots_[slot];
    if (entry == 0) return false;
    if (equal_bytes(entries_[entry - 1].raw(), raw)) {
      code = entry - 1;
      return true;
    }
    slot = (slot + 1) & mask_;
  }
}

void EngineDictionary::reserve(std::size_t expected) {
  std::size_t capacity = slots_.empty() ? 64 : slots_.size();
  while ((expected + 1) * 10 >= capacity * 7) capacity *= 2;
  if (capacity > slots_.size()) rebuild(capacity);
}

void EngineDictionary::grow() {
  rebuild(slots_.empty() ? 64 : slots_.size() * 2);
}

void EngineDictionary::rebuild(std::size_t capacity) {
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (std::size_t code = 0; code < entries_.size(); ++code) {
    std::uint64_t slot = fnv1a(entries_[code].raw()) & mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = static_cast<std::uint32_t>(code) + 1;
  }
}

// ---- ColumnarBlock ----

void ColumnarBlock::clear() {
  dict = EngineDictionary();
  engine_code.clear();
  target.clear();
  engine_boots.clear();
  engine_time.clear();
  send_time.clear();
  receive_time.clear();
  response_count.clear();
  response_bytes.clear();
  extra_engines.clear();
}

scan::ScanRecord ColumnarBlock::row(std::size_t i) const {
  scan::ScanRecord record;
  record.target = target[i];
  record.engine_id = dictionary()[engine_code[i]];
  record.engine_boots = engine_boots[i];
  record.engine_time = engine_time[i];
  record.send_time = send_time[i];
  record.receive_time = receive_time[i];
  record.response_count = static_cast<std::size_t>(response_count[i]);
  record.response_bytes = static_cast<std::size_t>(response_bytes[i]);
  const auto it = std::lower_bound(
      extra_engines.begin(), extra_engines.end(), i,
      [](const auto& entry, std::size_t row) { return entry.first < row; });
  if (it != extra_engines.end() && it->first == i)
    record.extra_engines = it->second;
  return record;
}

void ColumnarBlock::append(const scan::ScanRecord& record) {
  const auto row_index = static_cast<std::uint32_t>(size());
  engine_code.push_back(dict.encode(record.engine_id.raw()));
  target.push_back(record.target);
  engine_boots.push_back(record.engine_boots);
  engine_time.push_back(record.engine_time);
  send_time.push_back(record.send_time);
  receive_time.push_back(record.receive_time);
  response_count.push_back(record.response_count);
  response_bytes.push_back(record.response_bytes);
  if (!record.extra_engines.empty())
    extra_engines.emplace_back(row_index, record.extra_engines);
}

ColumnarBlock ColumnarBlock::from_records(
    std::span<const scan::ScanRecord> records) {
  ColumnarBlock block;
  block.engine_code.reserve(records.size());
  block.target.reserve(records.size());
  block.engine_boots.reserve(records.size());
  block.engine_time.reserve(records.size());
  block.send_time.reserve(records.size());
  block.receive_time.reserve(records.size());
  block.response_count.reserve(records.size());
  block.response_bytes.reserve(records.size());
  for (const auto& record : records) block.append(record);
  return block;
}

// ---- single-pass columnar block decode ----

util::Result<ColumnarBlock> decode_block_columnar(util::ByteView data) {
  using R = util::Result<ColumnarBlock>;
  const auto framed = peek_block_size(data);
  if (!framed) return R::failure(framed.error());
  if (data.size() != framed.value()) return R::failure("block size mismatch");

  const std::uint32_t record_count = get_u32le(data, 12);
  const std::uint32_t expected_crc = get_u32le(data, 16);
  const util::ByteView payload = data.subspan(kBlockHeaderBytes);
  if (crc32(payload) != expected_crc) return R::failure("block crc mismatch");
  // Same hostile-header guard as decode_block: reject counts the payload
  // cannot possibly hold before sizing any allocation from them.
  if (record_count > payload.size() && record_count != 0)
    return R::failure("implausible record count");

  ColumnarBlock block;
  block.engine_code.reserve(record_count);
  block.target.reserve(record_count);
  block.engine_boots.reserve(record_count);
  block.engine_time.reserve(record_count);
  block.send_time.reserve(record_count);
  block.receive_time.reserve(record_count);
  block.response_count.reserve(record_count);
  block.response_bytes.reserve(record_count);

  std::size_t pos = 0;
  util::VTime previous_send = 0;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    if (pos >= payload.size()) return R::failure("truncated record");
    const std::uint8_t family = payload[pos++];
    if (family == 4) {
      if (payload.size() - pos < 4) return R::failure("truncated IPv4 address");
      block.target.emplace_back(net::Ipv4(
          static_cast<std::uint32_t>(util::read_be(payload.subspan(pos, 4)))));
      pos += 4;
    } else if (family == 6) {
      if (payload.size() - pos < 16)
        return R::failure("truncated IPv6 address");
      auto parsed = net::Ipv6::from_bytes(payload.subspan(pos, 16));
      if (!parsed) return R::failure("bad IPv6 address");
      block.target.emplace_back(parsed.value());
      pos += 16;
    } else {
      return R::failure("bad address family");
    }
    std::uint64_t value = 0;
    if (!get_varint(payload, pos, value) || value > payload.size() - pos)
      return R::failure("truncated engine ID");
    // The dictionary is the columnar win: the ID's bytes are hashed in
    // place and only ever copied once per *distinct* engine ID.
    block.engine_code.push_back(
        block.dict.encode(payload.subspan(pos, static_cast<std::size_t>(value))));
    pos += static_cast<std::size_t>(value);
    if (!get_varint(payload, pos, value) || value > 0xFFFFFFFFull)
      return R::failure("bad engine boots");
    block.engine_boots.push_back(static_cast<std::uint32_t>(value));
    if (!get_varint(payload, pos, value) || value > 0xFFFFFFFFull)
      return R::failure("bad engine time");
    block.engine_time.push_back(static_cast<std::uint32_t>(value));
    if (!get_varint(payload, pos, value)) return R::failure("bad send time");
    previous_send += unzigzag(value);
    block.send_time.push_back(previous_send);
    if (!get_varint(payload, pos, value)) return R::failure("bad receive time");
    block.receive_time.push_back(previous_send + unzigzag(value));
    if (!get_varint(payload, pos, value))
      return R::failure("bad response count");
    block.response_count.push_back(value);
    if (!get_varint(payload, pos, value))
      return R::failure("bad response bytes");
    block.response_bytes.push_back(value);
    std::uint64_t extra_count = 0;
    if (!get_varint(payload, pos, extra_count) ||
        extra_count > payload.size() - pos)
      return R::failure("bad extra-engine count");
    if (extra_count != 0) {
      std::vector<snmp::EngineId> engines;
      engines.reserve(static_cast<std::size_t>(extra_count));
      for (std::uint64_t e = 0; e < extra_count; ++e) {
        std::uint64_t length = 0;
        if (!get_varint(payload, pos, length) ||
            length > payload.size() - pos)
          return R::failure("truncated extra engine");
        const auto bytes = payload.subspan(
            pos, static_cast<std::size_t>(length));
        engines.emplace_back(util::Bytes(bytes.begin(), bytes.end()));
        pos += static_cast<std::size_t>(length);
      }
      block.extra_engines.emplace_back(i, std::move(engines));
    }
  }
  if (pos != payload.size()) return R::failure("trailing payload bytes");
  return block;
}

}  // namespace snmpv3fp::store
