// Append-only, spill-to-disk ScanRecord store with bounded resident RAM.
//
// The campaign's per-shard record vectors are the binding constraint at
// census scale: record volume, not CPU (ROADMAP "Streaming record store").
// A RecordStore packs appended records into codec blocks (store/codec.hpp).
// Sealed blocks are written to an append-only segment file plus a
// fixed-size block index file, and stay resident (encoded) only up to
// `StoreOptions::max_resident_bytes` — beyond that the oldest spilled
// blocks are evicted and re-read on demand. With the default options
// (no spill directory, unbounded resident budget) everything stays in RAM
// and behaves exactly like the historical vectors.
//
// Layout on disk, per store `name`:
//   <dir>/<name>.seg   concatenated codec blocks (append-only)
//   <dir>/<name>.idx   one fixed 24-byte entry per sealed block:
//                      offset u64le | bytes u32le | records u32le |
//                      payload crc u32le | entry crc u32le
//
// Incremental checkpointing: both files only ever grow, so a campaign
// boundary persists just the committed counters, the open tail (encoded as
// one block) and the duplicate-response patch overlay — O(records since
// the last boundary), never O(records collected) (StoreManifest,
// scan/checkpoint.hpp). restore() reopens the files, truncates anything
// past the manifest (a crash can leave blocks the checkpoint never
// committed) and continues appending bit-identically.
//
// Concurrency: one writer thread per store (the owning shard); any number
// of Cursors may read a store after writing has finished. Cursors hold an
// independent file handle and decode one block at a time, so a full-store
// scan needs O(block) memory.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "scan/record.hpp"
#include "store/codec.hpp"
#include "util/result.hpp"

namespace snmpv3fp::obs {
class JsonValue;
}

namespace snmpv3fp::store {

struct ColumnarBlock;

// Execution-only store instrumentation (values the store already tracks
// internally, exported to the metrics registry / flight recorder when a
// run is observed). Default-constructed handles are no-ops; the campaign
// registers the metrics on the orchestrating thread and copies the bundle
// into each shard's StoreOptions, so the gauge/counters aggregate across
// shards while flight events stay per-shard.
struct StoreTelemetry {
  obs::Gauge resident_bytes;     // encoded sealed blocks held in RAM
  obs::Counter sealed_blocks;    // blocks sealed (spilled or resident)
  obs::Counter spilled_blocks;   // blocks safely written to disk
  obs::Counter evicted_blocks;   // resident copies dropped under budget
  obs::Counter patched_records;  // post-seal duplicate patches
  obs::FlightHandle flight;      // spill/evict events for the ring
};

struct StoreOptions {
  // Spill directory. Empty = RAM-only: blocks are never written to disk
  // and never evicted (max_resident_bytes is ignored), which preserves
  // today's all-in-RAM behaviour.
  std::string dir;
  // Resident budget for encoded sealed blocks. 0 = unbounded. Only blocks
  // that are safely on disk are ever evicted.
  std::size_t max_resident_bytes = 0;
  // Records per sealed block: the codec batch size and the granularity of
  // spill, eviction and cursor reads.
  std::size_t records_per_block = 512;
  // Observability hooks; all no-ops by default. Never affects behaviour.
  StoreTelemetry telemetry;
};

// Per-record updates that arrived after the record's block was sealed
// (duplicate/amplified responses): applied as an overlay at read time, so
// sealed blocks stay immutable and their CRCs stay valid.
struct RecordPatch {
  std::uint64_t extra_responses = 0;
  std::vector<snmp::EngineId> extra_engines;  // sorted unique
};

// Everything a checkpoint needs to re-adopt a store: committed counters
// (the block index and segment live in the store's own files), the open
// tail encoded as one codec block, and the patch overlay.
struct StoreManifest {
  std::string name;
  std::uint64_t committed_records = 0;
  std::uint64_t committed_bytes = 0;
  std::uint64_t block_count = 0;
  std::string tail_hex;  // encode_block(tail) as hex; "" = empty tail
  std::vector<std::pair<std::uint64_t, RecordPatch>> patches;  // by index
};

class RecordStore {
 public:
  // Creates a fresh, empty store; truncates any files a previous run left
  // under the same name. `name` must be a plain filename stem.
  RecordStore(StoreOptions options, std::string name);
  ~RecordStore();
  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  // Reopens a store from a checkpoint manifest; the segment and index
  // files must exist under `options.dir`. Returns nullptr (after logging)
  // when the files do not match the manifest.
  static std::unique_ptr<RecordStore> restore(StoreOptions options,
                                              const StoreManifest& manifest);

  // Sticky I/O error state; a store that failed to spill keeps accepting
  // appends resident (degraded, but a scan never dies on a full disk).
  const util::Status& status() const { return status_; }

  std::size_t size() const { return committed_records_ + tail_.size(); }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t committed_records() const { return committed_records_; }
  std::uint64_t committed_bytes() const { return committed_bytes_; }
  // Encoded bytes of sealed blocks currently held in RAM.
  std::size_t resident_bytes() const { return resident_bytes_; }
  std::uint64_t spilled_bytes() const { return spilled_bytes_; }
  std::size_t patch_count() const { return patches_.size(); }
  const StoreOptions& options() const { return options_; }
  const std::string& name() const { return name_; }

  // Appends one record; returns its index. Seals a block automatically
  // every `records_per_block` appends.
  std::size_t append(const scan::ScanRecord& record);

  // Accounts a duplicate response for record `index` — mirrors the
  // historical in-place mutation: response_count increments, and `engine`
  // (pass nullptr when it matches the record's primary engine ID) joins
  // the record's extra-engine set.
  void note_duplicate(std::size_t index, const snmp::EngineId* engine);

  // Seals the open tail into a (possibly short) block. Call once when a
  // scan finishes; append() may not be called afterwards.
  void seal();

  // Streaming reader; see class comment for the concurrency contract.
  class Cursor {
   public:
    // Yields the next record (patches applied) in append order; false at
    // end of store or on a read/decode error (check error()).
    bool next(scan::ScanRecord& out);
    // Index of the next record next() would yield.
    std::size_t index() const { return next_index_; }
    const std::string& error() const { return error_; }

   private:
    friend class RecordStore;
    explicit Cursor(const RecordStore& owner);
    bool load_block(std::size_t block);

    const RecordStore* owner_;
    std::size_t next_index_ = 0;
    std::size_t block_ = 0;            // next block to load
    std::size_t buffer_base_ = 0;      // global index of buffer_[0]
    std::vector<scan::ScanRecord> buffer_;
    std::size_t buffer_pos_ = 0;
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
    std::string error_;
  };
  Cursor cursor() const { return Cursor(*this); }

  // Streaming columnar reader (store/columnar.hpp): yields one pivoted
  // block at a time in append order, decoding each sealed block straight
  // into columns (decoded exactly once, no per-record materialization)
  // with the patch overlay applied. Same concurrency contract as Cursor.
  class ColumnarCursor {
   public:
    // Replaces `out` with the next block; false at end of store or on a
    // read/decode error (check error()).
    bool next_block(ColumnarBlock& out);
    // Global record index of row 0 of the block last returned.
    std::size_t base() const { return base_; }
    const std::string& error() const { return error_; }

   private:
    friend class RecordStore;
    explicit ColumnarCursor(const RecordStore& owner);

    const RecordStore* owner_;
    std::size_t block_ = 0;  // next block to load; blocks_.size() = tail
    std::size_t base_ = 0;
    std::size_t next_base_ = 0;
    std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
    std::string error_;
  };
  ColumnarCursor columnar_cursor() const { return ColumnarCursor(*this); }

  // Applies `fn(record, index)` to every record in append order; fails
  // closed on a damaged block.
  util::Status for_each(
      const std::function<void(const scan::ScanRecord&, std::size_t)>& fn)
      const;

  // Reads the whole store back into a vector (tests, compatibility paths).
  std::vector<scan::ScanRecord> materialize() const;

  // Checkpoint manifest: O(tail + patches), not O(records). The segment
  // and index files are already flushed through the last sealed block.
  StoreManifest manifest() const;

  // Closes and deletes the store's files (campaign cleanup).
  void remove_files();

 private:
  struct Block {
    std::uint64_t offset = 0;
    std::uint32_t bytes = 0;
    std::uint32_t records = 0;
    std::uint32_t crc = 0;
    bool spilled = false;
    // Encoded block kept resident; null once evicted (re-read from disk).
    std::shared_ptr<const util::Bytes> resident;
  };

  RecordStore(StoreOptions options, std::string name, bool fresh);
  std::string seg_path() const;
  std::string idx_path() const;
  void seal_block();
  void evict_over_budget();
  // Fetches (from RAM or disk) and decodes block `index` into `out`.
  util::Status read_block(std::size_t index, std::FILE* file,
                          std::vector<scan::ScanRecord>& out) const;
  void apply_patches(std::vector<scan::ScanRecord>& records,
                     std::size_t base_index) const;
  void apply_patches_columnar(ColumnarBlock& block,
                              std::size_t base_index) const;

  StoreOptions options_;
  std::string name_;
  std::vector<Block> blocks_;
  std::vector<scan::ScanRecord> tail_;
  std::map<std::size_t, RecordPatch> patches_;
  std::size_t committed_records_ = 0;
  std::uint64_t committed_bytes_ = 0;
  std::size_t resident_bytes_ = 0;
  std::uint64_t spilled_bytes_ = 0;
  std::size_t evict_cursor_ = 0;
  std::FILE* seg_ = nullptr;
  std::FILE* idx_ = nullptr;
  util::Status status_;
};

// Sort key for external store sorts.
enum class SortKey : std::uint8_t {
  kSendTimeTarget,  // (send_time, target): the merged probe-order sort
  kAddress,         // target address: the join's merge key
};

// External merge sort with bounded RAM: streams `sources` in order,
// produces sorted runs of at most `chunk_records` records, and k-way
// merges them into a fresh store `name` built with `options`. Patch
// overlays are folded into the output records. Returns nullptr (after
// logging) when a source block is damaged.
std::unique_ptr<RecordStore> sort_stores(
    const std::vector<const RecordStore*>& sources, SortKey key,
    StoreOptions options, const std::string& name, std::size_t chunk_records);

// Chunk size that keeps a sort's working set around `max_resident_bytes`
// (unbounded budget = one in-RAM run, like the historical sort).
std::size_t sort_chunk_records(const StoreOptions& options);

// Manifest JSON codec (used by scan/checkpoint.cpp). The writer appends
// one JSON object to `out`; the reader tolerates missing fields (zeros).
void write_manifest_json(std::string& out, const StoreManifest& manifest);
StoreManifest read_manifest_json(const obs::JsonValue& value);

}  // namespace snmpv3fp::store
