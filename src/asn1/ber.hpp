// ASN.1 Basic Encoding Rules, the subset SNMP needs (RFC 1157 §3.2 and
// X.690): definite-length TLVs for INTEGER, OCTET STRING, NULL, OBJECT
// IDENTIFIER, SEQUENCE, and context-class tags for PDU selection.
//
// Encoding is infallible; decoding takes untrusted bytes off the wire and
// therefore returns Result<> and never reads out of bounds (every access
// goes through a remaining-length check).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace snmpv3fp::asn1 {

using util::Bytes;
using util::ByteView;
using util::Result;

// Universal tags used by SNMP.
inline constexpr std::uint8_t kTagInteger = 0x02;
inline constexpr std::uint8_t kTagOctetString = 0x04;
inline constexpr std::uint8_t kTagNull = 0x05;
inline constexpr std::uint8_t kTagOid = 0x06;
inline constexpr std::uint8_t kTagSequence = 0x30;
// SNMP application tags.
inline constexpr std::uint8_t kTagCounter32 = 0x41;
inline constexpr std::uint8_t kTagTimeTicks = 0x43;
// Context-class constructed tag n (PDU selectors).
constexpr std::uint8_t context_tag(std::uint8_t n) {
  return static_cast<std::uint8_t>(0xa0 | n);
}

// Object identifier as its component list, e.g. {1,3,6,1,6,3,15,1,1,3,0}.
using Oid = std::vector<std::uint32_t>;

std::string oid_to_string(const Oid& oid);  // "1.3.6.1.6.3.15.1.1.3.0"

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

// Appends the BER definite length encoding of `length`.
void write_length(Bytes& out, std::size_t length);

// Appends tag + length + content.
void write_tlv(Bytes& out, std::uint8_t tag, ByteView content);

Bytes encode_integer(std::int64_t value);
// Unsigned variant for Counter32/TimeTicks-style values (tag selectable).
Bytes encode_unsigned(std::uint64_t value, std::uint8_t tag);
Bytes encode_octet_string(ByteView value);
Bytes encode_null();
Bytes encode_oid(const Oid& oid);

// Accumulates already-encoded children and wraps them in a constructed TLV.
class SequenceBuilder {
 public:
  SequenceBuilder& add(ByteView encoded_child);
  SequenceBuilder& add(const Bytes& encoded_child);
  Bytes finish(std::uint8_t tag = kTagSequence) const;

 private:
  Bytes content_;
};

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Tlv {
  std::uint8_t tag = 0;
  ByteView content;  // view into the Reader's underlying buffer
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  bool at_end() const { return pos_ >= data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  // Reads the next TLV header + content. Rejects indefinite lengths,
  // truncated headers and content that overruns the buffer.
  Result<Tlv> read_tlv();

  // Reads the next TLV and requires its tag to equal `tag`.
  Result<Tlv> expect(std::uint8_t tag);

  // Typed readers; each checks the universal tag.
  Result<std::int64_t> read_integer();
  Result<std::uint64_t> read_unsigned(std::uint8_t tag = kTagInteger);
  Result<ByteView> read_octet_string();
  util::Status read_null();
  Result<Oid> read_oid();

  // Reads a constructed TLV with tag `tag` and returns a Reader over its
  // content, for descending into SEQUENCEs / context PDUs.
  Result<Reader> enter(std::uint8_t tag = kTagSequence);

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

// Decodes an integer content (post-TLV) honoring two's complement.
Result<std::int64_t> decode_integer_content(ByteView content);
Result<Oid> decode_oid_content(ByteView content);

}  // namespace snmpv3fp::asn1
