#include "asn1/ber.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace snmpv3fp::asn1 {

namespace {

// Encoded width of a definite length field (what write_length will emit).
std::size_t length_size(std::size_t length) {
  if (length < 0x80) return 1;
  std::size_t n = 0;
  while (length > 0) {
    length >>= 8;
    ++n;
  }
  return 1 + n;
}

}  // namespace

std::string oid_to_string(const Oid& oid) {
  std::string out;
  for (std::size_t i = 0; i < oid.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(oid[i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

void write_length(Bytes& out, std::size_t length) {
  if (length < 0x80) {
    out.push_back(static_cast<std::uint8_t>(length));
    return;
  }
  // Long form; the digit count fits a stack buffer (sizeof(size_t) <= 8).
  std::array<std::uint8_t, sizeof(std::size_t)> digits;
  std::size_t n = 0;
  std::size_t v = length;
  while (v > 0) {
    digits[n++] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | n));
  while (n > 0) out.push_back(digits[--n]);
}

void write_tlv(Bytes& out, std::uint8_t tag, ByteView content) {
  out.reserve(out.size() + 1 + length_size(content.size()) + content.size());
  out.push_back(tag);
  write_length(out, content.size());
  out.insert(out.end(), content.begin(), content.end());
}

Bytes encode_integer(std::int64_t value) {
  // Minimal two's-complement big-endian content, built on the stack.
  std::array<std::uint8_t, 8> content;
  std::size_t n = 0;
  bool more = true;
  while (more) {
    const auto byte = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;  // arithmetic shift keeps the sign
    // Done when the remaining value is pure sign extension of this byte.
    more = !((value == 0 && (byte & 0x80) == 0) ||
             (value == -1 && (byte & 0x80) != 0));
    content[n++] = byte;
  }
  Bytes out;
  out.reserve(2 + n);
  out.push_back(kTagInteger);
  out.push_back(static_cast<std::uint8_t>(n));
  while (n > 0) out.push_back(content[--n]);
  return out;
}

Bytes encode_unsigned(std::uint64_t value, std::uint8_t tag) {
  std::array<std::uint8_t, 9> content;
  std::size_t n = 0;
  do {
    content[n++] = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  } while (value > 0);
  // A leading 1-bit would read as negative: prepend 0x00.
  if (content[n - 1] & 0x80) content[n++] = 0x00;
  Bytes out;
  out.reserve(2 + n);
  out.push_back(tag);
  out.push_back(static_cast<std::uint8_t>(n));
  while (n > 0) out.push_back(content[--n]);
  return out;
}

Bytes encode_octet_string(ByteView value) {
  Bytes out;
  write_tlv(out, kTagOctetString, value);
  return out;
}

Bytes encode_null() {
  Bytes out;
  write_tlv(out, kTagNull, {});
  return out;
}

Bytes encode_oid(const Oid& oid) {
  assert(oid.size() >= 2 && oid[0] <= 2 && oid[1] < 40);
  // Precompute the content width so the TLV lands in one allocation.
  std::size_t content_size = 1;
  for (std::size_t i = 2; i < oid.size(); ++i) {
    std::uint32_t v = oid[i];
    do {
      ++content_size;
      v >>= 7;
    } while (v > 0);
  }
  Bytes out;
  out.reserve(1 + length_size(content_size) + content_size);
  out.push_back(kTagOid);
  write_length(out, content_size);
  out.push_back(static_cast<std::uint8_t>(oid[0] * 40 + oid[1]));
  for (std::size_t i = 2; i < oid.size(); ++i) {
    // Base-128, high bit marks continuation; a 32-bit arc is <= 5 chunks.
    const std::uint32_t v = oid[i];
    std::array<std::uint8_t, 5> chunk;
    std::size_t n = 0;
    std::uint32_t rest = v;
    chunk[n++] = static_cast<std::uint8_t>(rest & 0x7f);
    rest >>= 7;
    while (rest > 0) {
      chunk[n++] = static_cast<std::uint8_t>(0x80 | (rest & 0x7f));
      rest >>= 7;
    }
    while (n > 0) out.push_back(chunk[--n]);
  }
  return out;
}

SequenceBuilder& SequenceBuilder::add(ByteView encoded_child) {
  content_.insert(content_.end(), encoded_child.begin(), encoded_child.end());
  return *this;
}

SequenceBuilder& SequenceBuilder::add(const Bytes& encoded_child) {
  return add(ByteView(encoded_child));
}

Bytes SequenceBuilder::finish(std::uint8_t tag) const {
  Bytes out;
  write_tlv(out, tag, content_);
  return out;
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

Result<Tlv> Reader::read_tlv() {
  if (remaining() < 2) return Result<Tlv>::failure("truncated TLV header");
  const std::uint8_t tag = data_[pos_];
  if ((tag & 0x1f) == 0x1f)
    return Result<Tlv>::failure("multi-byte tags unsupported");
  std::size_t cursor = pos_ + 1;
  std::uint8_t first_len = data_[cursor++];
  std::size_t length = 0;
  if (first_len < 0x80) {
    length = first_len;
  } else {
    const std::size_t num_bytes = first_len & 0x7f;
    if (num_bytes == 0) return Result<Tlv>::failure("indefinite length");
    if (num_bytes > sizeof(std::size_t))
      return Result<Tlv>::failure("length too large");
    if (data_.size() - cursor < num_bytes)
      return Result<Tlv>::failure("truncated long length");
    for (std::size_t i = 0; i < num_bytes; ++i)
      length = (length << 8) | data_[cursor++];
  }
  if (data_.size() - cursor < length)
    return Result<Tlv>::failure("content overruns buffer");
  Tlv tlv;
  tlv.tag = tag;
  tlv.content = data_.subspan(cursor, length);
  pos_ = cursor + length;
  return tlv;
}

Result<Tlv> Reader::expect(std::uint8_t tag) {
  auto tlv = read_tlv();
  if (!tlv) return tlv;
  if (tlv.value().tag != tag)
    return Result<Tlv>::failure("unexpected tag " +
                                std::to_string(tlv.value().tag) + ", wanted " +
                                std::to_string(tag));
  return tlv;
}

Result<std::int64_t> decode_integer_content(ByteView content) {
  if (content.empty())
    return Result<std::int64_t>::failure("empty INTEGER content");
  if (content.size() > 8)
    return Result<std::int64_t>::failure("INTEGER too wide");
  // Sign-extend from the first byte.
  std::int64_t value = (content[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : content) value = (value << 8) | b;
  return value;
}

Result<std::int64_t> Reader::read_integer() {
  auto tlv = expect(kTagInteger);
  if (!tlv) return Result<std::int64_t>::failure(tlv.error());
  return decode_integer_content(tlv.value().content);
}

Result<std::uint64_t> Reader::read_unsigned(std::uint8_t tag) {
  auto tlv = expect(tag);
  if (!tlv) return Result<std::uint64_t>::failure(tlv.error());
  const ByteView content = tlv.value().content;
  if (content.empty())
    return Result<std::uint64_t>::failure("empty unsigned content");
  if (content.size() > 9 || (content.size() == 9 && content[0] != 0))
    return Result<std::uint64_t>::failure("unsigned too wide");
  std::uint64_t value = 0;
  for (std::uint8_t b : content) value = (value << 8) | b;
  return value;
}

Result<ByteView> Reader::read_octet_string() {
  auto tlv = expect(kTagOctetString);
  if (!tlv) return Result<ByteView>::failure(tlv.error());
  return tlv.value().content;
}

util::Status Reader::read_null() {
  auto tlv = expect(kTagNull);
  if (!tlv) return util::Status::failure(tlv.error());
  if (!tlv.value().content.empty())
    return util::Status::failure("NULL with non-empty content");
  return {};
}

Result<Oid> decode_oid_content(ByteView content) {
  if (content.empty()) return Result<Oid>::failure("empty OID content");
  Oid oid;
  const std::uint8_t head = content[0];
  oid.push_back(std::min<std::uint32_t>(head / 40, 2));
  oid.push_back(oid[0] == 2 ? head - 80 : head % 40);
  std::uint32_t acc = 0;
  int continuation = 0;
  for (std::size_t i = 1; i < content.size(); ++i) {
    const std::uint8_t b = content[i];
    if (continuation > 4) return Result<Oid>::failure("OID arc too wide");
    acc = (acc << 7) | (b & 0x7f);
    if (b & 0x80) {
      ++continuation;
    } else {
      oid.push_back(acc);
      acc = 0;
      continuation = 0;
    }
  }
  if (continuation != 0) return Result<Oid>::failure("truncated OID arc");
  return oid;
}

Result<Oid> Reader::read_oid() {
  auto tlv = expect(kTagOid);
  if (!tlv) return Result<Oid>::failure(tlv.error());
  return decode_oid_content(tlv.value().content);
}

Result<Reader> Reader::enter(std::uint8_t tag) {
  auto tlv = expect(tag);
  if (!tlv) return Result<Reader>::failure(tlv.error());
  return Reader(tlv.value().content);
}

}  // namespace snmpv3fp::asn1
