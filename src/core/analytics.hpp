// Deployment analytics over alias sets (paper §4.2-§6.5 and appendices).
//
// Each function computes the data behind one of the paper's figures; the
// bench binaries format and print them. Everything works on three inputs:
// scan records (raw), joined records (two-scan), and annotated DeviceRecords
// (one per alias set, with vendor / router tag / AS / region).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/alias.hpp"
#include "core/fingerprint.hpp"
#include "net/as_table.hpp"
#include "util/stats.hpp"

namespace snmpv3fp::core {

using AddressSet = std::unordered_set<net::IpAddress>;

enum class StackClass : std::uint8_t { kV4Only, kV6Only, kDualStack };

std::string_view to_string(StackClass stack);

// One de-aliased device: an alias set annotated with everything the
// deployment analyses need. Holds a pointer into the AliasResolution it
// was built from — keep that resolution alive.
struct DeviceRecord {
  const AliasSet* set = nullptr;
  Fingerprint fingerprint;
  StackClass stack = StackClass::kV4Only;
  bool is_router = false;                // >= 1 address in a router dataset
  std::optional<net::AsInfo> as_info;    // from the first address
  util::VTime last_reboot = 0;
};

std::vector<DeviceRecord> annotate_devices(const AliasResolution& resolution,
                                           const net::AsTable& as_table,
                                           const AddressSet& router_addresses);

// ---- Figure 4: number of IPs per engine ID (per family) -------------------
util::Ecdf ips_per_engine_id(std::span<const JoinedRecord> records);

// ---- Figure 5: engine-ID format shares over unique engine IDs -------------
util::Tally engine_id_format_shares(std::span<const JoinedRecord> records);

// ---- Figure 6: relative Hamming weights of a format's unique engine IDs ---
std::vector<double> relative_hamming_weights(
    std::span<const JoinedRecord> records, snmp::EngineIdFormat format);

// ---- Figure 7: last-reboot spread of the k most-shared engine IDs ---------
struct SharedEngineId {
  snmp::EngineId engine_id;
  std::size_t address_count = 0;
  util::Ecdf last_reboots;  // one sample per IP, in days before epoch
};
std::vector<SharedEngineId> top_shared_engine_ids(
    std::span<const JoinedRecord> records, std::size_t k);

// ---- Figure 8: |delta last reboot| between scans ---------------------------
util::Ecdf reboot_delta_ecdf(std::span<const JoinedRecord> records,
                             const AddressSet* only_addresses = nullptr);

// ---- Figure 9: alias set sizes ---------------------------------------------
util::Ecdf alias_set_sizes(const AliasResolution& resolution,
                           std::optional<net::Family> family = std::nullopt,
                           const AddressSet* only_addresses = nullptr);

// ---- Figure 10: SNMPv3 coverage per AS -------------------------------------
// coverage[AS] = |responsive router IPs| / |router-dataset IPs| per AS;
// returns (total IPs in AS, coverage) so callers can apply thresholds.
std::vector<std::pair<std::size_t, double>> as_coverage(
    const std::vector<net::IpAddress>& dataset_addresses,
    const AddressSet& responsive, const net::AsTable& as_table);

// ---- Figures 11/12: vendor popularity by stack class -----------------------
struct VendorPopularity {
  std::string vendor;
  std::size_t v4_only = 0, v6_only = 0, dual = 0;
  std::size_t total() const { return v4_only + v6_only + dual; }
};
std::vector<VendorPopularity> vendor_popularity(
    std::span<const DeviceRecord> devices, bool routers_only);

// ---- Figure 13: time since last reboot (days before the scan) --------------
util::Ecdf uptime_days(std::span<const DeviceRecord> devices,
                       bool routers_only, util::VTime scan_time);

// ---- Figures 14/17/18/20: per-AS rollups ------------------------------------
struct AsRollup {
  std::uint32_t asn = 0;
  std::string region;
  std::size_t routers = 0;
  util::Tally vendor_tally;  // router vendors in this AS

  std::size_t distinct_vendors() const { return vendor_tally.raw().size(); }
  // Fraction of routers belonging to the most common vendor (paper §6.5).
  double vendor_dominance() const;
};
std::vector<AsRollup> rollup_by_as(std::span<const DeviceRecord> devices);

// ---- Figures 15/16: vendor share matrices -----------------------------------
// Rows: regions (or top ASes); columns: vendor share of routers.
struct ShareRow {
  std::string label;
  std::size_t routers = 0;
  util::Tally vendor_tally;
};
std::vector<ShareRow> vendor_share_by_region(
    std::span<const DeviceRecord> devices);
std::vector<ShareRow> vendor_share_top_ases(
    std::span<const DeviceRecord> devices, std::size_t k);

// ---- Figure 19 (Appendix B): tuple uniqueness -------------------------------
// For each IP: how many distinct engine IDs share its (last reboot, boots)
// tuple. Returns the per-IP counts (ECDF these for the figure).
std::vector<std::size_t> engine_ids_per_tuple(
    std::span<const JoinedRecord> records);

}  // namespace snmpv3fp::core
