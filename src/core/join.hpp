// Joining the two scan campaigns per target (paper §4.4, "Inconsistent
// engine IDs" step): only addresses responsive in *both* scans continue
// into the filtering pipeline; the join also exposes the cross-scan
// consistency signals every later stage keys on.
#pragma once

#include <functional>
#include <vector>

#include "scan/record.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp::core {

struct JoinedRecord {
  net::IpAddress address;
  scan::ScanRecord first;
  scan::ScanRecord second;

  const snmp::EngineId& engine_id() const { return first.engine_id; }

  bool engine_ids_match() const {
    return first.engine_id == second.engine_id;
  }
  bool boots_match() const {
    return first.engine_boots == second.engine_boots;
  }
  // |delta| of the derived last-reboot times, in seconds.
  double reboot_delta_seconds() const {
    const util::VTime delta = first.last_reboot() - second.last_reboot();
    return std::abs(util::to_seconds(delta));
  }
};

struct JoinStats {
  std::size_t first_only = 0;
  std::size_t second_only = 0;
  std::size_t overlap = 0;
};

// Inner-joins the scans by target address; records responsive in only one
// scan are dropped (counted in stats). The probe runs in contiguous chunks
// merged in chunk order, so output and stats are identical at any thread
// count. Store-backed results (memory-bounded campaigns) never come into
// RAM whole: both stores are external-sorted by address and merge-joined
// through streaming cursors, producing bit-identical output.
std::vector<JoinedRecord> join_scans(
    const scan::ScanResult& first, const scan::ScanResult& second,
    JoinStats* stats = nullptr,
    const util::ParallelOptions& parallel = {});

// Store-backed streaming join (both results must be store-backed):
// external-sorts both stores by address — the two sorts run concurrently
// on dedicated threads — then merge-joins them through columnar block
// cursors (store/columnar.hpp), so each sealed block is decoded once,
// straight into columns, and only *matched* rows ever materialize as
// ScanRecords. Matched pairs are emitted in address order as blocks of at
// most `block_rows` JoinedRecords; `emit` is called on the joining thread,
// in order. Returns false when a store block read fails (the caller falls
// back to the materializing join).
bool join_stores_blocked(
    const scan::ScanResult& first, const scan::ScanResult& second,
    std::size_t block_rows,
    const std::function<void(std::vector<JoinedRecord>&&)>& emit);

}  // namespace snmpv3fp::core
