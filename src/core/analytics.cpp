#include "core/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace snmpv3fp::core {

namespace {

// Unique engine IDs with their address counts.
std::map<util::Bytes, std::size_t> count_by_engine_id(
    std::span<const JoinedRecord> records) {
  std::map<util::Bytes, std::size_t> counts;
  for (const auto& record : records) {
    if (record.engine_id().empty()) continue;
    ++counts[record.engine_id().raw()];
  }
  return counts;
}

}  // namespace

std::string_view to_string(StackClass stack) {
  switch (stack) {
    case StackClass::kV4Only: return "IPv4 Only";
    case StackClass::kV6Only: return "IPv6 Only";
    case StackClass::kDualStack: return "Dual-Stack";
  }
  return "?";
}

std::vector<DeviceRecord> annotate_devices(const AliasResolution& resolution,
                                           const net::AsTable& as_table,
                                           const AddressSet& router_addresses) {
  std::vector<DeviceRecord> devices;
  devices.reserve(resolution.sets.size());
  for (const auto& set : resolution.sets) {
    DeviceRecord device;
    device.set = &set;
    device.fingerprint = fingerprint_engine_id(set.engine_id);
    const std::size_t v4 = set.v4_count();
    const std::size_t v6 = set.v6_count();
    device.stack = v4 > 0 && v6 > 0 ? StackClass::kDualStack
                   : v4 > 0         ? StackClass::kV4Only
                                    : StackClass::kV6Only;
    device.is_router =
        std::any_of(set.addresses.begin(), set.addresses.end(),
                    [&](const net::IpAddress& address) {
                      return router_addresses.count(address) > 0;
                    });
    device.as_info = as_table.lookup(set.addresses.front());
    device.last_reboot = set.last_reboot;
    devices.push_back(std::move(device));
  }
  return devices;
}

util::Ecdf ips_per_engine_id(std::span<const JoinedRecord> records) {
  util::Ecdf ecdf;
  for (const auto& [id, count] : count_by_engine_id(records))
    ecdf.add(static_cast<double>(count));
  ecdf.finalize();
  return ecdf;
}

util::Tally engine_id_format_shares(std::span<const JoinedRecord> records) {
  util::Tally tally;
  std::set<util::Bytes> seen;
  for (const auto& record : records) {
    const auto& id = record.engine_id();
    if (id.empty()) continue;
    if (!seen.insert(id.raw()).second) continue;
    tally.add(std::string(snmp::to_string(id.format())));
  }
  return tally;
}

std::vector<double> relative_hamming_weights(
    std::span<const JoinedRecord> records, snmp::EngineIdFormat format) {
  std::vector<double> weights;
  std::set<util::Bytes> seen;
  for (const auto& record : records) {
    const auto& id = record.engine_id();
    if (id.format() != format) continue;
    if (!seen.insert(id.raw()).second) continue;
    // For conforming formats the informative bytes are the payload; for
    // non-conforming IDs the whole value.
    const auto payload = id.payload();
    weights.push_back(util::relative_hamming_weight(
        payload.has_value() ? *payload : util::ByteView(id.raw())));
  }
  return weights;
}

std::vector<SharedEngineId> top_shared_engine_ids(
    std::span<const JoinedRecord> records, std::size_t k) {
  const auto counts = count_by_engine_id(records);
  std::vector<std::pair<util::Bytes, std::size_t>> ranked(counts.begin(),
                                                          counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  ranked.resize(std::min(k, ranked.size()));

  std::vector<SharedEngineId> out;
  for (const auto& [raw, count] : ranked) {
    SharedEngineId shared;
    shared.engine_id = snmp::EngineId(raw);
    shared.address_count = count;
    for (const auto& record : records) {
      if (record.engine_id().raw() != raw) continue;
      shared.last_reboots.add(util::to_seconds(record.first.last_reboot()) /
                              86400.0);
    }
    shared.last_reboots.finalize();
    out.push_back(std::move(shared));
  }
  return out;
}

util::Ecdf reboot_delta_ecdf(std::span<const JoinedRecord> records,
                             const AddressSet* only_addresses) {
  util::Ecdf ecdf;
  for (const auto& record : records) {
    if (only_addresses != nullptr &&
        only_addresses->count(record.address) == 0)
      continue;
    ecdf.add(record.reboot_delta_seconds());
  }
  ecdf.finalize();
  return ecdf;
}

util::Ecdf alias_set_sizes(const AliasResolution& resolution,
                           std::optional<net::Family> family,
                           const AddressSet* only_addresses) {
  util::Ecdf ecdf;
  for (const auto& set : resolution.sets) {
    if (family.has_value() &&
        std::none_of(set.addresses.begin(), set.addresses.end(),
                     [&](const net::IpAddress& a) {
                       return a.family() == *family;
                     }))
      continue;
    if (only_addresses != nullptr &&
        std::none_of(set.addresses.begin(), set.addresses.end(),
                     [&](const net::IpAddress& a) {
                       return only_addresses->count(a) > 0;
                     }))
      continue;
    ecdf.add(static_cast<double>(set.addresses.size()));
  }
  ecdf.finalize();
  return ecdf;
}

std::vector<std::pair<std::size_t, double>> as_coverage(
    const std::vector<net::IpAddress>& dataset_addresses,
    const AddressSet& responsive, const net::AsTable& as_table) {
  std::map<std::uint32_t, std::pair<std::size_t, std::size_t>> per_as;
  for (const auto& address : dataset_addresses) {
    const auto info = as_table.lookup(address);
    if (!info) continue;
    auto& [total, covered] = per_as[info->asn];
    ++total;
    if (responsive.count(address) > 0) ++covered;
  }
  std::vector<std::pair<std::size_t, double>> out;
  out.reserve(per_as.size());
  for (const auto& [asn, counts] : per_as) {
    const auto& [total, covered] = counts;
    out.emplace_back(total, total == 0
                                ? 0.0
                                : static_cast<double>(covered) /
                                      static_cast<double>(total));
  }
  return out;
}

std::vector<VendorPopularity> vendor_popularity(
    std::span<const DeviceRecord> devices, bool routers_only) {
  std::map<std::string, VendorPopularity> by_vendor;
  for (const auto& device : devices) {
    if (routers_only && !device.is_router) continue;
    auto& entry = by_vendor[device.fingerprint.vendor];
    entry.vendor = device.fingerprint.vendor;
    switch (device.stack) {
      case StackClass::kV4Only: ++entry.v4_only; break;
      case StackClass::kV6Only: ++entry.v6_only; break;
      case StackClass::kDualStack: ++entry.dual; break;
    }
  }
  std::vector<VendorPopularity> out;
  out.reserve(by_vendor.size());
  for (auto& [vendor, entry] : by_vendor) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const VendorPopularity& a, const VendorPopularity& b) {
              return a.total() > b.total();
            });
  return out;
}

util::Ecdf uptime_days(std::span<const DeviceRecord> devices,
                       bool routers_only, util::VTime scan_time) {
  util::Ecdf ecdf;
  for (const auto& device : devices) {
    if (routers_only && !device.is_router) continue;
    ecdf.add(util::to_seconds(scan_time - device.last_reboot) / 86400.0);
  }
  ecdf.finalize();
  return ecdf;
}

double AsRollup::vendor_dominance() const {
  if (routers == 0) return 0.0;
  std::size_t top = 0;
  for (const auto& [vendor, count] : vendor_tally.raw())
    top = std::max(top, count);
  return static_cast<double>(top) / static_cast<double>(routers);
}

std::vector<AsRollup> rollup_by_as(std::span<const DeviceRecord> devices) {
  std::map<std::uint32_t, AsRollup> by_as;
  for (const auto& device : devices) {
    if (!device.is_router || !device.as_info) continue;
    auto& rollup = by_as[device.as_info->asn];
    rollup.asn = device.as_info->asn;
    rollup.region = device.as_info->region;
    ++rollup.routers;
    rollup.vendor_tally.add(device.fingerprint.vendor);
  }
  std::vector<AsRollup> out;
  out.reserve(by_as.size());
  for (auto& [asn, rollup] : by_as) out.push_back(std::move(rollup));
  return out;
}

std::vector<ShareRow> vendor_share_by_region(
    std::span<const DeviceRecord> devices) {
  std::map<std::string, ShareRow> rows;
  for (const auto& device : devices) {
    if (!device.is_router || !device.as_info) continue;
    auto& row = rows[device.as_info->region];
    row.label = device.as_info->region;
    ++row.routers;
    row.vendor_tally.add(device.fingerprint.vendor);
  }
  std::vector<ShareRow> out;
  for (auto& [region, row] : rows) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(), [](const ShareRow& a, const ShareRow& b) {
    return a.routers > b.routers;
  });
  return out;
}

std::vector<ShareRow> vendor_share_top_ases(
    std::span<const DeviceRecord> devices, std::size_t k) {
  auto rollups = rollup_by_as(devices);
  std::sort(rollups.begin(), rollups.end(),
            [](const AsRollup& a, const AsRollup& b) {
              return a.routers > b.routers;
            });
  rollups.resize(std::min(k, rollups.size()));
  std::vector<ShareRow> out;
  std::map<std::string, int> region_counter;
  for (const auto& rollup : rollups) {
    ShareRow row;
    row.label = rollup.region + "-" +
                std::to_string(++region_counter[rollup.region]);
    row.routers = rollup.routers;
    row.vendor_tally = rollup.vendor_tally;
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::size_t> engine_ids_per_tuple(
    std::span<const JoinedRecord> records) {
  // Tuple key: (engine boots, last reboot floored to seconds).
  using Tuple = std::pair<std::uint32_t, std::int64_t>;
  std::map<Tuple, std::set<util::Bytes>> ids_by_tuple;
  for (const auto& record : records) {
    const Tuple tuple{record.first.engine_boots,
                      static_cast<std::int64_t>(std::floor(
                          util::to_seconds(record.first.last_reboot())))};
    ids_by_tuple[tuple].insert(record.engine_id().raw());
  }
  std::vector<std::size_t> per_ip;
  per_ip.reserve(records.size());
  for (const auto& record : records) {
    const Tuple tuple{record.first.engine_boots,
                      static_cast<std::int64_t>(std::floor(
                          util::to_seconds(record.first.last_reboot())))};
    per_ip.push_back(ids_by_tuple[tuple].size());
  }
  return per_ip;
}

}  // namespace snmpv3fp::core
