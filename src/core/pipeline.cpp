#include "core/pipeline.hpp"

namespace snmpv3fp::core {

AddressSet PipelineResult::responsive_v4() const {
  AddressSet set;
  set.reserve(v4_joined.size());
  for (const auto& record : v4_joined) set.insert(record.address);
  return set;
}

std::size_t PipelineResult::router_device_count() const {
  std::size_t count = 0;
  for (const auto& device : devices) count += device.is_router;
  return count;
}

PipelineResult run_full_pipeline(const PipelineOptions& options) {
  return run_full_pipeline(topo::generate_world(options.world), options);
}

PipelineResult run_full_pipeline(topo::World world,
                                 const PipelineOptions& options) {
  PipelineResult result;

  // Root scope: every span/metric below hangs off "pipeline".
  const obs::ObsOptions obs =
      options.obs.scope.empty() && options.obs.enabled()
          ? options.obs.sub("pipeline")
          : options.obs;
  obs::Span run_span(obs.trace(),
                     obs.scope.empty() ? std::string("pipeline") : obs.scope);
  obs::log_info("pipeline started",
                {{"seed", options.seed},
                 {"scan_shards", options.scan_shards},
                 {"threads", options.parallel.resolved_threads()}});

  // Datasets are snapshots of the pre-scan epoch, like the March 2021 ITDK
  // against April 2021 scans.
  {
    obs::Span span(obs.trace(), obs.scoped("datasets"));
    result.as_table = topo::build_as_table(world);
    result.itdk_v4 = topo::export_itdk_v4(world, options.datasets);
    result.itdk_v6 = topo::export_itdk_v6(world, options.datasets);
    result.atlas = topo::export_atlas(world, options.datasets);
    result.hitlist_v6 = topo::export_hitlist_v6(world, options.seed);
  }
  if (options.exclude_aliased_prefixes && !result.hitlist_v6.empty()) {
    obs::Span span(obs.trace(), obs.scoped("hitlist_prescan"));
    sim::Fabric prescan(world, {.seed = options.seed ^ 0xa11a5ed});
    result.aliased_prefixes = scan::detect_aliased_prefixes(
        prescan, {net::Ipv4(198, 51, 100, 7), 54320}, result.hitlist_v6);
    result.hitlist_v6 =
        scan::filter_aliased(result.hitlist_v6, result.aliased_prefixes);
    span.set_virtual_duration(prescan.now());
  }
  for (const auto* dataset :
       {&result.itdk_v4, &result.itdk_v6, &result.atlas})
    result.router_addresses.insert(dataset->addresses.begin(),
                                   dataset->addresses.end());

  // IPv6 campaign first (paper: Apr 13-14), over the hitlist.
  if (options.scan_ipv6) {
    obs::Span span(obs.trace(), obs.scoped("campaign.v6"));
    scan::CampaignOptions v6;
    v6.family = net::Family::kIpv6;
    v6.targets = result.hitlist_v6;
    v6.first_scan_start = 0;
    v6.scan_gap = options.v6_scan_gap;
    v6.rate_pps = options.v6_rate_pps;
    v6.seed = options.seed + 1;
    v6.shards = options.scan_shards;
    v6.parallel = options.parallel;
    v6.obs = obs.sub("v6");
    v6.pacer = options.pacer;
    v6.wire_fast_path = options.wire_fast_path;
    if (!options.checkpoint_dir.empty()) {
      v6.checkpoint_path = options.checkpoint_dir + "/campaign_v6.json";
      v6.checkpoint_every_n_targets = options.checkpoint_every_n_targets;
      v6.abort_after_checkpoints = options.abort_after_checkpoints;
    }
    if (!options.store.dir.empty()) {
      v6.store = options.store;
      v6.store.dir = options.store.dir + "/v6";
    }
    result.v6_campaign = scan::run_two_scan_campaign(world, v6);
    if (result.v6_campaign.interrupted) {
      result.interrupted = true;
      result.world = std::move(world);
      return result;
    }
    span.set_virtual_duration(result.v6_campaign.scan2.end_time -
                              result.v6_campaign.scan1.start_time);
  }

  // IPv4 campaign (paper: Apr 16-20 and 22-27).
  {
    obs::Span span(obs.trace(), obs.scoped("campaign.v4"));
    scan::CampaignOptions v4;
    v4.family = net::Family::kIpv4;
    v4.first_scan_start = 3 * util::kDay;
    v4.scan_gap = options.v4_scan_gap;
    v4.rate_pps = options.v4_rate_pps;
    v4.seed = options.seed + 2;
    v4.shards = options.scan_shards;
    v4.parallel = options.parallel;
    v4.obs = obs.sub("v4");
    v4.pacer = options.pacer;
    v4.wire_fast_path = options.wire_fast_path;
    if (!options.checkpoint_dir.empty()) {
      v4.checkpoint_path = options.checkpoint_dir + "/campaign_v4.json";
      v4.checkpoint_every_n_targets = options.checkpoint_every_n_targets;
      v4.abort_after_checkpoints = options.abort_after_checkpoints;
    }
    if (!options.store.dir.empty()) {
      v4.store = options.store;
      v4.store.dir = options.store.dir + "/v4";
    }
    result.v4_campaign = scan::run_two_scan_campaign(world, v4);
    if (result.v4_campaign.interrupted) {
      result.interrupted = true;
      result.world = std::move(world);
      return result;
    }
    span.set_virtual_duration(result.v4_campaign.scan2.end_time -
                              result.v4_campaign.scan1.start_time);
  }

  // Join, filter, resolve.
  {
    obs::Span span(obs.trace(), obs.scoped("join"));
    result.v4_joined = join_scans(result.v4_campaign.scan1,
                                  result.v4_campaign.scan2,
                                  &result.v4_join_stats, options.parallel);
    result.v6_joined = join_scans(result.v6_campaign.scan1,
                                  result.v6_campaign.scan2,
                                  &result.v6_join_stats, options.parallel);
  }

  const FilterPipeline pipeline(options.filter);
  if (!options.store.dir.empty()) {
    // Memory-bounded path: stream the joined records through the funnel,
    // keeping only survivors (bit-identical report and output; see
    // FilterPipeline::apply_stream).
    result.v4_report = pipeline.apply_stream(
        result.v4_joined, result.v4_records, options.parallel, obs.sub("v4"));
    result.v6_report = pipeline.apply_stream(
        result.v6_joined, result.v6_records, options.parallel, obs.sub("v6"));
  } else {
    result.v4_records = result.v4_joined;
    result.v4_report =
        pipeline.apply(result.v4_records, options.parallel, obs.sub("v4"));
    result.v6_records = result.v6_joined;
    result.v6_report =
        pipeline.apply(result.v6_records, options.parallel, obs.sub("v6"));
  }

  // Both families resolve together (dual-stack sets); the multi-span form
  // reads the two survivor vectors in place instead of concatenating.
  const std::span<const JoinedRecord> alias_parts[] = {result.v4_records,
                                                       result.v6_records};
  result.resolution = resolve_aliases(
      std::span<const std::span<const JoinedRecord>>(alias_parts),
      options.alias, options.parallel, obs);
  {
    obs::Span span(obs.trace(), obs.scoped("annotate"));
    result.devices = annotate_devices(result.resolution, result.as_table,
                                      result.router_addresses);
  }

  result.world = std::move(world);
  return result;
}

}  // namespace snmpv3fp::core
