#include "core/pipeline.hpp"

#include "core/overlap.hpp"
#include "obs/log.hpp"
#include "sim/reflector.hpp"

namespace snmpv3fp::core {

AddressSet PipelineResult::responsive_v4() const {
  AddressSet set;
  set.reserve(v4_joined.size());
  for (const auto& record : v4_joined) set.insert(record.address);
  return set;
}

std::size_t PipelineResult::router_device_count() const {
  std::size_t count = 0;
  for (const auto& device : devices) count += device.is_router;
  return count;
}

namespace {

// The pipeline body, parameterized over the scan substrate. Campaigns and
// the hitlist prescan run against `model` (lazy worlds derive devices on
// demand); the third-party-style datasets and the hitlist export read
// `ground_truth`, a materialized pre-churn snapshot of the same world —
// exactly the role the by-value World played before the model layer.
// Leaves PipelineResult::world unset; each public wrapper fills it with
// its own final-epoch world.
PipelineResult run_pipeline_over_model(topo::WorldModel& model,
                                       const topo::World& ground_truth,
                                       const PipelineOptions& options) {
  PipelineResult result;

  // Root scope: every span/metric below hangs off "pipeline".
  const obs::ObsOptions obs =
      options.obs.scope.empty() && options.obs.enabled()
          ? options.obs.sub("pipeline")
          : options.obs;
  obs::Span run_span(obs.trace(),
                     obs.scope.empty() ? std::string("pipeline") : obs.scope);
  obs::log_info("pipeline started",
                {{"seed", options.seed},
                 {"scan_shards", options.scan_shards},
                 {"threads", options.parallel.resolved_threads()}});

  // Datasets are snapshots of the pre-scan epoch, like the March 2021 ITDK
  // against April 2021 scans.
  {
    obs::Span span(obs.trace(), obs.scoped("datasets"));
    result.as_table = topo::build_as_table(ground_truth);
    result.itdk_v4 = topo::export_itdk_v4(ground_truth, options.datasets);
    result.itdk_v6 = topo::export_itdk_v6(ground_truth, options.datasets);
    result.atlas = topo::export_atlas(ground_truth, options.datasets);
    result.hitlist_v6 = topo::export_hitlist_v6(ground_truth, options.seed);
  }
  if (options.exclude_aliased_prefixes && !result.hitlist_v6.empty()) {
    obs::Span span(obs.trace(), obs.scoped("hitlist_prescan"));
    sim::FabricConfig prescan_config = options.fabric;
    prescan_config.seed = options.seed ^ 0xa11a5ed;
    sim::Fabric prescan(model, prescan_config);
    result.aliased_prefixes = scan::detect_aliased_prefixes(
        prescan, {net::Ipv4(198, 51, 100, 7), 54320}, result.hitlist_v6);
    result.hitlist_v6 =
        scan::filter_aliased(result.hitlist_v6, result.aliased_prefixes);
    span.set_virtual_duration(prescan.now());
  }
  for (const auto* dataset :
       {&result.itdk_v4, &result.itdk_v6, &result.atlas})
    result.router_addresses.insert(dataset->addresses.begin(),
                                   dataset->addresses.end());

  // Real-socket mode: one loopback reflector serves both campaigns (the
  // SimFrame header carries each probe's logical family, so v4 and v6
  // targets share the v4 wire). It must outlive every shard engine's
  // linger drain, i.e. both campaigns.
  std::unique_ptr<sim::LoopbackReflector> reflector;
  std::optional<net::EngineConfig> engine_config = options.net_engine;
  if (engine_config.has_value()) {
    sim::ReflectorConfig reflector_config;
    reflector_config.rtt = options.net_rtt;
    reflector_config.seed = options.seed ^ 0x5eaf1ec7;
    // Ring receive taps the wire with AF_PACKET; segmentation offload on
    // the captured path must be off or the ring sees merged datagrams.
    reflector_config.gso = !options.net_ring_receive;
    auto started = sim::LoopbackReflector::start(model, reflector_config);
    if (!started.ok()) {
      // No sockets here (sandboxed CI): surface the reason on both
      // campaigns and return the pre-scan products.
      result.v4_campaign.net_error = started.error();
      result.v6_campaign.net_error = started.error();
      obs::log_warn("net engine unavailable, pipeline returning empty scans",
                    {{"error", started.error()}});
      return result;
    }
    reflector = std::move(started).value();
    engine_config->sim_peer = reflector->endpoint();
  }

  // IPv6 campaign first (paper: Apr 13-14), over the hitlist.
  if (options.scan_ipv6) {
    obs::Span span(obs.trace(), obs.scoped("campaign.v6"));
    scan::CampaignOptions v6;
    v6.family = net::Family::kIpv6;
    v6.targets = result.hitlist_v6;
    v6.first_scan_start = 0;
    v6.scan_gap = options.v6_scan_gap;
    v6.rate_pps = options.v6_rate_pps;
    v6.seed = options.seed + 1;
    v6.shards = options.scan_shards;
    v6.parallel = options.parallel;
    v6.obs = obs.sub("v6");
    v6.pacer = options.pacer;
    v6.wire_fast_path = options.wire_fast_path;
    v6.fabric = options.fabric;
    v6.net_engine = engine_config;
    v6.ring_receive = options.net_ring_receive;
    if (!options.checkpoint_dir.empty()) {
      v6.checkpoint_path = options.checkpoint_dir + "/campaign_v6.json";
      v6.checkpoint_every_n_targets = options.checkpoint_every_n_targets;
      v6.abort_after_checkpoints = options.abort_after_checkpoints;
    }
    if (!options.store.dir.empty()) {
      v6.store = options.store;
      v6.store.dir = options.store.dir + "/v6";
    }
    result.v6_campaign = scan::run_two_scan_campaign(model, v6);
    if (result.v6_campaign.interrupted) {
      result.interrupted = true;
      return result;
    }
    if (!result.v6_campaign.net_error.empty()) {
      result.v4_campaign.net_error = result.v6_campaign.net_error;
      return result;
    }
    span.set_virtual_duration(result.v6_campaign.scan2.end_time -
                              result.v6_campaign.scan1.start_time);
  }

  // IPv4 campaign (paper: Apr 16-20 and 22-27).
  {
    obs::Span span(obs.trace(), obs.scoped("campaign.v4"));
    scan::CampaignOptions v4;
    v4.family = net::Family::kIpv4;
    v4.first_scan_start = 3 * util::kDay;
    v4.scan_gap = options.v4_scan_gap;
    v4.rate_pps = options.v4_rate_pps;
    v4.seed = options.seed + 2;
    v4.shards = options.scan_shards;
    v4.parallel = options.parallel;
    v4.obs = obs.sub("v4");
    v4.pacer = options.pacer;
    v4.wire_fast_path = options.wire_fast_path;
    v4.fabric = options.fabric;
    v4.net_engine = engine_config;
    v4.ring_receive = options.net_ring_receive;
    if (!options.checkpoint_dir.empty()) {
      v4.checkpoint_path = options.checkpoint_dir + "/campaign_v4.json";
      v4.checkpoint_every_n_targets = options.checkpoint_every_n_targets;
      v4.abort_after_checkpoints = options.abort_after_checkpoints;
    }
    if (!options.store.dir.empty()) {
      v4.store = options.store;
      v4.store.dir = options.store.dir + "/v4";
    }
    result.v4_campaign = scan::run_two_scan_campaign(model, v4);
    if (result.v4_campaign.interrupted) {
      result.interrupted = true;
      return result;
    }
    if (!result.v4_campaign.net_error.empty()) return result;
    span.set_virtual_duration(result.v4_campaign.scan2.end_time -
                              result.v4_campaign.scan1.start_time);
  }

  // Join + filter. Three execution shapes, one bit-identical output:
  // columnar+store overlaps the streaming join with the filter's verdict
  // pass (core/overlap.hpp); columnar in-RAM pivots the joined vector and
  // filters it columnar-ly; the legacy shapes stay as fallbacks and as the
  // reference for the identity tests.
  const FilterPipeline pipeline(options.filter);
  const bool store_backed = !options.store.dir.empty();
  const auto join_filter_family =
      [&](const scan::CampaignPair& campaign, JoinStats& stats,
          std::vector<JoinedRecord>& joined, std::vector<JoinedRecord>& records,
          FilterReport& report, const obs::ObsOptions& family_obs) {
        const bool can_overlap = options.columnar && campaign.scan1.store_backed() &&
                                 campaign.scan2.store_backed();
        if (can_overlap) {
          obs::Span span(obs.trace(), family_obs.scoped("join_filter"));
          auto outcome = join_filter_overlapped(campaign.scan1, campaign.scan2,
                                                pipeline, options.parallel,
                                                family_obs);
          if (outcome.ok) {
            if (family_obs.enabled())
              family_obs.counter("input").add(outcome.report.input);
            stats = outcome.stats;
            joined = std::move(outcome.joined);
            records = std::move(outcome.survivors);
            report = outcome.report;
            return;
          }
          // Store damage mid-stream: fall through to the materializing
          // join + row filter (both fail soft on damaged blocks).
          obs::log_warn("overlapped join+filter failed, falling back",
                        {{"first", campaign.scan1.label},
                         {"second", campaign.scan2.label}});
        }
        {
          obs::Span span(obs.trace(), obs.scoped("join"));
          joined = join_scans(campaign.scan1, campaign.scan2, &stats,
                              options.parallel);
        }
        if (options.columnar) {
          report = pipeline.apply_columnar(joined, records, options.parallel,
                                           family_obs);
        } else if (store_backed) {
          report = pipeline.apply_stream(joined, records, options.parallel,
                                         family_obs);
        } else {
          records = joined;
          report = pipeline.apply(records, options.parallel, family_obs);
        }
      };
  join_filter_family(result.v4_campaign, result.v4_join_stats,
                     result.v4_joined, result.v4_records, result.v4_report,
                     obs.sub("v4"));
  join_filter_family(result.v6_campaign, result.v6_join_stats,
                     result.v6_joined, result.v6_records, result.v6_report,
                     obs.sub("v6"));

  // Both families resolve together (dual-stack sets); the multi-span form
  // reads the two survivor vectors in place instead of concatenating.
  const std::span<const JoinedRecord> alias_parts[] = {result.v4_records,
                                                       result.v6_records};
  result.resolution = resolve_aliases(
      std::span<const std::span<const JoinedRecord>>(alias_parts),
      options.alias, options.parallel, obs);
  {
    obs::Span span(obs.trace(), obs.scoped("annotate"));
    result.devices = annotate_devices(result.resolution, result.as_table,
                                      result.router_addresses);
  }

  return result;
}

}  // namespace

PipelineResult run_full_pipeline(const PipelineOptions& options) {
  return run_full_pipeline(topo::generate_world(options.world), options);
}

PipelineResult run_full_pipeline(topo::World world,
                                 const PipelineOptions& options) {
  topo::MaterializedWorldModel model(world);
  PipelineResult result = run_pipeline_over_model(model, world, options);
  // Ground truth doubles as the scan substrate here, so after the
  // campaigns it already sits at the final epoch — exactly what the
  // historical by-value overload returned.
  result.world = std::move(world);
  return result;
}

PipelineResult run_full_pipeline(topo::WorldModel& model,
                                 const PipelineOptions& options) {
  // Snapshot the pre-churn epoch for the dataset exports, then let the
  // campaigns drive (and churn) the model itself; the returned world is a
  // fresh final-epoch materialization.
  topo::World ground_truth = model.materialize();
  PipelineResult result = run_pipeline_over_model(model, ground_truth, options);
  result.world = model.materialize();
  return result;
}

}  // namespace snmpv3fp::core
