#include "core/overlap.hpp"

#include <atomic>
#include <iterator>

#include "core/columnar.hpp"

namespace snmpv3fp::core {

namespace {

// Rows per queued block and blocks in flight. 4096 rows keeps a block's
// working set cache-friendly; 4 blocks in flight bounds the producer's
// lead to ~16k rows beyond what the consumer has absorbed.
constexpr std::size_t kOverlapBlockRows = 4096;
constexpr std::size_t kOverlapQueueBlocks = 4;

}  // namespace

OverlapOutcome join_filter_overlapped(const scan::ScanResult& first,
                                      const scan::ScanResult& second,
                                      const FilterPipeline& filter,
                                      const util::ParallelOptions& parallel,
                                      const obs::ObsOptions& obs) {
  OverlapOutcome outcome;
  util::BoundedQueue<std::vector<JoinedRecord>> queue(kOverlapQueueBlocks);
  std::atomic<bool> join_ok{false};
  ColumnarFunnel funnel(filter.options());

  util::run_overlapped(
      {// Consumer (calling thread): pivot each block, run the verdict
       // pass, keep the raw rows — blocks arrive and are fed strictly in
       // production order, so the funnel state is thread-count-invariant.
       [&] {
         try {
           while (auto block = queue.pop()) {
             funnel.feed(ColumnarJoined::from_rows(*block), parallel);
             std::move(block->begin(), block->end(),
                       std::back_inserter(outcome.joined));
           }
         } catch (...) {
           queue.close();  // unblock the producer before propagating
           throw;
         }
       },
       // Producer: streaming merge join over the sorted stores.
       [&] {
         const bool ok = join_stores_blocked(
             first, second, kOverlapBlockRows,
             [&queue](std::vector<JoinedRecord>&& block) {
               queue.push(std::move(block));
             });
         join_ok.store(ok, std::memory_order_release);
         queue.close();
       }});

  if (!join_ok.load(std::memory_order_acquire)) return outcome;  // ok=false
  outcome.stats.overlap = outcome.joined.size();
  outcome.stats.first_only = first.responsive() - outcome.joined.size();
  outcome.stats.second_only = second.responsive() - outcome.joined.size();
  outcome.report =
      funnel.finish(outcome.joined, outcome.survivors, parallel, obs);
  outcome.ok = true;
  return outcome;
}

}  // namespace snmpv3fp::core
