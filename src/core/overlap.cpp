#include "core/overlap.hpp"

#include <atomic>
#include <iterator>

#include "core/columnar.hpp"

namespace snmpv3fp::core {

namespace {

// Rows per queued block and blocks in flight. 4096 rows keeps a block's
// working set cache-friendly; 4 blocks in flight bounds the producer's
// lead to ~16k rows beyond what the consumer has absorbed.
constexpr std::size_t kOverlapBlockRows = 4096;
constexpr std::size_t kOverlapQueueBlocks = 4;

}  // namespace

OverlapOutcome join_filter_overlapped(const scan::ScanResult& first,
                                      const scan::ScanResult& second,
                                      const FilterPipeline& filter,
                                      const util::ParallelOptions& parallel,
                                      const obs::ObsOptions& obs) {
  OverlapOutcome outcome;
  util::BoundedQueue<std::vector<JoinedRecord>> queue(kOverlapQueueBlocks);
  std::atomic<bool> join_ok{false};
  ColumnarFunnel funnel(filter.options());

  // Queue instrumentation + per-stage spans: registered here on the
  // orchestrating thread, published after the overlapped region joins so
  // the metric/span sequence stays deterministic. The worker spans finish
  // detached and are recorded in fixed (consumer, producer) order.
  util::QueueTelemetry queue_telemetry;
  if (obs.enabled()) queue.set_telemetry(&queue_telemetry);
  obs::Gauge depth_gauge = obs.gauge("overlap.queue_depth");
  obs::SpanRecord consumer_span, producer_span;
  const std::uint32_t parent_depth = [&] {
    // Peek the nesting depth the worker spans should sit under.
    obs::Span probe(obs.trace(), std::string());
    const std::uint32_t depth = probe.depth();
    probe.finish_record();  // discard without touching the trace
    return depth;
  }();

  util::run_overlapped(
      {// Consumer (calling thread): pivot each block, run the verdict
       // pass, keep the raw rows — blocks arrive and are fed strictly in
       // production order, so the funnel state is thread-count-invariant.
       [&] {
         obs::Span span(obs.trace(), obs.scoped("overlap.consume"));
         try {
           while (auto block = queue.pop()) {
             depth_gauge.set(
                 queue_telemetry.depth.load(std::memory_order_relaxed));
             funnel.feed(ColumnarJoined::from_rows(*block), parallel);
             std::move(block->begin(), block->end(),
                       std::back_inserter(outcome.joined));
           }
         } catch (...) {
           queue.close();  // unblock the producer before propagating
           consumer_span = span.finish_record();
           throw;
         }
         consumer_span = span.finish_record();
       },
       // Producer: streaming merge join over the sorted stores.
       [&] {
         obs::Span span(obs.trace(), obs.scoped("overlap.produce"));
         const bool ok = join_stores_blocked(
             first, second, kOverlapBlockRows,
             [&queue](std::vector<JoinedRecord>&& block) {
               queue.push(std::move(block));
             });
         join_ok.store(ok, std::memory_order_release);
         queue.close();
         producer_span = span.finish_record();
       }});

  if (obs.enabled()) {
    consumer_span.depth = parent_depth;
    producer_span.depth = parent_depth;
    obs.trace()->record(consumer_span);
    obs.trace()->record(producer_span);
    obs.counter("overlap.blocks")
        .add(queue_telemetry.items.load(std::memory_order_relaxed));
    obs.counter("overlap.producer_stall_us")
        .add(queue_telemetry.producer_stall_us.load(
            std::memory_order_relaxed));
    obs.counter("overlap.consumer_stall_us")
        .add(queue_telemetry.consumer_stall_us.load(
            std::memory_order_relaxed));
    obs.gauge("overlap.max_queue_depth")
        .set(static_cast<std::int64_t>(
            queue_telemetry.max_depth.load(std::memory_order_relaxed)));
    depth_gauge.set(0);
  }

  if (!join_ok.load(std::memory_order_acquire)) return outcome;  // ok=false
  outcome.stats.overlap = outcome.joined.size();
  outcome.stats.first_only = first.responsive() - outcome.joined.size();
  outcome.stats.second_only = second.responsive() - outcome.joined.size();
  outcome.report =
      funnel.finish(outcome.joined, outcome.survivors, parallel, obs);
  outcome.ok = true;
  return outcome;
}

}  // namespace snmpv3fp::core
