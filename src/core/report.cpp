#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace snmpv3fp::core {

namespace {

double ratio(std::size_t numerator, std::size_t denominator) {
  if (denominator == 0) return 0.0;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

RunReport::CampaignReport summarize_campaign(const std::string& family,
                                             const scan::CampaignPair& pair) {
  RunReport::CampaignReport out;
  out.family = family;
  out.targets = pair.scan1.targets_probed;
  out.responsive1 = pair.scan1.responsive();
  out.responsive2 = pair.scan2.responsive();
  out.response_rate1 = ratio(out.responsive1, pair.scan1.targets_probed);
  out.response_rate2 = ratio(out.responsive2, pair.scan2.targets_probed);
  // Overlap of scan-1 responders that answered scan 2 (by address). The
  // accessors stream store-backed results, so the accounting is identical
  // either way; addresses (16 bytes each) are cheap enough to collect.
  std::vector<net::IpAddress> first, second;
  first.reserve(pair.scan1.responsive());
  (void)pair.scan1.for_each_record(
      [&](const scan::ScanRecord& record) { first.push_back(record.target); });
  second.reserve(pair.scan2.responsive());
  (void)pair.scan2.for_each_record(
      [&](const scan::ScanRecord& record) { second.push_back(record.target); });
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  std::vector<net::IpAddress> overlap;
  overlap.reserve(std::min(first.size(), second.size()));
  std::set_intersection(first.begin(), first.end(), second.begin(),
                        second.end(), std::back_inserter(overlap));
  out.cross_scan_consistency = ratio(overlap.size(), first.size());
  out.undecodable_responses =
      pair.scan1.undecodable_responses + pair.scan2.undecodable_responses;
  out.pacer_backoffs = pair.scan1.pacer_backoffs + pair.scan2.pacer_backoffs;
  out.fabric = pair.fabric_stats;
  out.net_io = pair.net_io;
  return out;
}

void write_fabric(obs::JsonWriter& json, const sim::FabricStats& fabric) {
  json.begin_object();
  json.kv("datagrams_sent", static_cast<std::uint64_t>(fabric.datagrams_sent));
  json.kv("datagrams_delivered",
          static_cast<std::uint64_t>(fabric.datagrams_delivered));
  json.kv("responses_generated",
          static_cast<std::uint64_t>(fabric.responses_generated));
  json.kv("responses_received",
          static_cast<std::uint64_t>(fabric.responses_received));
  json.key("drops").begin_object();
  json.kv("probes_lost", static_cast<std::uint64_t>(fabric.probes_lost));
  json.kv("probes_dead", static_cast<std::uint64_t>(fabric.probes_dead));
  json.kv("probes_filtered",
          static_cast<std::uint64_t>(fabric.probes_filtered));
  json.kv("probes_rate_limited",
          static_cast<std::uint64_t>(fabric.probes_rate_limited));
  json.kv("responses_lost", static_cast<std::uint64_t>(fabric.responses_lost));
  json.kv("responses_duplicated",
          static_cast<std::uint64_t>(fabric.responses_duplicated));
  json.kv("probes_corrupted",
          static_cast<std::uint64_t>(fabric.probes_corrupted));
  json.kv("responses_corrupted",
          static_cast<std::uint64_t>(fabric.responses_corrupted));
  json.end_object();
  json.end_object();
}

void write_net_io(obs::JsonWriter& json, const net::NetIoStats& net) {
  json.begin_object();
  json.kv("datagrams_sent", net.datagrams_sent);
  json.kv("datagrams_received", net.datagrams_received);
  json.kv("sendmmsg_calls", net.sendmmsg_calls);
  json.kv("recvmmsg_calls", net.recvmmsg_calls);
  json.kv("sendto_calls", net.sendto_calls);
  json.kv("recvfrom_calls", net.recvfrom_calls);
  json.kv("gso_batches", net.gso_batches);
  json.key("ring").begin_object();
  json.kv("blocks", net.ring_blocks);
  json.kv("frames", net.ring_frames);
  json.kv("drops", net.ring_drops);
  json.kv("non_udp", net.ring_non_udp);
  json.kv("foreign_port", net.ring_foreign_port);
  json.end_object();
  json.key("drops").begin_object();
  json.kv("send_pressure", net.send_pressure);
  json.kv("send_refused", net.send_refused);
  json.kv("send_errors", net.send_errors);
  json.kv("recv_truncated", net.recv_truncated);
  json.kv("recv_bad_frame", net.recv_bad_frame);
  json.kv("recv_errors", net.recv_errors);
  json.kv("drop_notices", net.drop_notices);
  json.kv("flow_stalls", net.flow_stalls);
  json.end_object();
  json.end_object();
}

}  // namespace

RunReport build_run_report(const PipelineResult& result,
                           const PipelineOptions& options,
                           const obs::RunObserver* observer) {
  RunReport report;
  report.seed = options.seed;
  report.threads = options.parallel.resolved_threads();
  report.scan_shards = options.scan_shards;

  report.campaigns.push_back(summarize_campaign("ipv4", result.v4_campaign));
  if (options.scan_ipv6)
    report.campaigns.push_back(summarize_campaign("ipv6", result.v6_campaign));

  for (const auto& [family, filter_report] :
       {std::make_pair(std::string("ipv4"), &result.v4_report),
        std::make_pair(std::string("ipv6"), &result.v6_report)}) {
    RunReport::Funnel funnel;
    funnel.family = family;
    funnel.input = filter_report->input;
    funnel.dropped = filter_report->dropped;
    funnel.output = filter_report->output;
    report.funnels.push_back(std::move(funnel));
  }

  report.alias.sets = result.resolution.sets.size();
  report.alias.non_singleton_sets = result.resolution.non_singleton_count();
  report.alias.ips_in_non_singletons =
      result.resolution.ips_in_non_singletons();
  report.alias.dual_stack_sets = breakdown_by_stack(result.resolution).dual_sets;

  if (observer != nullptr) {
    report.spans = observer->trace().snapshot();
    report.shard_progress = observer->shard_progress();
    report.metrics = observer->metrics().snapshot();
    report.time_series = observer->timeline().snapshot();
  }
  return report;
}

std::string RunReport::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("schema", std::uint64_t{1});
  json.key("run").begin_object();
  json.kv("seed", seed);
  json.kv("threads", static_cast<std::uint64_t>(threads));
  json.kv("scan_shards", static_cast<std::uint64_t>(scan_shards));
  json.end_object();

  json.key("campaigns").begin_array();
  for (const auto& campaign : campaigns) {
    json.begin_object();
    json.kv("family", campaign.family);
    json.kv("targets", static_cast<std::uint64_t>(campaign.targets));
    json.kv("responsive_scan1",
            static_cast<std::uint64_t>(campaign.responsive1));
    json.kv("responsive_scan2",
            static_cast<std::uint64_t>(campaign.responsive2));
    json.kv("response_rate_scan1", campaign.response_rate1);
    json.kv("response_rate_scan2", campaign.response_rate2);
    json.kv("cross_scan_consistency", campaign.cross_scan_consistency);
    json.kv("undecodable_responses",
            static_cast<std::uint64_t>(campaign.undecodable_responses));
    json.kv("pacer_backoffs",
            static_cast<std::uint64_t>(campaign.pacer_backoffs));
    json.key("fabric");
    write_fabric(json, campaign.fabric);
    json.key("net_io");
    write_net_io(json, campaign.net_io);
    json.end_object();
  }
  json.end_array();

  json.key("filter_funnels").begin_array();
  for (const auto& funnel : funnels) {
    json.begin_object();
    json.kv("family", funnel.family);
    json.kv("input", static_cast<std::uint64_t>(funnel.input));
    json.key("dropped").begin_object();
    for (std::size_t i = 0; i < kFilterStageCount; ++i)
      json.kv(to_slug(static_cast<FilterStage>(i)),
              static_cast<std::uint64_t>(funnel.dropped[i]));
    json.end_object();
    json.kv("output", static_cast<std::uint64_t>(funnel.output));
    json.end_object();
  }
  json.end_array();

  json.key("alias").begin_object();
  json.kv("sets", static_cast<std::uint64_t>(alias.sets));
  json.kv("non_singleton_sets",
          static_cast<std::uint64_t>(alias.non_singleton_sets));
  json.kv("ips_in_non_singletons",
          static_cast<std::uint64_t>(alias.ips_in_non_singletons));
  json.kv("dual_stack_sets",
          static_cast<std::uint64_t>(alias.dual_stack_sets));
  json.end_object();

  json.key("spans").begin_array();
  for (const auto& span : spans) {
    json.begin_object();
    json.kv("name", span.name);
    json.kv("depth", static_cast<std::uint64_t>(span.depth));
    json.kv("wall_ms", span.wall_ms);
    json.kv("virtual_s", util::to_seconds(span.virtual_duration));
    json.end_object();
  }
  json.end_array();

  json.key("shard_progress").begin_array();
  for (const auto& row : shard_progress) {
    json.begin_object();
    json.kv("stage", row.stage);
    json.kv("shard", static_cast<std::uint64_t>(row.shard));
    json.kv("targets", static_cast<std::uint64_t>(row.targets));
    json.kv("responses", static_cast<std::uint64_t>(row.responses));
    json.kv("wall_ms", row.wall_ms);
    json.end_object();
  }
  json.end_array();

  // MetricsSnapshot and TimelineSnapshot render themselves; splice the
  // pre-rendered objects in via the writer's raw string (both are already
  // valid JSON).
  json.key("metrics");
  json.raw(metrics.to_json());
  json.key("time_series");
  json.raw(time_series.to_json());

  json.end_object();
  return json.str();
}

std::string RunReport::to_table() const {
  std::ostringstream out;

  out << "Run: seed=" << seed << " threads=" << threads
      << " scan_shards=" << scan_shards << "\n\n";

  util::TablePrinter campaigns_table(
      {"Campaign", "Targets", "Scan1", "Scan2", "Rate1", "Rate2",
       "Consistency"});
  for (const auto& campaign : campaigns) {
    campaigns_table.add_row(
        {campaign.family, util::fmt_count(campaign.targets),
         util::fmt_count(campaign.responsive1),
         util::fmt_count(campaign.responsive2),
         util::fmt_percent(campaign.response_rate1),
         util::fmt_percent(campaign.response_rate2),
         util::fmt_percent(campaign.cross_scan_consistency)});
  }
  out << campaigns_table.render() << "\n";

  util::TablePrinter fabric_table(
      {"Campaign", "Sent", "Delivered", "Lost", "Dead", "RateLim", "RespLost",
       "Dup"});
  for (const auto& campaign : campaigns) {
    const auto& fabric = campaign.fabric;
    fabric_table.add_row({campaign.family,
                          util::fmt_count(fabric.datagrams_sent),
                          util::fmt_count(fabric.datagrams_delivered),
                          util::fmt_count(fabric.probes_lost),
                          util::fmt_count(fabric.probes_dead),
                          util::fmt_count(fabric.probes_rate_limited),
                          util::fmt_count(fabric.responses_lost),
                          util::fmt_count(fabric.responses_duplicated)});
  }
  out << fabric_table.render() << "\n";

  // Kernel I/O accounting appears only when a campaign actually probed
  // through real sockets (net/batched_udp.hpp).
  bool any_net = false;
  for (const auto& campaign : campaigns)
    any_net |= campaign.net_io.datagrams_sent != 0;
  if (any_net) {
    util::TablePrinter net_table({"Campaign", "Sent", "Recv", "sendmmsg",
                                  "GSO", "Pressure", "Refused", "Trunc",
                                  "Stalls"});
    for (const auto& campaign : campaigns) {
      const auto& net = campaign.net_io;
      net_table.add_row({campaign.family, util::fmt_count(net.datagrams_sent),
                         util::fmt_count(net.datagrams_received),
                         util::fmt_count(net.sendmmsg_calls),
                         util::fmt_count(net.gso_batches),
                         util::fmt_count(net.send_pressure),
                         util::fmt_count(net.send_refused),
                         util::fmt_count(net.recv_truncated),
                         util::fmt_count(net.flow_stalls)});
    }
    out << net_table.render() << "\n";

    // Packet-ring receive accounting, shown only when a ring was actually
    // attached (ring_blocks ticks on every retired block, so an attached
    // ring that saw any traffic is nonzero).
    bool any_ring = false;
    for (const auto& campaign : campaigns)
      any_ring |= campaign.net_io.ring_blocks != 0 ||
                  campaign.net_io.ring_frames != 0;
    if (any_ring) {
      util::TablePrinter ring_table({"Campaign", "RingBlocks", "RingFrames",
                                     "RingDrops", "NonUdp", "ForeignPort"});
      for (const auto& campaign : campaigns) {
        const auto& net = campaign.net_io;
        ring_table.add_row({campaign.family, util::fmt_count(net.ring_blocks),
                            util::fmt_count(net.ring_frames),
                            util::fmt_count(net.ring_drops),
                            util::fmt_count(net.ring_non_udp),
                            util::fmt_count(net.ring_foreign_port)});
      }
      out << ring_table.render() << "\n";
    }
  }

  // Robustness counters only clutter the output when something actually
  // dropped, backed off, or got corrupted — clean fixed-rate runs skip it.
  bool any_robustness = false;
  for (const auto& campaign : campaigns)
    any_robustness |= campaign.undecodable_responses != 0 ||
                      campaign.pacer_backoffs != 0 ||
                      campaign.fabric.probes_corrupted != 0 ||
                      campaign.fabric.responses_corrupted != 0;
  if (any_robustness) {
    util::TablePrinter robustness_table(
        {"Campaign", "Undecodable", "Backoffs", "ProbeCorrupt", "RespCorrupt"});
    for (const auto& campaign : campaigns)
      robustness_table.add_row(
          {campaign.family, util::fmt_count(campaign.undecodable_responses),
           util::fmt_count(campaign.pacer_backoffs),
           util::fmt_count(campaign.fabric.probes_corrupted),
           util::fmt_count(campaign.fabric.responses_corrupted)});
    out << robustness_table.render() << "\n";
  }

  util::TablePrinter funnel_table({"Filter stage", "ipv4", "ipv6"});
  if (funnels.size() == 2) {
    funnel_table.add_row({"input", util::fmt_count(funnels[0].input),
                          util::fmt_count(funnels[1].input)});
    for (std::size_t i = 0; i < kFilterStageCount; ++i)
      funnel_table.add_row(
          {std::string(to_string(static_cast<FilterStage>(i))),
           util::fmt_count(funnels[0].dropped[i]),
           util::fmt_count(funnels[1].dropped[i])});
    funnel_table.add_row({"output", util::fmt_count(funnels[0].output),
                          util::fmt_count(funnels[1].output)});
    out << funnel_table.render() << "\n";
  }

  out << "Alias resolution: " << util::fmt_count(alias.sets) << " sets, "
      << util::fmt_count(alias.non_singleton_sets) << " non-singleton ("
      << util::fmt_count(alias.ips_in_non_singletons) << " IPs), "
      << util::fmt_count(alias.dual_stack_sets) << " dual-stack\n\n";

  if (!spans.empty()) {
    util::TablePrinter span_table({"Span", "Wall ms", "Virtual s"});
    for (const auto& span : spans) {
      std::string name(span.depth * 2, ' ');
      name += span.name;
      span_table.add_row({name, util::fmt_double(span.wall_ms, 2),
                          util::fmt_double(util::to_seconds(span.virtual_duration), 1)});
    }
    out << span_table.render() << "\n";
  }

  if (!shard_progress.empty()) {
    util::TablePrinter shard_table(
        {"Stage", "Shard", "Targets", "Responses", "Wall ms"});
    for (const auto& row : shard_progress)
      shard_table.add_row({row.stage, std::to_string(row.shard),
                           util::fmt_count(row.targets),
                           util::fmt_count(row.responses),
                           util::fmt_double(row.wall_ms, 2)});
    out << shard_table.render() << "\n";
  }

  bool any_observations = false;
  for (const auto& row : metrics.histograms) any_observations |= row.total != 0;
  if (any_observations) {
    util::TablePrinter hist_table({"Histogram", "Count", "p50", "p90", "p99"});
    for (const auto& row : metrics.histograms) {
      if (row.total == 0) continue;
      hist_table.add_row({row.name, util::fmt_count(row.total),
                          util::fmt_double(row.p50(), 2),
                          util::fmt_double(row.p90(), 2),
                          util::fmt_double(row.p99(), 2)});
    }
    out << hist_table.render() << "\n";
  }

  if (!time_series.empty()) {
    std::size_t points = 0;
    for (const auto& series : time_series.series) points += series.points.size();
    out << "Timeline: " << util::fmt_count(time_series.series.size())
        << " virtual series (" << util::fmt_count(points) << " points), "
        << util::fmt_count(time_series.wall.size()) << " wall samples\n";
  }

  return out.str();
}

}  // namespace snmpv3fp::core
