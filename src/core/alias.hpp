// SNMPv3-based alias resolution (paper §5, Appendix A).
//
// Filtered records are grouped into alias sets by (engine ID, engine boots
// in both scans, matched last-reboot time in both scans). The last-reboot
// matching strategy is configurable — Appendix A's Table 3 compares exact
// matching, rounding, and 20-second binning over one or both scans; the
// paper ships "divide by 20, both scans" and so does our default.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/join.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp::core {

enum class RebootMatch : std::uint8_t {
  kExact,          // full seconds resolution
  kRound,          // rounded to the nearest 10 s
  kDivide20,       // floored into 20 s bins
  kDivide20Round,  // divided by 20 and rounded
};

std::string_view to_string(RebootMatch match);

struct AliasOptions {
  RebootMatch match = RebootMatch::kDivide20;
  // Appendix A "first" vs "both": whether scan2's boots/reboot also key.
  bool use_both_scans = true;
  // Ablation: group on engine ID alone (shows why the tuple matters —
  // the constant-engine-ID bug would merge hundreds of devices).
  bool engine_id_only = false;
};

struct AliasSet {
  std::vector<net::IpAddress> addresses;  // sorted
  snmp::EngineId engine_id;
  std::uint32_t engine_boots = 0;
  util::VTime last_reboot = 0;  // representative (first scan)

  bool singleton() const { return addresses.size() == 1; }
  std::size_t v4_count() const;
  std::size_t v6_count() const;
  bool dual_stack() const { return v4_count() > 0 && v6_count() > 0; }
};

struct AliasResolution {
  std::vector<AliasSet> sets;

  std::size_t non_singleton_count() const;
  std::size_t ips_in_non_singletons() const;
  std::size_t total_ips() const;
  double mean_ips_per_non_singleton() const;
};

// Groups records into alias sets. Records from both families may be mixed;
// identical keys then produce dual-stack sets (paper §5.1's final step).
// Grouping is radix-hash over dictionary-encoded engine IDs: a fixed
// number of dictionary chunks built in parallel and merged, per-record key
// hashes over the integer codes, a 256-bucket counting sort on the low
// hash byte, then per-bucket grouping with integer (code, scalar) key
// verification, merged into canonical key order — output is bit-identical
// at any thread count.
// `obs` (execution-only) records one span per resolution phase (keys /
// bucket / group / merge) plus set-count metrics.
AliasResolution resolve_aliases(std::span<const JoinedRecord> records,
                                const AliasOptions& options = {},
                                const util::ParallelOptions& parallel = {},
                                const obs::ObsOptions& obs = {});

// Variant over several record spans treated as one concatenated sequence
// (part order = record order). The pipeline hands the v4 and v6 survivor
// vectors straight through, skipping the combined-vector copy the
// single-span form would need; output is identical to concatenating.
AliasResolution resolve_aliases(
    std::span<const std::span<const JoinedRecord>> parts,
    const AliasOptions& options = {}, const util::ParallelOptions& parallel = {},
    const obs::ObsOptions& obs = {});

// Breakdown of a resolution into v4-only / v6-only / dual-stack sets.
struct StackBreakdown {
  std::size_t v4_only_sets = 0, v6_only_sets = 0, dual_sets = 0;
  std::size_t v4_only_non_singleton = 0, v6_only_non_singleton = 0;
  std::size_t v4_only_ips_nonsingleton = 0, v6_only_ips_nonsingleton = 0;
  std::size_t dual_ips = 0;
};
StackBreakdown breakdown_by_stack(const AliasResolution& resolution);

}  // namespace snmpv3fp::core
