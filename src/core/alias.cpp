#include "core/alias.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <tuple>
#include <unordered_map>

namespace snmpv3fp::core {

namespace {

std::int64_t match_key(RebootMatch match, util::VTime last_reboot) {
  const double seconds = util::to_seconds(last_reboot);
  switch (match) {
    case RebootMatch::kExact:
      return static_cast<std::int64_t>(std::floor(seconds));
    case RebootMatch::kRound:
      // Round the last decimal digit away: nearest 10 seconds.
      return static_cast<std::int64_t>(std::llround(seconds / 10.0));
    case RebootMatch::kDivide20:
      return static_cast<std::int64_t>(std::floor(seconds / 20.0));
    case RebootMatch::kDivide20Round:
      return static_cast<std::int64_t>(std::llround(seconds / 20.0));
  }
  return 0;
}

}  // namespace

std::string_view to_string(RebootMatch match) {
  switch (match) {
    case RebootMatch::kExact: return "Exact";
    case RebootMatch::kRound: return "Round";
    case RebootMatch::kDivide20: return "Divide by 20";
    case RebootMatch::kDivide20Round: return "Divide by 20+round";
  }
  return "?";
}

std::size_t AliasSet::v4_count() const {
  return static_cast<std::size_t>(
      std::count_if(addresses.begin(), addresses.end(),
                    [](const net::IpAddress& a) { return a.is_v4(); }));
}

std::size_t AliasSet::v6_count() const {
  return addresses.size() - v4_count();
}

std::size_t AliasResolution::non_singleton_count() const {
  return static_cast<std::size_t>(
      std::count_if(sets.begin(), sets.end(),
                    [](const AliasSet& s) { return !s.singleton(); }));
}

std::size_t AliasResolution::ips_in_non_singletons() const {
  std::size_t total = 0;
  for (const auto& set : sets)
    if (!set.singleton()) total += set.addresses.size();
  return total;
}

std::size_t AliasResolution::total_ips() const {
  std::size_t total = 0;
  for (const auto& set : sets) total += set.addresses.size();
  return total;
}

double AliasResolution::mean_ips_per_non_singleton() const {
  const std::size_t sets_count = non_singleton_count();
  if (sets_count == 0) return 0.0;
  return static_cast<double>(ips_in_non_singletons()) /
         static_cast<double>(sets_count);
}

AliasResolution resolve_aliases(std::span<const JoinedRecord> records,
                                const AliasOptions& options,
                                const util::ParallelOptions& parallel,
                                const obs::ObsOptions& obs) {
  const std::span<const JoinedRecord> parts[] = {records};
  return resolve_aliases(std::span<const std::span<const JoinedRecord>>(parts),
                         options, parallel, obs);
}

AliasResolution resolve_aliases(
    std::span<const std::span<const JoinedRecord>> parts,
    const AliasOptions& options, const util::ParallelOptions& parallel,
    const obs::ObsOptions& obs) {
  obs::Span resolve_span(obs.trace(), obs.scoped("alias"));
  // Flatten the parts into one pointer table (8 bytes per record, no
  // JoinedRecord copies); every phase below indexes records through it.
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<const JoinedRecord*> ptrs;
  ptrs.reserve(total);
  for (const auto& part : parts)
    for (const auto& record : part) ptrs.push_back(&record);
  const auto record_at = [&](std::size_t i) -> const JoinedRecord& {
    return *ptrs[i];
  };
  // Key: engine ID bytes + boots/reboot of scan 1 (+ scan 2 when enabled).
  // The key's scalar part is precomputed per record; the engine-ID bytes
  // are only ever *compared* against a group's stored EngineId, so no
  // per-record byte-buffer copy is made anywhere.
  struct KeyScalars {
    std::uint32_t boots1 = 0;
    std::int64_t reboot1 = 0;
    std::uint32_t boots2 = 0;
    std::int64_t reboot2 = 0;

    bool operator==(const KeyScalars&) const = default;
  };
  const std::size_t n = total;

  // Phase 1: per-record key scalars and a 64-bit key hash, in parallel.
  std::vector<KeyScalars> scalars(n);
  std::vector<std::uint64_t> hashes(n);
  obs::Span keys_span(obs.trace(), obs.scoped("alias.keys"));
  util::parallel_for(0, n, parallel, [&](std::size_t i) {
    const auto& record = record_at(i);
    KeyScalars key;
    if (!options.engine_id_only) {
      key.boots1 = record.first.engine_boots;
      key.reboot1 = match_key(options.match, record.first.last_reboot());
      if (options.use_both_scans) {
        key.boots2 = record.second.engine_boots;
        key.reboot2 = match_key(options.match, record.second.last_reboot());
      }
    }
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the ID bytes
    for (const std::uint8_t byte : record.engine_id().raw()) {
      h ^= byte;
      h *= 1099511628211ULL;
    }
    h = util::hash_combine(h, key.boots1);
    h = util::hash_combine(h, static_cast<std::uint64_t>(key.reboot1));
    h = util::hash_combine(h, key.boots2);
    h = util::hash_combine(h, static_cast<std::uint64_t>(key.reboot2));
    scalars[i] = key;
    hashes[i] = h;
  });
  keys_span.finish();

  obs::Span bucket_span(obs.trace(), obs.scoped("alias.bucket"));
  // Phase 2: bucket record indices by hash shard. The shard count is fixed
  // (not thread-derived) so the grouping structure never depends on the
  // thread count; equal keys always share a hash and thus a shard.
  constexpr std::size_t kShards = 16;
  std::array<std::vector<std::uint32_t>, kShards> buckets;
  for (auto& bucket : buckets) bucket.reserve(n / kShards + 1);
  for (std::size_t i = 0; i < n; ++i)
    buckets[hashes[i] % kShards].push_back(static_cast<std::uint32_t>(i));
  bucket_span.finish();

  obs::Span group_span(obs.trace(), obs.scoped("alias.group"));
  // Phase 3: group each shard independently. Hash collisions between
  // distinct keys are resolved by comparing the full key (ID bytes against
  // the group's stored EngineId plus the scalars).
  struct ShardGroups {
    std::vector<AliasSet> sets;
    std::vector<KeyScalars> keys;  // key scalars per set, for the merge sort
  };
  std::array<ShardGroups, kShards> shards;
  util::parallel_for(0, kShards, parallel, [&](std::size_t shard) {
    auto& out = shards[shard];
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
    by_hash.reserve(buckets[shard].size());
    for (const std::uint32_t index : buckets[shard]) {
      const auto& record = record_at(index);
      auto& candidates = by_hash[hashes[index]];
      std::uint32_t group = ~std::uint32_t{0};
      for (const std::uint32_t candidate : candidates) {
        if (out.keys[candidate] == scalars[index] &&
            out.sets[candidate].engine_id.raw() == record.engine_id().raw()) {
          group = candidate;
          break;
        }
      }
      if (group == ~std::uint32_t{0}) {
        group = static_cast<std::uint32_t>(out.sets.size());
        AliasSet set;
        set.engine_id = record.engine_id();
        set.engine_boots = record.first.engine_boots;
        set.last_reboot = record.first.last_reboot();
        out.sets.push_back(std::move(set));
        out.keys.push_back(scalars[index]);
        candidates.push_back(group);
      }
      out.sets[group].addresses.push_back(record.address);
    }
    for (auto& set : out.sets)
      std::sort(set.addresses.begin(), set.addresses.end());
  });
  group_span.finish();

  obs::Span merge_span(obs.trace(), obs.scoped("alias.merge"));
  // Phase 4: merge shards into canonical key order — (ID bytes, boots1,
  // reboot1, boots2, reboot2) lexicographically, exactly the order the
  // former std::map<Key> produced. Distinct groups have distinct keys, so
  // the order is total.
  struct GroupRef {
    std::uint32_t shard;
    std::uint32_t index;
  };
  std::vector<GroupRef> refs;
  std::size_t total_groups = 0;
  for (const auto& shard : shards) total_groups += shard.sets.size();
  refs.reserve(total_groups);
  for (std::uint32_t s = 0; s < kShards; ++s)
    for (std::uint32_t g = 0; g < shards[s].sets.size(); ++g)
      refs.push_back({s, g});
  std::sort(refs.begin(), refs.end(),
            [&](const GroupRef& a, const GroupRef& b) {
              const auto& id_a = shards[a.shard].sets[a.index].engine_id.raw();
              const auto& id_b = shards[b.shard].sets[b.index].engine_id.raw();
              if (id_a != id_b) return id_a < id_b;
              const auto& key_a = shards[a.shard].keys[a.index];
              const auto& key_b = shards[b.shard].keys[b.index];
              return std::tie(key_a.boots1, key_a.reboot1, key_a.boots2,
                              key_a.reboot2) <
                     std::tie(key_b.boots1, key_b.reboot1, key_b.boots2,
                              key_b.reboot2);
            });

  AliasResolution resolution;
  resolution.sets.reserve(total_groups);
  for (const auto& ref : refs)
    resolution.sets.push_back(std::move(shards[ref.shard].sets[ref.index]));
  merge_span.finish();

  if (obs.enabled()) {
    obs.counter("alias.records").add(n);
    obs.counter("alias.sets").add(resolution.sets.size());
    obs.counter("alias.non_singleton_sets")
        .add(resolution.non_singleton_count());
  }
  if (obs::Logger::global().enabled(obs::LogLevel::kInfo)) {
    obs::log_info("alias resolution finished",
                  {{"records", n},
                   {"sets", resolution.sets.size()},
                   {"non_singleton", resolution.non_singleton_count()}});
  }
  return resolution;
}

StackBreakdown breakdown_by_stack(const AliasResolution& resolution) {
  StackBreakdown out;
  for (const auto& set : resolution.sets) {
    const std::size_t v4 = set.v4_count();
    const std::size_t v6 = set.v6_count();
    if (v4 > 0 && v6 > 0) {
      ++out.dual_sets;
      out.dual_ips += set.addresses.size();
    } else if (v4 > 0) {
      ++out.v4_only_sets;
      if (v4 > 1) {
        ++out.v4_only_non_singleton;
        out.v4_only_ips_nonsingleton += v4;
      }
    } else {
      ++out.v6_only_sets;
      if (v6 > 1) {
        ++out.v6_only_non_singleton;
        out.v6_only_ips_nonsingleton += v6;
      }
    }
  }
  return out;
}

}  // namespace snmpv3fp::core
