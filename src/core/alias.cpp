#include "core/alias.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

namespace snmpv3fp::core {

namespace {

std::int64_t match_key(RebootMatch match, util::VTime last_reboot) {
  const double seconds = util::to_seconds(last_reboot);
  switch (match) {
    case RebootMatch::kExact:
      return static_cast<std::int64_t>(std::floor(seconds));
    case RebootMatch::kRound:
      // Round the last decimal digit away: nearest 10 seconds.
      return static_cast<std::int64_t>(std::llround(seconds / 10.0));
    case RebootMatch::kDivide20:
      return static_cast<std::int64_t>(std::floor(seconds / 20.0));
    case RebootMatch::kDivide20Round:
      return static_cast<std::int64_t>(std::llround(seconds / 20.0));
  }
  return 0;
}

}  // namespace

std::string_view to_string(RebootMatch match) {
  switch (match) {
    case RebootMatch::kExact: return "Exact";
    case RebootMatch::kRound: return "Round";
    case RebootMatch::kDivide20: return "Divide by 20";
    case RebootMatch::kDivide20Round: return "Divide by 20+round";
  }
  return "?";
}

std::size_t AliasSet::v4_count() const {
  return static_cast<std::size_t>(
      std::count_if(addresses.begin(), addresses.end(),
                    [](const net::IpAddress& a) { return a.is_v4(); }));
}

std::size_t AliasSet::v6_count() const {
  return addresses.size() - v4_count();
}

std::size_t AliasResolution::non_singleton_count() const {
  return static_cast<std::size_t>(
      std::count_if(sets.begin(), sets.end(),
                    [](const AliasSet& s) { return !s.singleton(); }));
}

std::size_t AliasResolution::ips_in_non_singletons() const {
  std::size_t total = 0;
  for (const auto& set : sets)
    if (!set.singleton()) total += set.addresses.size();
  return total;
}

std::size_t AliasResolution::total_ips() const {
  std::size_t total = 0;
  for (const auto& set : sets) total += set.addresses.size();
  return total;
}

double AliasResolution::mean_ips_per_non_singleton() const {
  const std::size_t sets_count = non_singleton_count();
  if (sets_count == 0) return 0.0;
  return static_cast<double>(ips_in_non_singletons()) /
         static_cast<double>(sets_count);
}

AliasResolution resolve_aliases(std::span<const JoinedRecord> records,
                                const AliasOptions& options) {
  // Key: engine ID bytes + boots/reboot of scan 1 (+ scan 2 when enabled).
  using Key = std::tuple<util::Bytes, std::uint32_t, std::int64_t,
                         std::uint32_t, std::int64_t>;
  std::map<Key, AliasSet> groups;
  for (const auto& record : records) {
    Key key{record.engine_id().raw(), 0, 0, 0, 0};
    if (!options.engine_id_only) {
      std::get<1>(key) = record.first.engine_boots;
      std::get<2>(key) = match_key(options.match, record.first.last_reboot());
      if (options.use_both_scans) {
        std::get<3>(key) = record.second.engine_boots;
        std::get<4>(key) =
            match_key(options.match, record.second.last_reboot());
      }
    }
    auto& set = groups[std::move(key)];
    if (set.addresses.empty()) {
      set.engine_id = record.engine_id();
      set.engine_boots = record.first.engine_boots;
      set.last_reboot = record.first.last_reboot();
    }
    set.addresses.push_back(record.address);
  }

  AliasResolution resolution;
  resolution.sets.reserve(groups.size());
  for (auto& [key, set] : groups) {
    std::sort(set.addresses.begin(), set.addresses.end());
    resolution.sets.push_back(std::move(set));
  }
  return resolution;
}

StackBreakdown breakdown_by_stack(const AliasResolution& resolution) {
  StackBreakdown out;
  for (const auto& set : resolution.sets) {
    const std::size_t v4 = set.v4_count();
    const std::size_t v6 = set.v6_count();
    if (v4 > 0 && v6 > 0) {
      ++out.dual_sets;
      out.dual_ips += set.addresses.size();
    } else if (v4 > 0) {
      ++out.v4_only_sets;
      if (v4 > 1) {
        ++out.v4_only_non_singleton;
        out.v4_only_ips_nonsingleton += v4;
      }
    } else {
      ++out.v6_only_sets;
      if (v6 > 1) {
        ++out.v6_only_non_singleton;
        out.v6_only_ips_nonsingleton += v6;
      }
    }
  }
  return out;
}

}  // namespace snmpv3fp::core
