#include "core/alias.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <tuple>
#include <unordered_map>

#include "store/columnar.hpp"

namespace snmpv3fp::core {

namespace {

std::int64_t match_key(RebootMatch match, util::VTime last_reboot) {
  const double seconds = util::to_seconds(last_reboot);
  switch (match) {
    case RebootMatch::kExact:
      return static_cast<std::int64_t>(std::floor(seconds));
    case RebootMatch::kRound:
      // Round the last decimal digit away: nearest 10 seconds.
      return static_cast<std::int64_t>(std::llround(seconds / 10.0));
    case RebootMatch::kDivide20:
      return static_cast<std::int64_t>(std::floor(seconds / 20.0));
    case RebootMatch::kDivide20Round:
      return static_cast<std::int64_t>(std::llround(seconds / 20.0));
  }
  return 0;
}

}  // namespace

std::string_view to_string(RebootMatch match) {
  switch (match) {
    case RebootMatch::kExact: return "Exact";
    case RebootMatch::kRound: return "Round";
    case RebootMatch::kDivide20: return "Divide by 20";
    case RebootMatch::kDivide20Round: return "Divide by 20+round";
  }
  return "?";
}

std::size_t AliasSet::v4_count() const {
  return static_cast<std::size_t>(
      std::count_if(addresses.begin(), addresses.end(),
                    [](const net::IpAddress& a) { return a.is_v4(); }));
}

std::size_t AliasSet::v6_count() const {
  return addresses.size() - v4_count();
}

std::size_t AliasResolution::non_singleton_count() const {
  return static_cast<std::size_t>(
      std::count_if(sets.begin(), sets.end(),
                    [](const AliasSet& s) { return !s.singleton(); }));
}

std::size_t AliasResolution::ips_in_non_singletons() const {
  std::size_t total = 0;
  for (const auto& set : sets)
    if (!set.singleton()) total += set.addresses.size();
  return total;
}

std::size_t AliasResolution::total_ips() const {
  std::size_t total = 0;
  for (const auto& set : sets) total += set.addresses.size();
  return total;
}

double AliasResolution::mean_ips_per_non_singleton() const {
  const std::size_t sets_count = non_singleton_count();
  if (sets_count == 0) return 0.0;
  return static_cast<double>(ips_in_non_singletons()) /
         static_cast<double>(sets_count);
}

AliasResolution resolve_aliases(std::span<const JoinedRecord> records,
                                const AliasOptions& options,
                                const util::ParallelOptions& parallel,
                                const obs::ObsOptions& obs) {
  const std::span<const JoinedRecord> parts[] = {records};
  return resolve_aliases(std::span<const std::span<const JoinedRecord>>(parts),
                         options, parallel, obs);
}

AliasResolution resolve_aliases(
    std::span<const std::span<const JoinedRecord>> parts,
    const AliasOptions& options, const util::ParallelOptions& parallel,
    const obs::ObsOptions& obs) {
  obs::Span resolve_span(obs.trace(), obs.scoped("alias"));
  // Flatten the parts into one pointer table (8 bytes per record, no
  // JoinedRecord copies); every phase below indexes records through it.
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<const JoinedRecord*> ptrs;
  ptrs.reserve(total);
  for (const auto& part : parts)
    for (const auto& record : part) ptrs.push_back(&record);
  const auto record_at = [&](std::size_t i) -> const JoinedRecord& {
    return *ptrs[i];
  };
  // Key: engine ID (as a dictionary code) + boots/reboot of scan 1
  // (+ scan 2 when enabled). Once the IDs are dictionary-encoded, every
  // key comparison below is integer-only — the ID bytes are hashed and
  // compared exactly once per distinct engine ID, at dictionary insert.
  struct KeyScalars {
    std::uint32_t boots1 = 0;
    std::int64_t reboot1 = 0;
    std::uint32_t boots2 = 0;
    std::int64_t reboot2 = 0;

    bool operator==(const KeyScalars&) const = default;
  };
  const std::size_t n = total;

  obs::Span keys_span(obs.trace(), obs.scoped("alias.keys"));
  // Phase 1a: dictionary-encode the engine IDs. Chunk count is FIXED (not
  // thread-derived): per-chunk local dictionaries build in parallel, then
  // merge into the global code space in chunk order, so codes — and
  // everything derived from them — never depend on the thread count.
  constexpr std::size_t kDictChunks = 16;
  std::vector<std::uint32_t> code(n);
  store::EngineDictionary dict;
  {
    struct ChunkDict {
      store::EngineDictionary local;
      std::size_t begin = 0, end = 0;
    };
    std::array<ChunkDict, kDictChunks> chunks;
    util::parallel_for(0, kDictChunks, parallel, [&](std::size_t c) {
      auto& chunk = chunks[c];
      chunk.begin = n * c / kDictChunks;
      chunk.end = n * (c + 1) / kDictChunks;
      for (std::size_t i = chunk.begin; i < chunk.end; ++i)
        code[i] = chunk.local.encode(record_at(i).engine_id().raw());
    });
    for (auto& chunk : chunks) {
      std::vector<std::uint32_t> remap(chunk.local.size());
      for (std::size_t e = 0; e < chunk.local.size(); ++e)
        remap[e] = dict.encode(chunk.local.entries()[e].raw());
      for (std::size_t i = chunk.begin; i < chunk.end; ++i)
        code[i] = remap[code[i]];
    }
  }
  // Per-code hash of the ID bytes, computed once per distinct ID.
  std::vector<std::uint64_t> id_hash(dict.size());
  for (std::size_t c = 0; c < dict.size(); ++c)
    id_hash[c] = store::fnv1a(dict.entries()[c].raw());

  // Phase 1b: per-record key scalars and a 64-bit key hash, in parallel —
  // integer-only now that the ID contribution is a per-code table lookup.
  std::vector<KeyScalars> scalars(n);
  std::vector<std::uint64_t> hashes(n);
  util::parallel_for(0, n, parallel, [&](std::size_t i) {
    const auto& record = record_at(i);
    KeyScalars key;
    if (!options.engine_id_only) {
      key.boots1 = record.first.engine_boots;
      key.reboot1 = match_key(options.match, record.first.last_reboot());
      if (options.use_both_scans) {
        key.boots2 = record.second.engine_boots;
        key.reboot2 = match_key(options.match, record.second.last_reboot());
      }
    }
    std::uint64_t h = id_hash[code[i]];
    h = util::hash_combine(h, key.boots1);
    h = util::hash_combine(h, static_cast<std::uint64_t>(key.reboot1));
    h = util::hash_combine(h, key.boots2);
    h = util::hash_combine(h, static_cast<std::uint64_t>(key.reboot2));
    scalars[i] = key;
    hashes[i] = h;
  });
  keys_span.finish();

  obs::Span bucket_span(obs.trace(), obs.scoped("alias.bucket"));
  // Phase 2: radix partition by the low hash byte — a counting sort into
  // 256 buckets, stable, so each bucket lists its records in input order.
  // The bucket count is fixed (not thread-derived); equal keys always
  // share a hash and thus a bucket.
  constexpr std::size_t kRadixBuckets = 256;
  std::array<std::uint32_t, kRadixBuckets + 1> offsets{};
  for (std::size_t i = 0; i < n; ++i) ++offsets[(hashes[i] & 0xFF) + 1];
  for (std::size_t b = 0; b < kRadixBuckets; ++b)
    offsets[b + 1] += offsets[b];
  std::vector<std::uint32_t> order(n);
  {
    auto cursor = offsets;  // copy: running write positions per bucket
    for (std::size_t i = 0; i < n; ++i)
      order[cursor[hashes[i] & 0xFF]++] = static_cast<std::uint32_t>(i);
  }
  bucket_span.finish();

  obs::Span group_span(obs.trace(), obs.scoped("alias.group"));
  // Phase 3: group each bucket independently. Hash collisions between
  // distinct keys are resolved by comparing (code, scalars) — integers
  // only; the dictionary made byte comparison unnecessary.
  struct BucketGroups {
    std::vector<AliasSet> sets;
    std::vector<KeyScalars> keys;  // key scalars per set, for the merge
    std::vector<std::uint32_t> codes;  // engine-ID code per set
  };
  std::vector<BucketGroups> groups(kRadixBuckets);
  util::parallel_for(0, kRadixBuckets, parallel, [&](std::size_t bucket) {
    auto& out = groups[bucket];
    const std::uint32_t begin = offsets[bucket];
    const std::uint32_t end = offsets[bucket + 1];
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
    by_hash.reserve(end - begin);
    for (std::uint32_t slot = begin; slot < end; ++slot) {
      const std::uint32_t index = order[slot];
      auto& candidates = by_hash[hashes[index]];
      std::uint32_t group = ~std::uint32_t{0};
      for (const std::uint32_t candidate : candidates) {
        if (out.codes[candidate] == code[index] &&
            out.keys[candidate] == scalars[index]) {
          group = candidate;
          break;
        }
      }
      if (group == ~std::uint32_t{0}) {
        const auto& record = record_at(index);
        group = static_cast<std::uint32_t>(out.sets.size());
        AliasSet set;
        set.engine_id = dict.entries()[code[index]];
        set.engine_boots = record.first.engine_boots;
        set.last_reboot = record.first.last_reboot();
        out.sets.push_back(std::move(set));
        out.keys.push_back(scalars[index]);
        out.codes.push_back(code[index]);
        candidates.push_back(group);
      }
      out.sets[group].addresses.push_back(record_at(index).address);
    }
    for (auto& set : out.sets)
      std::sort(set.addresses.begin(), set.addresses.end());
  });
  group_span.finish();

  obs::Span merge_span(obs.trace(), obs.scoped("alias.merge"));
  // Phase 4: merge buckets into canonical key order — (ID bytes, boots1,
  // reboot1, boots2, reboot2) lexicographically, exactly the order the
  // former std::map<Key> produced. The byte comparison collapses to an
  // integer rank precomputed once over the dictionary. Distinct groups
  // have distinct keys, so the order is total.
  std::vector<std::uint32_t> rank(dict.size());
  {
    std::vector<std::uint32_t> by_bytes(dict.size());
    for (std::uint32_t c = 0; c < dict.size(); ++c) by_bytes[c] = c;
    std::sort(by_bytes.begin(), by_bytes.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return dict.entries()[a].raw() < dict.entries()[b].raw();
              });
    for (std::uint32_t r = 0; r < by_bytes.size(); ++r)
      rank[by_bytes[r]] = r;
  }
  struct GroupRef {
    std::uint32_t bucket;
    std::uint32_t index;
  };
  std::vector<GroupRef> refs;
  std::size_t total_groups = 0;
  for (const auto& bucket : groups) total_groups += bucket.sets.size();
  refs.reserve(total_groups);
  for (std::uint32_t b = 0; b < kRadixBuckets; ++b)
    for (std::uint32_t g = 0; g < groups[b].sets.size(); ++g)
      refs.push_back({b, g});
  std::sort(refs.begin(), refs.end(),
            [&](const GroupRef& a, const GroupRef& b) {
              const std::uint32_t rank_a = rank[groups[a.bucket].codes[a.index]];
              const std::uint32_t rank_b = rank[groups[b.bucket].codes[b.index]];
              if (rank_a != rank_b) return rank_a < rank_b;
              const auto& key_a = groups[a.bucket].keys[a.index];
              const auto& key_b = groups[b.bucket].keys[b.index];
              return std::tie(key_a.boots1, key_a.reboot1, key_a.boots2,
                              key_a.reboot2) <
                     std::tie(key_b.boots1, key_b.reboot1, key_b.boots2,
                              key_b.reboot2);
            });

  AliasResolution resolution;
  resolution.sets.reserve(total_groups);
  for (const auto& ref : refs)
    resolution.sets.push_back(std::move(groups[ref.bucket].sets[ref.index]));
  merge_span.finish();

  if (obs.enabled()) {
    obs.counter("alias.records").add(n);
    obs.counter("alias.sets").add(resolution.sets.size());
    obs.counter("alias.non_singleton_sets")
        .add(resolution.non_singleton_count());
  }
  if (obs::Logger::global().enabled(obs::LogLevel::kInfo)) {
    obs::log_info("alias resolution finished",
                  {{"records", n},
                   {"sets", resolution.sets.size()},
                   {"non_singleton", resolution.non_singleton_count()}});
  }
  return resolution;
}

StackBreakdown breakdown_by_stack(const AliasResolution& resolution) {
  StackBreakdown out;
  for (const auto& set : resolution.sets) {
    const std::size_t v4 = set.v4_count();
    const std::size_t v6 = set.v6_count();
    if (v4 > 0 && v6 > 0) {
      ++out.dual_sets;
      out.dual_ips += set.addresses.size();
    } else if (v4 > 0) {
      ++out.v4_only_sets;
      if (v4 > 1) {
        ++out.v4_only_non_singleton;
        out.v4_only_ips_nonsingleton += v4;
      }
    } else {
      ++out.v6_only_sets;
      if (v6 > 1) {
        ++out.v6_only_non_singleton;
        out.v6_only_ips_nonsingleton += v6;
      }
    }
  }
  return out;
}

}  // namespace snmpv3fp::core
