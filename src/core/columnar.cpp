#include "core/columnar.hpp"

#include <algorithm>

#include "net/registry.hpp"
#include "obs/log.hpp"

namespace snmpv3fp::core {

// ---- ColumnarJoined ----

void ColumnarJoined::append(const JoinedRecord& record) {
  first.engine_code.push_back(dict.encode(record.first.engine_id.raw()));
  first.engine_boots.push_back(record.first.engine_boots);
  first.engine_time.push_back(record.first.engine_time);
  first.receive_time.push_back(record.first.receive_time);
  second.engine_code.push_back(dict.encode(record.second.engine_id.raw()));
  second.engine_boots.push_back(record.second.engine_boots);
  second.engine_time.push_back(record.second.engine_time);
  second.receive_time.push_back(record.second.receive_time);
}

ColumnarJoined ColumnarJoined::from_rows(std::span<const JoinedRecord> rows) {
  ColumnarJoined out;
  for (auto* side : {&out.first, &out.second}) {
    side->engine_code.reserve(rows.size());
    side->engine_boots.reserve(rows.size());
    side->engine_time.reserve(rows.size());
    side->receive_time.reserve(rows.size());
  }
  for (const auto& row : rows) out.append(row);
  return out;
}

// ---- ColumnarFunnel ----

namespace {

// Stage positions in the published order (== FilterStage enum values; the
// enum is declared in that order and filters.cpp's kStageOrder preserves
// it, so `dropped[position]` is also `dropped[enum]`).
constexpr std::uint8_t kPosMissing = 0;
constexpr std::uint8_t kPosInconsistentId = 1;
constexpr std::uint8_t kPosTooShort = 2;
constexpr std::uint8_t kPosPromiscuous = 3;
constexpr std::uint8_t kPosUnroutable = 4;
constexpr std::uint8_t kPosUnregisteredMac = 5;
constexpr std::uint8_t kPosZero = 6;
constexpr std::uint8_t kPosFuture = 7;
constexpr std::uint8_t kPosBoots = 8;
constexpr std::uint8_t kPosReboot = 9;
constexpr std::uint8_t kPosPass = kFilterStageCount;

}  // namespace

ColumnarFunnel::ColumnarFunnel(FilterOptions options) : options_(options) {}

std::uint32_t ColumnarFunnel::encode_id(const snmp::EngineId& id) {
  const auto code = dict_.encode(id.raw());
  if (code == info_.size()) {
    // Evaluate the predicates against the dictionary's own copy so the
    // payload view outlives the caller's batch.
    const snmp::EngineId& owned = dict_.entries()[code];
    CodeInfo info;
    info.empty = owned.empty();
    info.too_short = owned.size() < options_.min_engine_id_bytes;
    if (const auto addr = owned.ipv4())
      info.unroutable_v4 = !addr->is_routable();
    if (const auto mac = owned.mac())
      info.unregistered_mac =
          !net::OuiRegistry::embedded().contains(mac->oui());
    if (const auto payload = owned.payload()) {
      info.has_payload = true;
      info.payload = *payload;
      if (const auto enterprise = owned.enterprise()) {
        info.enterprise = *enterprise;
        info.has_census_key = !info.payload.empty();
      }
    }
    info_.push_back(info);
  }
  return code;
}

void ColumnarFunnel::feed(const ColumnarJoined& block,
                          const util::ParallelOptions& parallel) {
  // Map the block's code space onto the run-global one: one dictionary
  // lookup (and, for unseen IDs, one predicate evaluation) per *distinct*
  // engine ID in the block — rows below touch only integers.
  const auto& entries = block.dictionary();
  std::vector<std::uint32_t> remap(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i)
    remap[i] = encode_id(entries[i]);

  const std::size_t base = verdict_row_.size();
  const std::size_t m = block.size();
  verdict_row_.resize(base + m);
  code_.resize(base + m);
  const double threshold = options_.reboot_threshold_seconds;
  util::parallel_for(0, m, parallel, [&](std::size_t i) {
    const std::uint32_t c1 = remap[block.first.engine_code[i]];
    const std::uint32_t c2 = remap[block.second.engine_code[i]];
    code_[base + i] = c1;
    const CodeInfo& a = info_[c1];
    std::uint8_t verdict = kPosPass;
    if (a.empty || info_[c2].empty) {
      verdict = kPosMissing;
    } else if (c1 != c2) {
      verdict = kPosInconsistentId;
    } else if (a.too_short) {
      verdict = kPosTooShort;
    } else if (a.unroutable_v4) {
      verdict = kPosUnroutable;
    } else if (a.unregistered_mac) {
      verdict = kPosUnregisteredMac;
    } else if (block.first.engine_time[i] == 0 ||
               block.first.engine_boots[i] == 0 ||
               block.second.engine_time[i] == 0 ||
               block.second.engine_boots[i] == 0) {
      verdict = kPosZero;
    } else {
      const util::VTime lr1 =
          block.first.receive_time[i] -
          static_cast<util::VTime>(block.first.engine_time[i]) * util::kSecond;
      const util::VTime lr2 =
          block.second.receive_time[i] -
          static_cast<util::VTime>(block.second.engine_time[i]) *
              util::kSecond;
      if (lr1 < util::kUnixEpochVtime || lr2 < util::kUnixEpochVtime) {
        verdict = kPosFuture;
      } else if (block.first.engine_boots[i] != block.second.engine_boots[i]) {
        verdict = kPosBoots;
      } else if (std::abs(util::to_seconds(lr1 - lr2)) > threshold) {
        verdict = kPosReboot;
      }
    }
    verdict_row_[base + i] = verdict;
  });
}

void ColumnarFunnel::feed_rows(std::span<const JoinedRecord> rows,
                               const util::ParallelOptions& parallel) {
  const std::size_t base = verdict_row_.size();
  const std::size_t m = rows.size();
  verdict_row_.resize(base + m);
  code_.resize(base + m);
  // Dictionary inserts share one open-addressing table, so the encode pass
  // is serial; the verdict loop below parallelizes over the integer codes.
  // Pre-sizing for the worst case (every ID distinct) trades a few MB of
  // slot table for not re-hashing the dictionary a dozen times mid-pass.
  dict_.reserve(dict_.size() + 2 * m);
  std::vector<std::uint32_t> second_code(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& row = rows[i];
    const std::uint32_t c1 = encode_id(row.first.engine_id);
    // Clean rows carry the same ID in both scans: byte equality implies
    // code equality, so a memcmp skips the second hash-and-probe.
    second_code[i] = util::equal(row.first.engine_id.raw(),
                                 row.second.engine_id.raw())
                         ? c1
                         : encode_id(row.second.engine_id);
    code_[base + i] = c1;
  }
  const double threshold = options_.reboot_threshold_seconds;
  util::parallel_for(0, m, parallel, [&](std::size_t i) {
    const JoinedRecord& row = rows[i];
    const std::uint32_t c1 = code_[base + i];
    const std::uint32_t c2 = second_code[i];
    const CodeInfo& a = info_[c1];
    std::uint8_t verdict = kPosPass;
    if (a.empty || info_[c2].empty) {
      verdict = kPosMissing;
    } else if (c1 != c2) {
      verdict = kPosInconsistentId;
    } else if (a.too_short) {
      verdict = kPosTooShort;
    } else if (a.unroutable_v4) {
      verdict = kPosUnroutable;
    } else if (a.unregistered_mac) {
      verdict = kPosUnregisteredMac;
    } else if (row.first.engine_time == 0 || row.first.engine_boots == 0 ||
               row.second.engine_time == 0 || row.second.engine_boots == 0) {
      verdict = kPosZero;
    } else {
      const util::VTime lr1 =
          row.first.receive_time -
          static_cast<util::VTime>(row.first.engine_time) * util::kSecond;
      const util::VTime lr2 =
          row.second.receive_time -
          static_cast<util::VTime>(row.second.engine_time) * util::kSecond;
      if (lr1 < util::kUnixEpochVtime || lr2 < util::kUnixEpochVtime) {
        verdict = kPosFuture;
      } else if (row.first.engine_boots != row.second.engine_boots) {
        verdict = kPosBoots;
      } else if (std::abs(util::to_seconds(lr1 - lr2)) > threshold) {
        verdict = kPosReboot;
      }
    }
    verdict_row_[base + i] = verdict;
  });
}

FilterReport ColumnarFunnel::finish(std::span<const JoinedRecord> rows,
                                    std::vector<JoinedRecord>& survivors,
                                    const util::ParallelOptions& parallel,
                                    const obs::ObsOptions& obs) {
  (void)parallel;
  const std::size_t n = verdict_row_.size();

  // Promiscuous census over the rows alive when that stage runs (verdict
  // beyond its position), collapsed to dictionary codes: the payload ->
  // enterprise-set map is built over distinct engine IDs, not rows.
  std::vector<std::uint8_t> alive(info_.size(), 0);
  for (std::size_t i = 0; i < n; ++i)
    if (verdict_row_[i] > kPosPromiscuous) alive[code_[i]] = 1;
  // Payload groups via open addressing on the dictionary's hash (a payload
  // is promiscuous iff any alive census entry's enterprise differs from the
  // group's first — exactly "more than one distinct enterprise"). Keys are
  // payload views into info_; slots store the owning code + 1.
  std::size_t census = 0;
  for (std::size_t c = 0; c < info_.size(); ++c)
    if (alive[c] && info_[c].has_census_key) ++census;
  std::vector<std::uint8_t> code_promiscuous(info_.size(), 0);
  if (census != 0) {
    struct Slot {
      std::uint32_t code_plus1 = 0;
      bool promiscuous = false;
    };
    std::size_t capacity = 16;
    while (capacity < census * 2) capacity <<= 1;
    std::vector<Slot> table(capacity);
    const std::uint64_t mask = capacity - 1;
    const auto find_slot = [&](util::ByteView key) -> Slot& {
      std::uint64_t h = store::fnv1a(key) & mask;
      while (true) {
        Slot& slot = table[h];
        if (slot.code_plus1 == 0 ||
            util::equal(info_[slot.code_plus1 - 1].payload, key))
          return slot;
        h = (h + 1) & mask;
      }
    };
    for (std::size_t c = 0; c < info_.size(); ++c) {
      if (!alive[c] || !info_[c].has_census_key) continue;
      Slot& slot = find_slot(info_[c].payload);
      if (slot.code_plus1 == 0)
        slot.code_plus1 = static_cast<std::uint32_t>(c) + 1;
      else if (info_[slot.code_plus1 - 1].enterprise != info_[c].enterprise)
        slot.promiscuous = true;
    }
    for (std::size_t c = 0; c < info_.size(); ++c) {
      if (!info_[c].has_payload) continue;
      const Slot& slot = find_slot(info_[c].payload);
      code_promiscuous[c] = slot.code_plus1 != 0 && slot.promiscuous;
    }
  }

  FilterReport report;
  report.input = n;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t verdict = verdict_row_[i];
    // Rows alive at the promiscuous position (verdict beyond it) re-check
    // it here; anything failing an earlier stage keeps that stage.
    if (verdict > kPosPromiscuous && code_promiscuous[code_[i]]) {
      verdict = kPosPromiscuous;
      verdict_row_[i] = verdict;
    }
    if (verdict == kPosPass) {
      ++kept;
    } else {
      ++report.dropped[verdict];
    }
  }
  survivors.clear();
  survivors.reserve(kept);
  for (std::size_t i = 0; i < n && i < rows.size(); ++i)
    if (verdict_row_[i] == kPosPass) survivors.push_back(rows[i]);
  report.output = survivors.size();

  if (obs.enabled()) {
    for (std::size_t s = 0; s < kFilterStageCount; ++s)
      obs.counter(std::string("dropped.") +
                  std::string(to_slug(static_cast<FilterStage>(s))))
          .add(report.dropped[s]);
    obs.counter("output").add(report.output);
  }
  if (obs::Logger::global().enabled(obs::LogLevel::kInfo)) {
    obs::log_info("filter pipeline finished",
                  {{"scope", obs.scope},
                   {"input", report.input},
                   {"dropped", report.total_dropped()},
                   {"output", report.output}});
  }
  return report;
}

// ---- FilterPipeline::apply_columnar ----

FilterReport FilterPipeline::apply_columnar(
    std::span<const JoinedRecord> input, std::vector<JoinedRecord>& survivors,
    const util::ParallelOptions& parallel, const obs::ObsOptions& obs) const {
  obs::Span pipeline_span(obs.trace(), obs.scoped("filter"));
  if (obs.enabled()) obs.counter("input").add(input.size());
  ColumnarFunnel funnel(options_);
  funnel.feed_rows(input, parallel);
  return funnel.finish(input, survivors, parallel, obs);
}

}  // namespace snmpv3fp::core
