#include "core/anomaly.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "snmp/message.hpp"

namespace snmpv3fp::core {

namespace {

using snmp::EngineId;

// All engines observed at a record (first + any within-scan extras).
std::vector<EngineId> engines_of(const scan::ScanRecord& record) {
  std::vector<EngineId> engines;
  if (!record.engine_id.empty()) engines.push_back(record.engine_id);
  for (const auto& extra : record.extra_engines)
    if (!extra.empty()) engines.push_back(extra);
  return engines;
}

// Sends one confirmation burst and returns the distinct engines that
// answered. `responses_seen` reports whether ANY datagram came back (even
// an undecodable or engine-less one) — the retry logic must not confuse
// "silent" with "answered uselessly".
std::set<util::Bytes> reprobe_burst(net::Transport& transport,
                                    const net::Endpoint& source,
                                    const net::IpAddress& target,
                                    const AnomalyOptions& options,
                                    bool& responses_seen) {
  std::set<util::Bytes> engines;
  responses_seen = false;
  std::int32_t id = 21000;
  for (std::size_t i = 0; i < options.reprobe_count; ++i) {
    const std::int32_t msg_id = ++id;
    const std::int32_t request_id = ++id;
    const auto request = snmp::make_discovery_request(msg_id, request_id);
    net::Datagram probe;
    probe.source = source;
    probe.destination = {target, net::kSnmpPort};
    probe.payload = request.encode();
    probe.time = transport.now();
    transport.send(std::move(probe));
    transport.run_until(transport.now() + 500 * util::kMillisecond);
  }
  transport.run_until(transport.now() + options.reprobe_timeout);
  while (auto datagram = transport.receive()) {
    if (datagram->source.address != target) continue;
    responses_seen = true;
    const auto message = snmp::V3Message::decode(datagram->payload);
    if (!message) continue;
    const auto& engine = message.value().usm.authoritative_engine_id;
    if (!engine.empty()) engines.insert(engine.raw());
  }
  return engines;
}

// Re-probes one address, retrying silent bursts while `budget_left`
// allows. Burst spacing grows with each retry (500 ms, 1 s, ...) so a
// rate-limited target gets room to recover before the budget is spent.
std::set<util::Bytes> reprobe(net::Transport& transport,
                              const net::Endpoint& source,
                              const net::IpAddress& target,
                              const AnomalyOptions& options,
                              AnomalyReport& report,
                              std::size_t& budget_left) {
  bool responses_seen = false;
  report.reprobes_sent += options.reprobe_count;
  auto engines =
      reprobe_burst(transport, source, target, options, responses_seen);
  std::size_t attempt = 0;
  while (!responses_seen && budget_left > 0) {
    --budget_left;
    ++report.retries_used;
    ++attempt;
    transport.run_until(transport.now() +
                        static_cast<util::VTime>(attempt) * 500 *
                            util::kMillisecond);
    report.reprobes_sent += options.reprobe_count;
    engines = reprobe_burst(transport, source, target, options,
                            responses_seen);
  }
  return engines;
}

}  // namespace

std::string_view to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kLoadBalancer: return "load balancer";
    case AnomalyKind::kAddressChurn: return "address churn";
    case AnomalyKind::kNat: return "NAT frontend";
    case AnomalyKind::kUnstable: return "unstable";
  }
  return "?";
}

std::size_t AnomalyReport::count(AnomalyKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(anomalies.begin(), anomalies.end(),
                    [&](const Anomaly& a) { return a.kind == kind; }));
}

AnomalyReport classify_anomalies(const scan::ScanResult& scan1,
                                 const scan::ScanResult& scan2,
                                 net::Transport& transport,
                                 const net::Endpoint& prober_source,
                                 const net::AsTable& as_table,
                                 const AnomalyOptions& options) {
  AnomalyReport report;
  std::size_t budget_left = options.retry_budget;
  // Store-backed results are materialized once up front: the classifier
  // reprobes a handful of anomalous addresses, so it only runs at scales
  // where the copy is cheap.
  std::vector<scan::ScanRecord> m1, m2;
  if (scan1.store_backed()) m1 = scan1.materialize_records();
  if (scan2.store_backed()) m2 = scan2.materialize_records();
  const auto& records1 = scan1.store_backed() ? m1 : scan1.records;
  const auto& records2 = scan2.store_backed() ? m2 : scan2.records;
  std::unordered_map<net::IpAddress, std::size_t> index2_local;
  if (scan2.store_backed()) {
    index2_local.reserve(records2.size());
    for (std::size_t i = 0; i < records2.size(); ++i)
      index2_local.emplace(records2[i].target, i);
  }
  const auto& index2 = scan2.store_backed() ? index2_local : scan2.by_target();

  // Engine -> addresses index of scan 2, for the churn relocation check.
  std::map<util::Bytes, std::vector<net::IpAddress>> engine_locations2;
  for (const auto& record : records2)
    if (!record.engine_id.empty())
      engine_locations2[record.engine_id.raw()].push_back(record.target);

  for (const auto& record1 : records1) {
    const auto it2 = index2.find(record1.target);
    if (it2 == index2.end()) continue;  // one-scan-only: not classifiable
    const auto& record2 = records2[it2->second];

    // Collect every engine seen at this address across both scans.
    std::set<util::Bytes> engines;
    for (const auto& e : engines_of(record1)) engines.insert(e.raw());
    for (const auto& e : engines_of(record2)) engines.insert(e.raw());
    if (engines.size() <= 1) continue;  // stable identity: not anomalous

    Anomaly anomaly;
    anomaly.address = record1.target;
    for (const auto& raw : engines) anomaly.engines.emplace_back(raw);

    // Active confirmation: a burst of probes separates a rotating VIP from
    // a one-time identity change.
    const auto live = reprobe(transport, prober_source, record1.target,
                              options, report, budget_left);
    if (live.size() >= options.min_lb_engines) {
      anomaly.kind = AnomalyKind::kLoadBalancer;
    } else if (!record1.engine_id.empty() && !record2.engine_id.empty() &&
               record1.engine_id != record2.engine_id) {
      // Did the scan-1 engine move to a different address by scan 2?
      const auto moved = engine_locations2.find(record1.engine_id.raw());
      const bool relocated =
          moved != engine_locations2.end() &&
          std::any_of(moved->second.begin(), moved->second.end(),
                      [&](const net::IpAddress& a) {
                        return !(a == record1.target);
                      });
      anomaly.kind = relocated ? AnomalyKind::kAddressChurn
                               : AnomalyKind::kUnstable;
    } else {
      anomaly.kind = AnomalyKind::kUnstable;
    }
    report.anomalies.push_back(std::move(anomaly));
  }

  // NAT frontends: a *stable* engine identity (same boots, close last
  // reboot) answering from addresses in several ASes.
  std::map<util::Bytes, std::vector<const scan::ScanRecord*>> by_engine;
  for (const auto& record : records1)
    if (!record.engine_id.empty() && record.extra_engines.empty())
      by_engine[record.engine_id.raw()].push_back(&record);
  for (const auto& [raw, records] : by_engine) {
    if (records.size() < 2) continue;
    std::set<std::uint32_t> ases;
    bool identity_consistent = true;
    for (const auto* record : records) {
      if (record->engine_boots != records.front()->engine_boots ||
          std::abs(util::to_seconds(record->last_reboot() -
                                    records.front()->last_reboot())) >
              options.reboot_window_seconds) {
        identity_consistent = false;
        break;
      }
      if (const auto info = as_table.lookup(record->target))
        ases.insert(info->asn);
    }
    if (!identity_consistent || ases.size() < options.min_nat_ases) continue;
    for (const auto* record : records) {
      Anomaly anomaly;
      anomaly.address = record->target;
      anomaly.kind = AnomalyKind::kNat;
      anomaly.engines.emplace_back(raw);
      report.anomalies.push_back(std::move(anomaly));
    }
  }
  return report;
}

}  // namespace snmpv3fp::core
