// Anomaly classification of inconsistent responders — the paper's stated
// future work (§9: "inferring NAT and load balancers in the wild").
//
// The filtering pipeline *discards* addresses whose engine identity is
// inconsistent; this module explains them instead. Signals per address:
//
//   * kLoadBalancer   — one address returned multiple *different* engines
//                       within a single scan: several real devices share
//                       the VIP (L4 load balancing / anycast).
//   * kAddressChurn   — scans 1 and 2 saw different single engines, and
//                       the scan-1 engine re-appeared elsewhere in scan 2:
//                       a DHCP lease moved (CPE churn).
//   * kNat            — one engine with one (boots, last-reboot) identity
//                       answers on addresses in multiple ASes: the same
//                       box is reachable through translated frontends.
//   * kUnstable       — inconsistent with none of the above signatures
//                       (flapping agents, resets, measurement noise).
#pragma once

#include <string_view>
#include <vector>

#include "core/join.hpp"
#include "net/as_table.hpp"
#include "net/transport.hpp"

namespace snmpv3fp::core {

enum class AnomalyKind : std::uint8_t {
  kLoadBalancer,
  kAddressChurn,
  kNat,
  kUnstable,
};

std::string_view to_string(AnomalyKind kind);

struct Anomaly {
  net::IpAddress address;
  AnomalyKind kind = AnomalyKind::kUnstable;
  // Distinct engine IDs observed at this address across both scans.
  std::vector<snmp::EngineId> engines;
};

struct AnomalyOptions {
  // Minimum distinct engines within one scan to call a load balancer.
  std::size_t min_lb_engines = 2;
  // Minimum distinct ASes one engine identity must span for NAT.
  std::size_t min_nat_ases = 2;
  // Last-reboot agreement window for "same engine identity" (seconds).
  double reboot_window_seconds = 20.0;
  // Active re-probes per candidate address.
  std::size_t reprobe_count = 5;
  util::VTime reprobe_timeout = 3 * util::kSecond;
  // Bounded retry budget for the confirmation bursts: when a candidate's
  // whole burst comes back empty (transient loss or rate limiting at the
  // target), the burst is retried — at most this many times across the
  // entire classification, so a black-holed candidate list cannot stall
  // it. 0 = never retry (historical behavior).
  std::size_t retry_budget = 0;
};

struct AnomalyReport {
  std::vector<Anomaly> anomalies;
  // Re-probe accounting: total confirmation probes sent, and how much of
  // `AnomalyOptions::retry_budget` was consumed by empty-burst retries.
  std::size_t reprobes_sent = 0;
  std::size_t retries_used = 0;

  std::size_t count(AnomalyKind kind) const;
  std::size_t churn_count() const { return count(AnomalyKind::kAddressChurn); }
  std::size_t load_balancer_count() const {
    return count(AnomalyKind::kLoadBalancer);
  }
  std::size_t nat_count() const { return count(AnomalyKind::kNat); }
  std::size_t unstable_count() const { return count(AnomalyKind::kUnstable); }
};

// Classifies every address whose engine identity is not a single stable
// engine across both scans (the records the filter pipeline would drop),
// plus NAT frontends (which look consistent per address but span ASes).
//
// Candidate addresses are actively RE-PROBED `reprobe_count` times through
// `transport` — a single probe per scan cannot distinguish a rotating
// load-balancer VIP from a relocated DHCP lease; a burst can.
AnomalyReport classify_anomalies(const scan::ScanResult& scan1,
                                 const scan::ScanResult& scan2,
                                 net::Transport& transport,
                                 const net::Endpoint& prober_source,
                                 const net::AsTable& as_table,
                                 const AnomalyOptions& options = {});

}  // namespace snmpv3fp::core
