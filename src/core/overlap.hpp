// Producer/consumer overlap of the store-backed join and the filter
// funnel (execution-only; part of the `columnar` knob, core/pipeline.hpp).
//
// The stage-barriered pipeline finishes the whole merge join — including
// its external-sort I/O — before the filter reads the first record. Here
// the join produces blocks of matched rows into a bounded queue on a
// dedicated thread while the consumer pivots each block and feeds the
// columnar funnel's verdict pass, so filter CPU hides behind join I/O.
// The queue is bounded (backpressure) and strictly FIFO, and the single
// consumer feeds blocks in production order, so every derived artifact is
// bit-identical to the barriered path at any thread count
// (tests/test_columnar.cpp).
#pragma once

#include "core/filters.hpp"
#include "core/join.hpp"

namespace snmpv3fp::core {

struct OverlapOutcome {
  // False when a store block read failed mid-join: the partial products
  // below are meaningless and the caller must fall back to the
  // materializing join + row filter.
  bool ok = false;
  std::vector<JoinedRecord> joined;  // full raw join, address order
  JoinStats stats;
  FilterReport report;
  std::vector<JoinedRecord> survivors;
};

// Runs the streaming join of two store-backed scan results overlapped
// with the columnar filter funnel. `obs` scopes the filter counters (the
// caller owns the surrounding join/filter spans).
OverlapOutcome join_filter_overlapped(const scan::ScanResult& first,
                                      const scan::ScanResult& second,
                                      const FilterPipeline& filter,
                                      const util::ParallelOptions& parallel,
                                      const obs::ObsOptions& obs);

}  // namespace snmpv3fp::core
