// Unified RunReport: one run's observability + accounting in one place.
//
// Aggregates what the pipeline already measures (Table 1 filter funnels,
// campaign response rates and cross-scan consistency, fabric drop-cause
// counters, alias-resolution summary) with what the observability layer
// collected (stage spans, metrics, per-shard scan progress), and
// serializes the whole thing to JSON (machine diffing across runs/PRs)
// and to the util/table ASCII format (humans).
//
// The report is derived OUTSIDE PipelineResult on purpose: results stay
// bit-identical whether or not anyone observes the run.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"

namespace snmpv3fp::core {

struct RunReport {
  // Run configuration echo.
  std::uint64_t seed = 0;
  std::size_t threads = 0;
  std::size_t scan_shards = 0;

  struct CampaignReport {
    std::string family;  // "ipv4" / "ipv6"
    std::size_t targets = 0;      // per scan
    std::size_t responsive1 = 0, responsive2 = 0;
    double response_rate1 = 0.0, response_rate2 = 0.0;
    // Fraction of scan-1 responders that also answered scan 2 (the
    // cross-scan consistency the two-scan methodology depends on).
    double cross_scan_consistency = 0.0;
    // Robustness accounting across both scans: responses that reached the
    // prober but failed SNMPv3 decode (hostile/corrupted bytes), and
    // adaptive-pacer backoff events (zero unless PacerConfig::adaptive).
    std::size_t undecodable_responses = 0;
    std::size_t pacer_backoffs = 0;
    sim::FabricStats fabric;
    // Kernel I/O and drop-cause accounting for net-engine campaigns
    // (net/batched_udp.hpp): syscall batching counters plus the send/recv
    // error taxonomy (pressure, refusals, truncation, bad frames). All
    // zeros for fabric campaigns; the JSON always carries the object, the
    // ASCII table appears only when datagrams actually hit the wire.
    net::NetIoStats net_io;
  };
  std::vector<CampaignReport> campaigns;

  struct Funnel {
    std::string family;
    std::size_t input = 0;
    std::array<std::size_t, kFilterStageCount> dropped{};
    std::size_t output = 0;
  };
  std::vector<Funnel> funnels;  // Table 1 accounting, per family

  struct AliasSummary {
    std::size_t sets = 0;
    std::size_t non_singleton_sets = 0;
    std::size_t ips_in_non_singletons = 0;
    std::size_t dual_stack_sets = 0;
  };
  AliasSummary alias;

  // From the observer (empty when the run was unobserved).
  std::vector<obs::SpanRecord> spans;
  std::vector<obs::ShardProgress> shard_progress;
  obs::MetricsSnapshot metrics;
  // Sampled time series (empty unless the run configured a Timeline).
  obs::TimelineSnapshot time_series;

  std::string to_json() const;
  std::string to_table() const;  // util/table ASCII rendering
};

// Builds the report from a finished run. `observer` may be null — the
// accounting sections still fill in; spans/metrics stay empty.
RunReport build_run_report(const PipelineResult& result,
                           const PipelineOptions& options,
                           const obs::RunObserver* observer);

}  // namespace snmpv3fp::core
