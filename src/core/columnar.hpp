// Columnar execution of the analysis funnel (execution-only, see the
// `columnar` knob in core/pipeline.hpp).
//
// The filter funnel consults a handful of scalar fields per record plus a
// few predicates of the engine ID. Row-layout execution re-derives the
// engine-ID predicates (format parse, OUI lookup, routability) per record
// per stage; columnar execution pivots a batch of JoinedRecords into flat
// per-field columns with both scans' engine IDs dictionary-encoded through
// ONE shared dictionary, so
//   - engine-ID equality between the scans is a u32 compare (shared
//     dictionary: code equality <=> byte equality), and
//   - every engine-ID predicate is evaluated once per *distinct* engine ID
//     for the whole run, not once per record per stage.
// The verdict loop is then a single branch-light pass over integer
// columns. Drop accounting decomposes exactly as apply_stream's does:
// verdict_row = first failed row-local stage (promiscuous skipped), the
// promiscuous census runs over rows alive before its position, and the
// final verdict re-inserts the promiscuous stage — bit-identical to
// FilterPipeline::apply on the same input (tests/test_columnar.cpp).
//
// ColumnarFunnel is incremental so the store-backed pipeline can overlap
// stages: feed() consumes pivoted blocks as the merge join produces them
// (core/overlap.hpp), finish() runs the census and materializes survivors
// once the last block has arrived.
#pragma once

#include <span>

#include "core/filters.hpp"
#include "store/columnar.hpp"

namespace snmpv3fp::core {

// Funnel-relevant columns of a JoinedRecord batch. Deliberately NOT a full
// pivot: addresses, send times and response counters are never consulted
// by the filter stages, and survivors rematerialize from the caller's row
// vector, so pivoting them would be pure memory traffic.
struct ColumnarJoined {
  store::EngineDictionary dict;  // shared by BOTH scans' engine IDs
  struct Side {
    std::vector<std::uint32_t> engine_code;
    std::vector<std::uint32_t> engine_boots;
    std::vector<std::uint32_t> engine_time;
    std::vector<util::VTime> receive_time;
  } first, second;

  std::size_t size() const { return first.engine_code.size(); }
  const std::vector<snmp::EngineId>& dictionary() const {
    return dict.entries();
  }

  void append(const JoinedRecord& record);
  static ColumnarJoined from_rows(std::span<const JoinedRecord> rows);
};

// Incremental columnar filter executor. Usage:
//   ColumnarFunnel funnel(options);
//   for each block (in row order): funnel.feed(block, parallel);
//   report = funnel.finish(all_rows, survivors, parallel, obs);
// feed() computes per-row verdicts for the row-local stages; finish() runs
// the promiscuous census over the accumulated verdicts and materializes
// survivors from `rows` (which must be the concatenation, in order, of
// every row fed). Blocks must arrive in row order — the verdict store is
// positional.
class ColumnarFunnel {
 public:
  explicit ColumnarFunnel(FilterOptions options);

  void feed(const ColumnarJoined& block,
            const util::ParallelOptions& parallel = {});

  // Row-layout entry point: encodes both engine IDs of every row straight
  // into the run-global dictionary (no per-batch pivot, no remap pass) and
  // computes the same verdicts feed() would. apply_columnar uses this when
  // the input is already materialized as rows.
  void feed_rows(std::span<const JoinedRecord> rows,
                 const util::ParallelOptions& parallel = {});

  // Emits per-stage dropped.<slug> and output counters on `obs` (the
  // caller owns the surrounding "filter" span and input counter, since
  // feeding may be spread across an overlapped region).
  FilterReport finish(std::span<const JoinedRecord> rows,
                      std::vector<JoinedRecord>& survivors,
                      const util::ParallelOptions& parallel = {},
                      const obs::ObsOptions& obs = {});

  std::size_t rows_fed() const { return verdict_row_.size(); }

 private:
  // Predicates of one distinct engine ID, evaluated once at dictionary
  // insertion and reused by every row that carries the ID.
  struct CodeInfo {
    bool empty = false;
    bool too_short = false;
    bool unroutable_v4 = false;
    bool unregistered_mac = false;
    bool has_payload = false;
    bool has_census_key = false;  // enterprise + non-empty payload
    std::uint32_t enterprise = 0;
    // View into dict_'s entry for this code — stable because entries only
    // append and the underlying byte buffers move, never reallocate.
    util::ByteView payload;
  };

  // Code of `id` in the run-global dictionary, evaluating the CodeInfo
  // predicates once on first appearance.
  std::uint32_t encode_id(const snmp::EngineId& id);

  FilterOptions options_;
  store::EngineDictionary dict_;  // run-global code space
  std::vector<CodeInfo> info_;
  // Per row fed: first failed row-local stage position (promiscuous
  // treated as passing), kFilterStageCount when none; and the first scan's
  // run-global engine-ID code for the census.
  std::vector<std::uint8_t> verdict_row_;
  std::vector<std::uint32_t> code_;
};

}  // namespace snmpv3fp::core
