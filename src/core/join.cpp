#include "core/join.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "store/columnar.hpp"
#include "store/record_store.hpp"

namespace snmpv3fp::core {

namespace {

// Hash-join of two in-RAM record vectors. Chunks probe the shared
// (read-only) index and concatenate in chunk order — identical to the
// sequential left-to-right join — then the final sort fixes one
// deterministic order regardless of hash-map iteration.
std::vector<JoinedRecord> join_vectors(
    const std::vector<scan::ScanRecord>& first,
    const std::vector<scan::ScanRecord>& second,
    const std::unordered_map<net::IpAddress, std::size_t>& second_index,
    const util::ParallelOptions& parallel) {
  const std::size_t n = first.size();
  std::vector<std::vector<JoinedRecord>> parts(
      std::max<std::size_t>(parallel.resolved_threads(), 1));
  util::parallel_for_chunks(
      0, n, parallel,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& local = parts[chunk];
        local.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          const auto& record = first[i];
          const auto it = second_index.find(record.target);
          if (it == second_index.end()) continue;
          local.push_back({record.target, record, second[it->second]});
        }
      });

  std::size_t matched = 0;
  for (const auto& part : parts) matched += part.size();
  std::vector<JoinedRecord> joined;
  joined.reserve(matched);
  for (auto& part : parts)
    std::move(part.begin(), part.end(), std::back_inserter(joined));
  std::sort(joined.begin(), joined.end(),
            [](const JoinedRecord& a, const JoinedRecord& b) {
              return a.address < b.address;
            });
  return joined;
}

// One side of the columnar merge join: a columnar block cursor plus the
// in-block position. Advancing past the last row loads the next block.
struct BlockStream {
  store::RecordStore::ColumnarCursor cursor;
  store::ColumnarBlock block;
  std::size_t pos = 0;
  bool have = false;

  explicit BlockStream(const store::RecordStore& owner)
      : cursor(owner.columnar_cursor()) {
    advance_block();
  }
  void advance_block() {
    pos = 0;
    have = cursor.next_block(block);
  }
  void advance() {
    if (++pos >= block.size()) advance_block();
  }
  const net::IpAddress& address() const { return block.target[pos]; }
};

}  // namespace

// Store-backed path: external-sort both stores by address (bounded RAM),
// then a two-cursor columnar merge join. Addresses are unique within a
// scan, so the address-ordered match sequence is exactly the hash join's
// output after its final sort.
bool join_stores_blocked(
    const scan::ScanResult& first, const scan::ScanResult& second,
    std::size_t block_rows,
    const std::function<void(std::vector<JoinedRecord>&&)>& emit) {
  const store::StoreOptions& opts = first.store->options();
  const std::size_t chunk = store::sort_chunk_records(opts);
  // The two sorts are independent (distinct sources, distinct output
  // names); running them on dedicated threads halves the pre-join stall
  // the ordered-merge barrier used to serialize.
  std::unique_ptr<store::RecordStore> sorted1, sorted2;
  util::run_overlapped(
      {[&] {
         sorted1 = store::sort_stores({first.store.get()},
                                      store::SortKey::kAddress, opts,
                                      first.store->name() + "_joinkey", chunk);
       },
       [&] {
         sorted2 = store::sort_stores({second.store.get()},
                                      store::SortKey::kAddress, opts,
                                      second.store->name() + "_joinkey",
                                      chunk);
       }});
  if (sorted1 == nullptr || sorted2 == nullptr) {
    if (sorted1 != nullptr) sorted1->remove_files();
    if (sorted2 != nullptr) sorted2->remove_files();
    return false;
  }

  if (block_rows == 0) block_rows = 1;
  std::vector<JoinedRecord> out;
  out.reserve(block_rows);
  BlockStream s1(*sorted1);
  BlockStream s2(*sorted2);
  while (s1.have && s2.have) {
    if (s1.address() < s2.address()) {
      s1.advance();
    } else if (s2.address() < s1.address()) {
      s2.advance();
    } else {
      out.push_back({s1.address(), s1.block.row(s1.pos), s2.block.row(s2.pos)});
      if (out.size() >= block_rows) {
        emit(std::move(out));
        out = {};
        out.reserve(block_rows);
      }
      s1.advance();
      s2.advance();
    }
  }
  const bool failed =
      !s1.cursor.error().empty() || !s2.cursor.error().empty();
  sorted1->remove_files();
  sorted2->remove_files();
  if (failed) return false;
  if (!out.empty()) emit(std::move(out));
  return true;
}

namespace {

std::optional<std::vector<JoinedRecord>> join_stores(
    const scan::ScanResult& first, const scan::ScanResult& second) {
  std::vector<JoinedRecord> joined;
  const bool ok = join_stores_blocked(
      first, second, 4096, [&joined](std::vector<JoinedRecord>&& block) {
        std::move(block.begin(), block.end(), std::back_inserter(joined));
      });
  if (!ok) return std::nullopt;
  return joined;
}

}  // namespace

std::vector<JoinedRecord> join_scans(const scan::ScanResult& first,
                                     const scan::ScanResult& second,
                                     JoinStats* stats,
                                     const util::ParallelOptions& parallel) {
  std::vector<JoinedRecord> joined;
  if (first.store_backed() && second.store_backed()) {
    auto streamed = join_stores(first, second);
    if (streamed.has_value()) {
      joined = std::move(*streamed);
    } else {
      // Damaged store: best-effort fallback through materialized vectors
      // (materialize itself fails closed per block, so anything that reads
      // back clean still joins).
      obs::log_warn("store merge join failed, materializing",
                    {{"first", first.label}, {"second", second.label}});
      const auto records1 = first.materialize_records();
      const auto records2 = second.materialize_records();
      std::unordered_map<net::IpAddress, std::size_t> index2;
      index2.reserve(records2.size());
      for (std::size_t i = 0; i < records2.size(); ++i)
        index2.emplace(records2[i].target, i);
      joined = join_vectors(records1, records2, index2, parallel);
    }
  } else {
    joined = join_vectors(first.records, second.records, second.by_target(),
                          parallel);
  }
  if (stats != nullptr) {
    stats->overlap = joined.size();
    stats->first_only = first.responsive() - joined.size();
    stats->second_only = second.responsive() - joined.size();
  }
  return joined;
}

}  // namespace snmpv3fp::core
