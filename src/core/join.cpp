#include "core/join.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "store/record_store.hpp"

namespace snmpv3fp::core {

namespace {

// Hash-join of two in-RAM record vectors. Chunks probe the shared
// (read-only) index and concatenate in chunk order — identical to the
// sequential left-to-right join — then the final sort fixes one
// deterministic order regardless of hash-map iteration.
std::vector<JoinedRecord> join_vectors(
    const std::vector<scan::ScanRecord>& first,
    const std::vector<scan::ScanRecord>& second,
    const std::unordered_map<net::IpAddress, std::size_t>& second_index,
    const util::ParallelOptions& parallel) {
  const std::size_t n = first.size();
  std::vector<std::vector<JoinedRecord>> parts(
      std::max<std::size_t>(parallel.resolved_threads(), 1));
  util::parallel_for_chunks(
      0, n, parallel,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& local = parts[chunk];
        local.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          const auto& record = first[i];
          const auto it = second_index.find(record.target);
          if (it == second_index.end()) continue;
          local.push_back({record.target, record, second[it->second]});
        }
      });

  std::size_t matched = 0;
  for (const auto& part : parts) matched += part.size();
  std::vector<JoinedRecord> joined;
  joined.reserve(matched);
  for (auto& part : parts)
    std::move(part.begin(), part.end(), std::back_inserter(joined));
  std::sort(joined.begin(), joined.end(),
            [](const JoinedRecord& a, const JoinedRecord& b) {
              return a.address < b.address;
            });
  return joined;
}

// Store-backed path: external-sort both stores by address (bounded RAM),
// then a two-cursor merge join. Addresses are unique within a scan, so
// the address-ordered match sequence is exactly the hash join's output
// after its final sort. nullopt when a store block read fails.
std::optional<std::vector<JoinedRecord>> join_stores(
    const scan::ScanResult& first, const scan::ScanResult& second) {
  const store::StoreOptions& opts = first.store->options();
  const std::size_t chunk = store::sort_chunk_records(opts);
  const auto sorted1 =
      store::sort_stores({first.store.get()}, store::SortKey::kAddress, opts,
                         first.store->name() + "_joinkey", chunk);
  const auto sorted2 =
      store::sort_stores({second.store.get()}, store::SortKey::kAddress, opts,
                         second.store->name() + "_joinkey", chunk);
  if (sorted1 == nullptr || sorted2 == nullptr) return std::nullopt;

  std::vector<JoinedRecord> joined;
  auto c1 = sorted1->cursor();
  auto c2 = sorted2->cursor();
  scan::ScanRecord r1, r2;
  bool have1 = c1.next(r1);
  bool have2 = c2.next(r2);
  while (have1 && have2) {
    if (r1.target < r2.target) {
      have1 = c1.next(r1);
    } else if (r2.target < r1.target) {
      have2 = c2.next(r2);
    } else {
      joined.push_back({r1.target, r1, r2});
      have1 = c1.next(r1);
      have2 = c2.next(r2);
    }
  }
  const bool failed = !c1.error().empty() || !c2.error().empty();
  sorted1->remove_files();
  sorted2->remove_files();
  if (failed) return std::nullopt;
  return joined;
}

}  // namespace

std::vector<JoinedRecord> join_scans(const scan::ScanResult& first,
                                     const scan::ScanResult& second,
                                     JoinStats* stats,
                                     const util::ParallelOptions& parallel) {
  std::vector<JoinedRecord> joined;
  if (first.store_backed() && second.store_backed()) {
    auto streamed = join_stores(first, second);
    if (streamed.has_value()) {
      joined = std::move(*streamed);
    } else {
      // Damaged store: best-effort fallback through materialized vectors
      // (materialize itself fails closed per block, so anything that reads
      // back clean still joins).
      obs::log_warn("store merge join failed, materializing",
                    {{"first", first.label}, {"second", second.label}});
      const auto records1 = first.materialize_records();
      const auto records2 = second.materialize_records();
      std::unordered_map<net::IpAddress, std::size_t> index2;
      index2.reserve(records2.size());
      for (std::size_t i = 0; i < records2.size(); ++i)
        index2.emplace(records2[i].target, i);
      joined = join_vectors(records1, records2, index2, parallel);
    }
  } else {
    joined = join_vectors(first.records, second.records, second.by_target(),
                          parallel);
  }
  if (stats != nullptr) {
    stats->overlap = joined.size();
    stats->first_only = first.responsive() - joined.size();
    stats->second_only = second.responsive() - joined.size();
  }
  return joined;
}

}  // namespace snmpv3fp::core
