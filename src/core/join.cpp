#include "core/join.hpp"

#include <algorithm>

namespace snmpv3fp::core {

std::vector<JoinedRecord> join_scans(const scan::ScanResult& first,
                                     const scan::ScanResult& second,
                                     JoinStats* stats,
                                     const util::ParallelOptions& parallel) {
  const auto second_index = second.index();
  const std::size_t n = first.records.size();

  // Probe chunks against the shared (read-only) index, then concatenate in
  // chunk order — identical to the sequential left-to-right join.
  std::vector<std::vector<JoinedRecord>> parts(
      std::max<std::size_t>(parallel.resolved_threads(), 1));
  util::parallel_for_chunks(
      0, n, parallel,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& local = parts[chunk];
        local.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          const auto& record = first.records[i];
          const auto it = second_index.find(record.target);
          if (it == second_index.end()) continue;
          local.push_back(
              {record.target, record, second.records[it->second]});
        }
      });

  std::size_t matched = 0;
  for (const auto& part : parts) matched += part.size();
  std::vector<JoinedRecord> joined;
  joined.reserve(matched);
  for (auto& part : parts)
    std::move(part.begin(), part.end(), std::back_inserter(joined));

  if (stats != nullptr) {
    stats->overlap = matched;
    stats->first_only = first.records.size() - matched;
    stats->second_only = second.records.size() - matched;
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(joined.begin(), joined.end(),
            [](const JoinedRecord& a, const JoinedRecord& b) {
              return a.address < b.address;
            });
  return joined;
}

}  // namespace snmpv3fp::core
