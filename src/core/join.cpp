#include "core/join.hpp"

#include <algorithm>

namespace snmpv3fp::core {

std::vector<JoinedRecord> join_scans(const scan::ScanResult& first,
                                     const scan::ScanResult& second,
                                     JoinStats* stats) {
  const auto second_index = second.index();
  std::vector<JoinedRecord> joined;
  joined.reserve(std::min(first.records.size(), second.records.size()));
  std::size_t matched = 0;
  for (const auto& record : first.records) {
    const auto it = second_index.find(record.target);
    if (it == second_index.end()) continue;
    ++matched;
    joined.push_back(
        {record.target, record, second.records[it->second]});
  }
  if (stats != nullptr) {
    stats->overlap = matched;
    stats->first_only = first.records.size() - matched;
    stats->second_only = second.records.size() - matched;
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(joined.begin(), joined.end(),
            [](const JoinedRecord& a, const JoinedRecord& b) {
              return a.address < b.address;
            });
  return joined;
}

}  // namespace snmpv3fp::core
