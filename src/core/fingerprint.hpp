// Vendor fingerprinting from SNMPv3 engine IDs (paper §3.1, §6).
//
// Highest confidence: the OUI of a MAC-format engine ID. The enterprise
// number embedded in every RFC 3411-conforming engine ID is the fallback
// and cross-check. Net-SNMP's scheme identifies the software agent itself.
#pragma once

#include <string>

#include "snmp/engine_id.hpp"

namespace snmpv3fp::core {

enum class FingerprintSource : std::uint8_t {
  kMacOui,      // IEEE OUI of the embedded MAC address
  kEnterprise,  // IANA enterprise number in the engine ID prefix
  kNetSnmp,     // Net-SNMP enterprise-specific scheme
  kUnknown,     // nothing identifiable (non-conforming, unknown numbers)
};

std::string_view to_string(FingerprintSource source);

struct Fingerprint {
  std::string vendor = "Unknown";
  FingerprintSource source = FingerprintSource::kUnknown;
};

Fingerprint fingerprint_engine_id(const snmp::EngineId& engine_id);

}  // namespace snmpv3fp::core
