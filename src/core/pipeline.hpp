// End-to-end measurement pipeline: the library's one-call entry point.
//
// Builds (or takes) a simulated world, runs the paper's full methodology —
// two IPv4 scans, two IPv6 scans over the hitlist, joining, the ten-stage
// filter pipeline, combined alias resolution, dual-stack merging, router
// tagging against the synthetic topology datasets, and vendor
// fingerprinting — and returns every intermediate product the analyses and
// benches need.
#pragma once

#include "core/alias.hpp"
#include "core/analytics.hpp"
#include "core/filters.hpp"
#include "core/join.hpp"
#include "obs/obs.hpp"
#include "scan/aliased_prefix.hpp"
#include "scan/campaign.hpp"
#include "store/record_store.hpp"
#include "topo/datasets.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::core {

struct PipelineOptions {
  topo::WorldConfig world = topo::WorldConfig::full_internet();
  FilterOptions filter;
  AliasOptions alias;
  topo::DatasetOptions datasets;
  double v4_rate_pps = 5000.0;   // paper §3.2
  double v6_rate_pps = 20000.0;  // paper §3.2
  util::VTime v4_scan_gap = 6 * util::kDay;  // Apr 16-20 vs 22-27
  util::VTime v6_scan_gap = 1 * util::kDay;  // Apr 13 vs 14
  bool scan_ipv6 = true;
  // Pre-scan the hitlist's /64s with random interface identifiers and
  // exclude aliased prefixes (the hitlist-service preprocessing the paper
  // relies on, §4.1.1).
  bool exclude_aliased_prefixes = true;
  std::uint64_t seed = 20210413;
  // Execution-only knobs: how many threads drive the sharded scan and the
  // chunked analysis stages, and how many shards each scan is cut into.
  // `parallel.threads` never changes any output bit; `scan_shards` is part
  // of the experiment configuration (it selects per-shard RNG streams).
  util::ParallelOptions parallel;
  std::size_t scan_shards = scan::kDefaultScanShards;
  // Execution-only observability: attach a RunObserver to collect spans,
  // metrics and per-shard progress for a RunReport (core/report.hpp).
  // Enabled or not, PipelineResult is bit-identical (tests/test_obs.cpp).
  obs::ObsOptions obs;
  // Fault tolerance (scan/checkpoint.hpp, scan/pacer.hpp). With
  // `checkpoint_dir` set, each campaign persists resumable progress to
  // <checkpoint_dir>/campaign_v6.json / campaign_v4.json — at the boundary
  // between its two scans always, plus every `checkpoint_every_n_targets`
  // probes per shard — and a rerun with identical options resumes from the
  // files bit-identically. `pacer` enables adaptive rate backoff (an
  // experiment-configuration knob: it moves probe send times).
  // `abort_after_checkpoints` simulates a kill for tests (see
  // scan::CampaignOptions::abort_after_checkpoints).
  scan::PacerConfig pacer;
  std::string checkpoint_dir;
  std::size_t checkpoint_every_n_targets = 0;
  std::size_t abort_after_checkpoints = 0;
  // Wire fast path (src/wire): template-stamped probes and the single-pass
  // REPORT scanner with full-codec fallback. Execution-only knob —
  // PipelineResult is bit-identical on or off at any thread count
  // (tests/test_wire.cpp).
  bool wire_fast_path = true;
  // Memory-bounded record store (store/record_store.hpp). With `store.dir`
  // set, each campaign spills its scan records to <store.dir>/v4 and /v6
  // stores whose resident RAM is bounded by `store.max_resident_bytes`;
  // joining external-sorts and merge-joins the stores through streaming
  // cursors, and filtering streams the join without the pre-filter copy.
  // PipelineResult is bit-identical either way (tests/test_store.cpp).
  store::StoreOptions store;
  // Delivery fabric shared by both campaigns and (seed aside) the hitlist
  // prescan. The default is the loss-free fixed-default fabric the
  // pipeline always used — every historical output bit is preserved —
  // while equality tests dial rtt/loss knobs to the deterministic subset
  // the loopback reflector mirrors.
  sim::FabricConfig fabric;
  // Real-socket campaigns (net/batched_udp.hpp): when set, the pipeline
  // starts one sim::LoopbackReflector serving the world model over a
  // loopback UDP socket, points EngineConfig::sim_peer at it, and both
  // campaigns probe through per-shard BatchedUdpEngines — the full
  // methodology through actual kernel sockets. With EngineClock::kVirtual
  // and a fabric restricted to the deterministic subset (zero loss,
  // min_rtt == max_rtt matching the reflector's), the PipelineResult is
  // bit-identical to the sim-fabric run (tests/test_net_engine.cpp). If
  // the reflector's socket cannot open (sandboxed CI), the campaigns come
  // back empty with CampaignPair::net_error set — a skip, not a crash.
  std::optional<net::EngineConfig> net_engine;
  // AF_PACKET TPACKET_V3 ring receive for net-engine campaigns
  // (scan::CampaignOptions::ring_receive): per-shard fanout rings replace
  // recvmmsg as the engines' receive half. Needs CAP_NET_RAW; falls back
  // to recvmmsg with a logged warning otherwise. Execution-only — output
  // bit-identical on or off.
  bool net_ring_receive = false;
  // Reflector RTT when `net_engine` is set; must equal the fabric's fixed
  // rtt for equality runs.
  util::VTime net_rtt = 20 * util::kMillisecond;
  // Columnar analysis + stage overlap (core/columnar.hpp, core/overlap.hpp,
  // docs/ARCHITECTURE.md §6). Execution-only knob: on, the filter funnel
  // runs as a branch-light verdict pass over per-field column slices with
  // dictionary-encoded engine IDs, and (store-backed runs) the merge join
  // streams blocks into the funnel through a bounded queue instead of
  // barriering between the stages. PipelineResult is bit-identical on or
  // off at any thread count (tests/test_columnar.cpp), and — like
  // wire_fast_path — the knob is excluded from the checkpoint config
  // digest, so checkpoints written either way resume interchangeably.
  bool columnar = true;
};

struct PipelineResult {
  topo::World world;  // ground truth (address state: final epoch)
  net::AsTable as_table;
  // True when a simulated kill interrupted a campaign: the results below
  // the interrupted campaign are empty/partial and the checkpoint files
  // hold the resumable state. Re-running with the same options resumes.
  bool interrupted = false;

  // Third-party-style datasets, exported before any scan ran.
  topo::RouterDataset itdk_v4;
  topo::RouterDataset itdk_v6;
  topo::RouterDataset atlas;
  std::vector<net::IpAddress> hitlist_v6;  // aliased /64s already excluded
  scan::AliasedPrefixResult aliased_prefixes;
  AddressSet router_addresses;  // ITDK + Atlas union (paper §6.1)

  // Scan campaigns.
  scan::CampaignPair v4_campaign;
  scan::CampaignPair v6_campaign;

  // Joined (pre-filter) and filtered records per family.
  std::vector<JoinedRecord> v4_joined;  // raw join, for Figures 4-8/19
  std::vector<JoinedRecord> v6_joined;
  std::vector<JoinedRecord> v4_records;  // post-filter
  std::vector<JoinedRecord> v6_records;
  JoinStats v4_join_stats, v6_join_stats;
  FilterReport v4_report, v6_report;

  // Alias resolution over both families (dual-stack merge included).
  AliasResolution resolution;
  std::vector<DeviceRecord> devices;

  // Convenience lookups.
  AddressSet responsive_v4() const;
  std::size_t router_device_count() const;
};

PipelineResult run_full_pipeline(const PipelineOptions& options = {});

// Variant for callers that already built a world (tests, ablations).
PipelineResult run_full_pipeline(topo::World world,
                                 const PipelineOptions& options);

// Variant over any WorldModel (topo/world_model.hpp): campaigns and the
// hitlist prescan read devices through the model's lazy view, so a
// procedural world never materializes per-device state beyond its
// responder cache. The dataset exports and PipelineResult::world come
// from materialize() snapshots (pre- and post-churn respectively) — fine
// for the equivalence tests this overload serves, but census-scale sweeps
// should drive scan::run_two_scan_campaign directly instead. A procedural
// world restricted to static scenario layers produces a bit-identical
// PipelineResult to run_full_pipeline(model.materialize(), options)
// (tests/test_worlds.cpp).
PipelineResult run_full_pipeline(topo::WorldModel& model,
                                 const PipelineOptions& options);

}  // namespace snmpv3fp::core
