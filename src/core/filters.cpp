#include "core/filters.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "net/registry.hpp"

namespace snmpv3fp::core {

namespace {

using snmp::EngineIdFormat;

// The paper's published stage order (drives Table 1's funnel accounting).
constexpr FilterStage kStageOrder[kFilterStageCount] = {
    FilterStage::kMissingEngineId,    FilterStage::kInconsistentEngineId,
    FilterStage::kTooShortEngineId,   FilterStage::kPromiscuousEngineId,
    FilterStage::kUnroutableIpv4,     FilterStage::kUnregisteredMac,
    FilterStage::kZeroTimeOrBoots,    FilterStage::kFutureEngineTime,
    FilterStage::kInconsistentBoots,  FilterStage::kInconsistentReboot,
};

// True if the record survives a single-record stage.
bool passes(FilterStage stage, const JoinedRecord& record,
            const FilterOptions& options) {
  const auto& id = record.engine_id();
  switch (stage) {
    case FilterStage::kMissingEngineId:
      return !record.first.engine_id.empty() &&
             !record.second.engine_id.empty();
    case FilterStage::kInconsistentEngineId:
      return record.engine_ids_match();
    case FilterStage::kTooShortEngineId:
      return id.size() >= options.min_engine_id_bytes;
    case FilterStage::kUnroutableIpv4: {
      const auto addr = id.ipv4();
      return !addr.has_value() || addr->is_routable();
    }
    case FilterStage::kUnregisteredMac: {
      const auto mac = id.mac();
      return !mac.has_value() ||
             net::OuiRegistry::embedded().contains(mac->oui());
    }
    case FilterStage::kZeroTimeOrBoots:
      return record.first.engine_time != 0 && record.first.engine_boots != 0 &&
             record.second.engine_time != 0 && record.second.engine_boots != 0;
    case FilterStage::kFutureEngineTime:
      // An engineTime exceeding the seconds since the Unix epoch implies a
      // reboot before 1970 — "engine time in the future" in the paper.
      return record.first.last_reboot() >= util::kUnixEpochVtime &&
             record.second.last_reboot() >= util::kUnixEpochVtime;
    case FilterStage::kInconsistentBoots:
      return record.boots_match();
    case FilterStage::kInconsistentReboot:
      return record.reboot_delta_seconds() <= options.reboot_threshold_seconds;
    case FilterStage::kPromiscuousEngineId:
      return true;  // handled as a global stage
  }
  return true;
}

// Promiscuous detection is global: the same format-specific payload seen
// under more than one enterprise number marks every holder for removal.
// Chunks build local payload->enterprise maps merged by set union, so the
// result is independent of chunking.
// `prefilter` restricts the census to records that survive every stage
// ordered before the promiscuous one — the population `apply` sees at that
// point after its in-place compactions (the streaming path needs this; the
// in-place path passes records already compacted and prefilter=false).
std::set<util::Bytes> promiscuous_payloads(
    std::span<const JoinedRecord> records, const FilterOptions& options,
    bool prefilter, const util::ParallelOptions& parallel) {
  using PayloadMap = std::map<util::Bytes, std::set<std::uint32_t>>;
  std::vector<PayloadMap> parts(
      std::max<std::size_t>(parallel.resolved_threads(), 1));
  util::parallel_for_chunks(
      0, records.size(), parallel,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto& local = parts[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          if (prefilter) {
            bool alive = true;
            for (std::size_t s = 0;
                 kStageOrder[s] != FilterStage::kPromiscuousEngineId; ++s)
              if (!passes(kStageOrder[s], records[i], options)) {
                alive = false;
                break;
              }
            if (!alive) continue;
          }
          const auto& id = records[i].engine_id();
          const auto enterprise = id.enterprise();
          const auto payload = id.payload();
          if (!enterprise || !payload || payload->empty()) continue;
          local[util::Bytes(payload->begin(), payload->end())]
              .insert(*enterprise);
        }
      });
  PayloadMap enterprises_by_payload = std::move(parts.front());
  for (std::size_t p = 1; p < parts.size(); ++p)
    for (auto& [payload, enterprises] : parts[p])
      enterprises_by_payload[payload].insert(enterprises.begin(),
                                             enterprises.end());
  std::set<util::Bytes> promiscuous;
  for (const auto& [payload, enterprises] : enterprises_by_payload)
    if (enterprises.size() > 1) promiscuous.insert(payload);
  return promiscuous;
}

// Position in kStageOrder of the first stage the record fails, or
// kFilterStageCount when it survives the whole funnel.
std::size_t first_failed_stage(const JoinedRecord& record,
                               const FilterOptions& options,
                               const std::set<util::Bytes>& promiscuous) {
  for (std::size_t s = 0; s < kFilterStageCount; ++s) {
    const FilterStage stage = kStageOrder[s];
    if (stage == FilterStage::kPromiscuousEngineId) {
      if (promiscuous.empty()) continue;
      const auto payload = record.engine_id().payload();
      if (payload && promiscuous.count(util::Bytes(payload->begin(),
                                                   payload->end())) > 0)
        return s;
      continue;
    }
    if (!passes(stage, record, options)) return s;
  }
  return kFilterStageCount;
}

}  // namespace

std::string_view to_string(FilterStage stage) {
  switch (stage) {
    case FilterStage::kMissingEngineId: return "missing engine ID";
    case FilterStage::kInconsistentEngineId: return "inconsistent engine ID";
    case FilterStage::kTooShortEngineId: return "too short engine ID";
    case FilterStage::kPromiscuousEngineId: return "promiscuous engine ID";
    case FilterStage::kUnroutableIpv4: return "unroutable IPv4 engine ID";
    case FilterStage::kUnregisteredMac: return "unregistered MAC engine ID";
    case FilterStage::kZeroTimeOrBoots: return "zero engine time or boots";
    case FilterStage::kFutureEngineTime: return "engine time in the future";
    case FilterStage::kInconsistentBoots: return "inconsistent engine boots";
    case FilterStage::kInconsistentReboot: return "inconsistent last reboot";
  }
  return "?";
}

std::string_view to_slug(FilterStage stage) {
  switch (stage) {
    case FilterStage::kMissingEngineId: return "missing_engine_id";
    case FilterStage::kInconsistentEngineId: return "inconsistent_engine_id";
    case FilterStage::kTooShortEngineId: return "too_short_engine_id";
    case FilterStage::kPromiscuousEngineId: return "promiscuous_engine_id";
    case FilterStage::kUnroutableIpv4: return "unroutable_ipv4_engine_id";
    case FilterStage::kUnregisteredMac: return "unregistered_mac_engine_id";
    case FilterStage::kZeroTimeOrBoots: return "zero_time_or_boots";
    case FilterStage::kFutureEngineTime: return "future_engine_time";
    case FilterStage::kInconsistentBoots: return "inconsistent_boots";
    case FilterStage::kInconsistentReboot: return "inconsistent_reboot";
  }
  return "unknown";
}

std::size_t FilterReport::valid_engine_id_count() const {
  // Stages 0..5 are the engine-ID validity stages.
  std::size_t survivors = input;
  for (std::size_t i = 0;
       i <= static_cast<std::size_t>(FilterStage::kUnregisteredMac); ++i)
    survivors -= dropped[i];
  return survivors;
}

std::size_t FilterReport::total_dropped() const {
  std::size_t total = 0;
  for (const auto d : dropped) total += d;
  return total;
}

FilterReport FilterPipeline::apply(std::vector<JoinedRecord>& records,
                                   const util::ParallelOptions& parallel,
                                   const obs::ObsOptions& obs) const {
  obs::Span pipeline_span(obs.trace(), obs.scoped("filter"));
  if (obs.enabled()) obs.counter("input").add(records.size());

  FilterReport report;
  report.input = records.size();

  std::vector<unsigned char> keep;
  for (const FilterStage stage : kStageOrder) {
    obs::Span stage_span(
        obs.trace(),
        obs.scoped(std::string("filter.") + std::string(to_slug(stage))));
    const std::size_t before = records.size();
    keep.assign(before, 1);
    if (stage == FilterStage::kPromiscuousEngineId) {
      const auto promiscuous =
          promiscuous_payloads(records, options_, false, parallel);
      if (!promiscuous.empty()) {
        util::parallel_for(0, before, parallel, [&](std::size_t i) {
          const auto payload = records[i].engine_id().payload();
          if (!payload) return;
          keep[i] = promiscuous.count(util::Bytes(payload->begin(),
                                                  payload->end())) == 0;
        });
      }
    } else {
      util::parallel_for(0, before, parallel, [&](std::size_t i) {
        keep[i] = passes(stage, records[i], options_);
      });
    }
    // Stable in-place compaction of the survivors.
    std::size_t write = 0;
    for (std::size_t i = 0; i < before; ++i) {
      if (!keep[i]) continue;
      if (write != i) records[write] = std::move(records[i]);
      ++write;
    }
    records.resize(write);
    report.dropped[static_cast<std::size_t>(stage)] = before - write;
    if (obs.enabled())
      obs.counter(std::string("dropped.") + std::string(to_slug(stage)))
          .add(before - write);
  }
  report.output = records.size();
  if (obs.enabled()) obs.counter("output").add(report.output);
  if (obs::Logger::global().enabled(obs::LogLevel::kInfo)) {
    obs::log_info("filter pipeline finished",
                  {{"scope", obs.scope},
                   {"input", report.input},
                   {"dropped", report.total_dropped()},
                   {"output", report.output}});
  }
  return report;
}

FilterReport FilterPipeline::apply_stream(
    std::span<const JoinedRecord> input, std::vector<JoinedRecord>& survivors,
    const util::ParallelOptions& parallel, const obs::ObsOptions& obs) const {
  obs::Span pipeline_span(obs.trace(), obs.scoped("filter"));
  if (obs.enabled()) obs.counter("input").add(input.size());

  FilterReport report;
  report.input = input.size();
  const std::size_t n = input.size();

  // Pass 1: the promiscuous-payload census (the one stage with global
  // state), over the records still alive when that stage runs.
  const auto promiscuous =
      promiscuous_payloads(input, options_, true, parallel);

  // Pass 2: per-record verdict — the first stage failed, in stage order.
  std::vector<std::uint8_t> verdict(n);
  util::parallel_for(0, n, parallel, [&](std::size_t i) {
    verdict[i] = static_cast<std::uint8_t>(
        first_failed_stage(input[i], options_, promiscuous));
  });

  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (verdict[i] == kFilterStageCount) ++kept;
  survivors.clear();
  survivors.reserve(kept);
  for (std::size_t i = 0; i < n; ++i) {
    if (verdict[i] == kFilterStageCount) {
      survivors.push_back(input[i]);
    } else {
      ++report.dropped[static_cast<std::size_t>(kStageOrder[verdict[i]])];
    }
  }
  report.output = survivors.size();

  if (obs.enabled()) {
    for (const FilterStage stage : kStageOrder)
      obs.counter(std::string("dropped.") + std::string(to_slug(stage)))
          .add(report.dropped_at(stage));
    obs.counter("output").add(report.output);
  }
  if (obs::Logger::global().enabled(obs::LogLevel::kInfo)) {
    obs::log_info("filter pipeline finished",
                  {{"scope", obs.scope},
                   {"input", report.input},
                   {"dropped", report.total_dropped()},
                   {"output", report.output}});
  }
  return report;
}

}  // namespace snmpv3fp::core
