#include "core/filters.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "net/registry.hpp"

namespace snmpv3fp::core {

namespace {

using snmp::EngineIdFormat;

// True if the record survives a single-record stage.
bool passes(FilterStage stage, const JoinedRecord& record,
            const FilterOptions& options) {
  const auto& id = record.engine_id();
  switch (stage) {
    case FilterStage::kMissingEngineId:
      return !record.first.engine_id.empty() &&
             !record.second.engine_id.empty();
    case FilterStage::kInconsistentEngineId:
      return record.engine_ids_match();
    case FilterStage::kTooShortEngineId:
      return id.size() >= options.min_engine_id_bytes;
    case FilterStage::kUnroutableIpv4: {
      const auto addr = id.ipv4();
      return !addr.has_value() || addr->is_routable();
    }
    case FilterStage::kUnregisteredMac: {
      const auto mac = id.mac();
      return !mac.has_value() ||
             net::OuiRegistry::embedded().contains(mac->oui());
    }
    case FilterStage::kZeroTimeOrBoots:
      return record.first.engine_time != 0 && record.first.engine_boots != 0 &&
             record.second.engine_time != 0 && record.second.engine_boots != 0;
    case FilterStage::kFutureEngineTime:
      // An engineTime exceeding the seconds since the Unix epoch implies a
      // reboot before 1970 — "engine time in the future" in the paper.
      return record.first.last_reboot() >= util::kUnixEpochVtime &&
             record.second.last_reboot() >= util::kUnixEpochVtime;
    case FilterStage::kInconsistentBoots:
      return record.boots_match();
    case FilterStage::kInconsistentReboot:
      return record.reboot_delta_seconds() <= options.reboot_threshold_seconds;
    case FilterStage::kPromiscuousEngineId:
      return true;  // handled as a global stage
  }
  return true;
}

// Promiscuous detection is global: the same format-specific payload seen
// under more than one enterprise number marks every holder for removal.
std::set<util::Bytes> promiscuous_payloads(
    const std::vector<JoinedRecord>& records) {
  std::map<util::Bytes, std::set<std::uint32_t>> enterprises_by_payload;
  for (const auto& record : records) {
    const auto& id = record.engine_id();
    const auto enterprise = id.enterprise();
    const auto payload = id.payload();
    if (!enterprise || !payload || payload->empty()) continue;
    enterprises_by_payload[util::Bytes(payload->begin(), payload->end())]
        .insert(*enterprise);
  }
  std::set<util::Bytes> promiscuous;
  for (const auto& [payload, enterprises] : enterprises_by_payload)
    if (enterprises.size() > 1) promiscuous.insert(payload);
  return promiscuous;
}

}  // namespace

std::string_view to_string(FilterStage stage) {
  switch (stage) {
    case FilterStage::kMissingEngineId: return "missing engine ID";
    case FilterStage::kInconsistentEngineId: return "inconsistent engine ID";
    case FilterStage::kTooShortEngineId: return "too short engine ID";
    case FilterStage::kPromiscuousEngineId: return "promiscuous engine ID";
    case FilterStage::kUnroutableIpv4: return "unroutable IPv4 engine ID";
    case FilterStage::kUnregisteredMac: return "unregistered MAC engine ID";
    case FilterStage::kZeroTimeOrBoots: return "zero engine time or boots";
    case FilterStage::kFutureEngineTime: return "engine time in the future";
    case FilterStage::kInconsistentBoots: return "inconsistent engine boots";
    case FilterStage::kInconsistentReboot: return "inconsistent last reboot";
  }
  return "?";
}

std::size_t FilterReport::valid_engine_id_count() const {
  // Stages 0..5 are the engine-ID validity stages.
  std::size_t survivors = input;
  for (std::size_t i = 0;
       i <= static_cast<std::size_t>(FilterStage::kUnregisteredMac); ++i)
    survivors -= dropped[i];
  return survivors;
}

std::size_t FilterReport::total_dropped() const {
  std::size_t total = 0;
  for (const auto d : dropped) total += d;
  return total;
}

FilterReport FilterPipeline::apply(std::vector<JoinedRecord>& records) const {
  FilterReport report;
  report.input = records.size();

  constexpr FilterStage kOrder[] = {
      FilterStage::kMissingEngineId,    FilterStage::kInconsistentEngineId,
      FilterStage::kTooShortEngineId,   FilterStage::kPromiscuousEngineId,
      FilterStage::kUnroutableIpv4,     FilterStage::kUnregisteredMac,
      FilterStage::kZeroTimeOrBoots,    FilterStage::kFutureEngineTime,
      FilterStage::kInconsistentBoots,  FilterStage::kInconsistentReboot,
  };

  for (const FilterStage stage : kOrder) {
    const std::size_t before = records.size();
    if (stage == FilterStage::kPromiscuousEngineId) {
      const auto promiscuous = promiscuous_payloads(records);
      if (!promiscuous.empty()) {
        std::erase_if(records, [&](const JoinedRecord& record) {
          const auto payload = record.engine_id().payload();
          if (!payload) return false;
          return promiscuous.count(
                     util::Bytes(payload->begin(), payload->end())) > 0;
        });
      }
    } else {
      std::erase_if(records, [&](const JoinedRecord& record) {
        return !passes(stage, record, options_);
      });
    }
    report.dropped[static_cast<std::size_t>(stage)] = before - records.size();
  }
  report.output = records.size();
  return report;
}

}  // namespace snmpv3fp::core
