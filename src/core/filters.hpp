// The response filtering pipeline (paper §4.4).
//
// Ten ordered stages turn raw joined responses into records whose engine
// ID and (last reboot time, engine boots) tuple can be trusted as device
// identifiers. Stage order matters for the drop accounting (the paper
// reports per-stage removal counts — our FilterReport reproduces Table 1's
// funnel), so stages run in the paper's published order.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/join.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace snmpv3fp::core {

enum class FilterStage : std::uint8_t {
  kMissingEngineId,       // no engine ID in the response
  kInconsistentEngineId,  // engine ID differs between the two scans
  kTooShortEngineId,      // < 4 bytes: not unique enough
  kPromiscuousEngineId,   // same payload under multiple enterprise IDs
  kUnroutableIpv4,        // IPv4-format engine ID with non-routable address
  kUnregisteredMac,       // MAC-format engine ID with unknown OUI
  kZeroTimeOrBoots,       // engineTime or engineBoots of zero
  kFutureEngineTime,      // derived last reboot before the Unix epoch
  kInconsistentBoots,     // engineBoots differs between scans (rebooted)
  kInconsistentReboot,    // derived last-reboot drift above threshold
};

inline constexpr std::size_t kFilterStageCount = 10;

std::string_view to_string(FilterStage stage);
// Metric-name form: lowercase with underscores, e.g. "missing_engine_id".
std::string_view to_slug(FilterStage stage);

struct FilterOptions {
  std::size_t min_engine_id_bytes = 4;
  // The paper picks 10 s at the knee of the router-IP distribution (Fig. 8).
  double reboot_threshold_seconds = 10.0;
};

struct FilterReport {
  std::size_t input = 0;
  std::array<std::size_t, kFilterStageCount> dropped{};
  std::size_t output = 0;

  std::size_t dropped_at(FilterStage stage) const {
    return dropped[static_cast<std::size_t>(stage)];
  }
  // Survivors of the engine-ID validity stages only — Table 1's
  // "IPs w/ valid engine ID" column.
  std::size_t valid_engine_id_count() const;
  std::size_t total_dropped() const;
};

class FilterPipeline {
 public:
  explicit FilterPipeline(FilterOptions options = {}) : options_(options) {}

  // Removes failing records in place (stable) and returns the accounting.
  // Per-record verdicts are computed in parallel chunks; the compaction is
  // stable, so output and drop counts are identical at any thread count.
  // `obs` (execution-only) records a span per stage plus per-stage drop
  // counters named `<scope>.dropped.<stage_slug>`.
  FilterReport apply(std::vector<JoinedRecord>& records,
                     const util::ParallelOptions& parallel = {},
                     const obs::ObsOptions& obs = {}) const;

  // Streaming variant: reads `input` without mutating it and appends only
  // the survivors to `survivors` (cleared first), so the memory-bounded
  // pipeline skips the full pre-filter copy that `apply` needs. Report and
  // survivors are bit-identical to `apply` on the same input: each stage
  // is a per-record predicate, so attributing every record to the first
  // stage it fails (in the published order) yields exactly the sequential
  // funnel's drop counts, and the promiscuous-payload set is computed over
  // the same population (records surviving the stages ordered before it).
  FilterReport apply_stream(std::span<const JoinedRecord> input,
                            std::vector<JoinedRecord>& survivors,
                            const util::ParallelOptions& parallel = {},
                            const obs::ObsOptions& obs = {}) const;

  // Columnar variant (core/columnar.hpp): pivots the input into per-field
  // column slices with dictionary-encoded engine IDs and runs the funnel
  // as one branch-light verdict pass, evaluating engine-ID predicates once
  // per distinct ID instead of once per record per stage. Report and
  // survivors are bit-identical to `apply`/`apply_stream` on the same
  // input (tests/test_columnar.cpp). Implemented in core/columnar.cpp.
  FilterReport apply_columnar(std::span<const JoinedRecord> input,
                              std::vector<JoinedRecord>& survivors,
                              const util::ParallelOptions& parallel = {},
                              const obs::ObsOptions& obs = {}) const;

  const FilterOptions& options() const { return options_; }

 private:
  FilterOptions options_;
};

}  // namespace snmpv3fp::core
