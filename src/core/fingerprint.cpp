#include "core/fingerprint.hpp"

#include "net/registry.hpp"

namespace snmpv3fp::core {

std::string_view to_string(FingerprintSource source) {
  switch (source) {
    case FingerprintSource::kMacOui: return "MAC OUI";
    case FingerprintSource::kEnterprise: return "Enterprise ID";
    case FingerprintSource::kNetSnmp: return "Net-SNMP";
    case FingerprintSource::kUnknown: return "unknown";
  }
  return "?";
}

Fingerprint fingerprint_engine_id(const snmp::EngineId& engine_id) {
  using snmp::EngineIdFormat;

  if (engine_id.format() == EngineIdFormat::kNetSnmp)
    return {"Net-SNMP", FingerprintSource::kNetSnmp};

  // MAC OUI first: strongest signal. An all-zero MAC (the Cisco constant
  // engine-ID bug) carries no hardware information, so fall through to the
  // enterprise number for those.
  if (const auto mac = engine_id.mac();
      mac.has_value() && !(mac->oui() == 0 && mac->nic() == 0)) {
    if (const auto vendor = net::OuiRegistry::embedded().vendor_of(*mac))
      return {std::string(*vendor), FingerprintSource::kMacOui};
  }

  if (const auto pen = engine_id.enterprise()) {
    if (const auto vendor = net::EnterpriseRegistry::embedded().vendor_of(*pen)) {
      if (*pen == net::kPenNetSnmp)
        return {std::string(*vendor), FingerprintSource::kNetSnmp};
      return {std::string(*vendor), FingerprintSource::kEnterprise};
    }
  }
  return {};
}

}  // namespace snmpv3fp::core
