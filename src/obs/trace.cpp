#include "obs/trace.hpp"

namespace snmpv3fp::obs {

namespace {
// Nesting depth of the current thread's open spans.
thread_local std::uint32_t open_span_depth = 0;
}  // namespace

Span::Span(Trace* trace, std::string name)
    : trace_(trace), name_(std::move(name)) {
  if (trace_ == nullptr) return;
  depth_ = open_span_depth++;
  start_ = std::chrono::steady_clock::now();
}

double Span::elapsed_ms() const {
  if (trace_ == nullptr) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void Span::finish() {
  if (trace_ == nullptr) return;
  --open_span_depth;
  trace_->record({std::move(name_), depth_, elapsed_ms(), virtual_duration_});
  trace_ = nullptr;
}

Span::~Span() { finish(); }

}  // namespace snmpv3fp::obs
