#include "obs/trace.hpp"

#include <atomic>

namespace snmpv3fp::obs {

namespace {
// Nesting depth of the current thread's open spans.
thread_local std::uint32_t open_span_depth = 0;
}  // namespace

std::uint32_t trace_tid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Span::Span(Trace* trace, std::string name)
    : trace_(trace), name_(std::move(name)) {
  if (trace_ == nullptr) return;
  depth_ = open_span_depth++;
  start_ms_ = trace_->now_ms();
  start_ = std::chrono::steady_clock::now();
  tid_ = trace_tid();
}

double Span::elapsed_ms() const {
  if (trace_ == nullptr) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

SpanRecord Span::make_record() {
  SpanRecord record;
  record.name = std::move(name_);
  record.depth = depth_;
  record.start_ms = start_ms_;
  record.wall_ms = elapsed_ms();
  record.virtual_duration = virtual_duration_;
  record.tid = tid_;
  record.shard = shard_;
  return record;
}

void Span::finish() {
  if (trace_ == nullptr) return;
  --open_span_depth;
  Trace* trace = trace_;
  SpanRecord record = make_record();  // reads elapsed before trace_ clears
  trace_ = nullptr;
  trace->record(std::move(record));
}

SpanRecord Span::finish_record() {
  if (trace_ == nullptr) return SpanRecord{};
  --open_span_depth;
  SpanRecord record = make_record();
  trace_ = nullptr;
  return record;
}

Span::~Span() { finish(); }

}  // namespace snmpv3fp::obs
