#include "obs/log.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace snmpv3fp::obs {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text)
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff})
    if (lower == to_string(level)) return level;
  return fallback;
}

LogLevel log_level_from_env() {
  const char* env = std::getenv("SNMPFP_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  return parse_log_level(env, LogLevel::kOff);
}

std::string LogField::format_double(double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "nan");
  }
  return buf;
}

Logger& Logger::global() {
  static Logger logger(log_level_from_env());
  return logger;
}

void Logger::set_sink(std::function<void(std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

namespace {

bool needs_quoting(std::string_view value) {
  if (value.empty()) return true;
  for (const char c : value)
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
      return true;
  return false;
}

void append_value(std::string& out, std::string_view value) {
  if (!needs_quoting(value)) {
    out += value;
    return;
  }
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

std::string Logger::format(LogLevel level, std::string_view message,
                           std::initializer_list<LogField> fields) {
  std::string out;
  out.reserve(32 + message.size() + fields.size() * 16);
  out += "level=";
  out += to_string(level);
  out += " msg=";
  append_value(out, message);
  for (const auto& field : fields) {
    out.push_back(' ');
    out += field.key;
    out.push_back('=');
    append_value(out, field.value);
  }
  return out;
}

void Logger::log(LogLevel level, std::string_view message,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  const std::string line = format(level, message, fields);
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "[snmpfp] %s\n", line.c_str());
  }
}

}  // namespace snmpv3fp::obs
