#include "obs/status.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/fileio.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace snmpv3fp::obs {

void StatusBoard::configure(StatusConfig config) {
  config_ = config;
  if (config_.every_n_targets == 0) config_.every_n_targets = 1;
  epoch_ = std::chrono::steady_clock::now();
}

StatusHandle StatusBoard::add_shard(std::string stage, std::size_t shard,
                                    std::uint64_t targets_total) {
  StatusHandle out;
  if (!enabled()) return out;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t slot = rows_.size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].stage == stage &&
        rows_[i].shard == static_cast<std::uint32_t>(shard)) {
      slot = i;
      break;
    }
  }
  if (slot == rows_.size()) rows_.emplace_back();
  ShardStatusRow& row = rows_[slot];
  row.stage = std::move(stage);
  row.shard = static_cast<std::uint32_t>(shard);
  row.targets_total = targets_total;
  row.complete = false;
  out.board_ = this;
  out.slot_ = slot;
  out.every_ = config_.every_n_targets;
  return out;
}

void StatusHandle::update(const ShardStatusRow& row) {
  if (board_ == nullptr) return;
  board_->update_slot(slot_, row);
}

void StatusBoard::update_slot(std::size_t slot, const ShardStatusRow& row) {
  std::lock_guard<std::mutex> lock(mutex_);
  ShardStatusRow& target = rows_[slot];
  target.targets_sent = row.targets_sent;
  target.responses = row.responses;
  target.undecodable = row.undecodable;
  target.backoffs = row.backoffs;
  target.ring_frames = row.ring_frames;
  target.pacer_rate_pps = row.pacer_rate_pps;
  target.store_resident_bytes = row.store_resident_bytes;
  target.virtual_now = row.virtual_now;
  target.complete = row.complete;
  maybe_write_locked();
}

void StatusBoard::mark_stage_complete(std::string_view stage) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& row : rows_) {
      if (row.stage == stage) {
        row.complete = true;
        row.targets_sent = std::max(row.targets_sent, row.targets_total);
      }
    }
  }
  write_now();
}

std::vector<ShardStatusRow> StatusBoard::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

namespace {

void row_to_json(JsonWriter& json, const ShardStatusRow& row) {
  json.begin_object();
  json.kv("stage", row.stage);
  json.kv("shard", static_cast<std::uint64_t>(row.shard));
  json.kv("targets_total", row.targets_total);
  json.kv("targets_sent", row.targets_sent);
  json.kv("responses", row.responses);
  json.kv("undecodable", row.undecodable);
  json.kv("backoffs", row.backoffs);
  json.kv("ring_frames", row.ring_frames);
  json.kv("response_rate", row.response_rate());
  json.kv("pacer_rate_pps", row.pacer_rate_pps);
  json.kv("resident_bytes", row.store_resident_bytes);
  json.kv("virtual_s", util::to_seconds(row.virtual_now));
  json.kv("eta_s", row.eta_seconds());
  json.kv("complete", row.complete);
  json.end_object();
}

std::string render_json(const std::vector<ShardStatusRow>& rows,
                        double wall_ms) {
  std::uint64_t targets = 0, sent = 0, responses = 0, undecodable = 0,
                backoffs = 0, ring_frames = 0;
  std::int64_t resident = -1;
  double eta = 0.0;
  bool complete = !rows.empty();
  for (const auto& row : rows) {
    targets += row.targets_total;
    sent += row.targets_sent;
    responses += row.responses;
    undecodable += row.undecodable;
    backoffs += row.backoffs;
    ring_frames += row.ring_frames;
    if (row.store_resident_bytes >= 0) {
      if (resident < 0) resident = 0;
      resident += row.store_resident_bytes;
    }
    // Shards run concurrently, so the campaign finishes with the slowest.
    eta = std::max(eta, row.eta_seconds());
    complete = complete && row.complete;
  }
  JsonWriter json;
  json.begin_object();
  json.kv("schema", std::uint64_t{1});
  json.kv("wall_ms", wall_ms);
  json.kv("complete", complete);
  json.key("totals").begin_object();
  json.kv("targets_total", targets);
  json.kv("targets_sent", sent);
  json.kv("responses", responses);
  json.kv("undecodable", undecodable);
  json.kv("backoffs", backoffs);
  json.kv("ring_frames", ring_frames);
  json.kv("response_rate",
          sent == 0 ? 0.0
                    : static_cast<double>(responses) /
                          static_cast<double>(sent));
  json.kv("resident_bytes", resident);
  json.kv("eta_s", eta);
  json.end_object();
  json.key("shards").begin_array();
  for (const auto& row : rows) row_to_json(json, row);
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace

std::string StatusBoard::to_json() const {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  std::lock_guard<std::mutex> lock(mutex_);
  return render_json(rows_, wall_ms);
}

void StatusBoard::maybe_write_locked() {
  if (config_.path.empty()) return;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  if (wall_ms - last_write_ms_ < config_.min_write_interval_ms) return;
  last_write_ms_ = wall_ms;
  if (write_file_atomic(config_.path, render_json(rows_, wall_ms)))
    writes_.fetch_add(1, std::memory_order_relaxed);
}

bool StatusBoard::write_now() {
  if (config_.path.empty()) return false;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  std::lock_guard<std::mutex> lock(mutex_);
  last_write_ms_ = wall_ms;
  if (!write_file_atomic(config_.path, render_json(rows_, wall_ms)))
    return false;
  writes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

namespace {

double num(const JsonValue* value) {
  return value == nullptr ? 0.0 : value->as_number();
}

std::string fmt_eta(double seconds) {
  if (seconds <= 0.0) return "-";
  char buf[32];
  if (seconds >= 3600.0)
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  else if (seconds >= 60.0)
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  else
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  return buf;
}

std::string fmt_progress(double sent, double total) {
  std::string out = util::fmt_compact(sent);
  out += "/";
  out += util::fmt_compact(total);
  if (total > 0) {
    out += " (";
    out += util::fmt_percent(sent / total, 0);
    out += ")";
  }
  return out;
}

}  // namespace

std::string render_status_dashboard(const JsonValue& status) {
  std::string out;
  const JsonValue* totals = status.find("totals");
  const JsonValue* shards = status.find("shards");
  const bool complete =
      status.find("complete") != nullptr && status.find("complete")->as_bool();
  out += complete ? "campaign: COMPLETE" : "campaign: running";
  if (totals != nullptr) {
    out += "  sent ";
    out += fmt_progress(num(totals->find("targets_sent")),
                        num(totals->find("targets_total")));
    out += "  resp ";
    out += util::fmt_percent(num(totals->find("response_rate")));
    out += "  eta ";
    out += fmt_eta(num(totals->find("eta_s")));
    const double resident = num(totals->find("resident_bytes"));
    if (resident >= 0.0 && totals->find("resident_bytes") != nullptr &&
        resident >= 1.0) {
      out += "  store ";
      out += util::fmt_compact(resident);
      out += "B";
    }
  }
  if (totals != nullptr && num(totals->find("ring_frames")) >= 1.0) {
    out += "  ring ";
    out += util::fmt_compact(num(totals->find("ring_frames")));
  }
  out += "\n";
  util::TablePrinter table({"stage", "shard", "progress", "resp%", "pps",
                            "backoffs", "undecodable", "ring", "eta"});
  if (shards != nullptr && shards->is_array()) {
    for (const auto& row : shards->items()) {
      const JsonValue* stage = row.find("stage");
      table.add_row({
          stage == nullptr ? "?" : stage->as_string(),
          util::fmt_count(static_cast<std::size_t>(num(row.find("shard")))),
          fmt_progress(num(row.find("targets_sent")),
                       num(row.find("targets_total"))),
          util::fmt_percent(num(row.find("response_rate"))),
          util::fmt_double(num(row.find("pacer_rate_pps")), 0),
          util::fmt_count(
              static_cast<std::size_t>(num(row.find("backoffs")))),
          util::fmt_count(
              static_cast<std::size_t>(num(row.find("undecodable")))),
          util::fmt_count(
              static_cast<std::size_t>(num(row.find("ring_frames")))),
          row.find("complete") != nullptr && row.find("complete")->as_bool()
              ? "done"
              : fmt_eta(num(row.find("eta_s"))),
      });
    }
  }
  out += table.render();
  return out;
}

}  // namespace snmpv3fp::obs
