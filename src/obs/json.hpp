// Minimal JSON support for the observability layer.
//
// JsonWriter is a streaming emitter (objects/arrays/scalars with correct
// comma placement and string escaping) used by MetricsSnapshot and
// core::RunReport; JsonValue is a small recursive-descent parser used by
// tests to prove the emitted documents round-trip. Neither aims to be a
// general JSON library — no streaming reads, no \uXXXX surrogate pairs
// beyond what our own escaper emits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace snmpv3fp::obs {

// Escapes `text` as a JSON string literal, quotes included. Control
// characters become \u00XX; everything else passes through byte-for-byte.
std::string json_escape(std::string_view text);

// Streaming JSON emitter. Calls must describe a well-formed document
// (keys only inside objects, one root value); the writer tracks nesting
// and inserts commas, it does not validate misuse beyond assertions.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(double number);  // non-finite values emit null
  JsonWriter& value(bool boolean);
  // Splices pre-rendered JSON (must itself be a valid value).
  JsonWriter& raw(std::string_view json_text);

  // Shorthand for key(name).value(x).
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& x) {
    key(name);
    return value(std::forward<T>(x));
  }

  const std::string& str() const { return out_; }

 private:
  void pre_value();

  std::string out_;
  // One frame per open container: whether anything was emitted inside.
  std::vector<bool> has_item_;
  bool pending_key_ = false;
};

class JsonParser;

// Parsed JSON document: a tagged tree. Object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static std::optional<JsonValue> parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view name) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace snmpv3fp::obs
