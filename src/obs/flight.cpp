#include "obs/flight.hpp"

#include <algorithm>

#include "obs/fileio.hpp"
#include "obs/json.hpp"

namespace snmpv3fp::obs {

std::string_view to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kUndecodable: return "undecodable";
    case FlightEventKind::kWireFallback: return "wire_fallback";
    case FlightEventKind::kPacerBackoff: return "pacer_backoff";
    case FlightEventKind::kStoreSpill: return "store_spill";
    case FlightEventKind::kStoreEvict: return "store_evict";
    case FlightEventKind::kCheckpoint: return "checkpoint";
    case FlightEventKind::kScanBoundary: return "scan_boundary";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

void FlightRecorder::configure(FlightConfig config) {
  config_ = config;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  configured_ = true;
  epoch_ = std::chrono::steady_clock::now();
}

FlightHandle FlightRecorder::handle(std::string stage, std::size_t shard) {
  FlightHandle out;
  if (!configured_) return out;
  std::lock_guard<std::mutex> lock(mutex_);
  detail::FlightRing* ring = nullptr;
  for (auto& existing : rings_) {
    if (existing.stage == stage &&
        existing.shard == static_cast<std::uint32_t>(shard)) {
      ring = &existing;
      break;
    }
  }
  if (ring == nullptr) {
    rings_.emplace_back();
    ring = &rings_.back();
    ring->stage = std::move(stage);
    ring->shard = static_cast<std::uint32_t>(shard);
  }
  out.recorder_ = this;
  out.ring_ = ring;
  return out;
}

void FlightHandle::record(FlightEventKind kind, util::VTime virtual_time,
                          std::int64_t value, std::string_view detail) {
  if (recorder_ == nullptr) return;
  recorder_->record(*this, kind, virtual_time, value, detail);
}

void FlightRecorder::record(const FlightHandle& handle, FlightEventKind kind,
                            util::VTime virtual_time, std::int64_t value,
                            std::string_view note) {
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  {
    detail::FlightRing& ring = *handle.ring_;
    std::lock_guard<std::mutex> lock(ring.mutex);
    FlightEvent event;
    event.kind = kind;
    event.stage = ring.stage;
    event.shard = ring.shard;
    event.virtual_time = virtual_time;
    event.wall_ms = wall_ms;
    event.value = value;
    event.detail = note;
    event.seq = ring.next_seq++;
    if (ring.slots.size() < config_.ring_capacity) {
      ring.slots.push_back(std::move(event));
    } else {
      ring.slots[event.seq % config_.ring_capacity] = std::move(event);
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (kind == FlightEventKind::kUndecodable ||
      kind == FlightEventKind::kWireFallback) {
    const std::uint64_t faults =
        faults_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config_.fault_surge_threshold > 0 &&
        faults % config_.fault_surge_threshold == 0)
      dump("fault_surge");
  }
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring.mutex);
    out.insert(out.end(), ring.slots.begin(), ring.slots.end());
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.virtual_time != b.virtual_time)
                return a.virtual_time < b.virtual_time;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::to_json(std::string_view reason) const {
  const std::vector<FlightEvent> merged = events();
  JsonWriter json;
  json.begin_object();
  json.kv("schema", std::uint64_t{1});
  json.kv("reason", reason);
  json.kv("ring_capacity", static_cast<std::uint64_t>(config_.ring_capacity));
  json.kv("dropped", dropped());
  json.key("events").begin_array();
  for (const auto& event : merged) {
    json.begin_object();
    json.kv("kind", to_string(event.kind));
    json.kv("stage", event.stage);
    json.kv("shard", static_cast<std::uint64_t>(event.shard));
    json.kv("virtual_s", util::to_seconds(event.virtual_time));
    json.kv("wall_ms", event.wall_ms);
    json.kv("value", event.value);
    if (!event.detail.empty()) json.kv("detail", event.detail);
    json.kv("seq", event.seq);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool FlightRecorder::dump(std::string_view reason) {
  if (!configured_ || config_.dump_path.empty()) return false;
  // Shard workers dump concurrently (checkpoint boundaries, fault surges);
  // the tmp-then-rename pair must not interleave on the shared tmp name.
  std::lock_guard<std::mutex> lock(dump_mutex_);
  if (!write_file_atomic(config_.dump_path, to_json(reason))) return false;
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace snmpv3fp::obs
