#include "obs/timeline.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace snmpv3fp::obs {

void Timeline::configure(TimelineConfig config, const MetricsRegistry* registry) {
  config_ = config;
  registry_ = registry;
  epoch_ = std::chrono::steady_clock::now();
  if (config_.sample_every_wall_ms > 0) {
    next_wall_due_us_.store(
        static_cast<std::int64_t>(config_.sample_every_wall_ms * 1000.0),
        std::memory_order_relaxed);
  }
}

Timeline::Recorder Timeline::recorder(std::string stage, std::size_t shard) {
  Recorder out;
  if (!enabled()) return out;
  std::lock_guard<std::mutex> lock(mutex_);
  Track* track = nullptr;
  for (auto& existing : tracks_) {
    if (existing.stage == stage && existing.shard == shard) {
      track = &existing;
      break;
    }
  }
  if (track == nullptr) {
    tracks_.emplace_back();
    track = &tracks_.back();
    track->stage = std::move(stage);
    track->shard = shard;
  }
  out.timeline_ = this;
  out.track_ = track;
  out.virtual_every_ = config_.sample_every_virtual;
  // First sample only once a full interval boundary is crossed — a tick
  // before `sample_every_virtual` elapsed is not a sample point.
  out.next_virtual_ = config_.sample_every_virtual;
  out.wall_armed_ =
      config_.sample_every_wall_ms > 0 && registry_ != nullptr;
  return out;
}

void Timeline::Recorder::take_virtual(util::VTime virtual_now,
                                      const TimelinePoint& values) {
  // One point per boundary crossing: round down to the interval boundary
  // so the sample time depends only on the virtual clock, then arm the
  // next boundary. A clock jump over several intervals emits one point.
  const util::VTime boundary = virtual_now - virtual_now % virtual_every_;
  next_virtual_ = boundary + virtual_every_;
  TimelinePoint point = values;
  point.t = boundary;
  timeline_->append_point(track_, point);
}

void Timeline::append_point(Track* track, const TimelinePoint& point) {
  std::lock_guard<std::mutex> lock(track->mutex);
  if (track->points.size() >= config_.max_points_per_track) {
    dropped_points_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  track->points.push_back(point);
}

void Timeline::maybe_wall_sample() {
  const auto now = std::chrono::steady_clock::now();
  const std::int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(now - epoch_)
          .count();
  std::int64_t due = next_wall_due_us_.load(std::memory_order_relaxed);
  if (now_us < due) return;
  const std::int64_t interval_us =
      static_cast<std::int64_t>(config_.sample_every_wall_ms * 1000.0);
  // One claimant per interval; losers see the advanced deadline and leave.
  if (!next_wall_due_us_.compare_exchange_strong(due, now_us + interval_us,
                                                 std::memory_order_relaxed))
    return;
  // Snapshot outside the timeline lock — the registry has its own.
  MetricsSnapshot metrics = registry_->snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  if (wall_samples_.size() >= config_.max_wall_samples) {
    dropped_points_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  WallSample sample;
  sample.wall_ms = static_cast<double>(now_us) / 1000.0;
  sample.metrics = std::move(metrics);
  wall_samples_.push_back(std::move(sample));
}

TimelineSnapshot Timeline::snapshot() const {
  TimelineSnapshot out;
  out.sample_every_virtual = config_.sample_every_virtual;
  out.sample_every_wall_ms = config_.sample_every_wall_ms;
  out.dropped_points = dropped_points_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  out.series.reserve(tracks_.size());
  for (const auto& track : tracks_) {
    VirtualSeries series;
    series.stage = track.stage;
    series.shard = track.shard;
    {
      std::lock_guard<std::mutex> track_lock(track.mutex);
      series.points = track.points;
    }
    out.series.push_back(std::move(series));
  }
  std::sort(out.series.begin(), out.series.end(),
            [](const VirtualSeries& a, const VirtualSeries& b) {
              if (a.stage != b.stage) return a.stage < b.stage;
              return a.shard < b.shard;
            });
  out.wall = wall_samples_;
  return out;
}

std::string TimelineSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.kv("virtual_interval_s", util::to_seconds(sample_every_virtual));
  json.kv("wall_interval_ms", sample_every_wall_ms);
  json.kv("dropped_points", dropped_points);
  json.key("virtual").begin_array();
  for (const auto& s : series) {
    json.begin_object();
    json.kv("stage", s.stage);
    json.kv("shard", static_cast<std::uint64_t>(s.shard));
    json.key("points").begin_array();
    for (const auto& p : s.points) {
      json.begin_object();
      json.kv("t_s", util::to_seconds(p.t));
      json.kv("sent", p.targets_sent);
      json.kv("responses", p.responses);
      json.kv("undecodable", p.undecodable);
      json.kv("backoffs", p.backoffs);
      json.kv("rate_pps", p.pacer_rate_pps);
      json.kv("resident_bytes", p.store_resident_bytes);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("wall").begin_array();
  for (const auto& sample : wall) {
    json.begin_object();
    json.kv("wall_ms", sample.wall_ms);
    json.key("metrics").raw(sample.metrics.to_json());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace snmpv3fp::obs
