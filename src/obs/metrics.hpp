// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// Counters and histograms are written from pipeline worker threads, so
// each one is backed by a fixed array of cache-line-padded atomic shards;
// a thread picks its shard once (thread-local slot id, modulo the shard
// count) and increments it with relaxed atomics — no contention on the
// common path. Reads (snapshot()) sum the shards.
//
// Determinism contract (mirrors util/parallel): the shard *structure* is
// fixed, increments are commutative sums, and snapshot() lists metrics in
// registration order — so as long as registration happens on one thread
// (the pipeline registers everything from the orchestrating thread), the
// snapshot is bit-identical at any worker thread count once the parallel
// region has joined. Counters wrap modulo 2^64 on overflow.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace snmpv3fp::obs {

// Number of independent atomic slots per metric. More threads than slots
// just share slots (still correct, mildly more contention).
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> value{0};
};

using ShardArray = std::array<PaddedCount, kMetricShards>;

// The calling thread's shard slot (stable for the thread's lifetime).
std::size_t thread_shard();

struct CounterData {
  std::string name;
  ShardArray shards;
};

struct GaugeData {
  std::string name;
  std::atomic<std::int64_t> value{0};
};

struct HistogramData {
  std::string name;
  // Upper bounds of the finite buckets (ascending). Bucket i counts
  // observations v with v <= bounds[i] (first such i); one extra overflow
  // bucket counts v > bounds.back().
  std::vector<double> bounds;
  std::vector<ShardArray> buckets;  // bounds.size() + 1 entries
};

}  // namespace detail

// Lightweight handles; valid for the registry's lifetime, trivially
// copyable, safe to use concurrently. A default-constructed handle is a
// no-op (observability disabled).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) {
    if (data_ == nullptr) return;
    data_->shards[detail::thread_shard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterData* data) : data_(data) {}
  detail::CounterData* data_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) {
    if (data_ != nullptr)
      data_->value.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (data_ != nullptr)
      data_->value.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeData* data) : data_(data) {}
  detail::GaugeData* data_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double value) {
    if (data_ == nullptr) return;
    std::size_t bucket = 0;
    while (bucket < data_->bounds.size() && value > data_->bounds[bucket])
      ++bucket;
    data_->buckets[bucket][detail::thread_shard()].value.fetch_add(
        1, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramData* data) : data_(data) {}
  detail::HistogramData* data_ = nullptr;
};

// Point-in-time view of a registry, in registration order.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t total = 0;

    // Interpolated percentile estimate (p in [0, 1]): walks the
    // cumulative counts to the bucket containing rank p*total, then
    // interpolates linearly inside it (first bucket spans [0, bounds[0]];
    // the overflow bucket clamps to bounds.back()). 0 when empty.
    double percentile(double p) const;
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  const CounterRow* find_counter(std::string_view name) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent: a name already registered returns the existing metric.
  // Registering the same name as two different kinds is a programming
  // error; the first registration wins and the second returns a no-op
  // handle. Registration takes a lock — do it outside hot loops, from the
  // orchestrating thread, so snapshot order is deterministic.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  mutable std::mutex mutex_;
  // deques: stable addresses across registrations.
  std::deque<detail::CounterData> counters_;
  std::deque<detail::GaugeData> gauges_;
  std::deque<detail::HistogramData> histograms_;
  std::unordered_map<std::string, std::pair<Kind, std::size_t>> by_name_;
  // Interleaved registration order for snapshots.
  std::vector<std::pair<Kind, std::size_t>> order_;
};

}  // namespace snmpv3fp::obs
