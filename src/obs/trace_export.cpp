#include "obs/trace_export.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "obs/json.hpp"

namespace snmpv3fp::obs {

namespace {

constexpr std::uint64_t kPid = 1;

void span_event(JsonWriter& json, const SpanRecord& span) {
  json.begin_object();
  json.kv("name", span.name);
  json.kv("ph", "X");
  json.kv("ts", span.start_ms * 1000.0);  // Chrome wants microseconds
  json.kv("dur", span.wall_ms * 1000.0);
  json.kv("pid", kPid);
  json.kv("tid", static_cast<std::uint64_t>(span.tid));
  json.key("args").begin_object();
  json.kv("depth", static_cast<std::uint64_t>(span.depth));
  json.kv("virtual_s", util::to_seconds(span.virtual_duration));
  if (span.shard >= 0) json.kv("shard", span.shard);
  json.end_object();
  json.end_object();
}

void flight_event(JsonWriter& json, const FlightEvent& event) {
  json.begin_object();
  std::string name(to_string(event.kind));
  json.kv("name", name);
  json.kv("ph", "i");
  json.kv("ts", event.wall_ms * 1000.0);
  json.kv("pid", kPid);
  // Flight events are recorded per shard, not per thread; give each shard
  // ring its own instant track offset so surges stay readable.
  json.kv("tid", 1000 + static_cast<std::uint64_t>(event.shard));
  json.kv("s", "t");  // instant scope: thread
  json.key("args").begin_object();
  json.kv("stage", event.stage);
  json.kv("shard", static_cast<std::uint64_t>(event.shard));
  json.kv("virtual_s", util::to_seconds(event.virtual_time));
  json.kv("value", event.value);
  if (!event.detail.empty()) json.kv("detail", event.detail);
  json.end_object();
  json.end_object();
}

void thread_name_event(JsonWriter& json, std::uint64_t tid,
                       const std::string& name) {
  json.begin_object();
  json.kv("name", "thread_name");
  json.kv("ph", "M");
  json.kv("pid", kPid);
  json.kv("tid", tid);
  json.key("args").begin_object();
  json.kv("name", name);
  json.end_object();
  json.end_object();
}

}  // namespace

std::string to_chrome_trace_json(
    const std::vector<SpanRecord>& spans,
    const std::vector<FlightEvent>& flight_events) {
  JsonWriter json;
  json.begin_object();
  json.kv("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();
  std::set<std::uint64_t> tids;
  for (const auto& span : spans) tids.insert(span.tid);
  for (const std::uint64_t tid : tids) {
    thread_name_event(json, tid,
                      tid == 0 ? "orchestrator"
                               : "worker-" + std::to_string(tid));
  }
  std::set<std::uint64_t> flight_tracks;
  for (const auto& event : flight_events)
    flight_tracks.insert(1000 + static_cast<std::uint64_t>(event.shard));
  for (const std::uint64_t tid : flight_tracks) {
    thread_name_event(json, tid,
                      "flight-shard-" + std::to_string(tid - 1000));
  }
  for (const auto& span : spans) span_event(json, span);
  for (const auto& event : flight_events) flight_event(json, event);
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace snmpv3fp::obs
