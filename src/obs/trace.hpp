// Stage tracing: RAII spans under a per-run trace.
//
// A Span measures one pipeline stage twice — wall-clock (steady_clock, the
// cost on this machine) and virtual-clock (util/vclock, the cost in the
// simulated experiment; 0 for analysis stages that do not advance virtual
// time). Spans nest: a thread-local depth counter records how deep each
// span sat, so the report can indent "pipeline > v4 > scan1 > shard3".
//
// Recording is thread-safe (mutex-protected append), but the pipeline
// records spans from the orchestrating thread — or from per-shard slots
// merged in shard order — so the span *sequence* in a report is
// deterministic even though the timing values are not.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/vclock.hpp"

namespace snmpv3fp::obs {

struct SpanRecord {
  std::string name;   // dotted path, e.g. "pipeline.v4.scan1"
  std::uint32_t depth = 0;
  double wall_ms = 0.0;
  util::VTime virtual_duration = 0;  // 0: stage did not advance virtual time
};

class Trace {
 public:
  void record(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

// RAII stage span. A Span built with a null trace is a no-op — callers
// write `Span span(obs.trace(), ...)` unconditionally and pay nothing when
// observability is off.
class Span {
 public:
  Span(Trace* trace, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Virtual-clock duration, set by stages that advance simulated time
  // (e.g. campaign end_time - start_time).
  void set_virtual_duration(util::VTime duration) {
    virtual_duration_ = duration;
  }

  // Wall time elapsed so far (for callers that also want the number).
  double elapsed_ms() const;

  // Records the span now instead of at scope exit (for phase boundaries
  // inside one function). Idempotent; the destructor becomes a no-op.
  void finish();

 private:
  Trace* trace_;
  std::string name_;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  util::VTime virtual_duration_ = 0;
};

}  // namespace snmpv3fp::obs
