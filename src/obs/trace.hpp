// Stage tracing: RAII spans under a per-run trace.
//
// A Span measures one pipeline stage twice — wall-clock (steady_clock, the
// cost on this machine) and virtual-clock (util/vclock, the cost in the
// simulated experiment; 0 for analysis stages that do not advance virtual
// time). Spans nest: a thread-local depth counter records how deep each
// span sat, so the report can indent "pipeline > v4 > scan1 > shard3".
//
// For timeline views (Chrome trace / Perfetto, see trace_export.hpp) each
// span also records where it sat: start_ms relative to the trace's epoch,
// a small per-thread id, and an optional shard number — enough to lay
// shards out on parallel tracks and see the overlap.
//
// Recording is thread-safe (mutex-protected append), but the pipeline
// records spans from the orchestrating thread — or worker spans finish
// detached (finish_record()) into per-shard slots the orchestrator merges
// in shard order — so the span *sequence* in a report is deterministic
// even though the timing values are not.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/vclock.hpp"

namespace snmpv3fp::obs {

struct SpanRecord {
  std::string name;   // dotted path, e.g. "pipeline.v4.scan1"
  std::uint32_t depth = 0;
  double start_ms = 0.0;  // wall offset from the trace epoch
  double wall_ms = 0.0;
  util::VTime virtual_duration = 0;  // 0: stage did not advance virtual time
  std::uint32_t tid = 0;   // small dense per-thread id (see trace_tid())
  std::int64_t shard = -1;  // -1: not a per-shard span
};

// Dense id for the calling thread (0, 1, 2, ... in first-use order).
// Stable for the thread's lifetime; used as the Chrome trace "tid".
std::uint32_t trace_tid();

class Trace {
 public:
  Trace() : epoch_(std::chrono::steady_clock::now()) {}

  void record(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
  }

  // Wall ms since this trace was created (the span start_ms reference).
  double now_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

// RAII stage span. A Span built with a null trace is a no-op — callers
// write `Span span(obs.trace(), ...)` unconditionally and pay nothing when
// observability is off.
class Span {
 public:
  Span(Trace* trace, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Virtual-clock duration, set by stages that advance simulated time
  // (e.g. campaign end_time - start_time).
  void set_virtual_duration(util::VTime duration) {
    virtual_duration_ = duration;
  }
  // Tags the span with the shard it measured (for per-shard trace tracks).
  void set_shard(std::int64_t shard) { shard_ = shard; }

  std::uint32_t depth() const { return depth_; }

  // Wall time elapsed so far (for callers that also want the number).
  double elapsed_ms() const;

  // Records the span now instead of at scope exit (for phase boundaries
  // inside one function). Idempotent; the destructor becomes a no-op.
  void finish();

  // Like finish(), but returns the record instead of appending it to the
  // trace — worker threads finish detached and the orchestrating thread
  // records the slots in shard order, keeping the sequence deterministic.
  SpanRecord finish_record();

 private:
  SpanRecord make_record();

  Trace* trace_;
  std::string name_;
  std::uint32_t depth_ = 0;
  double start_ms_ = 0.0;
  std::chrono::steady_clock::time_point start_;
  util::VTime virtual_duration_ = 0;
  std::int64_t shard_ = -1;
  std::uint32_t tid_ = 0;
};

}  // namespace snmpv3fp::obs
