#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace snmpv3fp::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) out_.push_back(',');
    has_item_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_.push_back('{');
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  has_item_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_.push_back('[');
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  has_item_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!has_item_.empty()) {
    if (has_item_.back()) out_.push_back(',');
    has_item_.back() = true;
  }
  out_ += json_escape(name);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  pre_value();
  out_ += json_escape(text);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  pre_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  pre_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  pre_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  pre_value();
  out_ += boolean ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json_text) {
  pre_value();
  out_ += json_text;
  return *this;
}

// Recursive-descent parser over [pos, text.size()).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    auto value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Our escaper only emits \u00XX; encode the general case as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue value;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      value = make(JsonValue::Kind::kObject);
      skip_ws();
      if (consume('}')) return value;
      while (true) {
        auto name = parse_string();
        if (!name || !consume(':')) return std::nullopt;
        auto member = parse_value();
        if (!member) return std::nullopt;
        value.members_.emplace_back(std::move(*name), std::move(*member));
        if (consume(',')) { skip_ws(); continue; }
        if (consume('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value = make(JsonValue::Kind::kArray);
      skip_ws();
      if (consume(']')) return value;
      while (true) {
        auto item = parse_value();
        if (!item) return std::nullopt;
        value.items_.push_back(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto text = parse_string();
      if (!text) return std::nullopt;
      value = make(JsonValue::Kind::kString);
      value.string_ = std::move(*text);
      return value;
    }
    if (literal("true")) {
      value = make(JsonValue::Kind::kBool);
      value.bool_ = true;
      return value;
    }
    if (literal("false")) {
      value = make(JsonValue::Kind::kBool);
      value.bool_ = false;
      return value;
    }
    if (literal("null")) return make(JsonValue::Kind::kNull);
    // Number.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    value = make(JsonValue::Kind::kNumber);
    value.number_ = number;
    return value;
  }

  static JsonValue make(JsonValue::Kind kind) {
    JsonValue value;
    value.kind_ = kind;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

const JsonValue* JsonValue::find(std::string_view name) const {
  for (const auto& [key, value] : members_)
    if (key == name) return &value;
  return nullptr;
}

}  // namespace snmpv3fp::obs
