// Observability surface threaded through the pipeline.
//
// A RunObserver owns one run's trace, metrics registry and accounting
// rows; ObsOptions is the cheap value handed down the call tree (observer
// pointer + dotted scope). Observability is EXECUTION-ONLY by contract:
// nothing behind an ObsOptions may touch an RNG, reorder work, or change
// a single output bit — `PipelineResult` is bit-identical with observation
// enabled, disabled, and at any thread count (tests/test_obs.cpp).
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace snmpv3fp::obs {

// Live telemetry knobs, configured once on the RunObserver before a run
// (configure_telemetry). All default-off; all execution-only — none of
// them is hashed into the checkpoint config digest, and results are
// bit-identical with any combination enabled (tests/test_telemetry.cpp).
struct TelemetryOptions {
  TimelineConfig timeline;  // time-series sampling (virtual + wall clock)
  FlightConfig flight;      // per-shard event rings + atomic JSON dumps
  StatusConfig status;      // atomically rewritten status.json
};

// One scan shard's progress row (recorded by the campaign in shard order,
// after the parallel region joined — deterministic sequence).
struct ShardProgress {
  std::string stage;  // e.g. "v4.scan1"
  std::size_t shard = 0;
  std::size_t targets = 0;
  std::size_t responses = 0;
  double wall_ms = 0.0;
};

class RunObserver {
 public:
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }
  StatusBoard& status() { return status_; }
  const StatusBoard& status() const { return status_; }

  // Arms the live telemetry surfaces. Call once, before the run, from a
  // single thread. Without this call every surface stays a no-op.
  void configure_telemetry(const TelemetryOptions& options) {
    timeline_.configure(options.timeline, &metrics_);
    flight_.configure(options.flight);
    status_.configure(options.status);
  }

  void add_shard_progress(ShardProgress row) {
    std::lock_guard<std::mutex> lock(mutex_);
    shard_progress_.push_back(std::move(row));
  }
  std::vector<ShardProgress> shard_progress() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return shard_progress_;
  }

 private:
  Trace trace_;
  MetricsRegistry metrics_;
  Timeline timeline_;
  FlightRecorder flight_;
  StatusBoard status_;
  mutable std::mutex mutex_;
  std::vector<ShardProgress> shard_progress_;
};

// The per-shard telemetry bundle the campaign hands into the probe loop.
// Every member is a cheap shard-bound handle whose default-constructed
// state is a permanent no-op, so the prober carries one unconditionally.
struct ShardTelemetry {
  Timeline::Recorder timeline;
  FlightHandle flight;
  StatusHandle status;
  Histogram rtt_ms;  // probe round-trip time (virtual clock, ms)
};

// Value handed through options structs. Copying is cheap (pointer +
// scope string); sub("x") extends the dotted scope for a child stage.
struct ObsOptions {
  RunObserver* observer = nullptr;
  std::string scope;

  bool enabled() const { return observer != nullptr; }
  Trace* trace() const {
    return observer == nullptr ? nullptr : &observer->trace();
  }
  Timeline* timeline() const {
    return observer == nullptr ? nullptr : &observer->timeline();
  }
  FlightRecorder* flight() const {
    return observer == nullptr ? nullptr : &observer->flight();
  }
  StatusBoard* status_board() const {
    return observer == nullptr ? nullptr : &observer->status();
  }

  ObsOptions sub(std::string_view name) const {
    ObsOptions child;
    child.observer = observer;
    child.scope = scoped(name);
    return child;
  }

  // "scope.name", or just "name" at the root.
  std::string scoped(std::string_view name) const {
    if (scope.empty()) return std::string(name);
    std::string out = scope;
    out.push_back('.');
    out += name;
    return out;
  }

  // No-op handles when disabled, so call sites stay unconditional.
  Counter counter(std::string_view name) const {
    return observer == nullptr ? Counter()
                               : observer->metrics().counter(scoped(name));
  }
  Gauge gauge(std::string_view name) const {
    return observer == nullptr ? Gauge()
                               : observer->metrics().gauge(scoped(name));
  }
  Histogram histogram(std::string_view name,
                      std::vector<double> bounds) const {
    return observer == nullptr
               ? Histogram()
               : observer->metrics().histogram(scoped(name),
                                               std::move(bounds));
  }
};

}  // namespace snmpv3fp::obs
