// Chrome trace event export.
//
// Serializes a run's spans (and optionally its flight-recorder events) in
// the Chrome trace event format — the JSON that chrome://tracing and
// Perfetto's legacy importer load directly. Spans become "X" (complete)
// events with microsecond timestamps relative to the trace epoch, laid
// out per thread id so shard overlap is visible; flight events become "i"
// (instant) events; a metadata ("M") event names each thread track.
// Format reference: the "Trace Event Format" document the Chromium
// project publishes (JSON Array / JSON Object formats; we emit the object
// form: {"traceEvents": [...]}).
#pragma once

#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace snmpv3fp::obs {

std::string to_chrome_trace_json(
    const std::vector<SpanRecord>& spans,
    const std::vector<FlightEvent>& flight_events = {});

}  // namespace snmpv3fp::obs
