#include "obs/fileio.hpp"

#include <cstdio>

namespace snmpv3fp::obs {

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace snmpv3fp::obs
