// Flight recorder: fixed-size per-shard ring buffers of notable events.
//
// A census-scale campaign that dies mid-run should leave a diagnosable
// trail next to its checkpoint. Each shard records its recent notable
// events — wire-parse fallbacks, undecodable responses, pacer backoffs,
// store spills/evictions, checkpoint boundaries — into a small ring that
// overwrites its oldest entry when full, so memory is bounded no matter
// how hostile the run. The recorder dumps every ring atomically to JSON
// (a) whenever the campaign hits a checkpoint boundary, (b) when the
// fault counter crosses a surge threshold (a burst of undecodable or
// fallback events usually means the interesting part just happened), and
// (c) at campaign exit — including interrupted exits.
//
// Concurrency: rings live in a deque (stable addresses); new rings are
// created only from the orchestrating thread between parallel regions,
// and each handle caches its ring pointer, so the hot record() path takes
// only that ring's own mutex — shards never contend with each other.
//
// Events carry both clocks: virtual time orders them against the
// simulated experiment, wall ms against the operator's watch. Dump
// contents are diagnostic, not part of the determinism contract (wall
// times and ring overwrites differ run to run); the bit-identity
// contract only requires that recording changes no output.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/vclock.hpp"

namespace snmpv3fp::obs {

enum class FlightEventKind : std::uint8_t {
  kUndecodable,   // response bytes rejected by the decode path
  kWireFallback,  // fast parser bailed to the full codec
  kPacerBackoff,  // adaptive pacer cut its rate
  kStoreSpill,    // record store sealed a block to disk
  kStoreEvict,    // record store evicted a resident block
  kCheckpoint,    // campaign persisted a checkpoint boundary
  kScanBoundary,  // a scan pass started or finished
  kNote,          // free-form
};

std::string_view to_string(FlightEventKind kind);

struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kNote;
  std::string stage;             // dotted scope of the emitting shard
  std::uint32_t shard = 0;
  util::VTime virtual_time = 0;  // 0 when the emitter has no sim clock
  double wall_ms = 0.0;          // since the recorder was configured
  std::int64_t value = 0;        // kind-specific magnitude
  std::string detail;            // short free-form context
  std::uint64_t seq = 0;         // per-ring sequence (assigned on record)
};

struct FlightConfig {
  std::size_t ring_capacity = 256;  // events kept per shard ring
  std::string dump_path;            // "" = in-memory only, no dumps
  // Dump automatically every N fault events (kUndecodable + kWireFallback);
  // 0 disables surge dumps.
  std::size_t fault_surge_threshold = 0;
};

namespace detail {

struct FlightRing {
  std::string stage;
  std::uint32_t shard = 0;
  mutable std::mutex mutex;
  std::vector<FlightEvent> slots;  // grows to ring_capacity, then wraps
  std::uint64_t next_seq = 0;
};

}  // namespace detail

class FlightRecorder;

// Shard-bound emitter. Default-constructed = no-op; cheap to copy.
class FlightHandle {
 public:
  FlightHandle() = default;

  bool enabled() const { return recorder_ != nullptr; }
  void record(FlightEventKind kind, util::VTime virtual_time,
              std::int64_t value, std::string_view detail = {});

 private:
  friend class FlightRecorder;
  FlightRecorder* recorder_ = nullptr;
  detail::FlightRing* ring_ = nullptr;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Single-threaded setup; must run before handles are handed out.
  void configure(FlightConfig config);

  bool enabled() const { return configured_; }
  const FlightConfig& config() const { return config_; }

  // Creates a ring for (stage, shard) — or reuses one — and returns a
  // bound handle. Call from the orchestrating thread, never concurrently
  // with itself (record() from other shards is fine).
  FlightHandle handle(std::string stage, std::size_t shard);

  // All rings merged, ordered by (virtual_time, shard, seq).
  std::vector<FlightEvent> events() const;

  // Renders the merged events (plus `reason`) as a JSON document.
  std::string to_json(std::string_view reason) const;

  // Atomically writes to_json(reason) to config().dump_path. Returns
  // false when no dump path is configured or the write failed.
  bool dump(std::string_view reason);

  std::uint64_t dump_count() const {
    return dumps_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {  // events overwritten by ring wrap
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class FlightHandle;

  void record(const FlightHandle& handle, FlightEventKind kind,
              util::VTime virtual_time, std::int64_t value,
              std::string_view note);

  FlightConfig config_;
  bool configured_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  std::mutex dump_mutex_;     // serializes concurrent dumps (shared tmp file)
  mutable std::mutex mutex_;  // guards rings_ layout (creation/merge)
  std::deque<detail::FlightRing> rings_;
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace snmpv3fp::obs
