// Timeline: a lock-light per-shard time-series recorder.
//
// Long campaigns need in-flight visibility, but the project's invariant is
// that observability never perturbs results. The timeline therefore splits
// sampling into two kinds with different determinism guarantees:
//
//  * VIRTUAL samples — each scan shard ticks the timeline from its probe
//    loop; when the shard's virtual clock crosses an absolute multiple of
//    `sample_every_virtual` the recorder appends a point with the shard's
//    own deterministic channel values (targets sent, responses, pacer rate,
//    resident store bytes, ...). Sample times and values depend only on
//    (seed, config), never on wall time or thread interleaving, so the
//    merged series is bit-identical at any thread count (test_telemetry).
//
//  * WALL samples — whichever shard thread first notices that
//    `sample_every_wall_ms` elapsed claims the slot with a CAS and records
//    a full MetricsSnapshot of the registry ("every registered counter /
//    gauge / histogram"). These show real elapsed time and cross-shard
//    totals; their timing and values are explicitly NOT deterministic and
//    they never feed back into the pipeline.
//
// Lock discipline: each (stage, shard) track has its own mutex, touched
// only by the one thread driving that shard — uncontended in practice —
// and the registry-wide structures are touched only on track creation
// (orchestrating thread) and on rare wall samples. snapshot() merges
// tracks sorted by (stage, shard) so the report sequence is deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/vclock.hpp"

namespace snmpv3fp::obs {

struct TimelineConfig {
  // Virtual-clock sampling interval; 0 disables virtual samples.
  util::VTime sample_every_virtual = 0;
  // Wall-clock sampling interval in ms; 0 disables wall samples.
  double sample_every_wall_ms = 0.0;
  // Caps keep a runaway configuration memory-bounded; once a track (or
  // the wall series) is full, further samples are counted as dropped.
  std::size_t max_points_per_track = 4096;
  std::size_t max_wall_samples = 4096;

  bool enabled() const {
    return sample_every_virtual > 0 || sample_every_wall_ms > 0;
  }
};

// The deterministic per-shard channel values a tick reports. Everything
// in here must be derived from shard-local simulation state only.
struct TimelinePoint {
  util::VTime t = 0;  // virtual boundary the sample was taken at
  std::uint64_t targets_sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t undecodable = 0;
  std::uint64_t backoffs = 0;
  double pacer_rate_pps = 0.0;
  std::int64_t store_resident_bytes = -1;  // -1: shard not store-backed

  bool operator==(const TimelinePoint&) const = default;
};

struct VirtualSeries {
  std::string stage;  // dotted scope, e.g. "pipeline.v4.scan1"
  std::size_t shard = 0;
  std::vector<TimelinePoint> points;

  bool operator==(const VirtualSeries&) const = default;
};

struct WallSample {
  double wall_ms = 0.0;  // since the timeline was configured
  MetricsSnapshot metrics;
};

struct TimelineSnapshot {
  util::VTime sample_every_virtual = 0;
  double sample_every_wall_ms = 0.0;
  std::vector<VirtualSeries> series;  // sorted by (stage, shard)
  std::vector<WallSample> wall;
  std::uint64_t dropped_points = 0;

  bool empty() const { return series.empty() && wall.empty(); }
  // The "time_series" section of RunReport JSON (a JSON object).
  std::string to_json() const;
};

class Timeline {
 public:
  class Recorder;

  Timeline() = default;
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  // Must run before any recorder is handed out (single-threaded setup).
  // `registry` is snapshotted by wall samples; may be null when wall
  // sampling is disabled.
  void configure(TimelineConfig config, const MetricsRegistry* registry);

  bool enabled() const { return config_.enabled(); }
  const TimelineConfig& config() const { return config_; }

  // Creates (or reuses) the (stage, shard) track and returns a bound
  // recorder. Call from the orchestrating thread, before the parallel
  // region, so track creation never races. Returns a no-op recorder when
  // the timeline is disabled.
  Recorder recorder(std::string stage, std::size_t shard);

  TimelineSnapshot snapshot() const;

 private:
  struct Track {
    std::string stage;
    std::size_t shard = 0;
    mutable std::mutex mutex;
    std::vector<TimelinePoint> points;
  };

  void append_point(Track* track, const TimelinePoint& point);
  void maybe_wall_sample();

  TimelineConfig config_;
  const MetricsRegistry* registry_ = nullptr;
  std::chrono::steady_clock::time_point epoch_{};
  // Next wall sample due, in µs since epoch_ (claimed by CAS).
  std::atomic<std::int64_t> next_wall_due_us_{0};
  std::atomic<std::uint64_t> dropped_points_{0};

  mutable std::mutex mutex_;  // guards tracks_ layout + wall_samples_
  std::deque<Track> tracks_;  // deque: stable addresses for recorders
  std::vector<WallSample> wall_samples_;

  friend class Recorder;
};

// Shard-bound sampling handle. Default-constructed = permanent no-op, so
// hot loops carry one unconditionally and pay a null check when telemetry
// is off. tick() is called once per probe; the virtual boundary test is
// recorder-local and the wall clock is only consulted every
// kWallCheckStride ticks, keeping the armed-but-not-due cost to a couple
// of compares.
class Timeline::Recorder {
 public:
  static constexpr std::uint32_t kWallCheckStride = 64;

  Recorder() = default;

  bool enabled() const { return timeline_ != nullptr; }

  // Builds `point.t` from `virtual_now` rounded down to the interval
  // boundary; emits at most one point per boundary crossing.
  void tick(util::VTime virtual_now, const TimelinePoint& values) {
    if (timeline_ == nullptr) return;
    if (virtual_every_ > 0 && virtual_now >= next_virtual_)
      take_virtual(virtual_now, values);
    if (wall_armed_ && --wall_countdown_ == 0) {
      wall_countdown_ = kWallCheckStride;
      timeline_->maybe_wall_sample();
    }
  }

 private:
  friend class Timeline;

  void take_virtual(util::VTime virtual_now, const TimelinePoint& values);

  Timeline* timeline_ = nullptr;
  Timeline::Track* track_ = nullptr;
  util::VTime virtual_every_ = 0;
  util::VTime next_virtual_ = 0;
  bool wall_armed_ = false;
  std::uint32_t wall_countdown_ = kWallCheckStride;
};

}  // namespace snmpv3fp::obs
