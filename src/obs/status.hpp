// Live status surface: an atomically rewritten status.json.
//
// The campaign registers one status slot per scan shard; each shard
// updates its slot every N targets from the probe loop. The board
// serializes every slot (progress, response rate, pacer state, resident
// store bytes, an ETA computed from the pacer's effective rate) to JSON
// and publishes it with the tmp+rename idiom, throttled to at most one
// file write per `min_write_interval_ms` of wall time so a fast campaign
// does not turn into an fsync benchmark. `census_report --watch` polls
// the file and renders it with render_status_dashboard().
//
// Like every telemetry surface this is execution-only: slot updates read
// shard-local deterministic values but the board never feeds anything
// back into the pipeline, and the file contents (wall-time fields, write
// coalescing) are explicitly not part of the determinism contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/vclock.hpp"

namespace snmpv3fp::obs {

class JsonValue;

struct StatusConfig {
  std::string path;                  // "" = status surface disabled
  std::size_t every_n_targets = 1024;  // shard update cadence
  double min_write_interval_ms = 100.0;  // file rewrite throttle
};

// One shard's slot. `eta_seconds()` divides the remaining targets by the
// pacer's current effective rate — exactly the number an operator wants
// when the adaptive pacer has backed off below the configured rate.
struct ShardStatusRow {
  std::string stage;
  std::uint32_t shard = 0;
  std::uint64_t targets_total = 0;
  std::uint64_t targets_sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t undecodable = 0;
  std::uint64_t backoffs = 0;
  // Frames this shard's engine pulled off its AF_PACKET ring view
  // (net/packet_ring.hpp); stays 0 for fabric or recvmmsg transports.
  std::uint64_t ring_frames = 0;
  double pacer_rate_pps = 0.0;
  std::int64_t store_resident_bytes = -1;  // -1: not store-backed
  util::VTime virtual_now = 0;
  bool complete = false;

  double response_rate() const {
    return targets_sent == 0
               ? 0.0
               : static_cast<double>(responses) /
                     static_cast<double>(targets_sent);
  }
  double eta_seconds() const {
    if (complete || pacer_rate_pps <= 0.0) return 0.0;
    const std::uint64_t remaining =
        targets_total > targets_sent ? targets_total - targets_sent : 0;
    return static_cast<double>(remaining) / pacer_rate_pps;
  }
};

class StatusBoard;

// Shard-bound updater. Default-constructed = no-op; cheap to copy.
class StatusHandle {
 public:
  StatusHandle() = default;

  bool enabled() const { return board_ != nullptr; }
  // Update cadence for the probe loop's modulo check (>= 1 when enabled).
  std::size_t every_n_targets() const { return every_; }

  // Overwrites this shard's slot (stage/shard/targets_total are fixed at
  // registration; the row's other fields come from `row`).
  void update(const ShardStatusRow& row);

 private:
  friend class StatusBoard;
  StatusBoard* board_ = nullptr;
  std::size_t slot_ = 0;
  std::size_t every_ = 0;
};

class StatusBoard {
 public:
  StatusBoard() = default;
  StatusBoard(const StatusBoard&) = delete;
  StatusBoard& operator=(const StatusBoard&) = delete;

  // Single-threaded setup; must run before slots are handed out.
  void configure(StatusConfig config);

  bool enabled() const { return !config_.path.empty(); }
  const StatusConfig& config() const { return config_; }

  // Registers a shard slot. Call from the orchestrating thread.
  StatusHandle add_shard(std::string stage, std::size_t shard,
                         std::uint64_t targets_total);

  // Marks every slot of `stage` complete and forces a file write.
  void mark_stage_complete(std::string_view stage);

  std::vector<ShardStatusRow> snapshot() const;
  std::string to_json() const;

  // Unthrottled atomic write (also used at campaign exit). Returns false
  // when disabled or the write failed.
  bool write_now();

  std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  friend class StatusHandle;

  void update_slot(std::size_t slot, const ShardStatusRow& row);
  void maybe_write_locked();  // throttled; caller holds mutex_

  StatusConfig config_;
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mutex_;
  std::vector<ShardStatusRow> rows_;
  double last_write_ms_ = -1e18;
  std::atomic<std::uint64_t> writes_{0};
};

// Renders a parsed status.json as a fixed-width ASCII dashboard (one row
// per shard plus a totals line). Library function so tests can cover the
// rendering that `census_report --watch` refreshes.
std::string render_status_dashboard(const JsonValue& status);

}  // namespace snmpv3fp::obs
