// Atomic file publication for telemetry artifacts.
//
// Every live telemetry surface (status.json, flight-recorder dumps, trace
// exports) must be readable by an external watcher at any instant, so all
// of them go through the same write-to-temp + rename idiom the checkpoint
// codec uses: a reader either sees the previous complete document or the
// new complete document, never a torn write.
#pragma once

#include <string>
#include <string_view>

namespace snmpv3fp::obs {

// Writes `content` to `path + ".tmp"` and renames it over `path`.
// Returns false (and removes the temp file) on any I/O failure.
bool write_file_atomic(const std::string& path, std::string_view content);

}  // namespace snmpv3fp::obs
