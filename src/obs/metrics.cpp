#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace snmpv3fp::obs {

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

namespace {

std::uint64_t sum_shards(const ShardArray& shards) {
  std::uint64_t total = 0;
  for (const auto& shard : shards)
    total += shard.value.load(std::memory_order_relaxed);
  return total;
}

}  // namespace

}  // namespace detail

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (it->second.first != Kind::kCounter) return Counter();
    return Counter(&counters_[it->second.second]);
  }
  counters_.emplace_back();
  counters_.back().name = name;
  const std::size_t index = counters_.size() - 1;
  by_name_.emplace(std::string(name), std::make_pair(Kind::kCounter, index));
  order_.emplace_back(Kind::kCounter, index);
  return Counter(&counters_.back());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (it->second.first != Kind::kGauge) return Gauge();
    return Gauge(&gauges_[it->second.second]);
  }
  gauges_.emplace_back();
  gauges_.back().name = name;
  const std::size_t index = gauges_.size() - 1;
  by_name_.emplace(std::string(name), std::make_pair(Kind::kGauge, index));
  order_.emplace_back(Kind::kGauge, index);
  return Gauge(&gauges_.back());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (it->second.first != Kind::kHistogram) return Histogram();
    return Histogram(&histograms_[it->second.second]);
  }
  histograms_.emplace_back();
  auto& data = histograms_.back();
  data.name = name;
  data.bounds = std::move(bounds);
  data.buckets = std::vector<detail::ShardArray>(data.bounds.size() + 1);
  const std::size_t index = histograms_.size() - 1;
  by_name_.emplace(std::string(name), std::make_pair(Kind::kHistogram, index));
  order_.emplace_back(Kind::kHistogram, index);
  return Histogram(&data);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [kind, index] : order_) {
    switch (kind) {
      case Kind::kCounter: {
        const auto& data = counters_[index];
        out.counters.push_back({data.name, detail::sum_shards(data.shards)});
        break;
      }
      case Kind::kGauge: {
        const auto& data = gauges_[index];
        out.gauges.push_back(
            {data.name, data.value.load(std::memory_order_relaxed)});
        break;
      }
      case Kind::kHistogram: {
        const auto& data = histograms_[index];
        MetricsSnapshot::HistogramRow row;
        row.name = data.name;
        row.bounds = data.bounds;
        row.counts.reserve(data.buckets.size());
        for (const auto& bucket : data.buckets) {
          const std::uint64_t count = detail::sum_shards(bucket);
          row.counts.push_back(count);
          row.total += count;
        }
        out.histograms.push_back(std::move(row));
        break;
      }
    }
  }
  return out;
}

double MetricsSnapshot::HistogramRow::percentile(double p) const {
  if (total == 0 || bounds.empty() || counts.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t count = counts[i];
    if (count == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += count;
    if (rank > static_cast<double>(cumulative)) continue;
    // The overflow bucket has no upper edge; clamp to the last bound.
    if (i >= bounds.size()) return bounds.back();
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction = (rank - before) / static_cast<double>(count);
    return lower + (upper - lower) * fraction;
  }
  return bounds.back();
}

const MetricsSnapshot::CounterRow* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& row : counters)
    if (row.name == name) return &row;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& row : counters) json.kv(row.name, row.value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& row : gauges) json.kv(row.name, row.value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& row : histograms) {
    json.key(row.name).begin_object();
    json.key("bounds").begin_array();
    for (const double bound : row.bounds) json.value(bound);
    json.end_array();
    json.key("counts").begin_array();
    for (const std::uint64_t count : row.counts) json.value(count);
    json.end_array();
    json.kv("total", row.total);
    json.kv("p50", row.p50());
    json.kv("p90", row.p90());
    json.kv("p99", row.p99());
    json.end_object();
  }
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace snmpv3fp::obs
