// Leveled, structured logging (DESIGN.md §3's long-advertised util "log").
//
// One process-global logger with an atomic level and a mutex-protected
// sink. Records render as `level=info msg="..." key=value ...` — greppable
// key=value text, not JSON, because the consumer is a person tailing a
// scan. The level defaults to the SNMPFP_LOG_LEVEL environment variable
// and to kOff when unset, so tests and benches stay silent unless asked.
//
// Hot paths gate on `enabled(level)` (one relaxed atomic load) before
// building any field strings; a disabled logger costs nothing measurable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace snmpv3fp::obs {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarn,
  kError,
  kOff,
};

std::string_view to_string(LogLevel level);
// Case-insensitive parse of "trace".."error"/"off"; nullopt-free: unknown
// text (and unset) falls back to `fallback`.
LogLevel parse_log_level(std::string_view text, LogLevel fallback);
// SNMPFP_LOG_LEVEL, or kOff when unset/unknown.
LogLevel log_level_from_env();

// One structured field. The helpers render numbers eagerly; values that
// contain spaces or '"' are quoted with backslash escapes.
struct LogField {
  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  LogField(std::string_view k, T v) : key(k) {
    if constexpr (std::is_floating_point_v<T>) {
      value = format_double(static_cast<double>(v));
    } else {
      value = std::to_string(v);
    }
  }

  static std::string format_double(double v);

  std::string key;
  std::string value;
};

class Logger {
 public:
  // Process-global instance, initialized from SNMPFP_LOG_LEVEL.
  static Logger& global();

  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  // Replaces the sink (default: one line to stderr). The sink is called
  // under the logger's mutex — records never interleave. Passing nullptr
  // restores the default sink.
  void set_sink(std::function<void(std::string_view line)> sink);

  void log(LogLevel level, std::string_view message,
           std::initializer_list<LogField> fields = {});

  // Renders without emitting (used by log() and by tests).
  static std::string format(LogLevel level, std::string_view message,
                            std::initializer_list<LogField> fields);

 private:
  explicit Logger(LogLevel level) : level_(level) {}

  std::atomic<LogLevel> level_;
  std::mutex mutex_;
  std::function<void(std::string_view)> sink_;
};

// Convenience wrappers over Logger::global().
inline void log_debug(std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kDebug, message, fields);
}
inline void log_info(std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kInfo, message, fields);
}
inline void log_warn(std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  Logger::global().log(LogLevel::kWarn, message, fields);
}

}  // namespace snmpv3fp::obs
