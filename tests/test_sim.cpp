#include <gtest/gtest.h>

#include <set>

#include "sim/agent.hpp"
#include "sim/fabric.hpp"
#include "sim/stack.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp::sim {
namespace {

using snmp::EngineId;
using snmp::PduType;
using snmp::V3Message;

topo::Device make_device() {
  topo::Device device;
  device.kind = topo::DeviceKind::kRouter;
  device.vendor = &topo::vendor_profile("Cisco");
  topo::Interface itf;
  itf.mac = net::MacAddress::from_oui(0x00000c, 0x31db80);
  itf.v4 = net::Ipv4(192, 0, 2, 1);
  device.interfaces.push_back(itf);
  device.snmpv3_enabled = true;
  device.snmpv2_enabled = true;
  device.engine_id = EngineId::make_mac(9, itf.mac);
  device.reboots = {-10 * util::kDay};
  device.boots_before_history = 4;
  return device;
}

util::Bytes discovery() {
  return snmp::make_discovery_request(1000, 2000).encode();
}

// ---------------------------------------------------------------------------
// Agent behaviour
// ---------------------------------------------------------------------------

TEST(Agent, DiscoveryGetsReportWithEngineTriple) {
  const auto device = make_device();
  util::Rng rng(1);
  const auto responses = handle_udp(device, discovery(), 0, rng);
  ASSERT_EQ(responses.size(), 1u);
  const auto report = V3Message::decode(responses.front());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().scoped_pdu.pdu.type, PduType::kReport);
  EXPECT_EQ(report.value().usm.authoritative_engine_id, device.engine_id);
  EXPECT_EQ(report.value().usm.engine_boots, 5u);  // 4 prior + 1 in history
  EXPECT_EQ(report.value().usm.engine_time, 10u * 86400u);
}

TEST(Agent, DisabledEngineStaysSilent) {
  auto device = make_device();
  device.snmpv3_enabled = false;
  util::Rng rng(1);
  EXPECT_TRUE(handle_udp(device, discovery(), 0, rng).empty());
}

TEST(Agent, GarbageBytesIgnored) {
  const auto device = make_device();
  util::Rng rng(1);
  EXPECT_TRUE(handle_udp(device, util::Bytes{0xde, 0xad}, 0, rng).empty());
  EXPECT_TRUE(handle_udp(device, util::Bytes{}, 0, rng).empty());
}

TEST(Agent, NonReportableRequestIgnored) {
  const auto device = make_device();
  auto request = snmp::make_discovery_request(1, 2);
  request.header.msg_flags = 0;  // reportable bit clear
  util::Rng rng(1);
  EXPECT_TRUE(handle_udp(device, request.encode(), 0, rng).empty());
}

TEST(Agent, EmptyEngineIdBug) {
  auto device = make_device();
  device.empty_engine_id_bug = true;
  util::Rng rng(1);
  const auto responses = handle_udp(device, discovery(), 0, rng);
  ASSERT_EQ(responses.size(), 1u);
  const auto report = V3Message::decode(responses.front());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().usm.authoritative_engine_id.empty());
}

TEST(Agent, ZeroTimeBug) {
  auto device = make_device();
  device.zero_time_bug = true;
  util::Rng rng(1);
  const auto report =
      V3Message::decode(handle_udp(device, discovery(), 0, rng).front());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().usm.engine_boots, 0u);
  EXPECT_EQ(report.value().usm.engine_time, 0u);
}

TEST(Agent, FutureTimeBugReportsHugeEngineTime) {
  auto device = make_device();
  device.future_time_bug = true;
  util::Rng rng(1);
  const auto report =
      V3Message::decode(handle_udp(device, discovery(), 0, rng).front());
  ASSERT_TRUE(report.ok());
  // Larger than the seconds between 1970 and the simulated 2021 epoch.
  EXPECT_GT(report.value().usm.engine_time, 1618531200u);
}

TEST(Agent, AmplifierSendsManyIdenticalCopies) {
  auto device = make_device();
  device.amplification = 7;
  util::Rng rng(1);
  const auto responses = handle_udp(device, discovery(), 0, rng);
  ASSERT_EQ(responses.size(), 7u);
  for (const auto& copy : responses) EXPECT_EQ(copy, responses.front());
}

TEST(Agent, TimeJitterVariesPerResponse) {
  auto device = make_device();
  device.time_jitter_s = 20.0;
  util::Rng rng(1);
  std::set<std::uint32_t> times;
  for (int i = 0; i < 10; ++i) {
    const auto report =
        V3Message::decode(handle_udp(device, discovery(), 0, rng).front());
    times.insert(report.value().usm.engine_time);
  }
  EXPECT_GT(times.size(), 3u);  // fresh jitter each response
}

TEST(Agent, UnknownUserStillLeaksEngineId) {
  const auto device = make_device();
  auto request = snmp::make_discovery_request(5, 6);
  request.usm.authoritative_engine_id = device.engine_id;
  request.usm.user_name = "admin";
  util::Rng rng(1);
  const auto report =
      V3Message::decode(handle_udp(device, request.encode(), 0, rng).front());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().scoped_pdu.pdu.bindings.at(0).oid,
            snmp::kOidUsmStatsUnknownUserNames);
  EXPECT_EQ(report.value().usm.authoritative_engine_id, device.engine_id);
}

TEST(Agent, V2cRequiresCommunityAndV2Enabled) {
  auto device = make_device();
  snmp::V2cMessage get;
  get.community = "pass123";
  get.pdu.type = PduType::kGetRequest;
  get.pdu.bindings = {{snmp::kOidSysDescr, snmp::VarValue::null()}};
  util::Rng rng(1);
  EXPECT_EQ(handle_udp(device, get.encode(), 0, rng).size(), 1u);
  get.community = "wrong";
  EXPECT_TRUE(handle_udp(device, get.encode(), 0, rng).empty());
  get.community = "pass123";
  device.snmpv2_enabled = false;
  EXPECT_TRUE(handle_udp(device, get.encode(), 0, rng).empty());
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : world_(topo::generate_world(topo::WorldConfig::tiny())) {}

  net::Datagram probe_to(const net::IpAddress& target) {
    net::Datagram dg;
    dg.source = {net::Ipv4(198, 51, 100, 7), 4444};
    dg.destination = {target, net::kSnmpPort};
    dg.payload = discovery();
    return dg;
  }

  // Finds an address whose device answers SNMPv3.
  net::IpAddress responsive_address() const {
    for (const auto& device : world_.devices) {
      if (!device.snmpv3_enabled || device.empty_engine_id_bug) continue;
      for (const auto& itf : device.interfaces)
        if (itf.v4) return net::IpAddress(*itf.v4);
    }
    ADD_FAILURE() << "no responsive device in tiny world";
    return net::IpAddress(net::Ipv4(0, 0, 0, 0));
  }

  topo::World world_;
};

TEST_F(FabricTest, RoundTripDeliversResponse) {
  FabricConfig config;
  config.probe_loss = 0.0;
  config.response_loss = 0.0;
  Fabric fabric(world_, config);
  fabric.send(probe_to(responsive_address()));
  EXPECT_FALSE(fabric.receive().has_value());  // nothing before RTT elapses
  fabric.run_until(2 * util::kSecond);
  const auto response = fabric.receive();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->source.address, responsive_address());
  EXPECT_TRUE(V3Message::decode(response->payload).ok());
  EXPECT_EQ(fabric.stats().datagrams_sent, 1u);
  EXPECT_EQ(fabric.stats().responses_received, 1u);
}

TEST_F(FabricTest, DeadAddressIsSilent) {
  Fabric fabric(world_, {});
  fabric.send(probe_to(net::IpAddress(net::Ipv4(203, 0, 114, 200))));
  fabric.run_until(10 * util::kSecond);
  EXPECT_FALSE(fabric.receive().has_value());
}

TEST_F(FabricTest, WrongPortIsSilent) {
  FabricConfig config;
  config.probe_loss = 0.0;
  Fabric fabric(world_, config);
  auto probe = probe_to(responsive_address());
  probe.destination.port = 162;
  fabric.send(std::move(probe));
  fabric.run_until(10 * util::kSecond);
  EXPECT_FALSE(fabric.receive().has_value());
}

TEST_F(FabricTest, FullLossDropsEverything) {
  FabricConfig config;
  config.probe_loss = 1.0;
  Fabric fabric(world_, config);
  for (int i = 0; i < 20; ++i) fabric.send(probe_to(responsive_address()));
  fabric.run_until(10 * util::kSecond);
  EXPECT_FALSE(fabric.receive().has_value());
  EXPECT_EQ(fabric.stats().datagrams_delivered, 0u);
}

TEST_F(FabricTest, DeterministicAcrossRuns) {
  const auto run_once = [&]() {
    topo::World world = topo::generate_world(topo::WorldConfig::tiny());
    FabricConfig config;
    config.seed = 5;
    Fabric fabric(world, config);
    for (const auto& address : world.addresses(net::Family::kIpv4))
      fabric.send(probe_to(address));
    fabric.run_until(util::kMinute);
    std::vector<std::pair<std::string, util::Bytes>> received;
    while (auto dg = fabric.receive())
      received.emplace_back(dg->source.address.to_string(), dg->payload);
    return received;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Stack simulator
// ---------------------------------------------------------------------------

TEST_F(FabricTest, SharedCounterIpIdsIncreaseMonotonically) {
  StackSimulator stack(world_, 3);
  for (const auto& device : world_.devices) {
    if (device.ipid_policy != topo::IpIdPolicy::kSharedCounter) continue;
    std::optional<net::Ipv4> v4;
    for (const auto& itf : device.interfaces)
      if (itf.v4) {
        v4 = itf.v4;
        break;
      }
    if (!v4) continue;
    const auto a = stack.icmp_echo(*v4, 10 * util::kSecond);
    const auto b = stack.icmp_echo(*v4, 20 * util::kSecond);
    if (!a || !b) continue;
    const std::uint16_t delta = b->ip_id - a->ip_id;  // mod 2^16 forward
    EXPECT_GT(delta, 0u);
    return;  // one device suffices
  }
}

TEST_F(FabricTest, TcpSilentForClosedRouters) {
  StackSimulator stack(world_, 3);
  for (const auto& device : world_.devices) {
    if (device.tcp_open) continue;
    for (const auto& itf : device.interfaces) {
      if (!itf.v4) continue;
      const auto reply = stack.tcp_syn(net::IpAddress(*itf.v4), 22, 0);
      EXPECT_EQ(reply.outcome, TcpProbeOutcome::kSilent);
      return;
    }
  }
}

TEST_F(FabricTest, InitialTtlReflectsVendor) {
  StackSimulator stack(world_, 3);
  for (const auto& device : world_.devices) {
    for (const auto& itf : device.interfaces) {
      if (!itf.v4) continue;
      const auto reply = stack.icmp_echo(*itf.v4, 0);
      if (!reply) continue;
      EXPECT_LE(reply->ttl, device.initial_ttl);
      EXPECT_GE(device.initial_ttl - reply->ttl, 10);  // >= 10 hops away
      return;
    }
  }
}

}  // namespace
}  // namespace snmpv3fp::sim
