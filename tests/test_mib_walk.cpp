#include <gtest/gtest.h>

#include "scan/walker.hpp"
#include "sim/fabric.hpp"
#include "sim/mib.hpp"
#include "topo/generator.hpp"

namespace snmpv3fp {
namespace {

topo::Device lab_device() {
  topo::Device device;
  device.index = 7;
  device.kind = topo::DeviceKind::kRouter;
  device.vendor = &topo::vendor_profile("Cisco");
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo::Interface itf;
    itf.mac = net::MacAddress::from_oui(0x00000c, 0x100 + i);
    itf.v4 = net::Ipv4(192, 0, 2, static_cast<std::uint8_t>(10 + i));
    device.interfaces.push_back(itf);
  }
  device.snmpv2_enabled = true;
  device.snmpv3_enabled = true;
  device.engine_id = snmp::EngineId::make_mac(9, device.interfaces[0].mac);
  device.reboots = {-util::kDay};
  device.boots_before_history = 1;
  return device;
}

TEST(Mib, TableIsSortedAndComplete) {
  const auto device = lab_device();
  const auto mib = sim::build_mib(device, 0);
  ASSERT_GE(mib.size(), 7u + 3u * 4u);  // system group + 4 cols x 3 ifaces
  EXPECT_TRUE(std::is_sorted(mib.begin(), mib.end(),
                             [](const auto& a, const auto& b) {
                               return a.oid < b.oid;
                             }));
}

TEST(Mib, GetAndNextSemantics) {
  const auto device = lab_device();
  const auto mib = sim::build_mib(device, 0);

  const auto* descr = sim::mib_get(mib, snmp::kOidSysDescr);
  ASSERT_NE(descr, nullptr);
  EXPECT_NE(descr->value.as_string().value_or("").find("Cisco"),
            std::string::npos);

  EXPECT_EQ(sim::mib_get(mib, {1, 3, 6, 1, 9, 9, 9}), nullptr);

  // GetNext from the mib-2 root lands on the first entry (sysDescr.0).
  const auto* first = sim::mib_next(mib, {1, 3, 6, 1, 2, 1});
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->oid, snmp::kOidSysDescr);

  // GetNext past the last entry returns null.
  EXPECT_EQ(sim::mib_next(mib, mib.back().oid), nullptr);
}

TEST(Mib, UptimeTracksEngineTime) {
  const auto device = lab_device();
  const auto mib = sim::build_mib(device, 0);
  const auto* uptime = sim::mib_get(mib, snmp::kOidSysUpTime);
  ASSERT_NE(uptime, nullptr);
  // 1 day in TimeTicks (hundredths of seconds).
  EXPECT_EQ(std::get<std::uint64_t>(uptime->value.data), 86400u * 100u);
}

TEST(Mib, IfPhysAddressRowsCarryRealMacs) {
  const auto device = lab_device();
  const auto mib = sim::build_mib(device, 0);
  const auto* phys = sim::mib_get(mib, {1, 3, 6, 1, 2, 1, 2, 2, 1, 6, 2});
  ASSERT_NE(phys, nullptr);
  const auto* bytes = std::get_if<util::Bytes>(&phys->value.data);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(util::to_hex_colon(*bytes), device.interfaces[1].mac.to_string());
}

TEST(Walker, OidSubtreeCheck) {
  EXPECT_TRUE(scan::oid_in_subtree({1, 3, 6}, {1, 3, 6, 1, 2}));
  EXPECT_TRUE(scan::oid_in_subtree({1, 3, 6}, {1, 3, 6}));
  EXPECT_FALSE(scan::oid_in_subtree({1, 3, 6}, {1, 3, 7, 1}));
  EXPECT_FALSE(scan::oid_in_subtree({1, 3, 6, 1}, {1, 3, 6}));
}

class WalkTest : public ::testing::Test {
 protected:
  WalkTest() : world_(topo::generate_world(topo::WorldConfig::tiny())) {}

  // A v2c-enabled device address in the world.
  std::optional<std::pair<net::IpAddress, const topo::Device*>> v2c_target()
      const {
    for (const auto& device : world_.devices) {
      if (!device.snmpv2_enabled) continue;
      for (const auto& itf : device.interfaces)
        if (itf.v4) return {{net::IpAddress(*itf.v4), &device}};
    }
    return std::nullopt;
  }

  topo::World world_;
};

TEST_F(WalkTest, FullWalkOverFabric) {
  sim::FabricConfig config;
  config.probe_loss = 0.0;
  config.response_loss = 0.0;
  sim::Fabric fabric(world_, config);

  const auto target = v2c_target();
  ASSERT_TRUE(target.has_value());
  const net::Endpoint source{net::Ipv4(198, 51, 100, 7), 4444};
  const net::Endpoint agent{target->first, net::kSnmpPort};

  const auto bindings = scan::snmp_walk(fabric, source, agent);
  const auto expected = sim::build_mib(*target->second, /*now=*/0).size();
  EXPECT_EQ(bindings.size(), expected);
  // The walk visits OIDs in strictly increasing order.
  for (std::size_t i = 1; i < bindings.size(); ++i)
    EXPECT_LT(bindings[i - 1].oid, bindings[i].oid);
}

TEST_F(WalkTest, SubtreeWalkStopsAtBoundary) {
  sim::FabricConfig config;
  config.probe_loss = 0.0;
  config.response_loss = 0.0;
  sim::Fabric fabric(world_, config);
  const auto target = v2c_target();
  ASSERT_TRUE(target.has_value());

  scan::WalkOptions options;
  options.root = {1, 3, 6, 1, 2, 1, 1};  // system group only
  const auto bindings = scan::snmp_walk(
      fabric, {net::Ipv4(198, 51, 100, 7), 4444},
      {target->first, net::kSnmpPort}, options);
  ASSERT_FALSE(bindings.empty());
  for (const auto& binding : bindings)
    EXPECT_TRUE(scan::oid_in_subtree(options.root, binding.oid));
  EXPECT_EQ(bindings.size(), 6u);  // the 6 system-group scalars we expose
}

TEST_F(WalkTest, WalkAgainstDeadHostTimesOut) {
  sim::Fabric fabric(world_, {});
  scan::WalkOptions options;
  options.per_request_timeout = 200 * util::kMillisecond;
  const auto bindings = scan::snmp_walk(
      fabric, {net::Ipv4(198, 51, 100, 7), 4444},
      {net::IpAddress(net::Ipv4(203, 0, 114, 199)), net::kSnmpPort}, options);
  EXPECT_TRUE(bindings.empty());
}

TEST_F(WalkTest, WrongCommunityWalksNothing) {
  sim::FabricConfig config;
  config.probe_loss = 0.0;
  sim::Fabric fabric(world_, config);
  const auto target = v2c_target();
  ASSERT_TRUE(target.has_value());
  scan::WalkOptions options;
  options.community = "not-the-community";
  options.per_request_timeout = 200 * util::kMillisecond;
  const auto bindings = scan::snmp_walk(
      fabric, {net::Ipv4(198, 51, 100, 7), 4444},
      {target->first, net::kSnmpPort}, options);
  EXPECT_TRUE(bindings.empty());
}

}  // namespace
}  // namespace snmpv3fp
