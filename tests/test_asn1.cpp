#include <gtest/gtest.h>

#include "asn1/ber.hpp"
#include "util/rng.hpp"

namespace snmpv3fp::asn1 {
namespace {

// ---------------------------------------------------------------------------
// encode/decode round trips
// ---------------------------------------------------------------------------

TEST(Ber, IntegerKnownEncodings) {
  // X.690 minimal two's-complement examples.
  EXPECT_EQ(encode_integer(0), (Bytes{0x02, 0x01, 0x00}));
  EXPECT_EQ(encode_integer(3), (Bytes{0x02, 0x01, 0x03}));
  EXPECT_EQ(encode_integer(127), (Bytes{0x02, 0x01, 0x7f}));
  EXPECT_EQ(encode_integer(128), (Bytes{0x02, 0x02, 0x00, 0x80}));
  EXPECT_EQ(encode_integer(-1), (Bytes{0x02, 0x01, 0xff}));
  EXPECT_EQ(encode_integer(-129), (Bytes{0x02, 0x02, 0xff, 0x7f}));
}

class IntegerRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IntegerRoundTrip, EncodeDecodeIdentity) {
  const auto wire = encode_integer(GetParam());
  Reader reader(wire);
  const auto decoded = reader.read_integer();
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), GetParam());
  EXPECT_TRUE(reader.at_end());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, IntegerRoundTrip,
    ::testing::Values(0, 1, -1, 127, 128, -128, -129, 255, 256, 65535,
                      0x7fffffffLL, -0x80000000LL, 0x7fffffffffffffffLL,
                      std::int64_t{-0x7fffffffffffffffLL - 1}));

TEST(Ber, IntegerRandomRoundTrip) {
  util::Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const auto value = static_cast<std::int64_t>(rng.next());
    const auto wire = encode_integer(value);
    Reader reader(wire);
    const auto decoded = reader.read_integer();
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), value);
  }
}

TEST(Ber, UnsignedWithApplicationTags) {
  const auto wire = encode_unsigned(0x80000000u, kTagCounter32);
  EXPECT_EQ(wire[0], kTagCounter32);
  Reader reader(wire);
  const auto decoded = reader.read_unsigned(kTagCounter32);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), 0x80000000u);
  // A value with the top bit set must get a 0x00 pad byte (5 content bytes).
  EXPECT_EQ(wire[1], 5);
}

TEST(Ber, OctetStringRoundTrip) {
  util::Rng rng(5);
  for (const std::size_t length : {0u, 1u, 127u, 128u, 255u, 256u, 5000u}) {
    Bytes payload;
    for (std::size_t i = 0; i < length; ++i)
      payload.push_back(static_cast<std::uint8_t>(rng.next()));
    const auto wire = encode_octet_string(payload);
    Reader reader(wire);
    const auto decoded = reader.read_octet_string();
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(util::equal(decoded.value(), payload));
  }
}

TEST(Ber, LongFormLength) {
  Bytes out;
  write_length(out, 0x7f);
  EXPECT_EQ(out, (Bytes{0x7f}));
  out.clear();
  write_length(out, 0x80);
  EXPECT_EQ(out, (Bytes{0x81, 0x80}));
  out.clear();
  write_length(out, 0x1234);
  EXPECT_EQ(out, (Bytes{0x82, 0x12, 0x34}));
}

TEST(Ber, NullRoundTrip) {
  const auto wire = encode_null();
  Reader reader(wire);
  EXPECT_TRUE(reader.read_null().ok());
}

TEST(Ber, OidKnownEncoding) {
  // 1.3.6.1.6.3.15.1.1.4.0 (usmStatsUnknownEngineIDs).
  const Oid oid = {1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0};
  const auto wire = encode_oid(oid);
  EXPECT_EQ(wire, (Bytes{0x06, 0x0a, 0x2b, 0x06, 0x01, 0x06, 0x03, 0x0f,
                         0x01, 0x01, 0x04, 0x00}));
  Reader reader(wire);
  const auto decoded = reader.read_oid();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), oid);
  EXPECT_EQ(oid_to_string(oid), "1.3.6.1.6.3.15.1.1.4.0");
}

TEST(Ber, OidMultiByteArcs) {
  const Oid oid = {1, 3, 6, 1, 4, 1, 2636, 1000000, 0x7fffffff};
  const auto wire = encode_oid(oid);
  Reader reader(wire);
  const auto decoded = reader.read_oid();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), oid);
}

TEST(Ber, SequenceNesting) {
  SequenceBuilder inner;
  inner.add(encode_integer(42)).add(encode_octet_string(Bytes{0xaa}));
  SequenceBuilder outer;
  outer.add(encode_integer(1)).add(inner.finish());
  const auto wire = outer.finish();

  Reader reader(wire);
  auto seq = reader.enter();
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value().read_integer().value(), 1);
  auto nested = seq.value().enter();
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested.value().read_integer().value(), 42);
  ASSERT_TRUE(nested.value().read_octet_string().ok());
  EXPECT_TRUE(nested.value().at_end());
  EXPECT_TRUE(seq.value().at_end());
}

TEST(Ber, ContextTags) {
  EXPECT_EQ(context_tag(0), 0xa0);
  EXPECT_EQ(context_tag(8), 0xa8);
  SequenceBuilder pdu;
  pdu.add(encode_integer(7));
  const auto wire = pdu.finish(context_tag(8));
  Reader reader(wire);
  auto entered = reader.enter(context_tag(8));
  ASSERT_TRUE(entered.ok());
  EXPECT_EQ(entered.value().read_integer().value(), 7);
}

// ---------------------------------------------------------------------------
// malformed input: the decoder must reject, never crash or over-read
// ---------------------------------------------------------------------------

TEST(BerMalformed, TruncatedHeader) {
  const Bytes wire = {0x02};
  Reader reader(wire);
  EXPECT_FALSE(reader.read_tlv().ok());
}

TEST(BerMalformed, ContentOverrunsBuffer) {
  const Bytes wire = {0x04, 0x05, 0x01, 0x02};  // claims 5, has 2
  Reader reader(wire);
  EXPECT_FALSE(reader.read_tlv().ok());
}

TEST(BerMalformed, IndefiniteLengthRejected) {
  const Bytes wire = {0x30, 0x80, 0x00, 0x00};
  Reader reader(wire);
  EXPECT_FALSE(reader.read_tlv().ok());
}

TEST(BerMalformed, HugeLongFormLengthRejected) {
  const Bytes wire = {0x04, 0x89, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Reader reader(wire);
  EXPECT_FALSE(reader.read_tlv().ok());
}

TEST(BerMalformed, EmptyIntegerRejected) {
  const Bytes wire = {0x02, 0x00};
  Reader reader(wire);
  EXPECT_FALSE(reader.read_integer().ok());
}

TEST(BerMalformed, OverwideIntegerRejected) {
  Bytes wire = {0x02, 0x09};
  for (int i = 0; i < 9; ++i) wire.push_back(0x7f);
  Reader reader(wire);
  EXPECT_FALSE(reader.read_integer().ok());
}

TEST(BerMalformed, WrongTag) {
  const auto wire = encode_integer(1);
  Reader reader(wire);
  EXPECT_FALSE(reader.read_octet_string().ok());
}

TEST(BerMalformed, TruncatedOidArc) {
  const Bytes wire = {0x06, 0x02, 0x2b, 0x86};  // continuation bit set at end
  Reader reader(wire);
  EXPECT_FALSE(reader.read_oid().ok());
}

TEST(BerMalformed, NonEmptyNullRejected) {
  const Bytes wire = {0x05, 0x01, 0x00};
  Reader reader(wire);
  EXPECT_FALSE(reader.read_null().ok());
}

// Fuzz-style property: random mutations of a valid message never crash the
// reader and either parse or fail cleanly.
TEST(BerMalformed, MutationFuzzNeverCrashes) {
  SequenceBuilder builder;
  builder.add(encode_integer(3))
      .add(encode_octet_string(Bytes{1, 2, 3, 4}))
      .add(encode_oid({1, 3, 6, 1, 2, 1, 1, 1, 0}));
  const auto valid = builder.finish();

  util::Rng rng(999);
  for (int round = 0; round < 20000; ++round) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f)
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    Reader reader(mutated);
    auto seq = reader.enter();
    if (!seq.ok()) continue;
    (void)seq.value().read_integer();
    (void)seq.value().read_octet_string();
    (void)seq.value().read_oid();
  }
  SUCCEED();  // reaching here without UB/crash is the property
}

// Truncation property: every strict prefix of a valid encoding fails to
// parse fully but never crashes.
TEST(BerMalformed, AllTruncationsFailCleanly) {
  SequenceBuilder builder;
  builder.add(encode_integer(1234567)).add(encode_octet_string(Bytes(40, 7)));
  const auto valid = builder.finish();
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    Bytes truncated(valid.begin(), valid.begin() + cut);
    Reader reader(truncated);
    auto seq = reader.enter();
    if (!seq.ok()) continue;
    const auto i = seq.value().read_integer();
    if (!i.ok()) continue;
    EXPECT_FALSE(seq.value().read_octet_string().ok())
        << "truncation at " << cut << " parsed fully";
  }
}

}  // namespace
}  // namespace snmpv3fp::asn1
